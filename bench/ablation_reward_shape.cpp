// Ablation: the paper's linear-decay reward vs classic binary max-coverage.
//
// The paper's §II-B positions the problem against weighted maximum
// coverage; the difference is the distance-weighted reward. This ablation
// asks: do the chosen centers actually differ, and by how much does a
// scheduler optimized for one shape lose when users are scored by the
// other?
//
//   ./build/bench/ablation_reward_shape [--trials T] [--seed S]

#include <iostream>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 30));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    std::cout << "ablation: linear-decay vs binary rewards, n=40, 2-D "
                 "2-norm, k=4 (" << trials << " trials)\n\n";

    io::Table table({"r", "cross-score: linear plan under binary",
                     "cross-score: binary plan under linear",
                     "plans differ"});
    const rnd::Rng base(seed);
    for (double radius : {1.0, 1.5, 2.0}) {
      io::RunningStats lin_under_bin, bin_under_lin;
      int differ = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        rnd::WorkloadSpec spec;
        spec.n = 40;
        rnd::Rng rng = base.fork(t + static_cast<std::size_t>(radius * 100));
        const rnd::Workload wl = rnd::generate_workload(spec, rng);
        const core::Problem linear(geo::PointSet(wl.points),
                                   std::vector<double>(wl.weights), radius,
                                   geo::l2_metric(),
                                   core::RewardShape::kLinear);
        const core::Problem binary(geo::PointSet(wl.points),
                                   std::vector<double>(wl.weights), radius,
                                   geo::l2_metric(),
                                   core::RewardShape::kBinary);
        const core::Solution lin_plan =
            core::GreedyLocalSolver().solve(linear, 4);
        const core::Solution bin_plan =
            core::GreedyLocalSolver().solve(binary, 4);
        // Cross-evaluate: each plan scored under the *other* objective,
        // normalized by the plan natively optimized for it.
        lin_under_bin.add(
            core::objective_value(binary, lin_plan.centers) /
            core::objective_value(binary, bin_plan.centers));
        bin_under_lin.add(
            core::objective_value(linear, bin_plan.centers) /
            core::objective_value(linear, lin_plan.centers));
        bool same = lin_plan.centers.size() == bin_plan.centers.size();
        for (std::size_t j = 0; same && j < lin_plan.centers.size(); ++j) {
          same = geo::approx_equal(lin_plan.centers[j], bin_plan.centers[j]);
        }
        if (!same) ++differ;
      }
      table.add_row({io::fixed(radius, 1), io::percent(lin_under_bin.mean()),
                     io::percent(bin_under_lin.mean()),
                     std::to_string(differ) + "/" + std::to_string(trials)});
    }
    table.print(std::cout);
    std::cout << "\nreading: cross-scores below 100% are the price of "
                 "optimizing the wrong\nreward shape — the gap is what the "
                 "paper's distance-weighted model buys\nover plain "
                 "max-coverage.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_reward_shape: " << e.what() << "\n";
    return 1;
  }
}
