// Ablation: sensitivity of the ratio denominator to the exhaustive solver's
// grid pitch, and of greedy 1 to its oracle pitch (DESIGN.md substitution 1
// and 2).
//
// The paper never specifies how its "exhaustive" optimum handles the
// continuous center domain. This ablation quantifies how much that choice
// matters: it fixes a bundle of instances and sweeps the candidate-grid
// pitch, reporting the exhaustive value and greedy1's reward per pitch.
//
//   ./build/bench/ablation_candidates [--trials T] [--seed S] [--k K]

#include <iostream>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 10));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 2));
    args.finish();

    std::cout << "ablation: candidate grid pitch (n=20, 2-D, 2-norm, k=" << k
              << ", r=1, " << trials << " trials)\n\n";

    const std::vector<double> pitches{2.0, 1.0, 0.5, 0.25};

    io::Table table({"pitch", "mean exhaustive value", "mean greedy1 reward",
                     "greedy1/exhaustive(0.25)"});

    // Generate the instance bundle once so every pitch sees identical
    // problems.
    std::vector<core::Problem> problems;
    const rnd::Rng base(seed);
    for (std::size_t t = 0; t < trials; ++t) {
      rnd::WorkloadSpec spec;
      spec.n = 20;
      rnd::Rng rng = base.fork(t);
      problems.push_back(core::Problem::from_workload(
          rnd::generate_workload(spec, rng), 1.0, geo::l2_metric()));
    }

    // Reference denominator: the finest pitch.
    std::vector<double> reference;
    for (const core::Problem& p : problems) {
      reference.push_back(core::ExhaustiveSolver::over_grid_and_points(p, 0.25)
                              .solve(p, k)
                              .total_reward);
    }

    for (double pitch : pitches) {
      io::RunningStats ex_stats, g1_stats, ratio_stats;
      for (std::size_t t = 0; t < problems.size(); ++t) {
        const core::Problem& p = problems[t];
        const double ex =
            core::ExhaustiveSolver::over_grid_and_points(p, pitch)
                .solve(p, k)
                .total_reward;
        const double g1 = core::RoundBasedSolver::over_grid(p, pitch)
                              .solve(p, k)
                              .total_reward;
        ex_stats.add(ex);
        g1_stats.add(g1);
        ratio_stats.add(g1 / reference[t]);
      }
      table.add_row({io::fixed(pitch, 2), io::fixed(ex_stats.mean(), 4),
                     io::fixed(g1_stats.mean(), 4),
                     io::percent(ratio_stats.mean())});
    }
    table.print(std::cout);
    std::cout << "\nexpected shape: the exhaustive value grows "
                 "monotonically as the pitch\nshrinks and plateaus, showing "
                 "the 0.5 default is close to converged.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_candidates: " << e.what() << "\n";
    return 1;
  }
}
