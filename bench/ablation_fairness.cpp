// Ablation: the fairness/throughput trade-off of deficit-weighted
// scheduling. Sweeps the fairness pressure alpha on a clustered population
// (where plain greedy starves fringe users) and reports long-run Jain
// fairness of accumulated rewards vs total reward.
//
//   ./build/bench/ablation_fairness [--users N] [--slots T] [--seed S]

#include <iostream>
#include <memory>

#include "mmph/core/greedy_local.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/sim/fairness.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t users =
        static_cast<std::size_t>(args.get_int("users", 60));
    const std::size_t slots =
        static_cast<std::size_t>(args.get_int("slots", 50));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    // Clustered interests: the regime where myopic scheduling is unfair.
    rnd::WorkloadSpec spec;
    spec.n = users;
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = 4;
    spec.cluster_stddev = 0.35;
    rnd::Rng rng(seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), 0.8, geo::l2_metric());

    std::cout << "ablation: fairness pressure alpha, " << users
              << " clustered users, " << slots << " slots, k=2, r=0.8\n\n";

    io::Table table({"alpha", "total reward", "vs alpha=0",
                     "Jain (accumulated)", "never-served users"});
    double baseline_total = 0.0;
    for (double alpha : {0.0, 1.0, 4.0, 16.0, 64.0}) {
      sim::FairnessAwarePlanner planner(
          [](const core::Problem&) {
            return std::make_unique<core::GreedyLocalSolver>();
          },
          alpha);
      std::vector<double> accumulated(problem.size(), 0.0);
      double total = 0.0;
      for (std::size_t t = 0; t < slots; ++t) {
        const core::Solution s = planner.plan(problem, 2);
        for (std::size_t i = 0; i < problem.size(); ++i) {
          accumulated[i] += problem.weight(i) * (1.0 - s.residual[i]);
        }
        total += s.total_reward;
      }
      if (alpha == 0.0) baseline_total = total;
      int starved = 0;
      for (double a : accumulated) {
        if (a <= 0.0) ++starved;
      }
      table.add_row({io::fixed(alpha, 1), io::fixed(total, 1),
                     io::percent(total / baseline_total),
                     io::fixed(io::jain_fairness(accumulated), 4),
                     std::to_string(starved)});
    }
    table.print(std::cout);
    std::cout << "\nreading: modest alpha buys a large fairness gain "
                 "(fewer never-served users)\nfor a small throughput cost; "
                 "very large alpha chases deficits at real cost.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_fairness: " << e.what() << "\n";
    return 1;
  }
}
