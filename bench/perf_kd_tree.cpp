// Performance benchmark: kd-tree vs cell grid vs linear scan for ball
// queries, on uniform and clustered point sets. Shows where each index
// pays off (grid on uniform density, kd-tree on clustered).

#include <benchmark/benchmark.h>

#include "mmph/geometry/cell_grid.hpp"
#include "mmph/geometry/kd_tree.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;

geo::PointSet make_points(std::size_t n, bool clustered, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.box_side = 40.0;  // large box: queries touch a small neighborhood
  if (clustered) {
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = 8;
    spec.cluster_stddev = 0.5;
  }
  rnd::Rng rng(seed);
  return rnd::generate_workload(spec, rng).points;
}

template <bool kClustered>
void BM_LinearScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = make_points(n, kClustered, 1);
  const geo::Metric metric = geo::l2_metric();
  std::size_t q = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    geo::ConstVec center = ps[q % n];
    for (std::size_t i = 0; i < n; ++i) {
      if (metric.distance(center, ps[i]) <= 1.0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
    ++q;
  }
}
BENCHMARK(BM_LinearScan<false>)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_LinearScan<true>)->RangeMultiplier(4)->Range(256, 16384);

template <bool kClustered>
void BM_CellGridQuery(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = make_points(n, kClustered, 1);
  const geo::CellGrid grid(ps, 1.0);
  const geo::Metric metric = geo::l2_metric();
  std::size_t q = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    grid.for_each_in_box(ps[q % n], 1.0, [&](std::size_t i) {
      if (metric.distance(ps[q % n], ps[i]) <= 1.0) ++hits;
    });
    benchmark::DoNotOptimize(hits);
    ++q;
  }
}
BENCHMARK(BM_CellGridQuery<false>)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_CellGridQuery<true>)->RangeMultiplier(4)->Range(256, 16384);

template <bool kClustered>
void BM_KdTreeQuery(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = make_points(n, kClustered, 1);
  const geo::KdTree tree(ps);
  const geo::Metric metric = geo::l2_metric();
  std::size_t q = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    tree.for_each_in_ball(ps[q % n], 1.0, metric,
                          [&](std::size_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
    ++q;
  }
}
BENCHMARK(BM_KdTreeQuery<false>)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_KdTreeQuery<true>)->RangeMultiplier(4)->Range(256, 16384);

void BM_KdTreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = make_points(n, true, 2);
  for (auto _ : state) {
    const geo::KdTree tree(ps);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_KdTreeBuild)->RangeMultiplier(4)->Range(256, 16384);

void BM_CellGridBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = make_points(n, true, 2);
  for (auto _ : state) {
    const geo::CellGrid grid(ps, 1.0);
    benchmark::DoNotOptimize(grid.cell_count());
  }
}
BENCHMARK(BM_CellGridBuild)->RangeMultiplier(4)->Range(256, 16384);

}  // namespace

BENCHMARK_MAIN();
