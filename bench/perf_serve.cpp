// Serving-layer throughput: how fast can each strategy absorb a churn
// slot (1% of users replaced) and produce fresh centers?
//
//   monolithic          rebuild the Problem, re-run core::LazyGreedySolver
//   sharded-full        PlacementService forced to a full sharded solve
//   sharded-incremental PlacementService warm-refining from the last centers
//
// items/sec is churn slots per second. The acceptance target is
// sharded-incremental >= 2x monolithic at n = 100000; the monolithic
// 100000 case runs a single iteration because one solve is already tens
// of seconds of O(n^2) heap initialisation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "mmph/core/lazy_greedy.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/serve/placement_service.hpp"

namespace {

using namespace mmph;

constexpr std::size_t kCenters = 8;
constexpr double kRadius = 1.0;
constexpr double kBoxSide = 4.0;

serve::UserRecord fresh_user(std::uint64_t id, rnd::Rng& rng) {
  serve::UserRecord rec;
  rec.id = id;
  rec.weight = static_cast<double>(rng.uniform_int(1, 5));
  rec.interest = {rng.uniform(0.0, kBoxSide), rng.uniform(0.0, kBoxSide)};
  return rec;
}

std::vector<serve::UserRecord> seed_users(std::size_t n, rnd::Rng& rng) {
  std::vector<serve::UserRecord> users;
  users.reserve(n);
  for (std::uint64_t id = 0; id < n; ++id) {
    users.push_back(fresh_user(id, rng));
  }
  return users;
}

/// Replaces ~1% of the population, returning the churned user count.
std::size_t churn_users(std::vector<serve::UserRecord>& users,
                        std::uint64_t& next_id, rnd::Rng& rng) {
  const std::size_t churn = std::max<std::size_t>(1, users.size() / 100);
  for (std::size_t c = 0; c < churn; ++c) {
    const auto slot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1));
    users[slot] = fresh_user(next_id++, rng);
  }
  return churn;
}

/// One churn slot against a PlacementService: remove the victims, add
/// their replacements, ask for the new placement.
double service_slot(serve::PlacementService& service,
                    std::vector<serve::UserRecord>& users,
                    std::uint64_t& next_id, rnd::Rng& rng) {
  const std::size_t churn = std::max<std::size_t>(1, users.size() / 100);
  std::vector<std::uint64_t> removed;
  std::vector<serve::UserRecord> added;
  removed.reserve(churn);
  added.reserve(churn);
  for (std::size_t c = 0; c < churn; ++c) {
    const auto slot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1));
    removed.push_back(users[slot].id);
    users[slot] = fresh_user(next_id++, rng);
    added.push_back(users[slot]);
  }
  service.apply_remove(removed);
  service.apply_add(added);
  return service.placement().objective;
}

void BM_MonolithicResolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rnd::Rng rng(7);
  std::vector<serve::UserRecord> users = seed_users(n, rng);
  std::uint64_t next_id = n;
  const core::LazyGreedySolver solver;
  for (auto _ : state) {
    churn_users(users, next_id, rng);
    geo::PointSet points(2);
    points.reserve(users.size());
    std::vector<double> weights;
    weights.reserve(users.size());
    for (const serve::UserRecord& u : users) {
      points.push_back(geo::ConstVec(u.interest.data(), u.interest.size()));
      weights.push_back(u.weight);
    }
    core::Problem problem(std::move(points), std::move(weights), kRadius,
                          geo::l2_metric());
    benchmark::DoNotOptimize(solver.solve(problem, kCenters).total_reward);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonolithicResolve)
    ->RangeMultiplier(4)
    ->Range(4096, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MonolithicResolve)
    ->Arg(100000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

serve::ServiceConfig service_config(double full_solve_churn_fraction) {
  serve::ServiceConfig config;
  config.k = kCenters;
  config.radius = kRadius;
  config.full_solve_churn_fraction = full_solve_churn_fraction;
  return config;
}

void BM_ShardedFullResolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rnd::Rng rng(7);
  std::vector<serve::UserRecord> users = seed_users(n, rng);
  std::uint64_t next_id = n;
  // Threshold 0: any churn at all forces the full sharded solve.
  serve::PlacementService service(service_config(0.0));
  service.apply_add(users);
  (void)service.placement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service_slot(service, users, next_id, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedFullResolve)
    ->RangeMultiplier(4)
    ->Range(4096, 65536)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rnd::Rng rng(7);
  std::vector<serve::UserRecord> users = seed_users(n, rng);
  std::uint64_t next_id = n;
  // 1% churn per slot stays under the 5% default threshold, so every
  // slot after the first warm history is an incremental refine.
  serve::PlacementService service(service_config(0.05));
  service.apply_add(users);
  (void)service.placement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service_slot(service, users, next_id, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["incremental_ratio"] = service.metrics().incremental_ratio();
}
BENCHMARK(BM_ShardedIncremental)
    ->RangeMultiplier(4)
    ->Range(4096, 65536)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
