// Serving-layer throughput: how fast can each strategy absorb a churn
// slot (1% of users replaced) and produce fresh centers?
//
//   monolithic          rebuild the Problem, re-run core::LazyGreedySolver
//   sharded-full        PlacementService forced to a full sharded solve
//   sharded-incremental PlacementService warm-refining from the last centers
//
// The incremental strategy is additionally swept over region-shard
// counts {1, 2, 4} (`store_shards` in each result row): at >1 the store
// is split by spatial region and a churn slot re-solves only the shards
// it dirtied.
//
// A plain timed repro (like perf_kernels): it emits BENCH_serve.json
// (config + per-strategy slots/sec and per-slot latency percentiles) so
// CI and the tutorial can diff numbers across machines. slots/sec is
// churn slots absorbed per second, center-refresh included.
//
//   ./perf_serve --n 2048,8192 --slots 12 --out BENCH_serve.json

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "mmph/core/lazy_greedy.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/serve/placement_service.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kCenters = 8;
constexpr double kRadius = 1.0;
constexpr double kBoxSide = 4.0;

struct Row {
  std::size_t n = 0;
  std::string strategy;
  std::size_t store_shards = 1;
  std::size_t slots = 0;
  double slots_per_sec = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double speedup = 1.0;  // vs. monolithic at the same n
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

serve::UserRecord fresh_user(std::uint64_t id, rnd::Rng& rng) {
  serve::UserRecord rec;
  rec.id = id;
  rec.weight = static_cast<double>(rng.uniform_int(1, 5));
  rec.interest = {rng.uniform(0.0, kBoxSide), rng.uniform(0.0, kBoxSide)};
  return rec;
}

std::vector<serve::UserRecord> seed_users(std::size_t n, rnd::Rng& rng) {
  std::vector<serve::UserRecord> users;
  users.reserve(n);
  for (std::uint64_t id = 0; id < n; ++id) {
    users.push_back(fresh_user(id, rng));
  }
  return users;
}

/// Replaces ~1% of the population; fills removed/added with the delta.
void churn_slot(std::vector<serve::UserRecord>& users, std::uint64_t& next_id,
                rnd::Rng& rng, std::vector<std::uint64_t>& removed,
                std::vector<serve::UserRecord>& added) {
  removed.clear();
  added.clear();
  const std::size_t churn = std::max<std::size_t>(1, users.size() / 100);
  for (std::size_t c = 0; c < churn; ++c) {
    const auto slot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1));
    removed.push_back(users[slot].id);
    users[slot] = fresh_user(next_id++, rng);
    added.push_back(users[slot]);
  }
}

Row summarize(std::size_t n, std::string strategy,
              std::vector<double> slot_seconds) {
  Row row;
  row.n = n;
  row.strategy = std::move(strategy);
  row.slots = slot_seconds.size();
  double total = 0.0;
  for (const double s : slot_seconds) total += s;
  row.slots_per_sec =
      total > 0.0 ? static_cast<double>(slot_seconds.size()) / total : 0.0;
  row.p50_seconds = io::percentile(slot_seconds, 0.50);
  row.p99_seconds = io::percentile_inplace(slot_seconds, 0.99);
  return row;
}

serve::ServiceConfig service_config(double full_solve_churn_fraction,
                                    std::size_t store_shards) {
  serve::ServiceConfig config;
  config.k = kCenters;
  config.radius = kRadius;
  config.full_solve_churn_fraction = full_solve_churn_fraction;
  config.store_shards = store_shards;
  return config;
}

/// Times `slots` churn slots against a PlacementService configured with
/// the given full-solve threshold (0 = always full, 0.05 = incremental)
/// and region-shard count (1 = monolithic store, the pre-shard layout).
Row run_service(std::size_t n, std::size_t slots, const char* name,
                double threshold, std::size_t store_shards, double& sink) {
  rnd::Rng rng(7);
  std::vector<serve::UserRecord> users = seed_users(n, rng);
  std::uint64_t next_id = n;
  serve::PlacementService service(service_config(threshold, store_shards));
  service.apply_add(users);
  sink += service.placement().objective;  // warm: first solve is untimed

  std::vector<std::uint64_t> removed;
  std::vector<serve::UserRecord> added;
  std::vector<double> slot_seconds;
  slot_seconds.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    churn_slot(users, next_id, rng, removed, added);
    const auto start = Clock::now();
    service.apply_remove(removed);
    service.apply_add(added);
    sink += service.placement().objective;
    slot_seconds.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  Row row = summarize(n, name, std::move(slot_seconds));
  row.store_shards = store_shards;
  return row;
}

Row run_monolithic(std::size_t n, std::size_t slots, double& sink) {
  rnd::Rng rng(7);
  std::vector<serve::UserRecord> users = seed_users(n, rng);
  std::uint64_t next_id = n;
  const core::LazyGreedySolver solver;
  std::vector<std::uint64_t> removed;
  std::vector<serve::UserRecord> added;
  std::vector<double> slot_seconds;
  slot_seconds.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    churn_slot(users, next_id, rng, removed, added);
    const auto start = Clock::now();
    geo::PointSet points(2);
    points.reserve(users.size());
    std::vector<double> weights;
    weights.reserve(users.size());
    for (const serve::UserRecord& u : users) {
      points.push_back(geo::ConstVec(u.interest.data(), u.interest.size()));
      weights.push_back(u.weight);
    }
    core::Problem problem(std::move(points), std::move(weights), kRadius,
                          geo::l2_metric());
    sink += solver.solve(problem, kCenters).total_reward;
    slot_seconds.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  return summarize(n, "monolithic", std::move(slot_seconds));
}

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const std::string n_csv = args.get_string("n", "2048,8192");
  const std::size_t slots = static_cast<std::size_t>(args.get_int("slots", 12));
  const std::string out_path = args.get_string("out", "BENCH_serve.json");
  args.finish();

  double sink = 0.0;  // keeps every objective live
  std::vector<Row> rows;
  for (const std::size_t n : parse_sizes(n_csv)) {
    Row mono = run_monolithic(n, slots, sink);
    Row full = run_service(n, slots, "sharded-full", 0.0, 1, sink);
    Row incr = run_service(n, slots, "sharded-incremental", 0.05, 1, sink);
    full.speedup = full.slots_per_sec / mono.slots_per_sec;
    incr.speedup = incr.slots_per_sec / mono.slots_per_sec;
    std::printf("n=%-7zu monolithic %8.2f slots/s | sharded-full %8.2f "
                "(%4.2fx) | incremental %8.2f (%4.2fx)\n",
                n, mono.slots_per_sec, full.slots_per_sec, full.speedup,
                incr.slots_per_sec, incr.speedup);
    rows.push_back(std::move(mono));
    rows.push_back(std::move(full));
    rows.push_back(std::move(incr));
    // Region-sharded store sweep: the same incremental churn workload
    // routed through 2 and 4 store shards (each churn slot dirties only
    // the shards it touches, so the re-solve works a fraction of the
    // population). store_shards=1 is the "sharded-incremental" row above.
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      Row sharded = run_service(n, slots, "sharded-incremental", 0.05,
                                shards, sink);
      sharded.speedup = sharded.slots_per_sec / mono.slots_per_sec;
      std::printf("n=%-7zu store-shards=%zu incremental %8.2f slots/s "
                  "(%4.2fx vs monolithic)\n",
                  n, shards, sharded.slots_per_sec, sharded.speedup);
      rows.push_back(std::move(sharded));
    }
  }
  if (sink == -1.0) std::printf("unreachable\n");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"serve\",\n  \"scenario\": "
         "\"uniform 2-D L2 box 4.0, k 8, radius 1.0, 1% churn per slot\","
         "\n  \"config\": {\"slots\": " << slots << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"n\": " << r.n << ", \"strategy\": \"" << r.strategy
        << "\", \"store_shards\": " << r.store_shards
        << ", \"slots_per_sec\": " << r.slots_per_sec
        << ", \"p50_seconds\": " << r.p50_seconds
        << ", \"p99_seconds\": " << r.p99_seconds
        << ", \"speedup_vs_monolithic\": " << r.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_serve: %s\n", e.what());
  return 1;
}
