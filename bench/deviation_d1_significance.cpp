// Deviation D1, statistically: the paper's §VI-B prose ranks greedy 3
// (84%) far above greedy 2 (56%); implemented from the paper's own
// pseudocode, the ordering reverses. This bench runs both algorithms on
// shared seeded instances across the paper's whole 2-D parameter grid and
// reports a paired significance test per cell, so the reversal in
// EXPERIMENTS.md is backed by more than a mean.
//
//   ./build/bench/deviation_d1_significance [--trials T] [--seed S]

#include <iostream>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/exp/paired.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 50));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    std::cout << "paired test: greedy2 vs greedy3 rewards on shared "
                 "instances (" << trials << " trials/cell)\n"
              << "paper claims greedy3 >> greedy2; positive mean diff "
                 "below means greedy2 wins.\n\n";

    io::Table table({"n", "k", "r", "greedy2 wins", "greedy3 wins", "ties",
                     "mean diff", "t", "significant@95%"});
    const rnd::Rng base(seed);
    for (std::size_t n : {10u, 40u}) {
      for (std::size_t k : {2u, 4u}) {
        for (double r : {1.0, 1.5, 2.0}) {
          std::vector<double> g2(trials), g3(trials);
          for (std::size_t t = 0; t < trials; ++t) {
            rnd::WorkloadSpec spec;
            spec.n = n;
            rnd::Rng rng = base.fork(t + 1000 * n + 100 * k +
                                     static_cast<std::size_t>(r * 10));
            const core::Problem p = core::Problem::from_workload(
                rnd::generate_workload(spec, rng), r, geo::l2_metric());
            g2[t] = core::GreedyLocalSolver().solve(p, k).total_reward;
            g3[t] = core::GreedySimpleSolver().solve(p, k).total_reward;
          }
          const exp::PairedComparison cmp = exp::paired_compare(g2, g3);
          table.add_row({std::to_string(n), std::to_string(k),
                         io::fixed(r, 1), std::to_string(cmp.wins_a),
                         std::to_string(cmp.wins_b),
                         std::to_string(cmp.ties),
                         io::fixed(cmp.mean_diff, 3),
                         io::fixed(cmp.t_statistic, 2),
                         cmp.significant_95 ? "yes" : "no"});
        }
      }
    }
    table.print(std::cout);
    std::cout << "\nreading: greedy2's advantage is consistent and "
                 "significant across the grid,\nconfirming deviation D1 is "
                 "a property of the algorithms, not of our seeds.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "deviation_d1_significance: " << e.what() << "\n";
    return 1;
  }
}
