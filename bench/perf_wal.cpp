// Write-ahead-log throughput and recovery speed. Four timed scenarios:
//
//   mem/never    append+encode ceiling: MemFileOps, no syncing — what the
//                codec and writer bookkeeping cost by themselves;
//   disk/group   the production default: real files, one fsync per
//                commit_every appends (the service commits per batch);
//   disk/always  the paranoid policy: fsync inside every append. Runs a
//                reduced op count (--sync-ops) because each op pays a
//                full device round trip;
//   recovery     replay speed of the disk/group log: time recover() over
//                the whole segment set and report records/sec.
//
// Emits BENCH_wal.json in the same spirit as BENCH_net.json. The
// acceptance bar for the durable serving tier is >= 50k appends/s under
// disk/group on a development machine; disk/always is expected to sit
// orders of magnitude below it — that gap is the point of group commit.
//
//   ./perf_wal --ops 1000000 --commit-every 256 --sync-ops 2000
//              --out BENCH_wal.json

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mmph/io/args.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/recovery.hpp"
#include "mmph/wal/writer.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

struct ScenarioResult {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;

  [[nodiscard]] double ops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
  [[nodiscard]] double mb_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds / 1e6 : 0.0;
  }
};

/// Appends \p ops single-user upsert records (dim 2, ~68 encoded bytes)
/// and commits every \p commit_every. Returns the measured wall time.
ScenarioResult run_appends(wal::FileOps& ops_table, const std::string& dir,
                           wal::FsyncPolicy policy, std::uint64_t ops,
                           std::uint64_t commit_every) {
  wal::WalConfig config;
  config.dir = dir;
  config.fsync = policy;
  config.file_ops = &ops_table;
  // Keep the replication tail small: this bench measures the disk path,
  // not the in-memory ring.
  config.tail_retain_bytes = 1u << 16;
  wal::WalWriter writer(config);

  rnd::Pcg64 rng(2011);
  ScenarioResult result;
  result.ops = ops;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    wal::WalRecord record;
    record.type = wal::RecordType::kUpsert;
    record.dim = 2;
    record.ids = {i};
    record.weights = {1.0 + static_cast<double>(i % 5)};
    record.coords = {rng.next_double() * 4.0, rng.next_double() * 4.0};
    writer.append(record);
    result.bytes += wal::kRecordHeaderBytes + 32;
    if (commit_every != 0 && (i + 1) % commit_every == 0) writer.commit();
  }
  writer.commit();
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

std::string scenario_json(const char* name, const ScenarioResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"%s\": {\"ops\": %llu, \"seconds\": %.4f, "
                "\"ops_per_sec\": %.0f, \"mb_per_sec\": %.1f}",
                name, static_cast<unsigned long long>(r.ops), r.seconds,
                r.ops_per_sec(), r.mb_per_sec());
  return buf;
}

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const auto ops = static_cast<std::uint64_t>(args.get_int("ops", 1000000));
  const auto commit_every =
      static_cast<std::uint64_t>(args.get_int("commit-every", 256));
  const auto sync_ops =
      static_cast<std::uint64_t>(args.get_int("sync-ops", 2000));
  const std::string out_path = args.get_string("out", "BENCH_wal.json");
  args.finish();

  char dir_template[] = "/tmp/mmph_perf_wal_XXXXXX";
  const char* root = ::mkdtemp(dir_template);
  if (root == nullptr) {
    std::fprintf(stderr, "perf_wal: mkdtemp failed\n");
    return 1;
  }
  const std::string disk_group = std::string(root) + "/group";
  const std::string disk_always = std::string(root) + "/always";

  wal::MemFileOps mem;
  const ScenarioResult mem_never =
      run_appends(mem, "wal", wal::FsyncPolicy::kNever, ops, 0);
  std::printf("mem/never:    %llu appends in %.2fs -> %.0f ops/s\n",
              static_cast<unsigned long long>(mem_never.ops),
              mem_never.seconds, mem_never.ops_per_sec());

  const ScenarioResult group = run_appends(
      wal::FileOps::system(), disk_group, wal::FsyncPolicy::kGroupCommit, ops,
      commit_every);
  std::printf("disk/group:   %llu appends (fsync per %llu) in %.2fs -> "
              "%.0f ops/s%s\n",
              static_cast<unsigned long long>(group.ops),
              static_cast<unsigned long long>(commit_every), group.seconds,
              group.ops_per_sec(),
              group.ops_per_sec() >= 50000.0 ? ""
                                             : "  [below 50k ops/s target]");

  const ScenarioResult always = run_appends(
      wal::FileOps::system(), disk_always, wal::FsyncPolicy::kAlways, sync_ops,
      0);
  std::printf("disk/always:  %llu appends in %.2fs -> %.0f ops/s\n",
              static_cast<unsigned long long>(always.ops), always.seconds,
              always.ops_per_sec());

  // Recovery replay speed over the group log written above.
  const auto recover_start = Clock::now();
  const wal::RecoveryResult recovered = wal::recover(disk_group, 2);
  const double recover_seconds =
      std::chrono::duration<double>(Clock::now() - recover_start).count();
  const bool recovery_ok =
      recovered.clean && recovered.records_applied == ops;
  const double replay_per_sec =
      recover_seconds > 0.0
          ? static_cast<double>(recovered.records_applied) / recover_seconds
          : 0.0;
  std::printf("recovery:     %llu records in %.2fs -> %.0f records/s "
              "(clean=%s)\n",
              static_cast<unsigned long long>(recovered.records_applied),
              recover_seconds, replay_per_sec,
              recovered.clean ? "yes" : "no");
  if (!recovery_ok) {
    std::fprintf(stderr, "perf_wal: recovery mismatch: %s\n",
                 recovered.detail.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(root, ec);  // best-effort cleanup

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"wal\",\n  \"scenario\": "
         "\"single-user upsert records (dim 2), append+commit per policy, "
         "then full-log recovery\",\n"
      << "  \"config\": {\"ops\": " << ops
      << ", \"commit_every\": " << commit_every
      << ", \"sync_ops\": " << sync_ops << "},\n"
      << scenario_json("mem_never", mem_never) << ",\n"
      << scenario_json("disk_group", group) << ",\n"
      << scenario_json("disk_always", always) << ",\n"
      << "  \"recovery\": {\"records\": " << recovered.records_applied
      << ", \"seconds\": " << recover_seconds
      << ", \"records_per_sec\": " << static_cast<std::uint64_t>(replay_per_sec)
      << ", \"clean\": " << (recovered.clean ? "true" : "false") << "}\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return recovery_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_wal: %s\n", e.what());
  return 1;
}
