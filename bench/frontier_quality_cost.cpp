// Quality/cost frontier: every solver's mean approximation ratio plotted
// against its mean solve time on identical instances — the practical
// "which algorithm should I deploy" view the paper's complexity table
// (Theorems 3-4) implies but never measures.
//
//   ./build/bench/frontier_quality_cost [--trials T] [--n N] [--k K]
//       [--seed S]

#include <chrono>
#include <iostream>

#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 10));
    const std::size_t n = static_cast<std::size_t>(args.get_int("n", 40));
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 4));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    std::cout << "quality/cost frontier: n=" << n << ", k=" << k
              << ", 2-D 2-norm, r=1, " << trials
              << " trials (ratio vs exhaustive)\n\n";

    const std::vector<std::string> solvers{
        "random",  "kmeans",        "greedy3",     "greedy2-stoch",
        "greedy2", "greedy2-lazy",  "greedy2-indexed", "greedy2+ls",
        "greedy1", "greedy4"};

    std::map<std::string, io::RunningStats> ratio_stats;
    std::map<std::string, io::RunningStats> time_stats;

    const rnd::Rng base(seed);
    for (std::size_t t = 0; t < trials; ++t) {
      rnd::WorkloadSpec spec;
      spec.n = n;
      rnd::Rng rng = base.fork(t);
      const core::Problem p = core::Problem::from_workload(
          rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
      const double opt =
          core::make_solver("exhaustive", p)->solve(p, k).total_reward;
      for (const std::string& name : solvers) {
        const auto solver = core::make_solver(name, p);
        const auto t0 = std::chrono::steady_clock::now();
        const double reward = solver->solve(p, k).total_reward;
        const auto t1 = std::chrono::steady_clock::now();
        ratio_stats[name].add(reward / opt);
        time_stats[name].add(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    }

    io::Table table({"solver", "mean ratio", "mean time (us)", "ratio CI95"});
    for (const std::string& name : solvers) {
      table.add_row({name, io::percent(ratio_stats.at(name).mean()),
                     io::fixed(time_stats.at(name).mean(), 1),
                     "+/- " + io::percent(
                                  ratio_stats.at(name).ci95_half_width())});
    }
    table.print(std::cout);
    std::cout << "\nreading: the frontier runs random -> kmeans -> greedy3 "
                 "-> greedy2 family -> greedy4;\npay more compute, get a "
                 "higher ratio — with lazy/indexed variants shifting cost "
                 "without\nchanging quality.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "frontier_quality_cost: " << e.what() << "\n";
    return 1;
  }
}
