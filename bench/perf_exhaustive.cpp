// Performance benchmark for the exhaustive baseline: what the submodular
// branch-and-bound pruning and thread-pool fan-out buy.

#include <benchmark/benchmark.h>

#include "mmph/core/exhaustive.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;

core::Problem make_instance(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      geo::l2_metric());
}

void run_exhaustive(benchmark::State& state, bool pruning, bool parallel) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const core::Problem p = make_instance(n, 3);
  core::ExhaustiveOptions opts;
  opts.use_pruning = pruning;
  opts.parallel = parallel;
  const core::ExhaustiveSolver solver =
      core::ExhaustiveSolver::over_points(p, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, k).total_reward);
  }
  state.counters["subsets"] = core::binomial(n, k);
}

void BM_Exhaustive_Plain(benchmark::State& state) {
  run_exhaustive(state, /*pruning=*/false, /*parallel=*/false);
}
BENCHMARK(BM_Exhaustive_Plain)
    ->Args({20, 3})->Args({40, 3})->Args({40, 4});

void BM_Exhaustive_Pruned(benchmark::State& state) {
  run_exhaustive(state, /*pruning=*/true, /*parallel=*/false);
}
BENCHMARK(BM_Exhaustive_Pruned)
    ->Args({20, 3})->Args({40, 3})->Args({40, 4});

void BM_Exhaustive_PrunedParallel(benchmark::State& state) {
  run_exhaustive(state, /*pruning=*/true, /*parallel=*/true);
}
BENCHMARK(BM_Exhaustive_PrunedParallel)
    ->Args({20, 3})->Args({40, 3})->Args({40, 4})->Args({60, 4});

void BM_Exhaustive_GridCandidates(benchmark::State& state) {
  // The figure-reproduction configuration: grid(0.5) ∪ points, n = 40.
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(40, 4);
  const core::ExhaustiveSolver solver =
      core::ExhaustiveSolver::over_grid_and_points(p, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, k).total_reward);
  }
  state.counters["candidates"] =
      static_cast<double>(solver.candidates().size());
}
BENCHMARK(BM_Exhaustive_GridCandidates)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
