// Robustness study: does the evaluation's story survive off-uniform user
// placements? The paper samples interests i.i.d. uniform; real interest
// distributions cluster (genres) or spread evenly (curated panels). This
// bench repeats the Fig. 4 cell grid under clustered and Halton placements
// and reports the per-solver pooled ratios side by side.
//
//   ./build/bench/robustness_placement [--trials T] [--seed S] [--pitch P]

#include <iostream>

#include "mmph/exp/experiment.hpp"
#include "mmph/exp/report.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 10));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const double pitch = args.get_double("pitch", 0.5);
    args.finish();

    const std::vector<std::string> solvers{"greedy1", "greedy2", "greedy3",
                                           "greedy4"};

    std::cout << "robustness: Fig. 4 sweep under three placements (n=40, "
                 "2-D 2-norm, weights 1..5, " << trials << " trials/cell)\n\n";

    io::Table table({"placement", "ratio(greedy1)", "ratio(greedy2)",
                     "ratio(greedy3)", "ratio(greedy4)"});
    for (const auto& [placement, label] :
         std::vector<std::pair<rnd::Placement, const char*>>{
             {rnd::Placement::kUniform, "uniform (paper)"},
             {rnd::Placement::kClustered, "clustered"},
             {rnd::Placement::kHalton, "halton"}}) {
      exp::TrialSetup setup;
      setup.n = 40;
      setup.placement = placement;
      setup.solver_config.grid_pitch = pitch;
      const auto cells = exp::run_sweep(setup, {2, 4}, {1.0, 1.5, 2.0},
                                        solvers, true, trials, seed);
      const auto means = exp::overall_ratio_means(cells, solvers);
      table.add_row({label, io::percent(means.at("greedy1")),
                     io::percent(means.at("greedy2")),
                     io::percent(means.at("greedy3")),
                     io::percent(means.at("greedy4"))});
    }
    table.print(std::cout);
    std::cout << "\nreading: the ranking (greedy4 ~ greedy1 ~ greedy2 >> "
                 "greedy3) is placement-stable.\ngreedy3 actually improves "
                 "under clustering — its chosen heavy point then sits\n"
                 "inside a cluster and collects neighbors by accident — so "
                 "the paper's uniform\nsetting is, if anything, the hardest "
                 "case for it.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "robustness_placement: " << e.what() << "\n";
    return 1;
  }
}
