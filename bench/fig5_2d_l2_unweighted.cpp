// Fig. 5 reproduction: approximation ratios in a 2-D space, 2-norm,
// *same* weight (w_i = 1 for all nodes); otherwise as Fig. 4.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  mmph::bench::FigureConfig config;
  config.title = "Fig. 5: 2-D, 2-norm, same weight (w=1)";
  config.dim = 2;
  config.metric = mmph::geo::l2_metric();
  config.weights = mmph::rnd::WeightScheme::kSame;
  return mmph::bench::run_figure(config, argc, argv);
}
