// Ablation: the solver-quality ladder beyond the paper's algorithms.
//
// How much headroom is left above the paper's best greedy? Compares, on
// identical instance bundles: greedy3 -> greedy2 -> greedy2+local-search
// -> greedy4 -> exhaustive, plus the sampled greedy at several epsilons,
// all as fractions of the exhaustive grid∪points optimum.
//
//   ./build/bench/ablation_refinement [--trials T] [--seed S] [--k K]

#include <iostream>
#include <memory>

#include "mmph/core/registry.hpp"
#include "mmph/core/stochastic_greedy.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 15));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 4));
    args.finish();

    std::cout << "ablation: refinement ladder, n=40, 2-D 2-norm, k=" << k
              << ", r=1 (" << trials << " trials, ratios vs exhaustive)\n\n";

    const std::vector<std::string> ladder{
        "greedy3", "greedy2-stoch", "greedy2", "greedy2+ls", "greedy4"};

    std::map<std::string, io::RunningStats> ratios;
    io::RunningStats eps_half, eps_tenth;

    const rnd::Rng base(seed);
    for (std::size_t t = 0; t < trials; ++t) {
      rnd::WorkloadSpec spec;
      spec.n = 40;
      rnd::Rng rng = base.fork(t);
      const core::Problem p = core::Problem::from_workload(
          rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
      const double opt =
          core::make_solver("exhaustive", p)->solve(p, k).total_reward;
      for (const std::string& name : ladder) {
        ratios[name].add(
            core::make_solver(name, p)->solve(p, k).total_reward / opt);
      }
      eps_half.add(core::StochasticGreedySolver(0.5, seed + t)
                       .solve(p, k).total_reward / opt);
      eps_tenth.add(core::StochasticGreedySolver(0.1, seed + t)
                        .solve(p, k).total_reward / opt);
    }

    io::Table table({"solver", "mean ratio", "min", "max"});
    for (const std::string& name : ladder) {
      const auto& s = ratios.at(name);
      table.add_row({name, io::percent(s.mean()), io::percent(s.min()),
                     io::percent(s.max())});
    }
    table.add_row({"greedy2-stoch eps=0.5", io::percent(eps_half.mean()),
                   io::percent(eps_half.min()), io::percent(eps_half.max())});
    table.add_row({"greedy2-stoch eps=0.1", io::percent(eps_tenth.mean()),
                   io::percent(eps_tenth.min()),
                   io::percent(eps_tenth.max())});
    table.print(std::cout);
    std::cout << "\nreading: local search closes most of greedy2's gap to "
                 "the optimum;\nsampling trades a few ratio points for far "
                 "fewer evaluations.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_refinement: " << e.what() << "\n";
    return 1;
  }
}
