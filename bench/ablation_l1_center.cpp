// Ablation: greedy 4's 1-norm recentering rule (DESIGN.md substitution 4).
//
// The paper's Algorithm 4 computes 1-norm "smallest disk" centers by
// per-dimension (min+max)/2 projection — exact for the infinity-norm,
// heuristic for the 1-norm. In 2-D the exact 1-norm center is available via
// the 45-degree rotation. This ablation measures whether the exact rule
// changes greedy 4's achieved reward.
//
//   ./build/bench/ablation_l1_center [--trials T] [--seed S]

#include <iostream>

#include "mmph/core/greedy_complex.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 30));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    std::cout << "ablation: greedy4 L1 center rule, 2-D 1-norm, n=40, k=4 ("
              << trials << " trials)\n\n";

    io::Table table({"r", "paper projection (mean)", "exact 2-D (mean)",
                     "exact wins", "ties", "paper wins"});
    const rnd::Rng base(seed);
    for (double radius : {1.0, 1.5, 2.0}) {
      io::RunningStats paper_stats, exact_stats;
      int exact_wins = 0, ties = 0, paper_wins = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        rnd::WorkloadSpec spec;
        spec.n = 40;
        rnd::Rng rng = base.fork(t + static_cast<std::size_t>(radius * 100));
        const core::Problem p = core::Problem::from_workload(
            rnd::generate_workload(spec, rng), radius, geo::l1_metric());
        const double paper_reward =
            core::GreedyComplexSolver(geo::L1CenterRule::kPaperProjection)
                .solve(p, 4)
                .total_reward;
        const double exact_reward =
            core::GreedyComplexSolver(geo::L1CenterRule::kExactIfPossible)
                .solve(p, 4)
                .total_reward;
        paper_stats.add(paper_reward);
        exact_stats.add(exact_reward);
        if (exact_reward > paper_reward + 1e-9) {
          ++exact_wins;
        } else if (paper_reward > exact_reward + 1e-9) {
          ++paper_wins;
        } else {
          ++ties;
        }
      }
      table.add_row({io::fixed(radius, 1), io::fixed(paper_stats.mean(), 4),
                     io::fixed(exact_stats.mean(), 4),
                     std::to_string(exact_wins), std::to_string(ties),
                     std::to_string(paper_wins)});
    }
    table.print(std::cout);
    std::cout << "\nreading: a small or zero gap justifies the paper's "
                 "cheaper projection rule;\na consistent exact-rule win "
                 "would flag the approximation as lossy.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_l1_center: " << e.what() << "\n";
    return 1;
  }
}
