// Fig. 6 reproduction: approximation ratios in a 2-D space, 1-norm,
// different (random integer 1..5) weights.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  mmph::bench::FigureConfig config;
  config.title =
      "Fig. 6: 2-D, 1-norm, different weights (random integers 1..5)";
  config.dim = 2;
  config.metric = mmph::geo::l1_metric();
  config.weights = mmph::rnd::WeightScheme::kUniformInt;
  return mmph::bench::run_figure(config, argc, argv);
}
