// Fig. 2 reproduction: the analytic approximation-ratio curves.
//
// approx.1 = 1 - (1 - 1/k)^k   (Theorem 1, round-based heuristic)
// approx.2 = 1 - (1 - 1/n)^k   (Theorem 2, local greedy), n in {10, 40}
//
//   ./build/bench/fig2_bounds [--maxk K] [--csv]

#include <iostream>

#include "mmph/core/bounds.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t max_k =
        static_cast<std::size_t>(args.get_int("maxk", 10));
    const bool as_csv = args.get_flag("csv");
    args.finish();

    std::cout << "Fig. 2: approx.1 vs approx.2 in 10-node and 40-node "
                 "environments\n\n";
    io::Table table(
        {"k", "approx.1", "approx.2 (n=10)", "approx.2 (n=40)"});
    for (std::size_t k = 1; k <= max_k; ++k) {
      table.add_row({std::to_string(k),
                     io::fixed(core::approx_ratio_round_based(k), 4),
                     io::fixed(core::approx_ratio_local_greedy(10, k), 4),
                     io::fixed(core::approx_ratio_local_greedy(40, k), 4)});
    }
    if (as_csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << "\nshape check: approx.1 decreases toward 1-1/e ~ "
                << io::fixed(core::one_minus_inv_e(), 4)
                << "; approx.2 grows with k and is far below approx.1 "
                   "(the paper's Fig. 2).\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fig2_bounds: " << e.what() << "\n";
    return 1;
  }
}
