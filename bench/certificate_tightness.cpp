// Certified approximation ratios against the *continuous* optimum.
//
// The paper's ratios (and our figure reproductions) divide by a
// finite-candidate optimum; this bench reports, for the same paper
// configurations, each solver's rigorously certified lower bound on its
// ratio vs the true continuous Eq. (6) optimum (Lipschitz + covering-
// radius argument, core/certificate.hpp), at several certificate grid
// pitches. The gap between the grid-relative ratio and the certificate is
// the price of honesty about the continuous domain.
//
//   ./build/bench/certificate_tightness [--trials T] [--seed S]

#include <iostream>

#include "mmph/core/certificate.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 10));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    std::cout << "certified ratios vs the continuous optimum "
                 "(n=40, 2-D 2-norm, k=4, r=1, " << trials << " trials)\n\n";

    const std::vector<std::string> solvers{"greedy2", "greedy3", "greedy4"};
    io::Table table({"solver", "vs grid exhaustive (pitch .5)",
                     "certified (pitch .5)", "certified (pitch .1)",
                     "certified (pitch .05)"});

    std::map<std::string, io::RunningStats> grid_ratio, cert_half, cert_ten,
        cert_twenty;
    const rnd::Rng base(seed);
    for (std::size_t t = 0; t < trials; ++t) {
      rnd::WorkloadSpec spec;
      spec.n = 40;
      rnd::Rng rng = base.fork(t);
      const core::Problem p = core::Problem::from_workload(
          rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
      const double grid_opt =
          core::make_solver("exhaustive", p)->solve(p, 4).total_reward;
      for (const std::string& name : solvers) {
        const core::Solution s =
            core::make_solver(name, p)->solve(p, 4);
        grid_ratio[name].add(s.total_reward / grid_opt);
        cert_half[name].add(core::certify_ratio(p, s, 0.5).certified_ratio);
        cert_ten[name].add(core::certify_ratio(p, s, 0.1).certified_ratio);
        cert_twenty[name].add(
            core::certify_ratio(p, s, 0.05).certified_ratio);
      }
    }
    for (const std::string& name : solvers) {
      table.add_row({name, io::percent(grid_ratio.at(name).mean()),
                     io::percent(cert_half.at(name).mean()),
                     io::percent(cert_ten.at(name).mean()),
                     io::percent(cert_twenty.at(name).mean())});
    }
    table.print(std::cout);
    std::cout << "\nreading: the certificate pays k*(L*rho + grid slack); "
                 "it tightens steadily\nas the pitch shrinks and already "
                 "proves nontrivial continuous-domain ratios\n— a statement "
                 "the paper's finite 'exhaustive' denominators cannot "
                 "make.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "certificate_tightness: " << e.what() << "\n";
    return 1;
  }
}
