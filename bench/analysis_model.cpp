// Analysis-model verification: the closed-form expected single-center
// reward (core/analysis.hpp) against Monte Carlo measurement, across
// dimensions, norms and radii — the capacity-planning math the paper's
// parameter choices imply. Also prints each configuration's empirical
// curvature and the corresponding greedy guarantee.
//
//   ./build/bench/analysis_model [--trials T] [--seed S]

#include <iostream>

#include "mmph/core/analysis.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 20));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    std::cout << "expected-reward model vs Monte Carlo (interior probe "
                 "centers, box side 12, n=500, " << trials << " trials)\n\n";

    io::Table table({"dim", "norm", "r", "predicted E[g]", "measured E[g]",
                     "error"});
    const rnd::Rng base(seed);
    struct Config {
      std::size_t dim;
      geo::Metric metric;
      double radius;
    };
    const std::vector<Config> configs{
        {2, geo::l2_metric(), 1.0}, {2, geo::l2_metric(), 2.0},
        {2, geo::l1_metric(), 1.5}, {3, geo::l2_metric(), 1.5},
        {3, geo::l1_metric(), 2.0}, {2, geo::linf_metric(), 1.0},
    };
    const double box = 12.0;
    const std::size_t n = 500;
    for (const Config& cfg : configs) {
      const double predicted = core::expected_single_center_reward(
          n, cfg.dim, cfg.metric, cfg.radius, box, 1.0);
      io::RunningStats measured;
      for (std::size_t t = 0; t < trials; ++t) {
        rnd::WorkloadSpec spec;
        spec.n = n;
        spec.dim = cfg.dim;
        spec.box_side = box;
        spec.weights = rnd::WeightScheme::kSame;
        rnd::Rng rng = base.fork(t + 100 * cfg.dim);
        const core::Problem p = core::Problem::from_workload(
            rnd::generate_workload(spec, rng), cfg.radius, cfg.metric);
        const auto y = core::fresh_residual(p);
        // Interior probe (away from the boundary by at least r).
        std::vector<double> c(cfg.dim);
        for (auto& v : c) v = rng.uniform(3.0, 9.0);
        measured.add(core::coverage_reward(p, c, y));
      }
      table.add_row(
          {std::to_string(cfg.dim), cfg.metric.name(),
           io::fixed(cfg.radius, 1), io::fixed(predicted, 3),
           io::fixed(measured.mean(), 3),
           io::percent(std::fabs(measured.mean() - predicted) /
                       predicted)});
    }
    table.print(std::cout);

    std::cout << "\nempirical curvature of the paper's headline instance "
                 "(n=40, 4x4, r=1, L2):\n";
    rnd::WorkloadSpec spec;
    rnd::Rng rng(seed);
    const core::Problem headline = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const double c = core::curvature_estimate(headline);
    std::cout << "  curvature c = " << io::fixed(c, 4)
              << "  -> curvature-aware greedy guarantee (1-e^-c)/c = "
              << io::percent(core::curvature_guarantee(c)) << "\n"
              << "  (vs the curvature-free 1-1/e = "
              << io::percent(1.0 - std::exp(-1.0))
              << "; measured greedy2 ratios sit far above both)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "analysis_model: " << e.what() << "\n";
    return 1;
  }
}
