// Fig. 4 reproduction: approximation ratios in a 2-D space, 2-norm,
// *different* (random integer 1..5) weights; n in {10, 40}, k in {2, 4},
// r in {1, 1.5, 2}. Ratios are against the grid+points exhaustive optimum.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  mmph::bench::FigureConfig config;
  config.title =
      "Fig. 4: 2-D, 2-norm, different weights (random integers 1..5)";
  config.dim = 2;
  config.metric = mmph::geo::l2_metric();
  config.weights = mmph::rnd::WeightScheme::kUniformInt;
  return mmph::bench::run_figure(config, argc, argv);
}
