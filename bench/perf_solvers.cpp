// Performance benchmarks verifying the paper's complexity claims
// (Theorems 3 and 4 and the O(kn^2) analysis of Algorithm 2):
//   greedy3 ~ O(kn), greedy2 ~ O(kn^2), greedy4 ~ O(kn^3).
// The *Complexity counters let google-benchmark report the fitted exponent
// (BigO) over the n sweep at fixed k.

#include <benchmark/benchmark.h>

#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;

core::Problem make_instance(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      geo::l2_metric());
}

void BM_Greedy3_ScaleN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 1);
  const core::GreedySimpleSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 4).total_reward);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Greedy3_ScaleN)->RangeMultiplier(2)->Range(64, 1024)
    ->Complexity(benchmark::oN);

void BM_Greedy2_ScaleN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 2);
  const core::GreedyLocalSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 4).total_reward);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Greedy2_ScaleN)->RangeMultiplier(2)->Range(64, 512)
    ->Complexity(benchmark::oNSquared);

void BM_Greedy4_ScaleN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 3);
  const core::GreedyComplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 4).total_reward);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Greedy4_ScaleN)->RangeMultiplier(2)->Range(16, 128)
    ->Complexity();

void BM_Greedy1_ScaleGrid(benchmark::State& state) {
  // Round-based oracle cost is linear in the candidate count; sweep the
  // pitch so the grid grows quadratically.
  const double pitch = 4.0 / static_cast<double>(state.range(0));
  const core::Problem p = make_instance(64, 4);
  const core::RoundBasedSolver solver =
      core::RoundBasedSolver::over_grid(p, pitch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 4).total_reward);
  }
  state.counters["candidates"] =
      static_cast<double>(solver.candidates().size());
}
BENCHMARK(BM_Greedy1_ScaleGrid)->RangeMultiplier(2)->Range(4, 64);

void BM_Greedy2_ScaleK(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(256, 5);
  const core::GreedyLocalSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, k).total_reward);
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_Greedy2_ScaleK)->RangeMultiplier(2)->Range(1, 16)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
