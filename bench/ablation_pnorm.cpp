// Ablation: interest-distance norm sensitivity.
//
// The paper evaluates only the 1-norm and 2-norm; the library supports any
// p >= 1. This ablation fixes the instances and sweeps p, reporting each
// greedy's achieved reward — quantifying how much the modeling choice of
// "interest distance" moves the outcome (the p-norm ball grows with p, so
// rewards rise; the interesting question is whether the *ranking* of
// algorithms is metric-stable).
//
//   ./build/bench/ablation_pnorm [--trials T] [--seed S] [--k K]

#include <iostream>

#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 20));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 4));
    args.finish();

    std::cout << "ablation: p-norm sweep, n=40, 2-D, k=" << k << ", r=1 ("
              << trials << " trials; same workloads for every p)\n\n";

    // Draw the instance bundle once (coordinates + weights), re-wrapped
    // with each metric.
    std::vector<rnd::Workload> bundle;
    const rnd::Rng base(seed);
    for (std::size_t t = 0; t < trials; ++t) {
      rnd::WorkloadSpec spec;
      spec.n = 40;
      rnd::Rng rng = base.fork(t);
      bundle.push_back(rnd::generate_workload(spec, rng));
    }

    io::Table table({"metric", "greedy2 (mean)", "greedy3 (mean)",
                     "greedy4 (mean)", "g4/g2"});
    const std::vector<geo::Metric> metrics{
        geo::l1_metric(),    geo::Metric(1.5), geo::l2_metric(),
        geo::Metric(3.0),    geo::Metric(8.0), geo::linf_metric()};
    for (const geo::Metric& metric : metrics) {
      io::RunningStats s2, s3, s4;
      for (const rnd::Workload& wl : bundle) {
        const core::Problem p(geo::PointSet(wl.points),
                              std::vector<double>(wl.weights), 1.0, metric);
        s2.add(core::GreedyLocalSolver().solve(p, k).total_reward);
        s3.add(core::GreedySimpleSolver().solve(p, k).total_reward);
        s4.add(core::GreedyComplexSolver().solve(p, k).total_reward);
      }
      table.add_row({metric.name(), io::fixed(s2.mean(), 3),
                     io::fixed(s3.mean(), 3), io::fixed(s4.mean(), 3),
                     io::percent(s4.mean() / s2.mean())});
    }
    table.print(std::cout);
    std::cout << "\nreading: rewards grow with p (bigger balls at equal r); "
                 "the algorithm ranking\n(greedy4 >= greedy2 > greedy3) is "
                 "stable across every norm.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_pnorm: " << e.what() << "\n";
    return 1;
  }
}
