// Scalar vs. blocked vs. blocked+active-set vs. parallel-init evaluation
// cost for the coverage reward (the inner loop of every greedy solver).
//
// Unlike the google-benchmark perf_* binaries this is a plain timed repro:
// it emits a machine-readable BENCH_kernels.json (n, variant, ns/eval,
// speedup vs. scalar) so CI and the tutorial can diff numbers across
// machines, and it self-checks blocked-vs-scalar agreement before timing
// so a kernel regression fails the run instead of producing fast garbage.
//
//   ./perf_kernels --n 1000,10000,100000 --out BENCH_kernels.json
//
// Scenario per n: clustered 2-D L2 workload (the paper's hardest-covered
// placement), radius 1.0, linear reward; the residual is taken mid-solve
// (after k lazy-greedy rounds) so the active-set variant sees the partial
// exhaustion it is designed to exploit.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "mmph/core/kernels.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/io/args.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

struct Row {
  std::size_t n;
  std::string variant;
  double ns_per_eval;
  double speedup;  // vs. the scalar baseline at the same n
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Times \p body (one pass = \p evals evaluations) until ~0.2 s elapsed;
/// returns ns per evaluation. \p body returns a checksum kept live so the
/// compiler cannot delete the loop.
template <typename Body>
double time_ns_per_eval(std::size_t evals, Body&& body) {
  double sink = 0.0;
  // Warm-up pass (faults pages, warms caches).
  sink += body();
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.2 && passes < 1000) {
    sink += body();
    ++passes;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  if (sink == -1.0) std::printf("unreachable\n");  // keep `sink` live
  return elapsed * 1e9 / (static_cast<double>(passes) *
                          static_cast<double>(evals));
}

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const std::string n_csv = args.get_string("n", "1000,10000,100000");
  const std::string out_path = args.get_string("out", "BENCH_kernels.json");
  const std::size_t candidates_cap =
      static_cast<std::size_t>(args.get_int("candidates", 512));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  args.finish();

  std::vector<Row> rows;
  for (const std::size_t n : parse_sizes(n_csv)) {
    rnd::WorkloadSpec spec;
    spec.n = n;
    spec.dim = 2;
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = 8;
    rnd::Rng rng(seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), /*radius=*/1.0, geo::l2_metric());

    // Mid-solve residual: what the evaluation loop actually sees after the
    // first k rounds have claimed the dense clusters.
    const std::vector<double> y_mid =
        core::LazyGreedySolver().solve(problem, std::min(k, n)).residual;

    // Candidate centers: an even stride through the population.
    const std::size_t cand = std::min(candidates_cap, n);
    std::vector<std::size_t> cand_idx(cand);
    for (std::size_t c = 0; c < cand; ++c) cand_idx[c] = c * (n / cand);

    // Self-check before timing: the blocked kernel must agree with the
    // per-point reference path on this exact workload.
    for (std::size_t c = 0; c < std::min<std::size_t>(cand, 32); ++c) {
      const geo::ConstVec center = problem.point(cand_idx[c]);
      double ref;
      {
        core::kernels::ScopedBlockedKernels off(false);
        ref = core::coverage_reward(problem, center, y_mid);
      }
      const double got =
          core::kernels::block_coverage_reward(problem, center, y_mid);
      if (std::fabs(got - ref) > 1e-9 * (1.0 + std::fabs(ref))) {
        std::fprintf(stderr,
                     "FAIL: blocked kernel disagrees with scalar at n=%zu "
                     "candidate=%zu (blocked=%.17g scalar=%.17g)\n",
                     n, c, got, ref);
        return 1;
      }
    }

    const double scalar_ns = time_ns_per_eval(cand, [&] {
      core::kernels::ScopedBlockedKernels off(false);
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += core::coverage_reward(problem, problem.point(i), y_mid);
      }
      return acc;
    });
    rows.push_back({n, "scalar", scalar_ns, 1.0});

    const double blocked_ns = time_ns_per_eval(cand, [&] {
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += core::kernels::block_coverage_reward(problem,
                                                    problem.point(i), y_mid);
      }
      return acc;
    });
    rows.push_back({n, "blocked", blocked_ns, scalar_ns / blocked_ns});

    const core::kernels::ActiveSet active(problem, y_mid);
    const double active_ns = time_ns_per_eval(cand, [&] {
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += active.coverage_reward(problem.point(i));
      }
      return acc;
    });
    rows.push_back({n, "blocked+active", active_ns, scalar_ns / active_ns});

    // First-round scan: serial vs. sharded across the global pool (the
    // LazyGreedySolver(pool) init path). Same blocked+active evaluation
    // per candidate, so the delta is pure scheduling.
    const core::kernels::ParallelEvaluator serial(nullptr);
    const core::kernels::ParallelEvaluator parallel(&par::ThreadPool::global());
    const auto scan = [&](const core::kernels::ParallelEvaluator& ev) {
      const std::vector<double> gains = ev.map(
          cand, [&](std::size_t c) {
            return active.coverage_reward(problem.point(cand_idx[c]));
          });
      double acc = 0.0;
      for (const double g : gains) acc += g;
      return acc;
    };
    const double serial_scan_ns = time_ns_per_eval(cand, [&] { return scan(serial); });
    const double par_scan_ns = time_ns_per_eval(cand, [&] { return scan(parallel); });
    rows.push_back({n, "parallel-init", par_scan_ns,
                    serial_scan_ns / par_scan_ns});

    std::printf("n=%-8zu scalar %9.1f ns/eval | blocked %9.1f (%4.2fx) | "
                "+active %9.1f (%4.2fx) | parallel-init %9.1f (%4.2fx)\n",
                n, scalar_ns, blocked_ns, scalar_ns / blocked_ns, active_ns,
                scalar_ns / active_ns, par_scan_ns,
                serial_scan_ns / par_scan_ns);
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"kernels\",\n  \"scenario\": "
         "\"clustered 2-D L2, radius 1.0, linear reward, mid-solve residual\","
         "\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"n\": " << r.n << ", \"variant\": \"" << r.variant
        << "\", \"ns_per_eval\": " << r.ns_per_eval
        << ", \"speedup\": " << r.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_kernels: %s\n", e.what());
  return 1;
}
