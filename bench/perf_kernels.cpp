// Scalar vs. blocked vs. blocked+active-set vs. parallel-init evaluation
// cost for the coverage reward (the inner loop of every greedy solver).
//
// Unlike the google-benchmark perf_* binaries this is a plain timed repro:
// it emits a machine-readable BENCH_kernels.json (n, variant, ns/eval,
// speedup vs. scalar) so CI and the tutorial can diff numbers across
// machines, and it self-checks blocked-vs-scalar agreement before timing
// so a kernel regression fails the run instead of producing fast garbage.
//
//   ./perf_kernels --n 1000,10000,100000 --out BENCH_kernels.json
//
// Scenario per n: clustered 2-D L2 workload (the paper's hardest-covered
// placement), radius 1.0, linear reward; the residual is taken mid-solve
// (after k lazy-greedy rounds) so the active-set variant sees the partial
// exhaustion it is designed to exploit.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/io/args.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/spatial/spatial_index.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

struct Row {
  std::size_t n;
  std::string variant;
  double ns_per_eval;
  double speedup;  // vs. the scalar baseline at the same n
};

/// One constant-density point of the indexed-vs-blocked sweep.
struct SpatialRow {
  std::size_t n;
  double box_side;
  double build_seconds;            // grid construction over n points
  double blocked_ns;               // O(n) full-scan eval, ns per eval
  double indexed_ns;               // O(points-in-ball) eval, ns per eval
  double touched_per_eval;         // mean points the index returned per eval
  double lazy_indexed_seconds;     // lazy greedy k end to end, grid on
  double lazy_blocked_seconds;     // measured only when affordable, else -1
  double lazy_blocked_projected;   // first-round-scan projection: n evals
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Times \p body (one pass = \p evals evaluations) until ~0.2 s elapsed;
/// returns ns per evaluation. \p body returns a checksum kept live so the
/// compiler cannot delete the loop.
template <typename Body>
double time_ns_per_eval(std::size_t evals, Body&& body) {
  double sink = 0.0;
  // Warm-up pass (faults pages, warms caches).
  sink += body();
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.2 && passes < 1000) {
    sink += body();
    ++passes;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  if (sink == -1.0) std::printf("unreachable\n");  // keep `sink` live
  return elapsed * 1e9 / (static_cast<double>(passes) *
                          static_cast<double>(evals));
}

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const std::string n_csv = args.get_string("n", "1000,10000,100000");
  // Constant-density sweep sizes for the spatial coverage index
  // (box_side grows with sqrt(n), so points-per-ball stays fixed while n
  // explodes). "0" skips the sweep.
  const std::string spatial_csv = args.get_string("spatial-n", "20000");
  const std::string out_path = args.get_string("out", "BENCH_kernels.json");
  const std::size_t candidates_cap =
      static_cast<std::size_t>(args.get_int("candidates", 512));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  args.finish();

  std::vector<Row> rows;
  for (const std::size_t n : parse_sizes(n_csv)) {
    rnd::WorkloadSpec spec;
    spec.n = n;
    spec.dim = 2;
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = 8;
    rnd::Rng rng(seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), /*radius=*/1.0, geo::l2_metric());

    // Mid-solve residual: what the evaluation loop actually sees after the
    // first k rounds have claimed the dense clusters.
    const std::vector<double> y_mid =
        core::LazyGreedySolver().solve(problem, std::min(k, n)).residual;

    // Candidate centers: an even stride through the population.
    const std::size_t cand = std::min(candidates_cap, n);
    std::vector<std::size_t> cand_idx(cand);
    for (std::size_t c = 0; c < cand; ++c) cand_idx[c] = c * (n / cand);

    // Self-check before timing: the blocked kernel must agree with the
    // per-point reference path on this exact workload.
    for (std::size_t c = 0; c < std::min<std::size_t>(cand, 32); ++c) {
      const geo::ConstVec center = problem.point(cand_idx[c]);
      double ref;
      {
        core::kernels::ScopedBlockedKernels off(false);
        ref = core::coverage_reward(problem, center, y_mid);
      }
      const double got =
          core::kernels::block_coverage_reward(problem, center, y_mid);
      if (std::fabs(got - ref) > 1e-9 * (1.0 + std::fabs(ref))) {
        std::fprintf(stderr,
                     "FAIL: blocked kernel disagrees with scalar at n=%zu "
                     "candidate=%zu (blocked=%.17g scalar=%.17g)\n",
                     n, c, got, ref);
        return 1;
      }
    }

    const double scalar_ns = time_ns_per_eval(cand, [&] {
      core::kernels::ScopedBlockedKernels off(false);
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += core::coverage_reward(problem, problem.point(i), y_mid);
      }
      return acc;
    });
    rows.push_back({n, "scalar", scalar_ns, 1.0});

    const double blocked_ns = time_ns_per_eval(cand, [&] {
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += core::kernels::block_coverage_reward(problem,
                                                    problem.point(i), y_mid);
      }
      return acc;
    });
    rows.push_back({n, "blocked", blocked_ns, scalar_ns / blocked_ns});

    const core::kernels::ActiveSet active(problem, y_mid);
    const double active_ns = time_ns_per_eval(cand, [&] {
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += active.coverage_reward(problem.point(i));
      }
      return acc;
    });
    rows.push_back({n, "blocked+active", active_ns, scalar_ns / active_ns});

    // First-round scan: serial vs. sharded across the global pool (the
    // LazyGreedySolver(pool) init path). Same blocked+active evaluation
    // per candidate, so the delta is pure scheduling.
    const core::kernels::ParallelEvaluator serial(nullptr);
    const core::kernels::ParallelEvaluator parallel(&par::ThreadPool::global());
    const auto scan = [&](const core::kernels::ParallelEvaluator& ev) {
      const std::vector<double> gains = ev.map(
          cand, [&](std::size_t c) {
            return active.coverage_reward(problem.point(cand_idx[c]));
          });
      double acc = 0.0;
      for (const double g : gains) acc += g;
      return acc;
    };
    const double serial_scan_ns = time_ns_per_eval(cand, [&] { return scan(serial); });
    const double par_scan_ns = time_ns_per_eval(cand, [&] { return scan(parallel); });
    rows.push_back({n, "parallel-init", par_scan_ns,
                    serial_scan_ns / par_scan_ns});

    std::printf("n=%-8zu scalar %9.1f ns/eval | blocked %9.1f (%4.2fx) | "
                "+active %9.1f (%4.2fx) | parallel-init %9.1f (%4.2fx)\n",
                n, scalar_ns, blocked_ns, scalar_ns / blocked_ns, active_ns,
                scalar_ns / active_ns, par_scan_ns,
                serial_scan_ns / par_scan_ns);
  }

  // --- spatial coverage-index sweep: solve cost vs density, not n ---------
  //
  // Uniform 2-D L2 box scaled so density is constant (~10 points per unit
  // area => ~31 points per radius-1 ball at every n). The blocked path
  // pays O(n) per evaluation; the grid path pays O(points-in-ball). The
  // indexed evaluator is self-checked bitwise against the blocked kernel
  // before anything is timed. Blocked end-to-end lazy greedy is measured
  // only while affordable (n <= 100k: it is already ~n^2); above that the
  // first-round scan alone (n evals at the measured blocked rate) is
  // reported as a lower-bound projection.
  std::vector<SpatialRow> spatial_rows;
  for (const std::size_t n : parse_sizes(spatial_csv)) {
    if (n == 0) continue;
    rnd::WorkloadSpec spec;
    spec.n = n;
    spec.dim = 2;
    spec.box_side = std::sqrt(static_cast<double>(n) / 10.0);
    rnd::Rng rng(seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), /*radius=*/1.0, geo::l2_metric());

    const core::kernels::ScopedIndexMode grid_on(
        core::kernels::IndexMode::kGrid);

    const auto build_start = Clock::now();
    const auto indexed = core::kernels::IndexedActiveSet::try_make(problem);
    const double build_seconds =
        std::chrono::duration<double>(Clock::now() - build_start).count();
    if (!indexed) {
      std::fprintf(stderr, "FAIL: spatial index refused n=%zu\n", n);
      return 1;
    }

    const std::vector<double> ones(n, 1.0);
    const core::kernels::ActiveSet active(problem, ones);

    const std::size_t cand = std::min<std::size_t>(n <= 1000000 ? 256 : 64, n);
    std::vector<std::size_t> cand_idx(cand);
    for (std::size_t c = 0; c < cand; ++c) cand_idx[c] = c * (n / cand);

    // Bitwise self-check: the indexed evaluation is an acceleration of the
    // blocked one, not an approximation — exact equality or fail.
    for (std::size_t c = 0; c < std::min<std::size_t>(cand, 32); ++c) {
      const geo::ConstVec center = problem.point(cand_idx[c]);
      const double got = indexed->coverage_reward(center);
      const double ref = active.coverage_reward(center);
      if (got != ref) {
        std::fprintf(stderr,
                     "FAIL: indexed eval diverges from blocked at n=%zu "
                     "candidate=%zu (indexed=%.17g blocked=%.17g)\n",
                     n, c, got, ref);
        return 1;
      }
    }

    const double blocked_ns = time_ns_per_eval(cand, [&] {
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += active.coverage_reward(problem.point(i));
      }
      return acc;
    });

    const spatial::IndexStats stats_before = indexed->index().stats();
    const double indexed_ns = time_ns_per_eval(cand, [&] {
      double acc = 0.0;
      for (const std::size_t i : cand_idx) {
        acc += indexed->coverage_reward(problem.point(i));
      }
      return acc;
    });
    const spatial::IndexStats stats_after = indexed->index().stats();
    const double touched_per_eval =
        static_cast<double>(stats_after.points_touched -
                            stats_before.points_touched) /
        static_cast<double>(stats_after.queries - stats_before.queries);

    const std::size_t kk = std::min(k, n);
    const auto lazy_start = Clock::now();
    const core::Solution lazy_indexed =
        core::LazyGreedySolver().solve(problem, kk);
    const double lazy_indexed_seconds =
        std::chrono::duration<double>(Clock::now() - lazy_start).count();

    double lazy_blocked_seconds = -1.0;
    if (n <= 100000) {
      const core::kernels::ScopedIndexMode off(core::kernels::IndexMode::kNone);
      const auto blocked_start = Clock::now();
      const core::Solution lazy_blocked =
          core::LazyGreedySolver().solve(problem, kk);
      lazy_blocked_seconds =
          std::chrono::duration<double>(Clock::now() - blocked_start).count();
      if (lazy_blocked.total_reward != lazy_indexed.total_reward) {
        std::fprintf(stderr,
                     "FAIL: indexed lazy greedy diverges at n=%zu "
                     "(indexed=%.17g blocked=%.17g)\n",
                     n, lazy_indexed.total_reward, lazy_blocked.total_reward);
        return 1;
      }
    }
    const double lazy_blocked_projected =
        blocked_ns * static_cast<double>(n) / 1e9;

    spatial_rows.push_back({n, spec.box_side, build_seconds, blocked_ns,
                            indexed_ns, touched_per_eval, lazy_indexed_seconds,
                            lazy_blocked_seconds, lazy_blocked_projected});
    std::printf(
        "spatial n=%-9zu box=%7.1f build %6.2fs | blocked %10.1f ns/eval | "
        "indexed %8.1f ns/eval (%6.1fx, %4.1f pts) | lazy k=%zu grid %7.2fs "
        "blocked %s\n",
        n, spec.box_side, build_seconds, blocked_ns, indexed_ns,
        blocked_ns / indexed_ns, touched_per_eval, kk, lazy_indexed_seconds,
        lazy_blocked_seconds >= 0.0
            ? (std::to_string(lazy_blocked_seconds) + "s").c_str()
            : (">= " + std::to_string(lazy_blocked_projected) +
               "s (projected scan)")
                  .c_str());
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"kernels\",\n  \"scenario\": "
         "\"clustered 2-D L2, radius 1.0, linear reward, mid-solve residual\","
         "\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"n\": " << r.n << ", \"variant\": \"" << r.variant
        << "\", \"ns_per_eval\": " << r.ns_per_eval
        << ", \"speedup\": " << r.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"spatial_scenario\": \"uniform 2-D L2, radius 1.0, constant "
         "density ~10 points per unit area (box_side = sqrt(n/10)), fresh "
         "residual; lazy greedy k=16 end to end; blocked end-to-end "
         "measured only for n <= 100k, projected above (first-round scan "
         "= n evals at the measured blocked rate, a lower bound)\",\n";
  out << "  \"spatial\": [\n";
  for (std::size_t i = 0; i < spatial_rows.size(); ++i) {
    const SpatialRow& s = spatial_rows[i];
    out << "    {\"n\": " << s.n << ", \"box_side\": " << s.box_side
        << ", \"grid_build_seconds\": " << s.build_seconds
        << ", \"blocked_ns_per_eval\": " << s.blocked_ns
        << ", \"indexed_ns_per_eval\": " << s.indexed_ns
        << ", \"eval_speedup\": " << s.blocked_ns / s.indexed_ns
        << ", \"points_touched_per_eval\": " << s.touched_per_eval
        << ", \"lazy_indexed_seconds\": " << s.lazy_indexed_seconds
        << ", \"lazy_blocked_seconds\": ";
    if (s.lazy_blocked_seconds >= 0.0) {
      out << s.lazy_blocked_seconds;
    } else {
      out << "null";
    }
    out << ", \"lazy_blocked_projected_seconds\": " << s.lazy_blocked_projected
        << "}" << (i + 1 < spatial_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_kernels: %s\n", e.what());
  return 1;
}
