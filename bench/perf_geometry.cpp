// Performance benchmarks for the geometry substrate: distance kernels and
// the smallest-enclosing-ball solvers (Welzl's expected-linear claim).

#include <benchmark/benchmark.h>

#include "mmph/geometry/enclosing.hpp"
#include "mmph/random/rng.hpp"

namespace {

using namespace mmph;

geo::PointSet random_points(std::size_t n, std::size_t dim,
                            std::uint64_t seed) {
  rnd::Rng rng(seed);
  geo::PointSet ps(dim);
  ps.reserve(n);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = rng.uniform(0.0, 4.0);
    ps.push_back(p);
  }
  return ps;
}

void BM_L2Distance(benchmark::State& state) {
  const geo::PointSet ps = random_points(2, 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::l2_distance(ps[0], ps[1]));
  }
}
BENCHMARK(BM_L2Distance);

void BM_L1Distance(benchmark::State& state) {
  const geo::PointSet ps = random_points(2, 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::l1_distance(ps[0], ps[1]));
  }
}
BENCHMARK(BM_L1Distance);

void BM_LpDistance(benchmark::State& state) {
  const geo::PointSet ps = random_points(2, 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::lp_distance(ps[0], ps[1], 3.0));
  }
}
BENCHMARK(BM_LpDistance);

void BM_WelzlBall2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = random_points(n, 2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::smallest_enclosing_ball_l2(ps).radius);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WelzlBall2D)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_WelzlBall3D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = random_points(n, 3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::smallest_enclosing_ball_l2(ps).radius);
  }
}
BENCHMARK(BM_WelzlBall3D)->RangeMultiplier(4)->Range(16, 4096);

void BM_L1Exact2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = random_points(n, 2, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::enclosing_ball_l1_2d(ps).radius);
  }
}
BENCHMARK(BM_L1Exact2D)->RangeMultiplier(4)->Range(16, 4096);

void BM_L1Projection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::PointSet ps = random_points(n, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::enclosing_ball_l1_projection(ps).radius);
  }
}
BENCHMARK(BM_L1Projection)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace

BENCHMARK_MAIN();
