// Socket-layer throughput of the multi-loop epoll front end: an
// in-process NetServer on loopback hammered by N client threads using
// the bounded-pipelining NetClient API (window W frames in flight),
// plus a churn thread so every run also crosses the mutation path.
//
// Two parts:
//   1. A sweep over --sweep-loops x --sweep-store-shards x
//      --sweep-clients (default {1,2,4,8} x {1,4} x {1,4}) on a small
//      warm instance — the scaling story of the per-loop refactor
//      crossed with the region-sharded store.
//   2. A large-instance scenario (--big-users, default 1,000,000) with
//      sustained churn at --big-loops, showing the front end holding a
//      production-sized population (seed + full-solve warm-up timed
//      separately from the steady-state query phase).
//
// Emits BENCH_net.json: box specs, the sweep table, the big scenario,
// per-loop throughput breakdown, and server-side metrics. The process
// exits non-zero if any request failed or a kStats scrape broke, so CI
// can gate on `requests_failed: 0`.
//
//   ./perf_net --seconds 2 --pipeline 32 --big-users 1000000 --out BENCH_net.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/net/client.hpp"
#include "mmph/net/server.hpp"
#include "mmph/random/rng.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

serve::UserRecord fresh_user(std::uint64_t id, rnd::Rng& rng) {
  serve::UserRecord rec;
  rec.id = id;
  rec.weight = static_cast<double>(rng.uniform_int(1, 5));
  rec.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
  return rec;
}

struct WorkerResult {
  std::uint64_t ok = 0;
  std::uint64_t bad = 0;
  std::vector<double> latency_seconds;
};

struct Scenario {
  std::size_t loops = 1;
  std::size_t clients = 4;
  std::size_t users = 200;
  std::size_t k = 4;
  std::size_t store_shards = 1;
  std::size_t window = 32;
  double seconds = 2.0;
  std::chrono::milliseconds churn_period{50};
  std::chrono::milliseconds request_deadline{15000};
  std::chrono::milliseconds recv_timeout{30000};
};

struct RunResult {
  Scenario scenario;
  double elapsed = 0.0;
  double rps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t bad = 0;
  std::uint64_t mutations = 0;
  double seed_seconds = 0.0;
  double warm_solve_seconds = 0.0;
  bool stats_scrape_ok = false;
  const char* accept = "?";
  net::NetMetricsSnapshot server;
  std::vector<net::NetLoopSnapshot> per_loop;
};

const char* accept_name(net::AcceptMode mode) {
  switch (mode) {
    case net::AcceptMode::kReusePort: return "reuseport";
    case net::AcceptMode::kHandoff: return "handoff";
    default: return "auto";
  }
}

/// Pipelined query worker: keeps `window` query_placement frames in
/// flight, draining the oldest reply before sending the next, and
/// drains the tail after stop so every sent request is accounted for.
void query_worker(const net::NetClientConfig& client_config,
                  std::size_t window, const std::atomic<bool>& stop,
                  WorkerResult& r) {
  try {
    net::NetClient client(client_config);
    std::deque<Clock::time_point> sent;
    const auto pump_one = [&] {
      const net::ResponseFrame reply = client.drain_one();
      const double rtt =
          std::chrono::duration<double>(Clock::now() - sent.front()).count();
      sent.pop_front();
      if (reply.status == net::WireStatus::kOk) {
        ++r.ok;
        r.latency_seconds.push_back(rtt);
      } else {
        ++r.bad;
      }
    };
    while (!stop.load(std::memory_order_relaxed)) {
      while (client.inflight() < window &&
             !stop.load(std::memory_order_relaxed)) {
        sent.push_back(Clock::now());
        (void)client.pipeline_query_placement();
      }
      if (client.inflight() > 0) pump_one();
    }
    while (client.inflight() > 0) pump_one();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_net: worker error: %s\n", e.what());
    ++r.bad;
  }
}

/// One full scenario: start a server at `loops`, seed the population,
/// warm the placement, run pipelined query workers + a churn thread
/// for `seconds`, scrape kStats, and snapshot per-loop counters.
RunResult run_scenario(const Scenario& sc) {
  RunResult out;
  out.scenario = sc;

  serve::ServiceConfig service_config;
  service_config.k = sc.k;
  service_config.store_shards = sc.store_shards;
  service_config.queue_capacity =
      std::max<std::size_t>(1024, sc.clients * sc.window * 4 + 64);
  net::NetServerConfig net_config;
  net_config.loops = sc.loops;
  net_config.max_connections = sc.clients + 4;
  net_config.poll_interval = std::chrono::milliseconds(1);
  net_config.request_deadline = sc.request_deadline;
  net::NetServer server(service_config, net_config);
  server.start();
  out.accept = accept_name(server.accept_mode());

  net::NetClientConfig client_config;
  client_config.port = server.port();
  client_config.recv_timeout = sc.recv_timeout;
  client_config.pipeline_window = sc.window;

  // Seed the population (chunked so a million-user instance does not
  // need a single giant frame) and warm the placement so the measured
  // loop hits the cached-view path. The first query pays the full
  // solve; at --big-users that dominates, so it is timed separately.
  {
    rnd::Rng rng(7);
    net::NetClient seeder(client_config);
    const auto seed_start = Clock::now();
    constexpr std::size_t kChunk = 20000;
    std::vector<serve::UserRecord> chunk;
    for (std::uint64_t id = 0; id < sc.users;) {
      chunk.clear();
      for (std::size_t i = 0; i < kChunk && id < sc.users; ++i) {
        chunk.push_back(fresh_user(id++, rng));
      }
      if (seeder.add_users(chunk).status != net::WireStatus::kOk) {
        std::fprintf(stderr, "perf_net: seeding failed\n");
        out.bad = 1;
        server.stop();
        return out;
      }
    }
    out.seed_seconds =
        std::chrono::duration<double>(Clock::now() - seed_start).count();
    const auto warm_start = Clock::now();
    if (seeder.query_placement().status != net::WireStatus::kOk) {
      std::fprintf(stderr, "perf_net: warm-up solve failed\n");
      out.bad = 1;
      server.stop();
      return out;
    }
    out.warm_solve_seconds =
        std::chrono::duration<double>(Clock::now() - warm_start).count();
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(sc.clients);
  std::vector<std::thread> workers;
  workers.reserve(sc.clients);
  const auto bench_start = Clock::now();
  for (std::size_t w = 0; w < sc.clients; ++w) {
    workers.emplace_back([&, w] {
      query_worker(client_config, sc.window, stop, results[w]);
    });
  }
  // Churn thread: replace one user per period so the measured queries
  // race real epochs and incremental re-solves.
  std::atomic<std::uint64_t> mutations{0};
  std::thread churner([&] {
    try {
      rnd::Rng rng(11);
      net::NetClient client(client_config);
      std::uint64_t next_id = sc.users;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t victim = next_id - sc.users;
        (void)client.remove_users({victim});
        (void)client.add_users({fresh_user(next_id++, rng)});
        mutations.fetch_add(2, std::memory_order_relaxed);
        std::this_thread::sleep_for(sc.churn_period);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "perf_net: churner error: %s\n", e.what());
    }
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(sc.seconds));
  stop.store(true);
  for (std::thread& t : workers) t.join();
  churner.join();
  out.elapsed =
      std::chrono::duration<double>(Clock::now() - bench_start).count();
  out.mutations = mutations.load();

  // Exercise the operator scrape path while the server is still up,
  // checking that the per-loop labeled series made it into the text.
  {
    net::NetClient scraper(client_config);
    const net::ResponseFrame reply = scraper.stats();
    out.stats_scrape_ok =
        reply.status == net::WireStatus::kOk && reply.stats.has_value() &&
        reply.stats->find("mmph_net_requests_total") != std::string::npos &&
        reply.stats->find("mmph_net_loop_requests_total{loop=\"0\"}") !=
            std::string::npos;
    if (!out.stats_scrape_ok) {
      std::fprintf(stderr, "perf_net: kStats scrape failed (%s)\n",
                   net::to_string(reply.status));
    }
  }
  server.stop();

  std::vector<double> latency;
  for (const WorkerResult& r : results) {
    out.ok += r.ok;
    out.bad += r.bad;
    latency.insert(latency.end(), r.latency_seconds.begin(),
                   r.latency_seconds.end());
  }
  out.rps = static_cast<double>(out.ok) / out.elapsed;
  out.p50 = io::percentile(latency, 0.50);
  out.p99 = io::percentile_inplace(latency, 0.99);
  out.server = server.metrics();
  for (std::size_t i = 0; i < sc.loops; ++i) {
    out.per_loop.push_back(server.loop_metrics(i));
  }
  return out;
}

void print_result(const char* tag, const RunResult& r) {
  std::printf(
      "%s loops=%zu shards=%zu clients=%zu users=%zu window=%zu accept=%s: "
      "%llu ok, %llu failed in %.2fs -> %.0f req/s "
      "(p50 %.1f us, p99 %.1f us, %llu churn ops)\n",
      tag, r.scenario.loops, r.scenario.store_shards, r.scenario.clients,
      r.scenario.users, r.scenario.window, r.accept,
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.bad), r.elapsed, r.rps, r.p50 * 1e6,
      r.p99 * 1e6, static_cast<unsigned long long>(r.mutations));
}

void emit_run(std::ostream& out, const RunResult& r, const char* indent) {
  out << indent << "{\"loops\": " << r.scenario.loops
      << ", \"store_shards\": " << r.scenario.store_shards
      << ", \"clients\": " << r.scenario.clients
      << ", \"users\": " << r.scenario.users
      << ", \"pipeline_window\": " << r.scenario.window << ", \"accept\": \""
      << r.accept << "\",\n"
      << indent << " \"seconds\": " << r.elapsed
      << ", \"throughput_req_per_sec\": " << r.rps
      << ", \"requests_ok\": " << r.ok << ", \"requests_failed\": " << r.bad
      << ", \"churn_mutations\": " << r.mutations << ",\n"
      << indent << " \"latency_p50_seconds\": " << r.p50
      << ", \"latency_p99_seconds\": " << r.p99
      << ", \"seed_seconds\": " << r.seed_seconds
      << ", \"warm_solve_seconds\": " << r.warm_solve_seconds
      << ", \"stats_scrape_ok\": " << (r.stats_scrape_ok ? "true" : "false")
      << ",\n"
      << indent << " \"server\": {\"accepted\": " << r.server.accepted
      << ", \"bytes_in\": " << r.server.bytes_in
      << ", \"bytes_out\": " << r.server.bytes_out
      << ", \"frames_in\": " << r.server.frames_in
      << ", \"frames_out\": " << r.server.frames_out
      << ", \"frame_errors\": " << r.server.frame_errors
      << ", \"timeouts\": " << r.server.timeouts
      << ", \"ownership_checks\": " << r.server.ownership_checks
      << ", \"latency_p50_seconds\": " << r.server.latency_p50_seconds
      << ", \"latency_p99_seconds\": " << r.server.latency_p99_seconds
      << "},\n"
      << indent << " \"per_loop\": [";
  for (std::size_t i = 0; i < r.per_loop.size(); ++i) {
    const net::NetLoopSnapshot& l = r.per_loop[i];
    if (i != 0) out << ", ";
    out << "{\"loop\": " << i << ", \"accepted\": " << l.accepted
        << ", \"frames_in\": " << l.frames_in
        << ", \"frames_out\": " << l.frames_out
        << ", \"requests\": " << l.requests
        << ", \"ownership_checks\": " << l.ownership_checks << "}";
  }
  out << "]}";
}

std::vector<std::size_t> parse_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<std::size_t>(std::stoull(item)));
    }
  }
  return out;
}

std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("model name");
    if (pos == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const std::vector<std::size_t> sweep_loops =
      parse_list(args.get_string("sweep-loops", "1,2,4,8"));
  const std::vector<std::size_t> sweep_clients =
      parse_list(args.get_string("sweep-clients", "1,4"));
  const std::vector<std::size_t> sweep_shards =
      parse_list(args.get_string("sweep-store-shards", "1,4"));
  const double seconds = args.get_double("seconds", 2.0);
  const std::size_t users = static_cast<std::size_t>(args.get_int("users", 200));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 4));
  const std::size_t window =
      static_cast<std::size_t>(args.get_int("pipeline", 32));
  const std::size_t big_users =
      static_cast<std::size_t>(args.get_int("big-users", 1000000));
  const std::size_t big_loops =
      static_cast<std::size_t>(args.get_int("big-loops", 4));
  const std::size_t big_clients =
      static_cast<std::size_t>(args.get_int("big-clients", 2));
  // The big run defaults to one store shard: region groups replace the
  // solver's own fine-grained split, and at --big-users a handful of
  // 250k-row groups is a much slower solve on one core — sweep shards
  // on the small instance, keep the large instance comparable across
  // bench history. --big-store-shards opts in on a multi-core box.
  const std::size_t big_shards =
      static_cast<std::size_t>(args.get_int("big-store-shards", 1));
  const double big_seconds = args.get_double("big-seconds", 10.0);
  const double big_churn_ms = args.get_double("big-churn-ms", 3000.0);
  const std::string out_path = args.get_string("out", "BENCH_net.json");
  args.finish();

  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("perf_net: box has %u cpu(s), model %s\n", cpus,
              cpu_model().c_str());

  std::vector<RunResult> sweep;
  for (const std::size_t loops : sweep_loops) {
    for (const std::size_t shards : sweep_shards) {
      for (const std::size_t clients : sweep_clients) {
        Scenario sc;
        sc.loops = loops;
        sc.clients = clients;
        sc.users = users;
        sc.k = k;
        sc.store_shards = shards;
        sc.window = window;
        sc.seconds = seconds;
        sweep.push_back(run_scenario(sc));
        print_result("sweep", sweep.back());
      }
    }
  }

  // Large-instance scenario: a production-sized population under slow
  // sustained churn. Each mutation forces an incremental re-solve on
  // the next query batch, so deadlines are sized for solver latency at
  // this n, not for the warm cached path.
  std::vector<RunResult> big;
  if (big_users > 0) {
    Scenario sc;
    sc.loops = big_loops;
    sc.clients = big_clients;
    sc.users = big_users;
    sc.k = k;
    sc.store_shards = big_shards;
    sc.window = window;
    sc.seconds = big_seconds;
    sc.churn_period =
        std::chrono::milliseconds(static_cast<long>(big_churn_ms));
    sc.request_deadline = std::chrono::milliseconds(120000);
    sc.recv_timeout = std::chrono::milliseconds(300000);
    std::printf("big: seeding %zu users (full solve follows, slow at "
                "this n)...\n", big_users);
    big.push_back(run_scenario(sc));
    print_result("big", big.back());
    std::printf("big: seed %.1fs, first full solve %.1fs\n",
                big.back().seed_seconds, big.back().warm_solve_seconds);
  }

  std::uint64_t failed = 0;
  bool scrape_ok = true;
  double best_rps = 0.0;
  for (const RunResult& r : sweep) {
    failed += r.bad;
    scrape_ok = scrape_ok && r.stats_scrape_ok;
    best_rps = std::max(best_rps, r.rps);
  }
  for (const RunResult& r : big) {
    failed += r.bad;
    scrape_ok = scrape_ok && r.stats_scrape_ok;
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"net\",\n"
      << "  \"scenario\": \"loopback query_placement (pipelined) with "
         "background churn; loops x store-shards x clients sweep + "
         "large-instance churn run\",\n"
      << "  \"box\": {\"cpus\": " << cpus << ", \"model\": \"" << cpu_model()
      << "\"},\n"
      << "  \"config\": {\"sweep_users\": " << users << ", \"k\": " << k
      << ", \"pipeline_window\": " << window
      << ", \"seconds_per_run\": " << seconds << "},\n"
      << "  \"best_throughput_req_per_sec\": " << best_rps << ",\n"
      << "  \"requests_failed\": " << failed << ",\n"
      << "  \"stats_scrape_ok\": " << (scrape_ok ? "true" : "false") << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    emit_run(out, sweep[i], "    ");
    if (i + 1 != sweep.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n  \"million_user_churn\": ";
  if (big.empty()) {
    out << "null\n";
  } else {
    emit_run(out, big.front(), "    ");
    out << "\n";
  }
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return (failed == 0 && scrape_ok) ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_net: %s\n", e.what());
  return 1;
}
