// Socket-layer throughput: an in-process NetServer on loopback hammered
// by N blocking NetClient threads issuing query_placement against a
// warm (cached) placement, plus a low-rate churn thread so the run also
// crosses the mutation path. Reports client-observed round-trip
// latency and aggregate req/s; the acceptance bar for the serving tier
// is >= 10k req/s over loopback on a development machine.
//
// Emits BENCH_net.json (config, throughput, latency percentiles, error
// counts, server-side metrics) in the same spirit as BENCH_kernels.json
// and BENCH_serve.json.
//
//   ./perf_net --clients 4 --seconds 2 --users 200 --out BENCH_net.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/net/client.hpp"
#include "mmph/net/server.hpp"
#include "mmph/random/rng.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

serve::UserRecord fresh_user(std::uint64_t id, rnd::Rng& rng) {
  serve::UserRecord rec;
  rec.id = id;
  rec.weight = static_cast<double>(rng.uniform_int(1, 5));
  rec.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
  return rec;
}

struct WorkerResult {
  std::uint64_t ok = 0;
  std::uint64_t bad = 0;
  std::vector<double> latency_seconds;
};

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const std::size_t clients =
      static_cast<std::size_t>(args.get_int("clients", 4));
  const double seconds = args.get_double("seconds", 2.0);
  const std::size_t users = static_cast<std::size_t>(args.get_int("users", 200));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 4));
  const std::string out_path = args.get_string("out", "BENCH_net.json");
  args.finish();

  serve::ServiceConfig service_config;
  service_config.k = k;
  net::NetServerConfig net_config;
  net_config.max_connections = clients + 2;
  net_config.poll_interval = std::chrono::milliseconds(1);
  net::NetServer server(service_config, net_config);
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();

  // Seed the population and warm the placement so the measured loop hits
  // the cached-view path (the common case for a read-heavy serving tier).
  {
    rnd::Rng rng(7);
    std::vector<serve::UserRecord> population;
    population.reserve(users);
    for (std::uint64_t id = 0; id < users; ++id) {
      population.push_back(fresh_user(id, rng));
    }
    net::NetClient seeder(client_config);
    if (seeder.add_users(population).status != net::WireStatus::kOk ||
        seeder.query_placement().status != net::WireStatus::kOk) {
      std::fprintf(stderr, "perf_net: seeding failed\n");
      return 1;
    }
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const auto bench_start = Clock::now();
  for (std::size_t w = 0; w < clients; ++w) {
    workers.emplace_back([&, w] {
      net::NetClient client(client_config);
      WorkerResult& r = results[w];
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = Clock::now();
        const net::ResponseFrame reply = client.query_placement();
        const double rtt =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (reply.status == net::WireStatus::kOk) {
          ++r.ok;
          r.latency_seconds.push_back(rtt);
        } else {
          ++r.bad;
        }
      }
    });
  }
  // Background churn at ~20 mutations/sec: the queries race real epochs.
  std::thread churner([&] {
    rnd::Rng rng(11);
    net::NetClient client(client_config);
    std::uint64_t next_id = users;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t victim = next_id - users;
      (void)client.remove_users({victim});
      (void)client.add_users({fresh_user(next_id++, rng)});
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : workers) t.join();
  churner.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - bench_start).count();

  // Exercise the operator scrape path under the metrics the run produced:
  // one kStats round-trip while the server is still up.
  bool stats_scrape_ok = false;
  {
    net::NetClient scraper(client_config);
    const net::ResponseFrame reply = scraper.stats();
    stats_scrape_ok =
        reply.status == net::WireStatus::kOk && reply.stats.has_value() &&
        reply.stats->find("mmph_net_requests_total") != std::string::npos;
    if (!stats_scrape_ok) {
      std::fprintf(stderr, "perf_net: kStats scrape failed (%s)\n",
                   net::to_string(reply.status));
    }
  }
  server.stop();

  std::uint64_t ok = 0, bad = 0;
  std::vector<double> latency;
  for (const WorkerResult& r : results) {
    ok += r.ok;
    bad += r.bad;
    latency.insert(latency.end(), r.latency_seconds.begin(),
                   r.latency_seconds.end());
  }
  const double rps = static_cast<double>(ok) / elapsed;
  const double p50 = io::percentile(latency, 0.50);
  const double p99 = io::percentile_inplace(latency, 0.99);
  const net::NetMetricsSnapshot m = server.metrics();

  std::printf("clients=%zu users=%zu k=%zu: %llu ok, %llu failed in %.2fs "
              "-> %.0f req/s (p50 %.1f us, p99 %.1f us)%s\n",
              clients, users, k, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(bad), elapsed, rps, p50 * 1e6,
              p99 * 1e6, rps >= 10000.0 ? "" : "  [below 10k req/s target]");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"net\",\n  \"scenario\": "
         "\"loopback query_placement on a warm placement, background churn\","
         "\n  \"config\": {\"clients\": " << clients
      << ", \"users\": " << users << ", \"k\": " << k
      << ", \"seconds\": " << seconds << "},\n"
      << "  \"throughput_req_per_sec\": " << rps << ",\n"
      << "  \"requests_ok\": " << ok << ",\n"
      << "  \"requests_failed\": " << bad << ",\n"
      << "  \"latency_p50_seconds\": " << p50 << ",\n"
      << "  \"latency_p99_seconds\": " << p99 << ",\n"
      << "  \"stats_scrape_ok\": " << (stats_scrape_ok ? "true" : "false")
      << ",\n"
      << "  \"server\": {\"accepted\": " << m.accepted
      << ", \"bytes_in\": " << m.bytes_in << ", \"bytes_out\": " << m.bytes_out
      << ", \"frames_in\": " << m.frames_in
      << ", \"frames_out\": " << m.frames_out
      << ", \"frame_errors\": " << m.frame_errors
      << ", \"timeouts\": " << m.timeouts
      << ", \"latency_p50_seconds\": " << m.latency_p50_seconds
      << ", \"latency_p99_seconds\": " << m.latency_p99_seconds << "}\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return (bad == 0 && stats_scrape_ok) ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_net: %s\n", e.what());
  return 1;
}
