#pragma once

// Shared driver for the Fig. 4-9 reproduction binaries.
//
// Each figure binary describes its configuration (dimension, norm, weight
// scheme, node counts, whether an exhaustive denominator is computed) and
// calls run_figure(); the sweep over k in {2,4} and r in {1, 1.5, 2} with
// seeded parallel trials, the table rendering and the prose-style summary
// are identical across figures and live here.

#include <iostream>
#include <string>
#include <vector>

#include "mmph/core/bounds.hpp"
#include "mmph/exp/experiment.hpp"
#include "mmph/exp/report.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"

namespace mmph::bench {

struct FigureConfig {
  std::string title;
  std::size_t dim = 2;
  geo::Metric metric{};
  rnd::WeightScheme weights = rnd::WeightScheme::kUniformInt;
  std::vector<std::size_t> node_counts{10, 40};
  bool with_exhaustive = true;  // 2-D figures report ratios; 3-D raw reward
  std::vector<std::string> solvers{"greedy1", "greedy2", "greedy3", "greedy4"};
};

/// Parses the shared flags, runs the sweep, prints per-(n,k,r) rows and the
/// pooled per-solver summary. Returns a process exit code.
inline int run_figure(const FigureConfig& config, int argc, char** argv) {
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 10));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const double pitch = args.get_double("pitch", 0.5);
    const bool as_csv = args.get_flag("csv");
    const bool as_markdown = args.get_flag("markdown");
    args.finish();

    std::cout << config.title << "\n"
              << "trials/cell=" << trials << " seed=" << seed
              << " grid-pitch=" << pitch << " ("
              << (config.with_exhaustive
                      ? "ratios vs grid+points exhaustive"
                      : "raw rewards, no exhaustive")
              << ")\n\n";

    std::vector<exp::CellStats> all_cells;
    for (std::size_t n : config.node_counts) {
      exp::TrialSetup setup;
      setup.n = n;
      setup.dim = config.dim;
      setup.metric = config.metric;
      setup.weights = config.weights;
      setup.solver_config.grid_pitch = pitch;
      const auto cells =
          exp::run_sweep(setup, {2, 4}, {1.0, 1.5, 2.0}, config.solvers,
                         config.with_exhaustive, trials, seed + 1000 * n);
      all_cells.insert(all_cells.end(), cells.begin(), cells.end());
    }

    io::Table table = config.with_exhaustive
                          ? exp::ratio_table(all_cells, config.solvers)
                          : exp::reward_table(all_cells, config.solvers);
    if (as_csv) {
      table.print_csv(std::cout);
    } else if (as_markdown) {
      table.print_markdown(std::cout);
    } else {
      table.print(std::cout);
    }

    std::cout << "\npooled per-solver summary:\n";
    if (config.with_exhaustive) {
      const auto means = exp::overall_ratio_means(all_cells, config.solvers);
      for (const std::string& s : config.solvers) {
        std::cout << "  mean ratio " << s << " = "
                  << io::percent(means.at(s)) << "\n";
      }
    } else {
      const auto means = exp::overall_reward_means(all_cells, config.solvers);
      const double g3 = means.at("greedy3");
      for (const std::string& s : config.solvers) {
        std::cout << "  mean reward " << s << " = "
                  << io::fixed(means.at(s), 3) << " ("
                  << io::percent(means.at(s) / g3)
                  << " of greedy3)\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "figure bench failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mmph::bench
