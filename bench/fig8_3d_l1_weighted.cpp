// Fig. 8 reproduction: total gained rewards in a 3-D space, 1-norm,
// different (random integer 1..5) weights; n in {40, 160}. The paper
// reports raw rewards here (no exhaustive denominator — the 3-D search
// space is too large), so the comparison is greedy-vs-greedy.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  mmph::bench::FigureConfig config;
  config.title =
      "Fig. 8: 3-D, 1-norm, different weights (random integers 1..5)";
  config.dim = 3;
  config.metric = mmph::geo::l1_metric();
  config.weights = mmph::rnd::WeightScheme::kUniformInt;
  config.node_counts = {40, 160};
  config.with_exhaustive = false;
  return mmph::bench::run_figure(config, argc, argv);
}
