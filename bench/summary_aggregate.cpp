// §VI-B prose reproduction: the pooled per-algorithm numbers the paper
// quotes across its sweeps.
//
// Paper (2-D): "with greedy 3, the approximation ratio is about 84.22% ...
// greedy 1's ... about 68.87% and ... greedy 2 is about 55.97%" (2-norm);
// 82.76% / 68.77% / 57% (1-norm).
// Paper (3-D, 1-norm): "using greedy 1 gets about 61.04% of the reward
// that greedy 3 gets, and greedy 2 gets about 31.14%."
//
// This binary runs both 2-D sweeps (pooling the same- and different-weight
// schemes, as the prose does) and the 3-D sweep, and prints those pooled
// numbers side by side with the paper's.
//
//   ./build/bench/summary_aggregate [--trials T] [--seed S] [--pitch P]

#include <iostream>

#include "mmph/exp/experiment.hpp"
#include "mmph/exp/report.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"

namespace {

using namespace mmph;

std::vector<exp::CellStats> sweep_both_weights(std::size_t dim,
                                               geo::Metric metric,
                                               std::vector<std::size_t> ns,
                                               bool with_exhaustive,
                                               double pitch,
                                               std::size_t trials,
                                               std::uint64_t seed,
                                               const std::vector<std::string>& solvers) {
  std::vector<exp::CellStats> all;
  for (rnd::WeightScheme scheme :
       {rnd::WeightScheme::kUniformInt, rnd::WeightScheme::kSame}) {
    for (std::size_t n : ns) {
      exp::TrialSetup setup;
      setup.n = n;
      setup.dim = dim;
      setup.metric = metric;
      setup.weights = scheme;
      setup.solver_config.grid_pitch = pitch;
      const auto cells =
          exp::run_sweep(setup, {2, 4}, {1.0, 1.5, 2.0}, solvers,
                         with_exhaustive, trials,
                         seed + 1000 * n + (scheme == rnd::WeightScheme::kSame ? 7 : 0));
      all.insert(all.end(), cells.begin(), cells.end());
    }
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    io::Args args(argc, argv);
    const std::size_t trials =
        static_cast<std::size_t>(args.get_int("trials", 10));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const double pitch = args.get_double("pitch", 0.5);
    args.finish();

    const std::vector<std::string> solvers{"greedy1", "greedy2", "greedy3",
                                           "greedy4"};

    std::cout << "paper §VI-B pooled summary (trials/cell=" << trials
              << ", seed=" << seed << ")\n\n";

    // --- 2-D, 2-norm ---
    {
      const auto cells = sweep_both_weights(2, geo::l2_metric(), {10, 40},
                                            true, pitch, trials, seed, solvers);
      const auto means = exp::overall_ratio_means(cells, solvers);
      io::Table t({"2-D 2-norm", "measured mean ratio", "paper"});
      t.add_row({"greedy3", io::percent(means.at("greedy3")), "~84.22%"});
      t.add_row({"greedy1", io::percent(means.at("greedy1")), "~68.87%"});
      t.add_row({"greedy2", io::percent(means.at("greedy2")), "~55.97%"});
      t.add_row({"greedy4", io::percent(means.at("greedy4")), "(not quoted)"});
      t.print(std::cout);
      std::cout << "\n";
    }

    // --- 2-D, 1-norm ---
    {
      const auto cells = sweep_both_weights(2, geo::l1_metric(), {10, 40},
                                            true, pitch, trials, seed + 1,
                                            solvers);
      const auto means = exp::overall_ratio_means(cells, solvers);
      io::Table t({"2-D 1-norm", "measured mean ratio", "paper"});
      t.add_row({"greedy3", io::percent(means.at("greedy3")), "~82.76%"});
      t.add_row({"greedy1", io::percent(means.at("greedy1")), "~68.77%"});
      t.add_row({"greedy2", io::percent(means.at("greedy2")), "~57%"});
      t.add_row({"greedy4", io::percent(means.at("greedy4")), "(not quoted)"});
      t.print(std::cout);
      std::cout << "\n";
    }

    // --- 3-D, 1-norm: rewards relative to greedy 3 ---
    {
      const auto cells = sweep_both_weights(3, geo::l1_metric(), {40, 160},
                                            false, pitch, trials, seed + 2,
                                            solvers);
      const auto means = exp::overall_reward_means(cells, solvers);
      const double g3 = means.at("greedy3");
      io::Table t({"3-D 1-norm", "measured reward vs greedy3", "paper"});
      t.add_row({"greedy3", "100% (reference)", "100%"});
      t.add_row({"greedy1", io::percent(means.at("greedy1") / g3), "~61.04%"});
      t.add_row({"greedy2", io::percent(means.at("greedy2") / g3), "~31.14%"});
      t.add_row({"greedy4", io::percent(means.at("greedy4") / g3), "(not quoted)"});
      t.print(std::cout);
    }

    std::cout << "\nnote: the paper's absolute percentages depend on its "
                 "unpublished exhaustive\nbaseline and trial seeds; the "
                 "reproduced claim is the ordering and rough scale.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "summary_aggregate: " << e.what() << "\n";
    return 1;
  }
}
