// Performance benchmark for the lazy-greedy extension: identical output to
// Algorithm 2 with far fewer reward evaluations, especially when coverage
// neighborhoods barely overlap.

#include <benchmark/benchmark.h>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;

core::Problem make_instance(std::size_t n, double box_side,
                            std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.box_side = box_side;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      geo::l2_metric());
}

void BM_EagerGreedy2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  // Wide box: sparse interactions, the regime where lazy wins most.
  const core::Problem p = make_instance(n, 32.0, 7);
  const core::GreedyLocalSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 8).total_reward);
  }
}
BENCHMARK(BM_EagerGreedy2)->RangeMultiplier(2)->Range(128, 1024);

void BM_LazyGreedy2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 32.0, 7);
  const core::LazyGreedySolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 8).total_reward);
  }
  state.counters["evals"] =
      static_cast<double>(solver.last_evaluation_count());
  state.counters["eager_evals"] = static_cast<double>(n * 8);
}
BENCHMARK(BM_LazyGreedy2)->RangeMultiplier(2)->Range(128, 1024);

void BM_LazyGreedy2_DenseBox(benchmark::State& state) {
  // Dense 4x4 box: heavy overlap, lazy's worst case — shows the overhead
  // bound is modest.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 4.0, 9);
  const core::LazyGreedySolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 8).total_reward);
  }
  state.counters["evals"] =
      static_cast<double>(solver.last_evaluation_count());
}
BENCHMARK(BM_LazyGreedy2_DenseBox)->RangeMultiplier(2)->Range(128, 1024);

}  // namespace

BENCHMARK_MAIN();
