// Fig. 7 reproduction: approximation ratios in a 2-D space, 1-norm,
// same weight (w=1).

#include "fig_common.hpp"

int main(int argc, char** argv) {
  mmph::bench::FigureConfig config;
  config.title = "Fig. 7: 2-D, 1-norm, same weight (w=1)";
  config.dim = 2;
  config.metric = mmph::geo::l1_metric();
  config.weights = mmph::rnd::WeightScheme::kSame;
  return mmph::bench::run_figure(config, argc, argv);
}
