// Table I / Fig. 3 reproduction: one worked example.
//
// 40 nodes in a 4x4 2-D space, 2-norm, weights random integers 1..5,
// k = 4 rounds. Prints each algorithm's per-round coverage reward (the
// paper's Table I) and the chosen centers (the star markers of Fig. 3).
//
// The paper does not publish its example's point layout, so absolute
// numbers differ; the reproduced property is the per-round accounting and
// the relationship the paper highlights: greedy 4 collects the largest
// per-round coverage rewards on its own example.
//
//   ./build/bench/table1_example [--seed N] [--radius R] [--csv]

#include <iostream>

#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const double radius = args.get_double("radius", 1.0);
    const bool as_csv = args.get_flag("csv");
    args.finish();

    rnd::WorkloadSpec spec;  // 40 nodes, 4x4, weights 1..5 — the paper's
    rnd::Rng rng(seed);      // Table I configuration
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), radius, geo::l2_metric());

    std::cout << "Table I: per-round coverage reward, 40 nodes, 4x4 2-D, "
                 "2-norm, k=4, r=" << radius << ", seed=" << seed << "\n\n";

    io::Table table({"Coverage reward", "1", "2", "3", "4", "Total"});
    std::vector<core::Solution> solutions;
    for (const std::string& name : {"greedy2", "greedy3", "greedy4"}) {
      const core::Solution s =
          core::make_solver(name, problem)->solve(problem, 4);
      std::vector<std::string> row{name};
      for (double g : s.round_rewards) row.push_back(io::fixed(g, 4));
      row.push_back(io::fixed(s.total_reward, 4));
      table.add_row(std::move(row));
      solutions.push_back(s);
    }
    if (as_csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    std::cout << "\nFig. 3 counterpart — selected centers per round:\n";
    for (const core::Solution& s : solutions) {
      std::cout << "  " << s.solver_name << ":";
      for (std::size_t j = 0; j < s.centers.size(); ++j) {
        std::cout << "  (" << io::fixed(s.centers[j][0], 2) << ", "
                  << io::fixed(s.centers[j][1], 2) << ")";
      }
      std::cout << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "table1_example: " << e.what() << "\n";
    return 1;
  }
}
