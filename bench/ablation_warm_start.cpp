// Ablation: warm-started replanning vs cold greedy under drift.
//
// Sweeps the interest-drift level and the warm-start sweep budget,
// reporting total reward relative to cold greedy2 and the evaluator work
// saved. Shows the regime where warm starting is essentially free quality
// (slow drift) and where it degrades (fast drift invalidates history).
//
//   ./build/bench/ablation_warm_start [--users N] [--slots T] [--seed S]

#include <iostream>
#include <memory>

#include "mmph/core/greedy_local.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/sim/warm_start.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t users =
        static_cast<std::size_t>(args.get_int("users", 60));
    const std::size_t slots =
        static_cast<std::size_t>(args.get_int("slots", 40));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    args.finish();

    const auto cold_factory = [] {
      return [](const core::Problem&) {
        return std::make_unique<core::GreedyLocalSolver>();
      };
    };

    const auto run_cold = [&](double drift) {
      sim::SimConfig cfg;
      cfg.users = users;
      cfg.slots = slots;
      cfg.k = 4;
      cfg.radius = 1.0;
      cfg.drift.sigma = drift;
      cfg.seed = seed;
      sim::BroadcastSimulator simulator(cfg, cold_factory());
      return simulator.run().total_reward;
    };
    const auto run_warm = [&](double drift, std::size_t sweeps) {
      sim::SimConfig cfg;
      cfg.users = users;
      cfg.slots = slots;
      cfg.k = 4;
      cfg.radius = 1.0;
      cfg.drift.sigma = drift;
      cfg.seed = seed;
      sim::WarmStartPlanner planner(cold_factory(), sweeps);
      sim::BroadcastSimulator simulator(cfg, planner.factory());
      return simulator.run().total_reward;
    };

    std::cout << "ablation: warm-start replanning, " << users << " users, "
              << slots << " slots, k=4, cold solver greedy2\n\n";

    io::Table table({"drift sigma", "cold reward", "warm (1 sweep)",
                     "warm (2 sweeps)", "warm (4 sweeps)"});
    for (double drift : {0.0, 0.05, 0.15, 0.5}) {
      const double cold = run_cold(drift);
      const auto rel = [&](std::size_t sweeps) {
        return io::percent(run_warm(drift, sweeps) / cold);
      };
      table.add_row({io::fixed(drift, 2), io::fixed(cold, 1), rel(1), rel(2),
                     rel(4)});
    }
    table.print(std::cout);
    std::cout << "\nreading: under slow drift one refinement sweep retains "
                 "nearly all of cold\ngreedy's reward at a fraction of the "
                 "evaluations (see perf_simulator); fast\ndrift erodes the "
                 "value of history.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ablation_warm_start: " << e.what() << "\n";
    return 1;
  }
}
