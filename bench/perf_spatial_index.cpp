// Performance benchmark for the cell-grid spatial index: indexed vs plain
// coverage kernels and Algorithm 2 end-to-end, as n grows with constant
// density (radius covers a shrinking fraction of the box).

#include <benchmark/benchmark.h>

#include <cmath>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/indexed_reward.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;

// Constant-density instances: box side grows with sqrt(n) so each ball of
// radius 1 always covers ~the same expected number of points.
core::Problem make_instance(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.box_side = 4.0 * std::sqrt(static_cast<double>(n) / 40.0);
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      geo::l2_metric());
}

void BM_PlainCoverage(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 1);
  const auto y = core::fresh_residual(p);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::coverage_reward(p, p.point(i % n), y));
    ++i;
  }
}
BENCHMARK(BM_PlainCoverage)->RangeMultiplier(4)->Range(64, 16384);

void BM_IndexedCoverage(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 1);
  const core::IndexedProblem indexed(p);
  const auto y = core::fresh_residual(p);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexed.coverage_reward(p.point(i % n), y));
    ++i;
  }
}
BENCHMARK(BM_IndexedCoverage)->RangeMultiplier(4)->Range(64, 16384);

void BM_PlainGreedy2EndToEnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 2);
  const core::GreedyLocalSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 4).total_reward);
  }
}
BENCHMARK(BM_PlainGreedy2EndToEnd)->RangeMultiplier(4)->Range(64, 4096);

void BM_IndexedGreedy2EndToEnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const core::Problem p = make_instance(n, 2);
  const core::IndexedGreedyLocalSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, 4).total_reward);
  }
}
BENCHMARK(BM_IndexedGreedy2EndToEnd)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
