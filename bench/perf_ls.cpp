// Local-search polish throughput and quality lift. For each instance size
// the scenario runs the production pipeline once:
//
//   lazy      k rounds of LazyGreedySolver — the seed the polish tier
//             starts from (and the greedy reference the certified bounds
//             need);
//   ls        polish(lazy) by shift/swap local search riding the spatial
//             index for delta evaluation;
//   bounds    certified_upper_bounds over the same candidate domain — the
//             absolute ceiling both values are reported against.
//
// Reported per size: both objective values, their fraction of the
// certified bound (quality), polish wall time, and the LsStats counters
// (evals / moves / sweeps) that put a denominator under the time. The run
// self-checks the quality-tier invariants — ls >= lazy exactly, and
// ls <= certified bound — and exits nonzero on violation.
//
//   ./perf_ls --k 8 --out BENCH_ls.json

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/io/args.hpp"
#include "mmph/ls/bounds.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/random/workload.hpp"

namespace {

using namespace mmph;
using Clock = std::chrono::steady_clock;

struct ScenarioResult {
  std::size_t n = 0;
  std::size_t k = 0;
  double lazy_value = 0.0;
  double ls_value = 0.0;
  double bound = 0.0;
  double lazy_seconds = 0.0;
  double ls_seconds = 0.0;
  ls::LsStats stats;

  [[nodiscard]] double lazy_quality() const {
    return bound > 0.0 ? lazy_value / bound : 0.0;
  }
  [[nodiscard]] double ls_quality() const {
    return bound > 0.0 ? ls_value / bound : 0.0;
  }
  [[nodiscard]] double evals_per_sec() const {
    return ls_seconds > 0.0
               ? static_cast<double>(stats.evals) / ls_seconds
               : 0.0;
  }
};

ScenarioResult run_size(std::size_t n, std::size_t k, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.dim = 2;
  spec.weights = rnd::WeightScheme::kZipf;
  rnd::Rng rng(seed);
  const core::Problem problem = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());

  ScenarioResult result;
  result.n = n;
  result.k = k;

  const core::LazyGreedySolver lazy_solver;
  const auto lazy_start = Clock::now();
  const core::Solution lazy = lazy_solver.solve(problem, k);
  result.lazy_seconds =
      std::chrono::duration<double>(Clock::now() - lazy_start).count();
  result.lazy_value = lazy.total_reward;

  const auto ls_start = Clock::now();
  const core::Solution polished =
      ls::polish(problem, lazy, problem.points(), {}, &result.stats);
  result.ls_seconds =
      std::chrono::duration<double>(Clock::now() - ls_start).count();
  result.ls_value = polished.total_reward;

  const ls::UpperBounds bounds =
      ls::certified_upper_bounds(problem, k, lazy, problem.points());
  result.bound = bounds.best();
  return result;
}

std::string scenario_json(const ScenarioResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "  \"n%zu\": {\"n\": %zu, \"k\": %zu, \"lazy_value\": %.6f, "
      "\"ls_value\": %.6f, \"bound\": %.6f, \"lazy_quality\": %.4f, "
      "\"ls_quality\": %.4f, \"lazy_seconds\": %.4f, \"ls_seconds\": %.4f, "
      "\"ls_evals\": %llu, \"ls_moves\": %llu, \"ls_sweeps\": %zu, "
      "\"evals_per_sec\": %.0f}",
      r.n, r.n, r.k, r.lazy_value, r.ls_value, r.bound, r.lazy_quality(),
      r.ls_quality(), r.lazy_seconds, r.ls_seconds,
      static_cast<unsigned long long>(r.stats.evals),
      static_cast<unsigned long long>(r.stats.moves), r.stats.sweeps,
      r.evals_per_sec());
  return buf;
}

}  // namespace

int main(int argc, char** argv) try {
  io::Args args(argc, argv);
  const auto k = static_cast<std::size_t>(args.get_int("k", 8));
  const std::string out_path = args.get_string("out", "BENCH_ls.json");
  args.finish();

  const std::size_t sizes[] = {2000, 10000, 20000};
  std::vector<ScenarioResult> results;
  bool ok = true;
  for (const std::size_t n : sizes) {
    const ScenarioResult r = run_size(n, k, 2011 + n);
    std::printf("n=%-6zu lazy %.4f (%.1f%% of bound) in %.3fs | "
                "ls %.4f (%.1f%% of bound) in %.3fs, %llu evals "
                "(%0.f/s), %llu moves, %zu sweeps%s\n",
                r.n, r.lazy_value, 100.0 * r.lazy_quality(), r.lazy_seconds,
                r.ls_value, 100.0 * r.ls_quality(), r.ls_seconds,
                static_cast<unsigned long long>(r.stats.evals),
                r.evals_per_sec(),
                static_cast<unsigned long long>(r.stats.moves),
                r.stats.sweeps, r.stats.aborted ? "  [ABORTED]" : "");
    // The quality-tier invariants, enforced here too: polish never loses
    // to its seed (structural), and never clears the certified ceiling.
    if (r.ls_value < r.lazy_value) {
      std::fprintf(stderr, "perf_ls: ls < lazy at n=%zu\n", r.n);
      ok = false;
    }
    if (r.ls_value > r.bound * (1.0 + 1e-9)) {
      std::fprintf(stderr, "perf_ls: ls above certified bound at n=%zu\n",
                   r.n);
      ok = false;
    }
    results.push_back(r);
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"ls\",\n  \"scenario\": "
         "\"lazy greedy seed polished by shift/swap local search, values "
         "against the certified upper bound (2d, l2, zipf weights)\",\n"
      << "  \"config\": {\"k\": " << k << "},\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << scenario_json(results[i]) << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "perf_ls: %s\n", e.what());
  return 1;
}
