// Performance benchmark for the simulators: slot throughput per scheduler
// and the warm-start replanner's speedup under drift.

#include <benchmark/benchmark.h>

#include "mmph/core/registry.hpp"
#include "mmph/sim/network.hpp"
#include "mmph/sim/simulator.hpp"
#include "mmph/sim/warm_start.hpp"

namespace {

using namespace mmph;

sim::SimConfig slot_config(std::size_t users) {
  sim::SimConfig cfg;
  cfg.users = users;
  cfg.slots = 1;
  cfg.k = 4;
  cfg.radius = 1.0;
  cfg.drift.sigma = 0.1;
  cfg.seed = 11;
  return cfg;
}

void BM_SlotThroughput_Greedy3(benchmark::State& state) {
  sim::BroadcastSimulator simulator(
      slot_config(static_cast<std::size_t>(state.range(0))),
      [](const core::Problem& p) { return core::make_solver("greedy3", p); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step().reward);
  }
}
BENCHMARK(BM_SlotThroughput_Greedy3)->Arg(50)->Arg(200)->Arg(800);

void BM_SlotThroughput_Greedy2(benchmark::State& state) {
  sim::BroadcastSimulator simulator(
      slot_config(static_cast<std::size_t>(state.range(0))),
      [](const core::Problem& p) { return core::make_solver("greedy2", p); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step().reward);
  }
}
BENCHMARK(BM_SlotThroughput_Greedy2)->Arg(50)->Arg(200)->Arg(800);

void BM_SlotThroughput_Greedy2Cold(benchmark::State& state) {
  // Same as above but counted against the warm-start variant below.
  sim::BroadcastSimulator simulator(
      slot_config(200),
      [](const core::Problem& p) { return core::make_solver("greedy2", p); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step().reward);
  }
}
BENCHMARK(BM_SlotThroughput_Greedy2Cold);

void BM_SlotThroughput_WarmStart(benchmark::State& state) {
  sim::WarmStartPlanner planner(
      [](const core::Problem& p) { return core::make_solver("greedy2", p); });
  sim::BroadcastSimulator simulator(slot_config(200), planner.factory());
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step().reward);
  }
  state.counters["warm"] = static_cast<double>(planner.warm_solves());
  state.counters["cold"] = static_cast<double>(planner.cold_solves());
}
BENCHMARK(BM_SlotThroughput_WarmStart);

void BM_NetworkSlot(benchmark::State& state) {
  sim::NetworkConfig cfg;
  cfg.stations = 4;
  cfg.users = static_cast<std::size_t>(state.range(0));
  cfg.slots = 1;
  cfg.k_per_station = 2;
  cfg.mobility_sigma = 0.3;
  cfg.interest_sigma = 0.1;
  cfg.seed = 13;
  sim::NetworkSimulator simulator(cfg, [](const core::Problem& p) {
    return core::make_solver("greedy2", p);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step().reward);
  }
}
BENCHMARK(BM_NetworkSlot)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
