// Fig. 9 reproduction: total gained rewards in a 3-D space, 1-norm,
// same weight (w=1); n in {40, 160}.

#include "fig_common.hpp"

int main(int argc, char** argv) {
  mmph::bench::FigureConfig config;
  config.title = "Fig. 9: 3-D, 1-norm, same weight (w=1)";
  config.dim = 3;
  config.metric = mmph::geo::l1_metric();
  config.weights = mmph::rnd::WeightScheme::kSame;
  config.node_counts = {40, 160};
  config.with_exhaustive = false;
  return mmph::bench::run_figure(config, argc, argv);
}
