// Broadcast scheduler: the system of paper Fig. 1, animated over time.
//
// A base station serves a drifting, churning user population. Every slot it
// picks k contents with the chosen algorithm and broadcasts them; users
// collect interest-distance rewards. The example compares schedulers on
// satisfaction, fairness and scheduling cost over a day of slots.
//
//   ./build/examples/broadcast_scheduler [--users N] [--slots T] [--k K]
//       [--radius R] [--solver NAME|all] [--drift SIGMA] [--churn P]

#include <iostream>

#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/sim/fairness.hpp"
#include "mmph/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    sim::SimConfig cfg;
    cfg.users = static_cast<std::size_t>(args.get_int("users", 60));
    cfg.slots = static_cast<std::size_t>(args.get_int("slots", 96));
    cfg.k = static_cast<std::size_t>(args.get_int("k", 4));
    cfg.radius = args.get_double("radius", 1.0);
    cfg.drift.sigma = args.get_double("drift", 0.15);
    cfg.drift.jump_prob = args.get_double("jump", 0.01);
    cfg.drift.churn_prob = args.get_double("churn", 0.02);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const std::string chosen = args.get_string("solver", "all");
    args.finish();

    std::vector<std::string> solvers;
    if (chosen == "all") {
      solvers = {"greedy2", "greedy2-lazy", "greedy3", "greedy4"};
    } else {
      solvers = {chosen};
    }

    std::cout << "base station: " << cfg.users << " users, " << cfg.slots
              << " slots, k=" << cfg.k << ", r=" << cfg.radius
              << ", drift sigma=" << cfg.drift.sigma
              << ", churn=" << cfg.drift.churn_prob << "\n\n";

    io::Table table({"scheduler", "mean satisfaction", "mean fairness",
                     "total reward", "solve time (s)"});
    for (const std::string& name : solvers) {
      sim::BroadcastSimulator simulator(
          cfg, [&name](const core::Problem& p) {
            return core::make_solver(name, p);
          });
      const sim::SimReport report = simulator.run();
      table.add_row({name, io::percent(report.mean_satisfaction),
                     io::fixed(report.mean_fairness, 4),
                     io::fixed(report.total_reward, 1),
                     io::fixed(report.total_solve_seconds, 3)});
    }
    if (chosen == "all") {
      // Deficit-weighted greedy2: trades a little throughput for fairness.
      sim::FairnessAwarePlanner fairness(
          [](const core::Problem& p) {
            return core::make_solver("greedy2", p);
          },
          /*alpha=*/8.0);
      sim::BroadcastSimulator simulator(cfg, fairness.factory());
      const sim::SimReport report = simulator.run();
      table.add_row({"greedy2+fair", io::percent(report.mean_satisfaction),
                     io::fixed(report.mean_fairness, 4),
                     io::fixed(report.total_reward, 1),
                     io::fixed(report.total_solve_seconds, 3)});
    }
    table.print(std::cout);

    std::cout << "\nreading: higher satisfaction = more of the population's"
                 " capped demand met per slot;\nfairness is Jain's index"
                 " over per-user slot rewards (1 = everyone equally happy)."
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "broadcast_scheduler: " << e.what() << "\n";
    return 1;
  }
}
