// Airtime budgeting: contents have different broadcast costs.
//
// The cardinality constraint ("k broadcasts") models equal-sized contents;
// real catalogs mix a 30-second bulletin with a two-hour film. This
// example prices each candidate content by its distance from the catalog
// center (niche content costs more airtime to serve) and sweeps the
// airtime budget, showing the budgeted greedy's reward curve and how the
// selection shifts from a few broad hits to many cheap niche picks.
//
//   ./build/examples/airtime_budget [--users N] [--seed S] [--radius R]

#include <iostream>

#include "mmph/core/budgeted.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    rnd::WorkloadSpec spec;
    spec.n = static_cast<std::size_t>(args.get_int("users", 60));
    const double radius = args.get_double("radius", 1.0);
    rnd::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 31)));
    args.finish();

    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), radius, geo::l2_metric());

    // Cost model: base airtime 1.0, plus a premium growing with distance
    // from the catalog's center of mass (niche content needs dedicated
    // production/licensing).
    const std::vector<double> center = problem.points().centroid();
    core::BudgetedInstance inst;
    inst.problem = &problem;
    inst.costs.resize(problem.size());
    for (std::size_t i = 0; i < problem.size(); ++i) {
      inst.costs[i] =
          1.0 + 0.5 * geo::l2_distance(center, problem.point(i));
    }

    std::cout << "airtime budgeting: " << spec.n
              << " users, niche premium pricing, r=" << radius << "\n\n";

    io::Table table({"budget", "contents aired", "airtime used",
                     "reward", "share of demand"});
    for (double budget : {1.5, 3.0, 6.0, 12.0, 24.0, 48.0}) {
      inst.budget = budget;
      const core::BudgetedSolution sol = core::budgeted_greedy(inst);
      table.add_row({io::fixed(budget, 1),
                     std::to_string(sol.chosen.size()),
                     io::fixed(sol.total_cost, 2),
                     io::fixed(sol.total_reward, 2),
                     io::percent(sol.total_reward /
                                 problem.total_weight())});
    }
    table.print(std::cout);
    std::cout << "\nreading: reward grows concavely in budget (submodular "
                 "diminishing returns);\nthe airtime used tracks the budget "
                 "until demand saturates.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "airtime_budget: " << e.what() << "\n";
    return 1;
  }
}
