// Multi-cell network: several base stations share one user population.
//
// Users are sharded across S base stations (their physical attachment);
// each station broadcasts k contents per slot to its own users. The
// example contrasts two planning modes built from the same public API:
//   - per-cell: each station solves its own Problem over its shard;
//   - pooled:   one planner solves a single Problem over all users with
//               the combined budget S*k (an upper bound that shows the
//               price of decentralization).
//
//   ./build/examples/multi_cell_network [--stations S] [--users N]
//       [--k K] [--radius R] [--solver NAME] [--seed X]

#include <iostream>
#include <vector>

#include "mmph/core/objective.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::size_t stations =
        static_cast<std::size_t>(args.get_int("stations", 4));
    const std::size_t users =
        static_cast<std::size_t>(args.get_int("users", 160));
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 2));
    const double radius = args.get_double("radius", 1.0);
    const std::string solver_name = args.get_string("solver", "greedy2");
    rnd::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 17)));
    args.finish();

    // One population of interests; attachment is independent of interest
    // (you connect to the nearest tower, not the nearest genre).
    rnd::WorkloadSpec spec;
    spec.n = users;
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = 5;
    spec.cluster_stddev = 0.5;
    const rnd::Workload population = rnd::generate_workload(spec, rng);
    std::vector<std::size_t> shard(users);
    for (std::size_t i = 0; i < users; ++i) {
      shard[i] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stations) - 1));
    }

    std::cout << stations << " stations, " << users << " users, k=" << k
              << " broadcasts each, r=" << radius << ", planner "
              << solver_name << "\n\n";

    // --- per-cell planning ---
    double per_cell_reward = 0.0;
    std::vector<double> per_station_satisfaction;
    io::Table cells({"station", "users", "reward", "satisfaction"});
    for (std::size_t s = 0; s < stations; ++s) {
      geo::PointSet pts(population.points.dim());
      std::vector<double> weights;
      for (std::size_t i = 0; i < users; ++i) {
        if (shard[i] != s) continue;
        pts.push_back(population.points[i]);
        weights.push_back(population.weights[i]);
      }
      if (weights.empty()) {
        cells.add_row({std::to_string(s), "0", "-", "-"});
        continue;
      }
      const core::Problem problem(std::move(pts), std::move(weights), radius,
                                  geo::l2_metric());
      const core::Solution sol =
          core::make_solver(solver_name, problem)->solve(problem, k);
      per_cell_reward += sol.total_reward;
      const double satisfaction = sol.total_reward / problem.total_weight();
      per_station_satisfaction.push_back(satisfaction);
      cells.add_row({std::to_string(s), std::to_string(problem.size()),
                     io::fixed(sol.total_reward, 2),
                     io::percent(satisfaction)});
    }
    cells.print(std::cout);

    // --- pooled planning (one broadcast domain, budget S*k) ---
    const core::Problem pooled(geo::PointSet(population.points),
                               std::vector<double>(population.weights),
                               radius, geo::l2_metric());
    const core::Solution pooled_sol =
        core::make_solver(solver_name, pooled)->solve(pooled, stations * k);

    std::cout << "\nper-cell total reward: " << io::fixed(per_cell_reward, 2)
              << " (" << io::percent(per_cell_reward / pooled.total_weight())
              << " of demand)\n";
    std::cout << "pooled total reward:   "
              << io::fixed(pooled_sol.total_reward, 2) << " ("
              << io::percent(pooled_sol.total_reward / pooled.total_weight())
              << " of demand)\n";
    std::cout << "price of decentralization: "
              << io::percent(1.0 - per_cell_reward /
                                       pooled_sol.total_reward)
              << " of the pooled reward\n";
    std::cout << "fairness across stations (Jain): "
              << io::fixed(io::jain_fairness(per_station_satisfaction), 4)
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "multi_cell_network: " << e.what() << "\n";
    return 1;
  }
}
