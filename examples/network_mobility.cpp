// Network mobility study: how user movement stresses per-cell planning.
//
// A 4-station network serves moving users. As mobility grows, users hop
// between cells (handovers), cell loads churn, and each station keeps
// re-planning against a shifting population. The example sweeps the
// mobility level and reports satisfaction, handover rate and load skew —
// the operational picture behind the paper's single-cell abstraction.
//
//   ./build/examples/network_mobility [--stations S] [--users N]
//       [--slots T] [--k K] [--solver NAME] [--seed X]

#include <iostream>

#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/sim/network.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    sim::NetworkConfig base;
    base.stations = static_cast<std::size_t>(args.get_int("stations", 4));
    base.users = static_cast<std::size_t>(args.get_int("users", 120));
    base.slots = static_cast<std::size_t>(args.get_int("slots", 60));
    base.k_per_station = static_cast<std::size_t>(args.get_int("k", 2));
    base.interest_sigma = 0.05;
    base.seed = static_cast<std::uint64_t>(args.get_int("seed", 23));
    const std::string solver = args.get_string("solver", "greedy2");
    args.finish();

    std::cout << base.stations << "-cell network, " << base.users
              << " users, " << base.slots << " slots, k="
              << base.k_per_station << " per cell, scheduler " << solver
              << "\n\n";

    io::Table table({"mobility sigma", "mean satisfaction",
                     "handovers/slot", "max cell load (last slot)"});
    for (double mobility : {0.0, 0.1, 0.3, 1.0, 3.0}) {
      sim::NetworkConfig cfg = base;
      cfg.mobility_sigma = mobility;
      sim::NetworkSimulator simulator(cfg, [&](const core::Problem& p) {
        return core::make_solver(solver, p);
      });
      const sim::NetworkReport report = simulator.run();
      table.add_row(
          {io::fixed(mobility, 1), io::percent(report.mean_satisfaction),
           io::fixed(static_cast<double>(report.total_handovers) /
                         static_cast<double>(cfg.slots),
                     2),
           std::to_string(report.slots.back().max_cell_load)});
    }
    table.print(std::cout);
    std::cout << "\nreading: interests, not positions, drive rewards — so "
                 "satisfaction is stable\nwhile handovers climb with "
                 "mobility; the churn cost shows up in per-cell load\nskew "
                 "and replanning work (see perf_simulator).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "network_mobility: " << e.what() << "\n";
    return 1;
  }
}
