// Coverage planner: the facility-location reading of the same optimization
// (paper §II-C relates it to the smallest-circle facility problem).
//
// Customers sit at physical locations with demand weights; we may open k
// service points with coverage radius r, and a customer's service quality
// decays linearly with distance. The example sweeps k and shows the
// marginal value of each additional facility — the classic diminishing-
// returns curve that the submodularity analysis (Lemma 0b) predicts.
//
//   ./build/examples/coverage_planner [--customers N] [--radius R]
//       [--maxk K] [--seed S] [--csv]

#include <iostream>

#include "mmph/core/objective.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    rnd::WorkloadSpec spec;
    spec.n = static_cast<std::size_t>(args.get_int("customers", 80));
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = 4;
    spec.cluster_stddev = 0.5;
    const double radius = args.get_double("radius", 1.0);
    const std::size_t max_k =
        static_cast<std::size_t>(args.get_int("maxk", 8));
    rnd::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));
    const bool as_csv = args.get_flag("csv");
    args.finish();

    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), radius, geo::l2_metric());

    std::cout << "siting up to " << max_k << " facilities for " << spec.n
              << " customers (demand-weighted, linear decay, r=" << radius
              << ")\n\n";

    // One greedy4 run at max_k gives the whole curve: round j's reward is
    // the marginal value of facility j.
    const core::Solution plan =
        core::make_solver("greedy4", problem)->solve(problem, max_k);

    io::Table table({"facilities", "site (x, y)", "marginal demand won",
                     "cumulative", "share of demand"});
    double cumulative = 0.0;
    for (std::size_t j = 0; j < plan.centers.size(); ++j) {
      cumulative += plan.round_rewards[j];
      table.add_row(
          {std::to_string(j + 1),
           "(" + io::fixed(plan.centers[j][0], 2) + ", " +
               io::fixed(plan.centers[j][1], 2) + ")",
           io::fixed(plan.round_rewards[j], 2), io::fixed(cumulative, 2),
           io::percent(cumulative / problem.total_weight())});
    }
    if (as_csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << "\nnote the diminishing marginal value per facility — "
                   "the submodularity\n(Lemma 0b) that both makes the "
                   "problem NP-hard and makes greedy work.\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "coverage_planner: " << e.what() << "\n";
    return 1;
  }
}
