// Quickstart: the paper's problem in ~40 lines.
//
// Build a 40-user instance in a 4x4 interest space, pick k=4 broadcast
// contents with each algorithm, and compare the total rewards.
//
//   ./build/examples/quickstart [--seed N] [--k K] [--radius R]

#include <iostream>

#include "mmph/core/objective.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2011));
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 4));
    const double radius = args.get_double("radius", 1.0);
    args.finish();

    // 1. Generate a workload: 40 users, uniform in [0,4]^2, weights 1..5.
    rnd::WorkloadSpec spec;  // the paper's defaults
    rnd::Rng rng(seed);
    rnd::Workload users = rnd::generate_workload(spec, rng);
    std::cout << "workload: " << spec.describe() << "\n";

    // 2. Wrap it as a Problem: radius r, Euclidean interest distance.
    const core::Problem problem = core::Problem::from_workload(
        std::move(users), radius, geo::l2_metric());

    // 3. Solve with each algorithm and print the comparison.
    io::Table table({"solver", "total reward", "fraction of max"});
    for (const std::string name :
         {"greedy1", "greedy2", "greedy3", "greedy4", "exhaustive"}) {
      const auto solver = core::make_solver(name, problem);
      const core::Solution s = solver->solve(problem, k);
      table.add_row({name, io::fixed(s.total_reward, 4),
                     io::percent(s.total_reward / problem.total_weight())});
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "quickstart: " << e.what() << "\n";
    return 1;
  }
}
