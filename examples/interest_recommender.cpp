// Interest recommender: the paper's m-D keyword-space story.
//
// Users' tastes are vectors over m content attributes (tempo, energy,
// vocals, ... for a music service). The provider can pre-cache k "station
// mixes" (points in attribute space); a user enjoys a mix in proportion to
// how close it is to their taste (1-norm interest distance, paper §III-B).
// Interests form genre clusters, which is where greedy 4's free-floating
// centers shine: it can place a mix at a cluster's centroid even when no
// single user sits there.
//
//   ./build/examples/interest_recommender [--dims M] [--genres G]
//       [--users N] [--k K] [--radius R] [--seed S]

#include <iostream>

#include "mmph/core/objective.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/random/workload.hpp"

int main(int argc, char** argv) {
  using namespace mmph;
  try {
    io::Args args(argc, argv);
    rnd::WorkloadSpec spec;
    spec.dim = static_cast<std::size_t>(args.get_int("dims", 4));
    spec.n = static_cast<std::size_t>(args.get_int("users", 120));
    spec.placement = rnd::Placement::kClustered;
    spec.clusters = static_cast<std::size_t>(args.get_int("genres", 5));
    spec.cluster_stddev = args.get_double("spread", 0.35);
    spec.weights = rnd::WeightScheme::kZipf;  // a few power listeners
    const std::size_t k = static_cast<std::size_t>(args.get_int("k", 5));
    const double radius = args.get_double("radius", 1.5);
    rnd::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 99)));
    args.finish();

    std::cout << "catalog planning: " << spec.describe() << "\n"
              << "picking k=" << k << " station mixes, scope r=" << radius
              << " (1-norm attribute distance)\n\n";

    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), radius, geo::l1_metric());

    io::Table table(
        {"planner", "listener-hours won", "share of demand", "note"});
    struct Row {
      const char* name;
      const char* note;
    };
    for (const Row& row : {Row{"greedy3", "fastest, O(kn)"},
                           Row{"greedy2", "coverage-aware, O(kn^2)"},
                           Row{"greedy4", "free centers, O(kmn^3)"}}) {
      const auto solver = core::make_solver(row.name, problem);
      const core::Solution s = solver->solve(problem, k);
      table.add_row({row.name, io::fixed(s.total_reward, 2),
                     io::percent(s.total_reward / problem.total_weight()),
                     row.note});
    }
    table.print(std::cout);

    // Show the mixes the strongest planner chose.
    const core::Solution best =
        core::make_solver("greedy4", problem)->solve(problem, k);
    std::cout << "\ngreedy4's station mixes (attribute vectors):\n";
    for (std::size_t j = 0; j < best.centers.size(); ++j) {
      std::cout << "  mix " << j + 1 << ": [";
      for (std::size_t d = 0; d < best.centers.dim(); ++d) {
        std::cout << (d ? ", " : "") << io::fixed(best.centers[j][d], 2);
      }
      std::cout << "]  round reward " << io::fixed(best.round_rewards[j], 2)
                << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "interest_recommender: " << e.what() << "\n";
    return 1;
  }
}
