// Tests for Welzl's smallest enclosing L2 ball, with a brute-force oracle.
//
// Oracle: the smallest enclosing ball of a planar point set is determined
// by at most 3 points (dim+1 in general); trying every 1-, 2- and 3-subset
// and keeping the smallest valid circumball is exact, if slow.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mmph/geometry/enclosing_ball.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::geo {
namespace {

bool ball_covers(const Ball& ball, const PointSet& ps, double tol = 1e-7) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (l2_distance(ball.center, ps[i]) > ball.radius + tol) return false;
  }
  return true;
}

// Exhaustive exact oracle over support subsets of size <= dim+1.
Ball brute_force_ball(const PointSet& ps) {
  const std::size_t n = ps.size();
  const std::size_t dim = ps.dim();
  Ball best;
  best.radius = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> idx;
  // Enumerate all subsets of size 1..dim+1 via simple recursion.
  auto consider = [&](const std::vector<std::size_t>& support_idx) {
    PointSet support(dim);
    for (std::size_t i : support_idx) support.push_back(ps[i]);
    const Ball b = circumball(support);
    if (!b.is_empty() && b.radius < best.radius && ball_covers(b, ps)) {
      best = b;
    }
  };
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t start,
                                                          std::size_t left) {
    if (left == 0) {
      consider(idx);
      return;
    }
    for (std::size_t i = start; i + left <= n; ++i) {
      idx.push_back(i);
      rec(i + 1, left - 1);
      idx.pop_back();
    }
  };
  for (std::size_t size = 1; size <= std::min(n, dim + 1); ++size) {
    rec(0, size);
  }
  return best;
}

TEST(Circumball, OnePointIsDegenerate) {
  const PointSet ps = PointSet::from_rows({{2.0, 3.0}});
  const Ball b = circumball(ps);
  EXPECT_DOUBLE_EQ(b.radius, 0.0);
  EXPECT_DOUBLE_EQ(b.center[0], 2.0);
}

TEST(Circumball, TwoPointsDiameter) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {2.0, 0.0}});
  const Ball b = circumball(ps);
  EXPECT_NEAR(b.radius, 1.0, 1e-12);
  EXPECT_NEAR(b.center[0], 1.0, 1e-12);
  EXPECT_NEAR(b.center[1], 0.0, 1e-12);
}

TEST(Circumball, EquilateralTriangle) {
  const double h = std::sqrt(3.0) / 2.0;
  const PointSet ps =
      PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {0.5, h}});
  const Ball b = circumball(ps);
  // Circumradius of a unit equilateral triangle is 1/sqrt(3).
  EXPECT_NEAR(b.radius, 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(b.center[0], 0.5, 1e-12);
}

TEST(Circumball, RejectsTooManyPoints) {
  const PointSet ps = PointSet::from_rows(
      {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
  EXPECT_THROW(circumball(ps), InvalidArgument);
}

TEST(Circumball, DegenerateCollinearFallsBack) {
  // Three collinear points: affinely dependent; solver must not blow up.
  const PointSet ps =
      PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  const Ball b = circumball(ps);
  EXPECT_FALSE(b.is_empty());
}

TEST(EnclosingBall, EmptySetYieldsEmptyBall) {
  const PointSet ps(2);
  EXPECT_TRUE(smallest_enclosing_ball_l2(ps).is_empty());
}

TEST(EnclosingBall, SinglePoint) {
  const PointSet ps = PointSet::from_rows({{5.0, -1.0}});
  const Ball b = smallest_enclosing_ball_l2(ps);
  EXPECT_DOUBLE_EQ(b.radius, 0.0);
}

TEST(EnclosingBall, Square) {
  const PointSet ps = PointSet::from_rows(
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}});
  const Ball b = smallest_enclosing_ball_l2(ps);
  EXPECT_NEAR(b.radius, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(b.center[0], 1.0, 1e-9);
  EXPECT_NEAR(b.center[1], 1.0, 1e-9);
}

TEST(EnclosingBall, InteriorPointsDoNotMatter) {
  PointSet ps = PointSet::from_rows(
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}});
  const Ball without = smallest_enclosing_ball_l2(ps);
  const std::vector<double> inner{1.0, 1.0};
  ps.push_back(inner);
  const Ball with = smallest_enclosing_ball_l2(ps);
  EXPECT_NEAR(with.radius, without.radius, 1e-9);
}

TEST(EnclosingBall, SubsetOverload) {
  const PointSet ps = PointSet::from_rows(
      {{0.0, 0.0}, {100.0, 100.0}, {2.0, 0.0}});
  const std::vector<std::size_t> idx{0, 2};
  const Ball b = smallest_enclosing_ball_l2(ps, idx);
  EXPECT_NEAR(b.radius, 1.0, 1e-9);
}

TEST(EnclosingBall, SubsetIndexOutOfRangeThrows) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}});
  const std::vector<std::size_t> idx{3};
  EXPECT_THROW((void)smallest_enclosing_ball_l2(ps, idx), InvalidArgument);
}

TEST(EnclosingBall, DeterministicForFixedSeed) {
  rnd::Rng rng(8);
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> p{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    ps.push_back(p);
  }
  const Ball a = smallest_enclosing_ball_l2(ps, std::uint64_t{123});
  const Ball b = smallest_enclosing_ball_l2(ps, std::uint64_t{123});
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.center, b.center);
}

// Property sweep: Welzl == brute force on random 2-D and 3-D sets.
class WelzlVsBruteForce
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(WelzlVsBruteForce, MatchesOracle) {
  const auto [dim, n] = GetParam();
  rnd::Rng rng(1000 * dim + n);
  for (int trial = 0; trial < 25; ++trial) {
    PointSet ps(dim);
    std::vector<double> p(dim);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : p) v = rng.uniform(0.0, 4.0);
      ps.push_back(p);
    }
    const Ball fast = smallest_enclosing_ball_l2(ps, rng.next_u64());
    const Ball slow = brute_force_ball(ps);
    EXPECT_TRUE(ball_covers(fast, ps)) << "dim=" << dim << " n=" << n;
    EXPECT_NEAR(fast.radius, slow.radius, 1e-6)
        << "dim=" << dim << " n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WelzlVsBruteForce,
    ::testing::Values(std::make_tuple(2u, 3u), std::make_tuple(2u, 5u),
                      std::make_tuple(2u, 10u), std::make_tuple(2u, 20u),
                      std::make_tuple(3u, 4u), std::make_tuple(3u, 8u),
                      std::make_tuple(3u, 15u), std::make_tuple(4u, 10u)));

TEST(EnclosingBall, LargeSetIsCoveredAndTight) {
  rnd::Rng rng(77);
  PointSet ps(3);
  std::vector<double> p(3);
  for (int i = 0; i < 2000; ++i) {
    for (auto& v : p) v = rng.normal(0.0, 1.0);
    ps.push_back(p);
  }
  const Ball b = smallest_enclosing_ball_l2(ps);
  EXPECT_TRUE(ball_covers(b, ps));
  // Minimality: some point must lie on (near) the boundary.
  double max_d = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    max_d = std::max(max_d, l2_distance(b.center, ps[i]));
  }
  EXPECT_NEAR(max_d, b.radius, 1e-6);
}

TEST(ApproxEnclosingBall, CoversAndApproximatesL2) {
  rnd::Rng rng(5);
  PointSet ps(2);
  std::vector<double> p(2);
  for (int i = 0; i < 200; ++i) {
    for (auto& v : p) v = rng.uniform(0.0, 4.0);
    ps.push_back(p);
  }
  const Ball approx = approx_enclosing_ball(ps, l2_metric(), 512);
  const Ball exact = smallest_enclosing_ball_l2(ps);
  // approx covers by construction and should be within a few percent.
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LE(l2_distance(approx.center, ps[i]), approx.radius + 1e-9);
  }
  EXPECT_LE(approx.radius, exact.radius * 1.05);
  EXPECT_GE(approx.radius, exact.radius - 1e-9);
}

TEST(ApproxEnclosingBall, WorksUnderL1) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {2.0, 0.0}});
  const Ball b = approx_enclosing_ball(ps, l1_metric(), 256);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LE(l1_distance(b.center, ps[i]), b.radius + 1e-9);
  }
}

}  // namespace
}  // namespace mmph::geo
