// Tests for p-norm metrics: hand values, axioms (property sweeps), parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mmph/geometry/norms.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::geo {
namespace {

TEST(Norms, L1HandValues) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, -4.0};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(l1_distance(b, a), 7.0);
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
}

TEST(Norms, L2HandValues) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(l2_distance(a, b), 5.0);
}

TEST(Norms, LinfHandValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 0.0, 3.5};
  EXPECT_DOUBLE_EQ(linf_distance(a, b), 3.0);
}

TEST(Norms, LpMatchesNamedNormsAtSpecialP) {
  const std::vector<double> a{0.2, -1.5, 3.0};
  const std::vector<double> b{-0.7, 2.0, 1.0};
  EXPECT_NEAR(lp_distance(a, b, 1.0), l1_distance(a, b), 1e-12);
  EXPECT_NEAR(lp_distance(a, b, 2.0), l2_distance(a, b), 1e-12);
  // Large p approaches Linf from above.
  EXPECT_NEAR(lp_distance(a, b, 64.0), linf_distance(a, b), 0.1);
  EXPECT_GE(lp_distance(a, b, 64.0), linf_distance(a, b) - 1e-12);
}

TEST(Norms, LpZeroDistance) {
  const std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(lp_distance(a, a, 3.5), 0.0);
}

TEST(Metric, CanonicalizesSpecialP) {
  EXPECT_EQ(Metric(1.0).norm(), Norm::kL1);
  EXPECT_EQ(Metric(2.0).norm(), Norm::kL2);
  EXPECT_EQ(Metric(std::numeric_limits<double>::infinity()).norm(),
            Norm::kLinf);
  EXPECT_EQ(Metric(3.0).norm(), Norm::kLp);
}

TEST(Metric, RejectsPBelowOne) {
  EXPECT_THROW(Metric(0.5), InvalidArgument);
}

TEST(Metric, DefaultIsEuclidean) {
  const Metric m;
  EXPECT_EQ(m.norm(), Norm::kL2);
  EXPECT_EQ(m.name(), "L2");
}

TEST(Metric, NamesAreStable) {
  EXPECT_EQ(l1_metric().name(), "L1");
  EXPECT_EQ(linf_metric().name(), "Linf");
  EXPECT_EQ(Metric(2.5).name(), "Lp(p=2.5)");
}

TEST(Metric, LengthIsDistanceFromOrigin) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(l2_metric().length(v), 5.0);
  EXPECT_DOUBLE_EQ(l1_metric().length(v), 7.0);
}

TEST(ParseNorm, AcceptsKnownSpellings) {
  EXPECT_EQ(parse_norm("l1"), Norm::kL1);
  EXPECT_EQ(parse_norm("L2"), Norm::kL2);
  EXPECT_EQ(parse_norm("LINF"), Norm::kLinf);
  EXPECT_EQ(parse_norm("1"), Norm::kL1);
  EXPECT_EQ(parse_norm("chebyshev"), Norm::kLinf);
}

TEST(ParseNorm, RejectsUnknown) {
  EXPECT_THROW((void)parse_norm("l3"), ParseError);
  EXPECT_THROW((void)parse_norm(""), ParseError);
}

// --- Property sweeps: norm axioms on random vectors for several p ---

class NormAxioms : public ::testing::TestWithParam<double> {};

TEST_P(NormAxioms, TriangleInequalityAndSymmetry) {
  const double p = GetParam();
  const Metric metric = std::isinf(p) ? linf_metric() : Metric(p);
  rnd::Rng rng(1234 + static_cast<std::uint64_t>(p * 10));
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dim = 1 + trial % 5;
    std::vector<double> a(dim), b(dim), c(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      a[d] = rng.uniform(-10.0, 10.0);
      b[d] = rng.uniform(-10.0, 10.0);
      c[d] = rng.uniform(-10.0, 10.0);
    }
    const double ab = metric.distance(a, b);
    const double ba = metric.distance(b, a);
    const double ac = metric.distance(a, c);
    const double cb = metric.distance(c, b);
    EXPECT_NEAR(ab, ba, 1e-12) << "symmetry, p=" << p;
    EXPECT_LE(ab, ac + cb + 1e-9) << "triangle inequality, p=" << p;
    EXPECT_GE(ab, 0.0) << "non-negativity, p=" << p;
    EXPECT_NEAR(metric.distance(a, a), 0.0, 1e-12) << "identity, p=" << p;
  }
}

TEST_P(NormAxioms, AbsoluteHomogeneity) {
  const double p = GetParam();
  const Metric metric = std::isinf(p) ? linf_metric() : Metric(p);
  rnd::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> v(3);
    for (double& x : v) x = rng.uniform(-5.0, 5.0);
    const double alpha = rng.uniform(-3.0, 3.0);
    std::vector<double> scaled(3);
    for (std::size_t d = 0; d < 3; ++d) scaled[d] = alpha * v[d];
    EXPECT_NEAR(metric.length(scaled), std::fabs(alpha) * metric.length(v),
                1e-9)
        << "p=" << p;
  }
}

TEST_P(NormAxioms, MonotoneNonIncreasingInP) {
  // ||x||_p is non-increasing in p for fixed x.
  const double p = GetParam();
  if (std::isinf(p)) GTEST_SKIP() << "comparison target";
  rnd::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> v(4);
    for (double& x : v) x = rng.uniform(-5.0, 5.0);
    const Metric lo = Metric(p);
    const Metric hi = std::isinf(p + 1.0) ? linf_metric() : Metric(p + 1.0);
    EXPECT_GE(lo.length(v) + 1e-9, hi.length(v)) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(SweepP, NormAxioms,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0,
                                           std::numeric_limits<double>::infinity()));

}  // namespace
}  // namespace mmph::geo
