// Tests for the SoA point container and bounding boxes.

#include <gtest/gtest.h>

#include "mmph/geometry/point_set.hpp"
#include "mmph/support/error.hpp"

namespace mmph::geo {
namespace {

TEST(PointSet, StartsEmpty) {
  const PointSet ps(3);
  EXPECT_EQ(ps.dim(), 3u);
  EXPECT_EQ(ps.size(), 0u);
  EXPECT_TRUE(ps.empty());
}

TEST(PointSet, RejectsZeroDimension) {
  EXPECT_THROW(PointSet(0), InvalidArgument);
}

TEST(PointSet, PushBackAndIndex) {
  PointSet ps(2);
  const std::vector<double> p{1.0, 2.0};
  const std::vector<double> q{-3.0, 0.5};
  ps.push_back(p);
  ps.push_back(q);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps[0][0], 1.0);
  EXPECT_DOUBLE_EQ(ps[0][1], 2.0);
  EXPECT_DOUBLE_EQ(ps[1][0], -3.0);
  EXPECT_DOUBLE_EQ(ps[1][1], 0.5);
}

TEST(PointSet, PushBackRejectsWrongDimension) {
  PointSet ps(2);
  const std::vector<double> bad{1.0, 2.0, 3.0};
  EXPECT_THROW(ps.push_back(bad), InvalidArgument);
}

TEST(PointSet, FromRows) {
  const PointSet ps = PointSet::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(ps.dim(), 2u);
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[2][1], 6.0);
}

TEST(PointSet, FromRowsRejectsRagged) {
  EXPECT_THROW(PointSet::from_rows({{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(PointSet, FlatConstructorValidatesMultiple) {
  EXPECT_THROW(PointSet(2, std::vector<double>{1.0, 2.0, 3.0}),
               InvalidArgument);
  const PointSet ok(2, std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(ok.size(), 2u);
}

TEST(PointSet, MutablePointWritesThrough) {
  PointSet ps = PointSet::from_rows({{1.0, 1.0}});
  auto view = ps.mutable_point(0);
  view[0] = 9.0;
  EXPECT_DOUBLE_EQ(ps[0][0], 9.0);
}

TEST(PointSet, RawBlockIsRowMajor) {
  const PointSet ps = PointSet::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto raw = ps.raw();
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_DOUBLE_EQ(raw[2], 3.0);
}

TEST(PointSet, BoundingBox) {
  const PointSet ps =
      PointSet::from_rows({{1.0, -2.0}, {3.0, 4.0}, {-1.0, 0.0}});
  const Box box = ps.bounding_box();
  EXPECT_DOUBLE_EQ(box.lo[0], -1.0);
  EXPECT_DOUBLE_EQ(box.hi[0], 3.0);
  EXPECT_DOUBLE_EQ(box.lo[1], -2.0);
  EXPECT_DOUBLE_EQ(box.hi[1], 4.0);
}

TEST(PointSet, BoundingBoxOfEmptyThrows) {
  const PointSet ps(2);
  EXPECT_THROW(ps.bounding_box(), InvalidArgument);
}

TEST(PointSet, Centroid) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {2.0, 4.0}});
  const auto c = ps.centroid();
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(Box, CenterAndContains) {
  Box box;
  box.lo = {0.0, 0.0};
  box.hi = {4.0, 2.0};
  const auto c = box.center();
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  const std::vector<double> inside{1.0, 1.0};
  const std::vector<double> outside{5.0, 1.0};
  const std::vector<double> edge{4.0, 2.0};
  EXPECT_TRUE(box.contains(inside));
  EXPECT_FALSE(box.contains(outside));
  EXPECT_TRUE(box.contains(edge));
}

TEST(Box, ContainsRejectsWrongDim) {
  Box box;
  box.lo = {0.0};
  box.hi = {1.0};
  const std::vector<double> p2{0.5, 0.5};
  EXPECT_FALSE(box.contains(p2));
}

TEST(VecHelpers, DotAndNorm) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm2_sq(a), 14.0);
  EXPECT_DOUBLE_EQ(dist2_sq(a, a), 0.0);
}

TEST(VecHelpers, AssignSubAddScaled) {
  std::vector<double> dst(2, 0.0);
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{0.5, 0.5};
  assign(dst, a);
  EXPECT_DOUBLE_EQ(dst[1], 2.0);
  add_scaled(dst, 2.0, b);
  EXPECT_DOUBLE_EQ(dst[0], 2.0);
  EXPECT_DOUBLE_EQ(dst[1], 3.0);
  std::vector<double> diff(2);
  sub(diff, a, b);
  EXPECT_DOUBLE_EQ(diff[0], 0.5);
  zero(diff);
  EXPECT_DOUBLE_EQ(diff[0], 0.0);
}

TEST(VecHelpers, ApproxEqual) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0 + 1e-13, 2.0};
  const std::vector<double> c{1.1, 2.0};
  const std::vector<double> d{1.0};
  EXPECT_TRUE(approx_equal(a, b));
  EXPECT_FALSE(approx_equal(a, c));
  EXPECT_FALSE(approx_equal(a, d));
}

}  // namespace
}  // namespace mmph::geo
