// Tests for the cell-list spatial index against brute-force ball queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "mmph/geometry/cell_grid.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::geo {
namespace {

PointSet random_points(std::size_t n, std::size_t dim, std::uint64_t seed,
                       double side = 4.0) {
  rnd::Rng rng(seed);
  PointSet ps(dim);
  ps.reserve(n);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = rng.uniform(0.0, side);
    ps.push_back(p);
  }
  return ps;
}

std::vector<std::size_t> brute_ball(const PointSet& ps, ConstVec center,
                                    double radius, const Metric& metric) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (metric.distance(center, ps[i]) <= radius) out.push_back(i);
  }
  return out;
}

TEST(CellGrid, Validation) {
  const PointSet ps = random_points(5, 2, 1);
  EXPECT_THROW(CellGrid(ps, 0.0), InvalidArgument);
  EXPECT_THROW(CellGrid(ps, -1.0), InvalidArgument);
  const PointSet empty(2);
  EXPECT_THROW(CellGrid(empty, 1.0), InvalidArgument);
}

TEST(CellGrid, TooManyCellsGuard) {
  const PointSet ps = random_points(5, 3, 2, 1000.0);
  EXPECT_THROW(CellGrid(ps, 1e-3), InvalidArgument);
}

TEST(CellGrid, SinglePoint) {
  const PointSet ps = PointSet::from_rows({{1.0, 1.0}});
  const CellGrid grid(ps, 1.0);
  const std::vector<double> q{1.0, 1.0};
  const auto hits = grid.query_ball(q, 0.5, l2_metric());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(CellGrid, QueryMissesFarPoints) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {3.9, 3.9}});
  const CellGrid grid(ps, 1.0);
  const std::vector<double> q{0.0, 0.0};
  const auto hits = grid.query_ball(q, 1.0, l2_metric());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(CellGrid, BoxVisitIsSupersetOfBall) {
  const PointSet ps = random_points(200, 2, 3);
  const CellGrid grid(ps, 1.0);
  rnd::Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> q{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    std::set<std::size_t> visited;
    grid.for_each_in_box(q, 1.0, [&](std::size_t i) { visited.insert(i); });
    for (std::size_t i : brute_ball(ps, q, 1.0, l2_metric())) {
      EXPECT_TRUE(visited.count(i)) << "ball point escaped the box visit";
    }
  }
}

TEST(CellGrid, EachPointVisitedAtMostOnce) {
  const PointSet ps = random_points(300, 2, 5);
  const CellGrid grid(ps, 0.7);
  const std::vector<double> q{2.0, 2.0};
  std::vector<int> counts(ps.size(), 0);
  grid.for_each_in_box(q, 1.3, [&](std::size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_LE(c, 1);
}

class CellGridQuerySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {
};

TEST_P(CellGridQuerySweep, MatchesBruteForceAcrossMetrics) {
  const auto [dim, cell_size, norm_id] = GetParam();
  const Metric metric = norm_id == 1   ? l1_metric()
                        : norm_id == 2 ? l2_metric()
                                       : linf_metric();
  const PointSet ps = random_points(150, dim, 6 + dim);
  const CellGrid grid(ps, cell_size);
  rnd::Rng rng(7 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(dim);
    // Include out-of-box query centers.
    for (auto& v : q) v = rng.uniform(-1.0, 5.0);
    const double radius = rng.uniform(0.1, 2.5);
    EXPECT_EQ(grid.query_ball(q, radius, metric),
              brute_ball(ps, q, radius, metric))
        << "dim=" << dim << " cell=" << cell_size << " norm=" << norm_id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CellGridQuerySweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3}),
                       ::testing::Values(0.3, 1.0, 5.0),
                       ::testing::Values(1, 2, 0)));

TEST(CellGrid, ZeroRadiusQuery) {
  const PointSet ps = PointSet::from_rows({{1.0, 1.0}, {2.0, 2.0}});
  const CellGrid grid(ps, 1.0);
  const std::vector<double> q{1.0, 1.0};
  const auto hits = grid.query_ball(q, 0.0, l2_metric());
  ASSERT_EQ(hits.size(), 1u);
}

TEST(CellGrid, QueryDimensionMismatchThrows) {
  const PointSet ps = PointSet::from_rows({{1.0, 1.0}});
  const CellGrid grid(ps, 1.0);
  const std::vector<double> q{1.0, 1.0, 1.0};
  EXPECT_THROW((void)grid.query_ball(q, 1.0, l2_metric()), InvalidArgument);
}

TEST(CellGrid, CellCountReflectsOccupancy) {
  // Two clusters far apart: at least 2 occupied cells with small cells.
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {3.9, 3.9}});
  const CellGrid grid(ps, 0.5);
  EXPECT_EQ(grid.cell_count(), 2u);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 0.5);
}

}  // namespace
}  // namespace mmph::geo
