// Tests for the kd-tree: ball queries vs brute force across metrics and
// densities, nearest-neighbor correctness, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "mmph/geometry/cell_grid.hpp"
#include "mmph/geometry/kd_tree.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::geo {
namespace {

PointSet uniform_points(std::size_t n, std::size_t dim, std::uint64_t seed) {
  rnd::Rng rng(seed);
  PointSet ps(dim);
  ps.reserve(n);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = rng.uniform(0.0, 4.0);
    ps.push_back(p);
  }
  return ps;
}

PointSet clustered_points(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.placement = rnd::Placement::kClustered;
  spec.clusters = 3;
  spec.cluster_stddev = 0.2;
  rnd::Rng rng(seed);
  return rnd::generate_workload(spec, rng).points;
}

std::vector<std::size_t> brute_ball(const PointSet& ps, ConstVec center,
                                    double radius, const Metric& metric) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (metric.distance(center, ps[i]) <= radius) out.push_back(i);
  }
  return out;
}

std::size_t brute_nearest(const PointSet& ps, ConstVec center,
                          const Metric& metric) {
  std::size_t best = 0;
  double best_d = metric.distance(center, ps[0]);
  for (std::size_t i = 1; i < ps.size(); ++i) {
    const double d = metric.distance(center, ps[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

TEST(KdTree, Validation) {
  EXPECT_THROW(KdTree(PointSet(2)), InvalidArgument);
  const PointSet ps = uniform_points(10, 2, 1);
  EXPECT_THROW(KdTree(ps, 0), InvalidArgument);
}

TEST(KdTree, SinglePoint) {
  const PointSet ps = PointSet::from_rows({{1.0, 2.0}});
  const KdTree tree(ps);
  EXPECT_EQ(tree.size(), 1u);
  const std::vector<double> q{1.0, 2.0};
  EXPECT_EQ(tree.nearest(q, l2_metric()), 0u);
  EXPECT_EQ(tree.query_ball(q, 0.0, l2_metric()).size(), 1u);
}

TEST(KdTree, AllIdenticalPoints) {
  PointSet ps(2);
  const std::vector<double> p{1.0, 1.0};
  for (int i = 0; i < 20; ++i) ps.push_back(p);
  const KdTree tree(ps, 4);
  const std::vector<double> q{1.0, 1.0};
  EXPECT_EQ(tree.query_ball(q, 0.1, l2_metric()).size(), 20u);
}

TEST(KdTree, QueryDimensionMismatchThrows) {
  const PointSet ps = uniform_points(5, 2, 2);
  const KdTree tree(ps);
  const std::vector<double> q3{0.0, 0.0, 0.0};
  EXPECT_THROW((void)tree.query_ball(q3, 1.0, l2_metric()), InvalidArgument);
  EXPECT_THROW((void)tree.nearest(q3, l2_metric()), InvalidArgument);
}

class KdTreeQuerySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int, bool>> {
};

TEST_P(KdTreeQuerySweep, BallQueriesMatchBruteForce) {
  const auto [dim, norm_id, leaf_size, clustered] = GetParam();
  const Metric metric = norm_id == 1   ? l1_metric()
                        : norm_id == 2 ? l2_metric()
                                       : linf_metric();
  const PointSet ps = clustered && dim == 2
                          ? clustered_points(180, 17)
                          : uniform_points(180, dim, 11 + dim);
  const KdTree tree(ps, static_cast<std::size_t>(leaf_size));
  rnd::Rng rng(13 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(ps.dim());
    for (auto& v : q) v = rng.uniform(-1.0, 5.0);
    const double radius = rng.uniform(0.0, 2.5);
    EXPECT_EQ(tree.query_ball(q, radius, metric),
              brute_ball(ps, q, radius, metric))
        << "dim=" << dim << " norm=" << norm_id << " leaf=" << leaf_size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeQuerySweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{4}),
                       ::testing::Values(1, 2, 0),
                       ::testing::Values(1, 8),
                       ::testing::Values(false, true)));

TEST(KdTree, NearestMatchesBruteForceAcrossMetrics) {
  const PointSet ps = uniform_points(150, 2, 19);
  const KdTree tree(ps);
  rnd::Rng rng(23);
  for (const Metric& metric :
       {l1_metric(), l2_metric(), linf_metric(), Metric(3.0)}) {
    for (int trial = 0; trial < 30; ++trial) {
      const std::vector<double> q{rng.uniform(-1.0, 5.0),
                                  rng.uniform(-1.0, 5.0)};
      const std::size_t got = tree.nearest(q, metric);
      const std::size_t want = brute_nearest(ps, q, metric);
      // Allow distinct indices only at exactly equal distance.
      EXPECT_DOUBLE_EQ(metric.distance(q, ps[got]),
                       metric.distance(q, ps[want]));
    }
  }
}

TEST(KdTree, KNearestMatchesBruteForce) {
  const PointSet ps = uniform_points(120, 2, 43);
  const KdTree tree(ps, 4);
  rnd::Rng rng(47);
  for (const Metric& metric : {l1_metric(), l2_metric(), linf_metric()}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::vector<double> q{rng.uniform(-1.0, 5.0),
                                  rng.uniform(-1.0, 5.0)};
      const std::size_t k = 1 + static_cast<std::size_t>(trial % 12);
      const auto got = tree.k_nearest(q, k, metric);
      ASSERT_EQ(got.size(), k);
      // Brute force: sort all points by (distance, index).
      std::vector<std::pair<double, std::size_t>> all;
      for (std::size_t i = 0; i < ps.size(); ++i) {
        all.emplace_back(metric.distance(q, ps[i]), i);
      }
      std::sort(all.begin(), all.end());
      for (std::size_t j = 0; j < k; ++j) {
        // Compare by distance (ties may legitimately reorder indices).
        EXPECT_DOUBLE_EQ(metric.distance(q, ps[got[j]]), all[j].first)
            << "k=" << k << " j=" << j;
      }
      // Results come back sorted by distance.
      for (std::size_t j = 1; j < k; ++j) {
        EXPECT_LE(metric.distance(q, ps[got[j - 1]]),
                  metric.distance(q, ps[got[j]]) + 1e-15);
      }
    }
  }
}

TEST(KdTree, KNearestClampsAndValidates) {
  const PointSet ps = uniform_points(5, 2, 44);
  const KdTree tree(ps);
  const std::vector<double> q{1.0, 1.0};
  EXPECT_EQ(tree.k_nearest(q, 100, l2_metric()).size(), 5u);
  EXPECT_THROW((void)tree.k_nearest(q, 0, l2_metric()), InvalidArgument);
  const std::vector<double> q3{1.0, 1.0, 1.0};
  EXPECT_THROW((void)tree.k_nearest(q3, 2, l2_metric()), InvalidArgument);
}

TEST(KdTree, KNearestOneMatchesNearest) {
  const PointSet ps = uniform_points(80, 3, 45);
  const KdTree tree(ps);
  rnd::Rng rng(46);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.uniform(0.0, 4.0);
    const auto top = tree.k_nearest(q, 1, l2_metric());
    EXPECT_DOUBLE_EQ(l2_distance(q, ps[top[0]]),
                     l2_distance(q, ps[tree.nearest(q, l2_metric())]));
  }
}

TEST(KdTree, AgreesWithCellGrid) {
  const PointSet ps = clustered_points(200, 29);
  const KdTree tree(ps);
  const CellGrid grid(ps, 1.0);
  rnd::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<double> q{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    const double r = rng.uniform(0.2, 2.0);
    EXPECT_EQ(tree.query_ball(q, r, l2_metric()),
              grid.query_ball(q, r, l2_metric()));
  }
}

TEST(KdTree, DeterministicVisitOrder) {
  const PointSet ps = uniform_points(100, 2, 37);
  const KdTree tree(ps, 4);
  const std::vector<double> q{2.0, 2.0};
  std::vector<std::size_t> first, second;
  tree.for_each_in_ball(q, 1.5, l2_metric(),
                        [&](std::size_t i) { first.push_back(i); });
  tree.for_each_in_ball(q, 1.5, l2_metric(),
                        [&](std::size_t i) { second.push_back(i); });
  EXPECT_EQ(first, second);
}

TEST(KdTree, NodeCountIsSane) {
  const PointSet ps = uniform_points(256, 2, 41);
  const KdTree tree(ps, 8);
  // A balanced split to <= 8-point leaves needs at least n/8 leaves and
  // fewer than 2n nodes total.
  EXPECT_GE(tree.node_count(), 256u / 8u);
  EXPECT_LT(tree.node_count(), 2u * 256u);
}

}  // namespace
}  // namespace mmph::geo
