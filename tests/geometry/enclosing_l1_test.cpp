// Tests for the L1/Linf enclosing shapes and the metric dispatch.

#include <gtest/gtest.h>

#include <algorithm>

#include "mmph/geometry/enclosing.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::geo {
namespace {

double max_distance(const Ball& ball, const PointSet& ps,
                    const Metric& metric) {
  double mx = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    mx = std::max(mx, metric.distance(ball.center, ps[i]));
  }
  return mx;
}

TEST(EnclosingBoxLinf, EmptySet) {
  EXPECT_TRUE(enclosing_box_linf(PointSet(2)).is_empty());
}

TEST(EnclosingBoxLinf, MidpointRuleIsExact) {
  const PointSet ps =
      PointSet::from_rows({{0.0, 0.0}, {4.0, 1.0}, {2.0, 3.0}});
  const Ball b = enclosing_box_linf(ps);
  EXPECT_DOUBLE_EQ(b.center[0], 2.0);
  EXPECT_DOUBLE_EQ(b.center[1], 1.5);
  EXPECT_DOUBLE_EQ(b.radius, 2.0);  // max half-extent (x: 2, y: 1.5)
  EXPECT_NEAR(max_distance(b, ps, linf_metric()), b.radius, 1e-12);
}

TEST(EnclosingBoxLinf, OptimalityOnRandomSets) {
  // The Linf midpoint center is provably optimal: no other center can have
  // a smaller max Linf distance. Sanity-check against random candidates.
  rnd::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    PointSet ps(3);
    std::vector<double> p(3);
    for (int i = 0; i < 20; ++i) {
      for (auto& v : p) v = rng.uniform(0.0, 4.0);
      ps.push_back(p);
    }
    const Ball b = enclosing_box_linf(ps);
    for (int c = 0; c < 20; ++c) {
      std::vector<double> alt(3);
      for (auto& v : alt) v = rng.uniform(0.0, 4.0);
      Ball alt_ball;
      alt_ball.center = alt;
      alt_ball.radius = max_distance(alt_ball, ps, linf_metric());
      EXPECT_GE(alt_ball.radius + 1e-12, b.radius);
    }
  }
}

TEST(EnclosingL1Projection, CoversAllPoints) {
  rnd::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dim = 2 + trial % 3;
    PointSet ps(dim);
    std::vector<double> p(dim);
    for (int i = 0; i < 15; ++i) {
      for (auto& v : p) v = rng.uniform(0.0, 4.0);
      ps.push_back(p);
    }
    const Ball b = enclosing_ball_l1_projection(ps);
    EXPECT_NEAR(max_distance(b, ps, l1_metric()), b.radius, 1e-12);
  }
}

TEST(EnclosingL1Exact2D, RequiresTwoD) {
  const PointSet ps3 = PointSet::from_rows({{0.0, 0.0, 0.0}});
  EXPECT_THROW(enclosing_ball_l1_2d(ps3), InvalidArgument);
}

TEST(EnclosingL1Exact2D, DiagonalPairHasHalfL1Radius) {
  // L1 distance between the two points is 4; optimal radius is 2, achieved
  // anywhere on the "midpoint segment" of the rotated box.
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {2.0, 2.0}});
  const Ball b = enclosing_ball_l1_2d(ps);
  EXPECT_NEAR(b.radius, 2.0, 1e-12);
  EXPECT_NEAR(max_distance(b, ps, l1_metric()), 2.0, 1e-12);
}

TEST(EnclosingL1Exact2D, NeverWorseThanProjection) {
  rnd::Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    PointSet ps(2);
    std::vector<double> p(2);
    const int n = 2 + trial % 12;
    for (int i = 0; i < n; ++i) {
      p[0] = rng.uniform(0.0, 4.0);
      p[1] = rng.uniform(0.0, 4.0);
      ps.push_back(p);
    }
    const Ball exact = enclosing_ball_l1_2d(ps);
    const Ball proj = enclosing_ball_l1_projection(ps);
    EXPECT_LE(exact.radius, proj.radius + 1e-9) << "trial=" << trial;
    // Both must cover.
    EXPECT_LE(max_distance(exact, ps, l1_metric()), exact.radius + 1e-9);
    EXPECT_LE(max_distance(proj, ps, l1_metric()), proj.radius + 1e-9);
  }
}

TEST(EnclosingL1Exact2D, OptimalOnRandomSetsVsSampledCenters) {
  rnd::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    PointSet ps(2);
    std::vector<double> p(2);
    for (int i = 0; i < 10; ++i) {
      p[0] = rng.uniform(0.0, 4.0);
      p[1] = rng.uniform(0.0, 4.0);
      ps.push_back(p);
    }
    const Ball b = enclosing_ball_l1_2d(ps);
    for (int c = 0; c < 50; ++c) {
      std::vector<double> alt{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
      Ball alt_ball;
      alt_ball.center = alt;
      alt_ball.radius = max_distance(alt_ball, ps, l1_metric());
      EXPECT_GE(alt_ball.radius + 1e-12, b.radius);
    }
  }
}

TEST(SmallestEnclosingDispatch, PicksWelzlForL2) {
  const PointSet ps = PointSet::from_rows(
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}});
  const Ball b = smallest_enclosing(ps, l2_metric());
  EXPECT_NEAR(b.radius, std::sqrt(2.0), 1e-9);
}

TEST(SmallestEnclosingDispatch, PicksBoxForLinf) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {4.0, 2.0}});
  const Ball b = smallest_enclosing(ps, linf_metric());
  EXPECT_DOUBLE_EQ(b.radius, 2.0);
}

TEST(SmallestEnclosingDispatch, L1DefaultsToPaperProjection) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {2.0, 2.0}});
  const Ball proj = smallest_enclosing(ps, l1_metric());
  const Ball expected = enclosing_ball_l1_projection(ps);
  EXPECT_EQ(proj.center, expected.center);
  EXPECT_EQ(proj.radius, expected.radius);
}

TEST(SmallestEnclosingDispatch, L1ExactModeIn2D) {
  const PointSet ps = PointSet::from_rows(
      {{0.0, 0.0}, {2.0, 2.0}, {1.0, 0.2}});
  const Ball exact =
      smallest_enclosing(ps, l1_metric(), L1CenterRule::kExactIfPossible);
  const Ball reference = enclosing_ball_l1_2d(ps);
  EXPECT_EQ(exact.radius, reference.radius);
}

TEST(SmallestEnclosingDispatch, L1ExactModeFallsBackIn3D) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0, 0.0}, {2.0, 2.0, 0.0}});
  const Ball b =
      smallest_enclosing(ps, l1_metric(), L1CenterRule::kExactIfPossible);
  const Ball expected = enclosing_ball_l1_projection(ps);
  EXPECT_EQ(b.center, expected.center);
}

TEST(SmallestEnclosingDispatch, GeneralLpUsesApproximation) {
  const PointSet ps = PointSet::from_rows({{0.0, 0.0}, {2.0, 0.0}});
  const Metric m(3.0);
  const Ball b = smallest_enclosing(ps, m);
  EXPECT_FALSE(b.is_empty());
  EXPECT_LE(max_distance(b, ps, m), b.radius + 1e-9);
}

TEST(SmallestEnclosingDispatch, EmptySet) {
  EXPECT_TRUE(smallest_enclosing(PointSet(2), l2_metric()).is_empty());
}

}  // namespace
}  // namespace mmph::geo
