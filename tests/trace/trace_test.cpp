// Tests for problem/solution trace serialization: round-trips, format
// errors, file helpers.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"
#include "mmph/trace/trace.hpp"

namespace mmph::trace {
namespace {

core::Problem random_problem(geo::Metric metric, std::size_t dim,
                             std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = 15;
  spec.dim = dim;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng),
                                      1.25, metric);
}

TEST(TraceProblem, RoundTripIsExact) {
  for (geo::Metric metric :
       {geo::l1_metric(), geo::l2_metric(), geo::linf_metric(),
        geo::Metric(3.5)}) {
    const core::Problem original = random_problem(metric, 2, 1);
    std::stringstream buf;
    write_problem(buf, original);
    const core::Problem loaded = read_problem(buf);

    ASSERT_EQ(loaded.size(), original.size());
    ASSERT_EQ(loaded.dim(), original.dim());
    EXPECT_EQ(loaded.metric().norm(), original.metric().norm());
    EXPECT_DOUBLE_EQ(loaded.metric().p(), original.metric().p());
    EXPECT_DOUBLE_EQ(loaded.radius(), original.radius());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_DOUBLE_EQ(loaded.weight(i), original.weight(i));
      for (std::size_t d = 0; d < original.dim(); ++d) {
        EXPECT_DOUBLE_EQ(loaded.point(i)[d], original.point(i)[d]);
      }
    }
  }
}

TEST(TraceProblem, RoundTripPreservesSolverBehavior) {
  const core::Problem original = random_problem(geo::l2_metric(), 3, 2);
  std::stringstream buf;
  write_problem(buf, original);
  const core::Problem loaded = read_problem(buf);
  const double a =
      core::GreedyComplexSolver().solve(original, 3).total_reward;
  const double b = core::GreedyComplexSolver().solve(loaded, 3).total_reward;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(TraceSolution, RoundTripIsExact) {
  const core::Problem p = random_problem(geo::l2_metric(), 2, 3);
  const core::Solution original = core::GreedyComplexSolver().solve(p, 3);
  std::stringstream buf;
  write_solution(buf, original);
  const core::Solution loaded = read_solution(buf);

  EXPECT_EQ(loaded.solver_name, original.solver_name);
  ASSERT_EQ(loaded.centers.size(), original.centers.size());
  EXPECT_DOUBLE_EQ(loaded.total_reward, original.total_reward);
  for (std::size_t j = 0; j < original.centers.size(); ++j) {
    EXPECT_DOUBLE_EQ(loaded.round_rewards[j], original.round_rewards[j]);
    for (std::size_t d = 0; d < original.centers.dim(); ++d) {
      EXPECT_DOUBLE_EQ(loaded.centers[j][d], original.centers[j][d]);
    }
  }
  // Loaded solution evaluates identically against the problem.
  EXPECT_DOUBLE_EQ(core::objective_value(p, loaded.centers),
                   core::objective_value(p, original.centers));
}

TEST(TraceProblem, MalformedInputsThrowParseError) {
  const auto expect_parse_error = [](const std::string& text) {
    std::stringstream buf(text);
    EXPECT_THROW((void)read_problem(buf), ParseError) << text;
  };
  expect_parse_error("");
  expect_parse_error("wrong-magic v1");
  expect_parse_error("mmph-problem v2");
  expect_parse_error("mmph-problem v1\ndim 0\n");
  expect_parse_error("mmph-problem v1\ndim 2\nmetric L7\n");
  expect_parse_error(
      "mmph-problem v1\ndim 2\nmetric L2\nradius abc\n");
  expect_parse_error(
      "mmph-problem v1\ndim 2\nmetric L2\nradius 1\nshape quadratic\n");
  expect_parse_error(
      "mmph-problem v1\ndim 2\nmetric L2\nradius 1\nshape linear\nn 1\npoint 1 0\n");
  // Invalid semantic content (negative weight) surfaces as ParseError too.
  expect_parse_error(
      "mmph-problem v1\ndim 2\nmetric L2\nradius 1\nshape linear\nn 1\npoint -1 0 0\n");
}

TEST(TraceSolution, MalformedInputsThrowParseError) {
  std::stringstream empty;
  EXPECT_THROW((void)read_solution(empty), ParseError);
  std::stringstream truncated(
      "mmph-solution v1\nsolver g\ndim 2\nk 2\ntotal 1\ncenter 0.5 1 1\n");
  EXPECT_THROW((void)read_solution(truncated), ParseError);
}

TEST(TraceFiles, SaveAndLoad) {
  const std::string problem_path = "/tmp/mmph_trace_test_problem.txt";
  const std::string solution_path = "/tmp/mmph_trace_test_solution.txt";
  const core::Problem p = random_problem(geo::l1_metric(), 2, 4);
  const core::Solution s = core::GreedyComplexSolver().solve(p, 2);

  save_problem(problem_path, p);
  save_solution(solution_path, s);
  const core::Problem lp = load_problem(problem_path);
  const core::Solution ls = load_solution(solution_path);
  EXPECT_EQ(lp.size(), p.size());
  EXPECT_DOUBLE_EQ(ls.total_reward, s.total_reward);
  std::remove(problem_path.c_str());
  std::remove(solution_path.c_str());
}

TEST(TraceFiles, UnopenableFileThrowsStateError) {
  EXPECT_THROW((void)load_problem("/nonexistent/dir/x.txt"), StateError);
  const core::Problem p = random_problem(geo::l2_metric(), 2, 5);
  EXPECT_THROW(save_problem("/nonexistent/dir/x.txt", p), StateError);
}

TEST(TraceFormat, HumanReadableHeader) {
  const core::Problem p = random_problem(geo::l2_metric(), 2, 6);
  std::stringstream buf;
  write_problem(buf, p);
  const std::string text = buf.str();
  EXPECT_EQ(text.rfind("mmph-problem v1\ndim 2\nmetric L2\n", 0), 0u);
}

}  // namespace
}  // namespace mmph::trace
