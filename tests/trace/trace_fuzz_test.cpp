// Robustness tests for the trace reader: randomly mutated valid traces
// must either parse (to a valid Problem) or throw ParseError — never
// crash, hang, or propagate anything else.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mmph/core/greedy_simple.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"
#include "mmph/trace/trace.hpp"

namespace mmph::trace {
namespace {

std::string valid_problem_text(std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = 8;
  rnd::Rng rng(seed);
  const core::Problem p = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  std::ostringstream os;
  write_problem(os, p);
  return os.str();
}

// Attempts a parse; passes iff it returns cleanly or throws ParseError.
void expect_parse_or_parse_error(const std::string& text) {
  std::istringstream is(text);
  try {
    const core::Problem p = read_problem(is);
    // If it parsed, the object must be usable.
    EXPECT_GE(p.size(), 1u);
    EXPECT_GT(p.radius(), 0.0);
    (void)core::GreedySimpleSolver().solve(p, 1);
  } catch (const ParseError&) {
    // acceptable
  } catch (const std::exception& e) {
    FAIL() << "unexpected exception type: " << e.what() << "\ninput:\n"
           << text.substr(0, 200);
  }
}

TEST(TraceFuzz, TruncationsAtEveryByte) {
  const std::string base = valid_problem_text(1);
  // Truncate at a spread of offsets (every byte is overkill but cheap).
  for (std::size_t cut = 0; cut < base.size(); cut += 3) {
    expect_parse_or_parse_error(base.substr(0, cut));
  }
}

TEST(TraceFuzz, SingleCharacterCorruptions) {
  const std::string base = valid_problem_text(2);
  rnd::Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(base.size()) - 1));
    const char replacement = static_cast<char>(rng.uniform_int(32, 126));
    mutated[pos] = replacement;
    expect_parse_or_parse_error(mutated);
  }
}

TEST(TraceFuzz, LineDeletions) {
  const std::string base = valid_problem_text(4);
  std::vector<std::string> lines;
  std::istringstream is(base);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  for (std::size_t drop = 0; drop < lines.size(); ++drop) {
    std::ostringstream os;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i != drop) os << lines[i] << "\n";
    }
    expect_parse_or_parse_error(os.str());
  }
}

TEST(TraceFuzz, RandomGarbage) {
  rnd::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 400));
    for (int i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.uniform_int(9, 126));
    }
    expect_parse_or_parse_error(garbage);
  }
}

TEST(TraceFuzz, NumbersReplacedWithExtremes) {
  const std::string base = valid_problem_text(6);
  for (const char* extreme :
       {"1e309", "-1e309", "nan", "inf", "-inf", "0", "-0"}) {
    // Replace the radius value.
    std::string mutated = base;
    const std::size_t pos = mutated.find("radius ");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t eol = mutated.find('\n', pos);
    mutated = mutated.substr(0, pos + 7) + extreme + mutated.substr(eol);
    expect_parse_or_parse_error(mutated);
  }
}

TEST(TraceFuzz, SolutionReaderRobustToTruncation) {
  core::Solution sol;
  sol.solver_name = "greedy3";
  sol.centers = geo::PointSet::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  sol.round_rewards = {2.0, 1.0};
  sol.total_reward = 3.0;
  std::ostringstream os;
  write_solution(os, sol);
  const std::string base = os.str();
  for (std::size_t cut = 0; cut < base.size(); cut += 2) {
    std::istringstream is(base.substr(0, cut));
    try {
      (void)read_solution(is);
    } catch (const ParseError&) {
    } catch (const std::exception& e) {
      FAIL() << "unexpected exception: " << e.what();
    }
  }
}

}  // namespace
}  // namespace mmph::trace
