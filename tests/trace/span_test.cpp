// SpanCollector / ScopedSpan: disabled collectors cost nothing, enabled
// collectors aggregate by name, and the global collector is shared.

#include "mmph/trace/span.hpp"

#include <gtest/gtest.h>

namespace mmph::trace {
namespace {

TEST(SpanCollector, DisabledRecordsNothing) {
  SpanCollector collector;
  EXPECT_FALSE(collector.enabled());
  collector.record("stage", 1.0);
  { ScopedSpan span("scoped", collector); }
  EXPECT_TRUE(collector.stats().empty());
}

TEST(SpanCollector, AggregatesByName) {
  SpanCollector collector;
  collector.set_enabled(true);
  collector.record("merge", 0.25);
  collector.record("merge", 0.75);
  collector.record("shard", 0.5);

  const std::vector<SpanStats> stats = collector.stats();
  ASSERT_EQ(stats.size(), 2u);  // sorted by name: merge, shard
  EXPECT_EQ(stats[0].name, "merge");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_DOUBLE_EQ(stats[0].total_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].max_seconds, 0.75);
  EXPECT_DOUBLE_EQ(stats[0].mean_seconds(), 0.5);
  EXPECT_EQ(stats[1].name, "shard");
  EXPECT_EQ(stats[1].count, 1u);
}

TEST(SpanCollector, ScopedSpanReportsElapsedTime) {
  SpanCollector collector;
  collector.set_enabled(true);
  { ScopedSpan span("work", collector); }
  const std::vector<SpanStats> stats = collector.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "work");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_GE(stats[0].total_seconds, 0.0);
}

TEST(SpanCollector, ResetClearsStatsButNotEnable) {
  SpanCollector collector;
  collector.set_enabled(true);
  collector.record("x", 1.0);
  collector.reset();
  EXPECT_TRUE(collector.stats().empty());
  EXPECT_TRUE(collector.enabled());
}

TEST(SpanCollector, GlobalIsShared) {
  SpanCollector::global().set_enabled(true);
  SpanCollector::global().reset();
  { ScopedSpan span("global-stage"); }
  const std::vector<SpanStats> stats = SpanCollector::global().stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "global-stage");
  SpanCollector::global().set_enabled(false);
  SpanCollector::global().reset();
}

}  // namespace
}  // namespace mmph::trace
