#!/bin/sh
# Two-process smoke test of the kStats scrape path: start `mmph_cli
# serve-net --listen` on an ephemeral loopback port, push a small replay
# through it, then scrape `mmph_cli stats` and check that the Prometheus
# exposition carries non-zero counters from all three registries (net,
# serve, trace spans come and go with enablement so only net/serve are
# asserted). Used both by tools/check.sh stats-smoke and by
# tests/cli_test.sh (ctest). Usage: stats_smoke.sh <path-to-mmph_cli>
set -e
CLI="$1"
[ -n "$CLI" ] || { echo "usage: stats_smoke.sh <mmph_cli>"; exit 2; }
DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

# Start the server on an ephemeral port (0 = kernel-assigned, published
# via a port file; --run-seconds caps the lifetime so a wedged test
# cannot leak a process). A bind/listen failure — possible when the host
# is churning sockets even with kernel-assigned ports — retries with a
# fresh attempt instead of flaking; any other premature death, or a
# timeout waiting for the port file, fails loudly with the server log.
attempt=0
while :; do
  attempt=$((attempt + 1))
  rm -f "$DIR/port"
  "$CLI" serve-net --listen --port 0 --port-file "$DIR/port" \
    --run-seconds 30 --wal-dir "$DIR/wal" > "$DIR/server.log" 2>&1 &
  SERVER_PID=$!

  tries=0
  while [ ! -s "$DIR/port" ]; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      wait "$SERVER_PID" 2>/dev/null || true
      SERVER_PID=""
      if [ "$attempt" -lt 3 ] && grep -Eq "bind|listen" "$DIR/server.log"; then
        echo "server bind failed (attempt $attempt), retrying with a fresh port" >&2
        sleep 0.2
        continue 2
      fi
      echo "server died before publishing its port; server log:"
      cat "$DIR/server.log"
      exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 50 ]; then
      echo "timed out waiting for the server port file; server log:"
      cat "$DIR/server.log"
      exit 1
    fi
    sleep 0.1
  done
  break
done
PORT=$(cat "$DIR/port")

# Generate some traffic so the counters and the latency histogram move.
"$CLI" serve-net --connect 127.0.0.1 --port "$PORT" \
  --users 100 --slots 3 --churn 0.02 > "$DIR/client.txt"
grep -q "requests failed *0" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }

# Scrape: the exposition must show the requests that just happened, a
# moving latency histogram, and the service-level submit counter.
"$CLI" stats --port "$PORT" > "$DIR/stats.txt"
grep -Eq "^mmph_net_requests_total [1-9]" "$DIR/stats.txt" \
  || { echo "missing net requests"; cat "$DIR/stats.txt"; exit 1; }
grep -Eq "^mmph_serve_submitted_total [1-9]" "$DIR/stats.txt" \
  || { echo "missing serve submitted"; cat "$DIR/stats.txt"; exit 1; }
grep -Eq "^mmph_net_request_latency_seconds_count [1-9]" "$DIR/stats.txt" \
  || { echo "missing latency histogram"; cat "$DIR/stats.txt"; exit 1; }
grep -q "mmph_net_request_latency_seconds_bucket{le=\"+Inf\"}" "$DIR/stats.txt" \
  || { echo "missing +Inf bucket"; cat "$DIR/stats.txt"; exit 1; }

# The server runs with --wal-dir, so the exposition must merge the WAL
# registry (appends moved with the replay) and carry the replication lag
# gauge (0 on a primary, but always present).
grep -Eq "^mmph_wal_appends_total [1-9]" "$DIR/stats.txt" \
  || { echo "missing wal appends"; cat "$DIR/stats.txt"; exit 1; }
grep -Eq "^mmph_wal_fsync_seconds_count [0-9]" "$DIR/stats.txt" \
  || { echo "missing wal fsync histogram"; cat "$DIR/stats.txt"; exit 1; }
grep -Eq "^mmph_repl_lag_ops [0-9]" "$DIR/stats.txt" \
  || { echo "missing repl lag gauge"; cat "$DIR/stats.txt"; exit 1; }

# Scrapes are idempotent reads: a second one still answers.
"$CLI" stats --port "$PORT" > "$DIR/stats2.txt"
grep -Eq "^mmph_net_requests_total [1-9]" "$DIR/stats2.txt" \
  || { echo "second scrape failed"; cat "$DIR/stats2.txt"; exit 1; }

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "stats_smoke OK"
