// Codec tests for the WAL record and snapshot formats: seeded round-trip
// corpus, every truncation length of a torn tail, a bit-flip corpus (no
// single-bit corruption may decode as kOk), and the trusted-caller
// encode validation.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/random/pcg64.hpp"
#include "mmph/support/error.hpp"
#include "mmph/wal/record.hpp"
#include "mmph/wal/snapshot.hpp"

namespace mmph::wal {
namespace {

WalRecord make_upsert(rnd::Pcg64& rng, std::uint16_t dim) {
  WalRecord record;
  record.type = RecordType::kUpsert;
  record.lsn = rng();
  record.dim = dim;
  const std::size_t count = 1 + rng.next_below(5);
  record.epoch = rng.next_below(1000) + count;
  for (std::size_t i = 0; i < count; ++i) {
    record.ids.push_back(rng());
    record.weights.push_back(0.5 + rng.next_double());
    for (std::uint16_t d = 0; d < dim; ++d) {
      record.coords.push_back(rng.next_double());
    }
  }
  return record;
}

WalRecord make_remove(rnd::Pcg64& rng) {
  WalRecord record;
  record.type = RecordType::kRemove;
  record.lsn = rng();
  record.dim = 0;
  const std::size_t count = 1 + rng.next_below(4);
  record.epoch = rng.next_below(1000) + count;
  for (std::size_t i = 0; i < count; ++i) record.ids.push_back(rng());
  return record;
}

void expect_equal(const WalRecord& got, const WalRecord& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.lsn, want.lsn);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.dim, want.dim);
  EXPECT_EQ(got.ids, want.ids);
  EXPECT_EQ(got.weights, want.weights);
  EXPECT_EQ(got.coords, want.coords);
}

TEST(WalRecordTest, UpsertRoundTrip) {
  rnd::Pcg64 rng(7);
  const WalRecord record = make_upsert(rng, 3);
  std::vector<std::uint8_t> bytes;
  encode_record(record, bytes);
  ASSERT_GE(bytes.size(), kRecordHeaderBytes);

  const RecordDecodeResult decoded = decode_record(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.status, RecordDecodeStatus::kOk);
  EXPECT_EQ(decoded.consumed, bytes.size());
  expect_equal(decoded.record, record);
}

TEST(WalRecordTest, RemoveRoundTrip) {
  rnd::Pcg64 rng(11);
  const WalRecord record = make_remove(rng);
  std::vector<std::uint8_t> bytes;
  encode_record(record, bytes);

  const RecordDecodeResult decoded = decode_record(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.status, RecordDecodeStatus::kOk);
  EXPECT_EQ(decoded.consumed, bytes.size());
  expect_equal(decoded.record, record);
}

TEST(WalRecordTest, SeededRoundTripCorpus) {
  rnd::Pcg64 rng(0xC0DEC);
  for (int i = 0; i < 200; ++i) {
    const bool upsert = rng.next_below(2) == 0;
    const std::uint16_t dim =
        static_cast<std::uint16_t>(1 + rng.next_below(6));
    const WalRecord record = upsert ? make_upsert(rng, dim) : make_remove(rng);
    std::vector<std::uint8_t> bytes;
    encode_record(record, bytes);
    const RecordDecodeResult decoded =
        decode_record(bytes.data(), bytes.size());
    ASSERT_EQ(decoded.status, RecordDecodeStatus::kOk) << "iteration " << i;
    ASSERT_EQ(decoded.consumed, bytes.size());
    expect_equal(decoded.record, record);
  }
}

TEST(WalRecordTest, StreamDecodeConsumesBackToBackRecords) {
  rnd::Pcg64 rng(21);
  std::vector<WalRecord> records;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 8; ++i) {
    records.push_back(i % 2 == 0 ? make_upsert(rng, 2) : make_remove(rng));
    encode_record(records.back(), stream);
  }
  // A torn half-record at the end must not disturb the whole ones.
  std::vector<std::uint8_t> torn;
  encode_record(make_upsert(rng, 2), torn);
  stream.insert(stream.end(), torn.begin(), torn.begin() + torn.size() / 2);

  std::size_t offset = 0;
  for (const WalRecord& want : records) {
    const RecordDecodeResult decoded =
        decode_record(stream.data() + offset, stream.size() - offset);
    ASSERT_EQ(decoded.status, RecordDecodeStatus::kOk);
    expect_equal(decoded.record, want);
    offset += decoded.consumed;
  }
  const RecordDecodeResult tail =
      decode_record(stream.data() + offset, stream.size() - offset);
  EXPECT_EQ(tail.status, RecordDecodeStatus::kNeedMoreData);
}

TEST(WalRecordTest, EveryTruncationLengthIsNeedMoreData) {
  rnd::Pcg64 rng(33);
  const WalRecord record = make_upsert(rng, 2);
  std::vector<std::uint8_t> bytes;
  encode_record(record, bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const RecordDecodeResult decoded = decode_record(bytes.data(), len);
    EXPECT_EQ(decoded.status, RecordDecodeStatus::kNeedMoreData)
        << "prefix length " << len;
  }
}

TEST(WalRecordTest, NoSingleBitFlipDecodesOk) {
  rnd::Pcg64 rng(55);
  for (const bool upsert : {true, false}) {
    const WalRecord record = upsert ? make_upsert(rng, 2) : make_remove(rng);
    std::vector<std::uint8_t> bytes;
    encode_record(record, bytes);
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        const RecordDecodeResult decoded =
            decode_record(flipped.data(), flipped.size());
        // A flip may enlarge payload_len (kNeedMoreData) or trip any of
        // the typed errors — it must never decode as a valid record.
        EXPECT_NE(decoded.status, RecordDecodeStatus::kOk)
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(WalRecordTest, DecodeRejectsBadVersionTypeAndOversize) {
  rnd::Pcg64 rng(77);
  const WalRecord record = make_upsert(rng, 2);
  std::vector<std::uint8_t> bytes;
  encode_record(record, bytes);

  std::vector<std::uint8_t> bad = bytes;
  bad[4] = kWalVersion + 1;
  EXPECT_EQ(decode_record(bad.data(), bad.size()).status,
            RecordDecodeStatus::kBadVersion);

  bad = bytes;
  bad[5] = 99;  // not a RecordType
  EXPECT_EQ(decode_record(bad.data(), bad.size()).status,
            RecordDecodeStatus::kBadType);

  bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_EQ(decode_record(bad.data(), bad.size()).status,
            RecordDecodeStatus::kBadMagic);

  // payload_len above the cap must be rejected from the header alone,
  // before any buffering decision (CRC can't be checked — there is no
  // payload to check against).
  bad = bytes;
  const std::uint32_t huge = kMaxRecordPayloadBytes + 1;
  std::memcpy(bad.data() + 28, &huge, sizeof(huge));
  EXPECT_EQ(decode_record(bad.data(), bad.size()).status,
            RecordDecodeStatus::kOversized);
}

TEST(WalRecordTest, EncodeValidatesTrustedCallerContract) {
  WalRecord record;
  record.type = RecordType::kUpsert;
  record.dim = 2;
  record.epoch = 1;
  record.ids = {1};
  record.weights = {1.0, 2.0};  // size mismatch
  record.coords = {0.1, 0.2};
  std::vector<std::uint8_t> out;
  EXPECT_THROW(encode_record(record, out), InvalidArgument);

  record.weights = {1.0};
  record.coords = {0.1};  // not ids.size() * dim
  EXPECT_THROW(encode_record(record, out), InvalidArgument);

  record.coords = {0.1, 0.2};
  record.dim = 0;  // upsert with no dimension
  EXPECT_THROW(encode_record(record, out), InvalidArgument);
}

TEST(WalRecordTest, Crc32cKnownAnswer) {
  // RFC 3720 test vector: 32 zero bytes.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // Chaining two halves must equal one pass.
  const std::uint32_t half = crc32c(zeros.data(), 16);
  EXPECT_EQ(crc32c(zeros.data() + 16, 16, half), 0x8A9136AAu);
}

// --- snapshots --------------------------------------------------------------

WalSnapshot make_snapshot(rnd::Pcg64& rng, std::uint16_t dim) {
  WalSnapshot snapshot;
  snapshot.dim = dim;
  const std::size_t rows = 1 + rng.next_below(6);
  snapshot.epoch = rows + rng.next_below(100);
  for (std::size_t i = 0; i < rows; ++i) {
    snapshot.ids.push_back(rng());
    snapshot.weights.push_back(0.5 + rng.next_double());
    for (std::uint16_t d = 0; d < dim; ++d) {
      snapshot.coords.push_back(rng.next_double());
    }
  }
  return snapshot;
}

TEST(WalSnapshotTest, RoundTrip) {
  rnd::Pcg64 rng(101);
  const WalSnapshot snapshot = make_snapshot(rng, 3);
  std::vector<std::uint8_t> bytes;
  encode_snapshot(snapshot, bytes);

  WalSnapshot decoded;
  ASSERT_EQ(decode_snapshot(bytes.data(), bytes.size(), decoded),
            RecordDecodeStatus::kOk);
  EXPECT_EQ(decoded.epoch, snapshot.epoch);
  EXPECT_EQ(decoded.dim, snapshot.dim);
  EXPECT_EQ(decoded.ids, snapshot.ids);
  EXPECT_EQ(decoded.weights, snapshot.weights);
  EXPECT_EQ(decoded.coords, snapshot.coords);
  EXPECT_EQ(snapshot_digest(decoded), snapshot_digest(snapshot));
}

TEST(WalSnapshotTest, ExactSizeContract) {
  rnd::Pcg64 rng(103);
  const WalSnapshot snapshot = make_snapshot(rng, 2);
  std::vector<std::uint8_t> bytes;
  encode_snapshot(snapshot, bytes);

  WalSnapshot decoded;
  EXPECT_EQ(decode_snapshot(bytes.data(), bytes.size() - 1, decoded),
            RecordDecodeStatus::kNeedMoreData);
  std::vector<std::uint8_t> longer = bytes;
  longer.push_back(0);
  EXPECT_EQ(decode_snapshot(longer.data(), longer.size(), decoded),
            RecordDecodeStatus::kMalformed);
}

TEST(WalSnapshotTest, NoSingleBitFlipDecodesOk) {
  rnd::Pcg64 rng(107);
  const WalSnapshot snapshot = make_snapshot(rng, 2);
  std::vector<std::uint8_t> bytes;
  encode_snapshot(snapshot, bytes);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[byte] ^= 0x10;
    WalSnapshot decoded;
    EXPECT_NE(decode_snapshot(flipped.data(), flipped.size(), decoded),
              RecordDecodeStatus::kOk)
        << "byte " << byte;
  }
}

TEST(WalSnapshotTest, DigestIsOrderSensitive) {
  WalSnapshot a;
  a.epoch = 2;
  a.dim = 1;
  a.ids = {1, 2};
  a.weights = {1.0, 2.0};
  a.coords = {0.25, 0.75};

  WalSnapshot b = a;
  std::swap(b.ids[0], b.ids[1]);
  std::swap(b.weights[0], b.weights[1]);
  std::swap(b.coords[0], b.coords[1]);

  // Same content, different row order: swap-remove makes row order part
  // of the store's identity, so the digests must differ.
  EXPECT_NE(snapshot_digest(a), snapshot_digest(b));

  WalSnapshot c = a;
  c.epoch += 1;
  EXPECT_NE(snapshot_digest(a), snapshot_digest(c));
}

}  // namespace
}  // namespace mmph::wal
