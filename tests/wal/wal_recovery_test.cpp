// Crash recovery tests: a crash-point matrix (pull the plug after every
// op AND at every byte of the newest segment's tail), corrupt-snapshot
// fallback, typed stops for non-tail corruption, and the recover ->
// new-writer -> restore bootstrap flow a restarted server runs.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/record.hpp"
#include "mmph/wal/recovery.hpp"
#include "mmph/wal/snapshot.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::wal {
namespace {

constexpr const char* kDir = "wal";

serve::UserRecord make_user(std::uint64_t id, rnd::Pcg64& rng) {
  serve::UserRecord user;
  user.id = id;
  user.interest = {rng.next_double(), rng.next_double()};
  user.weight = 0.5 + rng.next_double();
  return user;
}

serve::ServiceConfig service_config(WalWriter* writer) {
  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 3;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;
  config.wal = writer;
  return config;
}

WalConfig wal_config(FileOps& ops, std::uint64_t snapshot_every = 0) {
  WalConfig config;
  config.dir = kDir;
  config.fsync = FsyncPolicy::kGroupCommit;
  config.snapshot_every_ops = snapshot_every;
  config.file_ops = &ops;
  return config;
}

/// Runs a deterministic mixed add/remove workload, recording the live
/// store digest at every op boundary (keyed by epoch).
std::map<std::uint64_t, std::uint64_t> run_workload(
    serve::PlacementService& service, std::size_t operations,
    std::uint64_t seed) {
  std::map<std::uint64_t, std::uint64_t> digests;
  digests[service.epoch()] = snapshot_digest(service.wal_snapshot());
  rnd::Pcg64 rng(seed);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;
  for (std::size_t op = 0; op < operations; ++op) {
    if (rng.next_below(10) < 7 || live.empty()) {
      std::vector<serve::UserRecord> batch;
      const std::size_t count = 1 + rng.next_below(3);
      for (std::size_t j = 0; j < count; ++j) {
        const bool reuse = !live.empty() && rng.next_below(10) < 3;
        const std::uint64_t id =
            reuse ? live[rng.next_below(live.size())] : next_id++;
        if (!reuse) live.push_back(id);
        batch.push_back(make_user(id, rng));
      }
      service.apply_add(batch);
    } else {
      const std::size_t at = rng.next_below(live.size());
      std::vector<std::uint64_t> ids = {live[at]};
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      service.apply_remove(ids);
    }
    digests[service.epoch()] = snapshot_digest(service.wal_snapshot());
  }
  return digests;
}

TEST(WalRecoveryTest, MissingDirectoryIsFreshStart) {
  MemFileOps mem;
  const RecoveryResult result = recover("nowhere", 3, mem);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.store.epoch, 0u);
  EXPECT_EQ(result.store.dim, 3u);
  EXPECT_TRUE(result.store.ids.empty());
  EXPECT_EQ(result.last_lsn, 0u);
}

TEST(WalRecoveryTest, CrashAfterEveryOpRecoversBitwise) {
  MemFileOps mem;
  WalWriter writer(wal_config(mem, /*snapshot_every=*/6));
  serve::PlacementService service(service_config(&writer));

  rnd::Pcg64 rng(42);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;
  for (std::size_t op = 0; op < 24; ++op) {
    if (rng.next_below(10) < 7 || live.empty()) {
      std::vector<serve::UserRecord> batch;
      const std::size_t count = 1 + rng.next_below(3);
      for (std::size_t j = 0; j < count; ++j) {
        live.push_back(next_id);
        batch.push_back(make_user(next_id++, rng));
      }
      service.apply_add(batch);
    } else {
      const std::size_t at = rng.next_below(live.size());
      service.apply_remove({live[at]});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    }

    // Pull the plug NOW: recovery from a byte-exact clone of the disk
    // must reproduce the live store bitwise — rows, row order, epoch.
    const std::unique_ptr<MemFileOps> crashed = mem.clone();
    const RecoveryResult recovered = recover(kDir, 2, *crashed);
    ASSERT_TRUE(recovered.clean) << "op " << op << ": " << recovered.detail;
    ASSERT_EQ(recovered.store.epoch, service.epoch()) << "op " << op;
    ASSERT_EQ(snapshot_digest(recovered.store),
              snapshot_digest(service.wal_snapshot()))
        << "op " << op;
  }
}

TEST(WalRecoveryTest, TruncationMatrixLandsOnOpBoundaries) {
  MemFileOps mem;
  WalWriter writer(wal_config(mem, /*snapshot_every=*/8));
  serve::PlacementService service(service_config(&writer));
  std::map<std::uint64_t, std::uint64_t> digests =
      run_workload(service, 20, 1234);

  // Newest segment = the only one with uncheckpointed records. The last
  // workload op may have just checkpointed (empty fresh segment) — top
  // the log up until the tail segment actually holds records.
  const auto newest_segment = [&] {
    const auto names = mem.list(kDir);
    EXPECT_TRUE(names.has_value());
    std::uint64_t newest = 0;
    std::string newest_name;
    for (const std::string& name : *names) {
      const auto epoch = parse_file_epoch(name, "wal-", ".mmpl");
      if (epoch.has_value() && (newest_name.empty() || *epoch > newest)) {
        newest = *epoch;
        newest_name = name;
      }
    }
    EXPECT_FALSE(newest_name.empty());
    return std::string(kDir) + "/" + newest_name;
  };
  rnd::Pcg64 topup_rng(777);
  std::string seg = newest_segment();
  std::uint64_t topup_id = 10000;
  while (mem.file_bytes(seg).value().empty()) {
    service.apply_add({make_user(topup_id++, topup_rng)});
    digests[service.epoch()] = snapshot_digest(service.wal_snapshot());
    seg = newest_segment();
  }
  const auto seg_bytes = mem.file_bytes(seg);
  ASSERT_TRUE(seg_bytes.has_value());
  ASSERT_FALSE(seg_bytes->empty());

  // Losing ANY unsynced tail suffix must recover to an exact earlier op
  // boundary: some state the live store actually passed through.
  for (std::size_t chop = 1; chop <= seg_bytes->size(); ++chop) {
    const std::unique_ptr<MemFileOps> crashed = mem.clone();
    ASSERT_TRUE(crashed->truncate_tail(seg, chop));
    const RecoveryResult recovered = recover(kDir, 2, *crashed);
    ASSERT_TRUE(recovered.clean) << "chop " << chop << ": " << recovered.detail;
    const auto want = digests.find(recovered.store.epoch);
    ASSERT_NE(want, digests.end())
        << "chop " << chop << " recovered to epoch " << recovered.store.epoch
        << ", not an op boundary";
    ASSERT_EQ(snapshot_digest(recovered.store), want->second)
        << "chop " << chop;
  }
}

TEST(WalRecoveryTest, CorruptSnapshotFallsBackToOlderCheckpoint) {
  MemFileOps mem;
  ASSERT_EQ(mem.mkdir(kDir), 0);

  // State A (epoch 1): one user. Checkpointed as snap-1 (valid).
  WalSnapshot state_a;
  state_a.epoch = 1;
  state_a.dim = 2;
  state_a.ids = {1};
  state_a.weights = {1.5};
  state_a.coords = {0.1, 0.2};
  std::vector<std::uint8_t> bytes;
  encode_snapshot(state_a, bytes);
  mem.set_file_bytes(std::string(kDir) + "/" + snapshot_file_name(1), bytes);

  // Segment wal-1: the record taking the store to epoch 2.
  WalRecord rec2;
  rec2.type = RecordType::kUpsert;
  rec2.lsn = 2;
  rec2.epoch = 2;
  rec2.dim = 2;
  rec2.ids = {2};
  rec2.weights = {2.5};
  rec2.coords = {0.3, 0.4};
  bytes.clear();
  encode_record(rec2, bytes);
  mem.set_file_bytes(std::string(kDir) + "/" + segment_file_name(1), bytes);

  // snap-2: the epoch-2 checkpoint, bit-rotted on disk.
  WalSnapshot state_b = state_a;
  state_b.epoch = 2;
  state_b.ids.push_back(2);
  state_b.weights.push_back(2.5);
  state_b.coords.insert(state_b.coords.end(), {0.3, 0.4});
  bytes.clear();
  encode_snapshot(state_b, bytes);
  bytes[bytes.size() / 2] ^= 0x40;
  mem.set_file_bytes(std::string(kDir) + "/" + snapshot_file_name(2), bytes);

  // Segment wal-2: one more record on top of the (corrupt) checkpoint.
  WalRecord rec3;
  rec3.type = RecordType::kUpsert;
  rec3.lsn = 3;
  rec3.epoch = 3;
  rec3.dim = 2;
  rec3.ids = {3};
  rec3.weights = {3.5};
  rec3.coords = {0.5, 0.6};
  bytes.clear();
  encode_record(rec3, bytes);
  mem.set_file_bytes(std::string(kDir) + "/" + segment_file_name(2), bytes);

  // Recovery must discard snap-2, fall back to snap-1, and reach epoch 3
  // through the longer replay — same final state, one discarded file.
  const RecoveryResult result = recover(kDir, 2, mem);
  EXPECT_TRUE(result.clean) << result.detail;
  EXPECT_EQ(result.snapshots_discarded, 1u);
  EXPECT_EQ(result.snapshot_epoch, 1u);
  EXPECT_EQ(result.store.epoch, 3u);
  EXPECT_EQ(result.records_applied, 2u);
  EXPECT_EQ(result.last_lsn, 3u);
  const std::vector<std::uint64_t> want_ids = {1, 2, 3};
  EXPECT_EQ(result.store.ids, want_ids);
}

TEST(WalRecoveryTest, MidFileCorruptionStopsWithCleanFalse) {
  MemFileOps mem;
  {
    WalWriter writer(wal_config(mem));
    serve::PlacementService service(service_config(&writer));
    run_workload(service, 8, 99);
  }
  const std::string seg = std::string(kDir) + "/" + segment_file_name(0);
  auto bytes = mem.file_bytes(seg);
  ASSERT_TRUE(bytes.has_value());
  ASSERT_GT(bytes->size(), kRecordHeaderBytes);
  // Flip a payload byte of the FIRST record: not a torn tail, so replay
  // must stop — bytes past an untrusted region are not provably chained.
  (*bytes)[kRecordHeaderBytes] ^= 0xFF;
  mem.set_file_bytes(seg, *bytes);

  const RecoveryResult result = recover(kDir, 2, mem);
  EXPECT_FALSE(result.clean);
  EXPECT_FALSE(result.detail.empty());
  EXPECT_EQ(result.store.epoch, 0u);  // stopped before anything applied
}

TEST(WalRecoveryTest, RemoveOfAbsentIdStopsReplay) {
  MemFileOps mem;
  ASSERT_EQ(mem.mkdir(kDir), 0);
  WalRecord rec;
  rec.type = RecordType::kRemove;
  rec.lsn = 1;
  rec.epoch = 1;
  rec.ids = {42};  // nothing was ever added
  std::vector<std::uint8_t> bytes;
  encode_record(rec, bytes);
  mem.set_file_bytes(std::string(kDir) + "/" + segment_file_name(0), bytes);

  const RecoveryResult result = recover(kDir, 2, mem);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.store.epoch, 0u);
}

TEST(WalRecoveryTest, BrokenEpochChainStopsReplay) {
  MemFileOps mem;
  ASSERT_EQ(mem.mkdir(kDir), 0);
  WalRecord rec;
  rec.type = RecordType::kUpsert;
  rec.lsn = 1;
  rec.epoch = 5;  // from epoch 0, a 1-user upsert must land on epoch 1
  rec.dim = 2;
  rec.ids = {1};
  rec.weights = {1.0};
  rec.coords = {0.1, 0.2};
  std::vector<std::uint8_t> bytes;
  encode_record(rec, bytes);
  mem.set_file_bytes(std::string(kDir) + "/" + segment_file_name(0), bytes);

  const RecoveryResult result = recover(kDir, 2, mem);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.store.epoch, 0u);
}

TEST(WalRecoveryTest, CheckpointPrunesCoveredFiles) {
  MemFileOps mem;
  WalWriter writer(wal_config(mem));
  serve::PlacementService service(service_config(&writer));
  run_workload(service, 6, 7);

  EXPECT_FALSE(writer.wants_snapshot());  // snapshot_every_ops = 0
  writer.write_snapshot(service.wal_snapshot());

  const auto names = mem.list(kDir);
  ASSERT_TRUE(names.has_value());
  for (const std::string& name : *names) {
    const auto snap_epoch = parse_file_epoch(name, "snap-", ".mmps");
    const auto seg_epoch = parse_file_epoch(name, "wal-", ".mmpl");
    ASSERT_TRUE(snap_epoch.has_value() || seg_epoch.has_value()) << name;
    const std::uint64_t epoch =
        snap_epoch.has_value() ? *snap_epoch : *seg_epoch;
    EXPECT_EQ(epoch, service.epoch()) << "stale file survived: " << name;
  }
}

TEST(WalRecoveryTest, RestartContinuesTheLog) {
  // First life: run, then "crash".
  MemFileOps mem;
  std::uint64_t first_epoch = 0;
  {
    WalWriter writer(wal_config(mem, /*snapshot_every=*/5));
    serve::PlacementService service(service_config(&writer));
    run_workload(service, 15, 2026);
    first_epoch = service.epoch();
  }
  const std::unique_ptr<MemFileOps> disk = mem.clone();

  // Reboot: recover, seat a new writer after the recovered position,
  // restore the service from the recovered image (the exact bootstrap
  // the CLI runs), and keep going on the same disk.
  const RecoveryResult rr = recover(kDir, 2, *disk);
  ASSERT_TRUE(rr.clean) << rr.detail;
  ASSERT_EQ(rr.store.epoch, first_epoch);

  WalWriter writer2(wal_config(*disk, /*snapshot_every=*/5), rr.store.epoch,
                    rr.last_lsn);
  serve::PlacementService service2(service_config(&writer2));
  service2.restore_from(rr.store);
  ASSERT_EQ(service2.epoch(), first_epoch);

  run_workload(service2, 10, 3000);
  ASSERT_GT(service2.epoch(), first_epoch);

  // Second crash: the continued log must still recover bitwise, with
  // lsns strictly continuing the first life's.
  const RecoveryResult rr2 = recover(kDir, 2, *disk);
  ASSERT_TRUE(rr2.clean) << rr2.detail;
  EXPECT_EQ(rr2.store.epoch, service2.epoch());
  EXPECT_GT(rr2.last_lsn, rr.last_lsn);
  EXPECT_EQ(snapshot_digest(rr2.store),
            snapshot_digest(service2.wal_snapshot()));
}

}  // namespace
}  // namespace mmph::wal
