// ShardedWal contract tests: the shards == 1 layout is the legacy
// single-log layout (bit-identity mode), shards > 1 get one directory per
// shard, commit_all is a poison-all barrier, and recover_sharded replays
// shards independently while re-deriving the global epoch as the sum of
// shard epochs. Also pins the recovery edge cases this PR fixed: a
// zero-length segment, an empty-but-existing directory vs a missing one
// (dir_found), and lsn continuation across fully-checkpointed segments.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/recovery.hpp"
#include "mmph/wal/sharded_wal.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::wal {
namespace {

WalConfig mem_config(MemFileOps& mem, const std::string& dir) {
  WalConfig config;
  config.dir = dir;
  config.file_ops = &mem;
  return config;
}

WalRecord upsert_record(std::uint64_t id, double weight, double x, double y) {
  WalRecord record;
  record.type = RecordType::kUpsert;
  record.dim = 2;
  record.ids = {id};
  record.weights = {weight};
  record.coords = {x, y};
  return record;
}

TEST(ShardedWalLayout, OneShardUsesTheLegacyRootDirectory) {
  EXPECT_EQ(shard_wal_dir("wal", 0, 1), "wal");
  EXPECT_EQ(shard_wal_dir("wal", 0, 4), "wal/shard-0");
  EXPECT_EQ(shard_wal_dir("wal", 3, 4), "wal/shard-3");

  MemFileOps mem;
  ShardedWal wal(mem_config(mem, "wal"), 1, ShardedRecovery{});
  WalRecord record = upsert_record(1, 1.0, 0.1, 0.2);
  wal.append(0, record);
  wal.commit_all();

  // The plain single-log recovery reads it: same files, same place.
  const RecoveryResult plain = recover("wal", 0, mem);
  EXPECT_TRUE(plain.clean);
  EXPECT_TRUE(plain.dir_found);
  EXPECT_EQ(plain.store.size(), 1u);
  EXPECT_EQ(plain.store.epoch, 1u);
}

TEST(ShardedWal, ShardsRecoverIndependentlyAndEpochsSum) {
  MemFileOps mem;
  {
    ShardedWal wal(mem_config(mem, "wal"), 3, ShardedRecovery{});
    // Shard 0: two users. Shard 2: one user then a remove. Shard 1: idle.
    WalRecord a = upsert_record(1, 1.0, 0.1, 0.1);
    WalRecord b = upsert_record(2, 2.0, 0.2, 0.2);
    WalRecord c = upsert_record(3, 3.0, 0.9, 0.9);
    wal.append(0, a);
    wal.append(0, b);
    wal.append(2, c);
    wal.commit_all();
    WalRecord rm;
    rm.type = RecordType::kRemove;
    rm.ids = {3};
    wal.append(2, rm);
    wal.commit_all();
    EXPECT_EQ(wal.commit_epoch(), 2u);
  }

  const ShardedRecovery recovered = recover_sharded("wal", 3, 2, mem);
  ASSERT_EQ(recovered.shards.size(), 3u);
  EXPECT_TRUE(recovered.clean);
  EXPECT_TRUE(recovered.dir_found);
  EXPECT_EQ(recovered.shards[0].store.size(), 2u);
  EXPECT_EQ(recovered.shards[0].store.epoch, 2u);
  EXPECT_EQ(recovered.shards[1].store.size(), 0u);
  EXPECT_EQ(recovered.shards[1].store.epoch, 0u);
  EXPECT_EQ(recovered.shards[2].store.size(), 0u);
  EXPECT_EQ(recovered.shards[2].store.epoch, 2u);  // upsert + remove
  EXPECT_EQ(recovered.global_epoch, 4u);
  EXPECT_EQ(recovered.rows, 2u);

  // A new coordinator continues every shard's chain where it left off.
  ShardedWal resumed(mem_config(mem, "wal"), 3, recovered);
  WalRecord d = upsert_record(4, 1.0, 0.15, 0.1);
  resumed.append(0, d);
  EXPECT_EQ(d.epoch, 3u);  // continues shard 0's chain (was at 2)
  resumed.commit_all();
}

TEST(ShardedWal, BarrierFailureAtOneShardPoisonsEveryWriter) {
  MemFileOps mem;
  std::size_t hooks_consulted = 0;
  BarrierFaultHook hook = [&](std::string_view site) {
    EXPECT_EQ(site, "wal.barrier.fsync_fail");
    // Fail the barrier at the SECOND shard: shard 0's fsync already
    // passed, so the barrier is provably half-done when it dies.
    return ++hooks_consulted == 2;
  };
  ShardedWal wal(mem_config(mem, "wal"), 3, ShardedRecovery{}, hook);
  WalRecord a = upsert_record(1, 1.0, 0.1, 0.1);
  WalRecord b = upsert_record(2, 1.0, 0.9, 0.9);
  wal.append(0, a);
  wal.append(1, b);

  EXPECT_THROW(wal.commit_all(), WalError);
  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(wal.commit_epoch(), 0u);
  // Poison-all: every shard's writer refuses further work, including the
  // ones whose own fsync never failed.
  WalRecord c = upsert_record(3, 1.0, 0.5, 0.5);
  EXPECT_THROW(wal.append(2, c), WalError);
  EXPECT_THROW(wal.commit_all(), WalError);
}

TEST(ShardedWal, TailSinceStreamsOneShardsRecords) {
  MemFileOps mem;
  ShardedWal wal(mem_config(mem, "wal"), 2, ShardedRecovery{});
  WalRecord a = upsert_record(1, 1.0, 0.1, 0.1);
  WalRecord b = upsert_record(2, 2.0, 0.2, 0.2);
  wal.append(0, a);
  wal.append(0, b);
  wal.commit_all();

  const WalWriter::TailResult tail = wal.tail_since(0, 0);
  EXPECT_TRUE(tail.covered);
  EXPECT_EQ(tail.count, 2u);
  EXPECT_EQ(tail.last_epoch, 2u);
  EXPECT_FALSE(tail.bytes.empty());
  // The idle shard has nothing pending and its own epoch stream.
  const WalWriter::TailResult idle = wal.tail_since(1, 0);
  EXPECT_TRUE(idle.covered);
  EXPECT_EQ(idle.count, 0u);
}

TEST(Recovery, MissingDirVsEmptyDirAreDistinguished) {
  MemFileOps mem;
  const RecoveryResult missing = recover("nowhere", 0, mem);
  EXPECT_FALSE(missing.dir_found);
  EXPECT_TRUE(missing.clean);
  EXPECT_EQ(missing.store.size(), 0u);

  ASSERT_EQ(mem.mkdir("empty"), 0);
  const RecoveryResult empty = recover("empty", 0, mem);
  EXPECT_TRUE(empty.dir_found);
  EXPECT_TRUE(empty.clean);
  EXPECT_EQ(empty.store.size(), 0u);
  EXPECT_EQ(empty.store.epoch, 0u);

  // Sharded flavor: base dir exists but no shard subdirs yet — still
  // found, still a clean fresh start.
  ASSERT_EQ(mem.mkdir("base"), 0);
  const ShardedRecovery sharded = recover_sharded("base", 2, 0, mem);
  EXPECT_TRUE(sharded.dir_found);
  EXPECT_TRUE(sharded.clean);
  EXPECT_EQ(sharded.rows, 0u);
  const ShardedRecovery gone = recover_sharded("really-nowhere", 2, 0, mem);
  EXPECT_FALSE(gone.dir_found);
}

TEST(Recovery, ZeroLengthSegmentIsACleanEmptyLog) {
  MemFileOps mem;
  ASSERT_EQ(mem.mkdir("wal"), 0);
  mem.set_file_bytes("wal/" + segment_file_name(0), {});
  const RecoveryResult result = recover("wal", 0, mem);
  EXPECT_TRUE(result.clean) << result.detail;
  EXPECT_TRUE(result.dir_found);
  EXPECT_EQ(result.store.size(), 0u);
  EXPECT_EQ(result.store.epoch, 0u);
  EXPECT_EQ(result.segments_scanned, 1u);

  // A writer opening on top of it continues from epoch/lsn zero.
  WalConfig config = mem_config(mem, "wal");
  WalWriter writer(config, result.store.epoch, result.last_lsn);
  WalRecord record = upsert_record(1, 1.0, 0.1, 0.1);
  writer.append(record);
  EXPECT_EQ(record.lsn, 1u);
  EXPECT_EQ(record.epoch, 1u);
}

TEST(Recovery, LsnContinuesPastFullyCheckpointedSegments) {
  MemFileOps mem;
  std::vector<std::uint8_t> covered_segment;
  {
    WalConfig config = mem_config(mem, "wal");
    WalWriter writer(config);
    WalRecord a = upsert_record(1, 1.0, 0.1, 0.1);
    WalRecord b = upsert_record(2, 2.0, 0.2, 0.2);
    writer.append(a);
    writer.append(b);
    writer.commit();
    covered_segment = *mem.file_bytes("wal/" + segment_file_name(0));
    WalSnapshot checkpoint;
    checkpoint.epoch = 2;
    checkpoint.dim = 2;
    checkpoint.ids = {1, 2};
    checkpoint.weights = {1.0, 2.0};
    checkpoint.coords = {0.1, 0.1, 0.2, 0.2};
    writer.write_snapshot(checkpoint);
  }
  // Simulate a crash between the checkpoint write and the best-effort
  // prune: the fully-covered segment is still on disk next to it.
  mem.set_file_bytes("wal/" + segment_file_name(0), covered_segment);

  // Every record is covered by the checkpoint: replay applies nothing,
  // but last_lsn must still reflect the skipped records — a new writer
  // reusing their lsns would corrupt the stream's ordering invariant.
  const RecoveryResult result = recover("wal", 2, mem);
  EXPECT_TRUE(result.clean) << result.detail;
  EXPECT_EQ(result.records_applied, 0u);
  EXPECT_EQ(result.records_skipped, 2u);
  EXPECT_EQ(result.store.epoch, 2u);
  EXPECT_EQ(result.last_lsn, 2u);

  WalConfig config = mem_config(mem, "wal");
  WalWriter writer(config, result.store.epoch, result.last_lsn);
  WalRecord c = upsert_record(3, 3.0, 0.3, 0.3);
  writer.append(c);
  EXPECT_EQ(c.lsn, 3u);
}

}  // namespace
}  // namespace mmph::wal
