// mmph::obs: pinned histogram bucket layout, exact quantile math against
// a brute-force sort, registry identity, and the exposition format.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mmph/io/stats.hpp"
#include "mmph/obs/instruments.hpp"
#include "mmph/obs/registry.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::obs {
namespace {

TEST(ObsHistogram, BucketBoundsArePinned) {
  // The layout is a wire-visible contract (scrapers reconstruct quantiles
  // from it): 63 finite bounds from 1 microsecond growing by sqrt(2).
  ASSERT_EQ(kBucketCount, 64u);
  ASSERT_EQ(kBucketBounds.size(), 63u);
  EXPECT_DOUBLE_EQ(kBucketBounds[0], 1e-6);
  EXPECT_NEAR(kBucketBounds[2], 2e-6, 1e-18);  // two sqrt(2) steps = octave
  for (std::size_t i = 0; i + 1 < kBucketBounds.size(); ++i) {
    EXPECT_NEAR(kBucketBounds[i + 1] / kBucketBounds[i], kBucketGrowth,
                1e-12);
  }
  // 62 steps of sqrt(2) from 1e-6 is 2^31 microseconds ~ 2147 seconds.
  EXPECT_NEAR(kBucketBounds.back(), 2147.483648, 1e-3);
}

TEST(ObsHistogram, BucketIndexUsesLessOrEqualSemantics) {
  EXPECT_EQ(bucket_index(0.0), 0u);
  EXPECT_EQ(bucket_index(1e-7), 0u);
  EXPECT_EQ(bucket_index(kBucketBounds[0]), 0u);  // le: boundary stays low
  EXPECT_EQ(bucket_index(std::nextafter(kBucketBounds[0], 1.0)), 1u);
  EXPECT_EQ(bucket_index(kBucketBounds[10]), 10u);
  EXPECT_EQ(bucket_index(kBucketBounds.back()), kBucketBounds.size() - 1);
  // Past the last finite bound and non-finite values: overflow bucket.
  EXPECT_EQ(bucket_index(1e9), kBucketCount - 1);
  EXPECT_EQ(bucket_index(std::numeric_limits<double>::infinity()),
            kBucketCount - 1);
  EXPECT_EQ(bucket_index(std::numeric_limits<double>::quiet_NaN()),
            kBucketCount - 1);
}

TEST(ObsHistogram, QuantileInterpolationIsExactOnKnownCounts) {
  Histogram hist;
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0) << "empty histogram";

  // 10 observations, all in bucket 0 ([0, 1e-6]): quantile(q) must
  // interpolate linearly across the bucket, rank = max(1, q*count).
  for (int i = 0; i < 10; ++i) hist.observe(5e-7);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 1e-6 * (5.0 / 10.0));
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 1e-6 * (1.0 / 10.0));
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_NEAR(hist.sum(), 5e-6, 1e-15);

  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  // All mass in the overflow bucket: answer the largest finite bound
  // instead of inventing a value beyond the layout.
  hist.observe(1e9);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), kBucketBounds.back());
}

TEST(ObsHistogram, QuantilesMatchBruteForceSortWithinOneBucket) {
  Histogram hist;
  rnd::Rng rng(404);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform across the interesting latency range, ~1us to ~10s.
    const double v = std::pow(10.0, rng.uniform(-6.0, 1.0));
    samples.push_back(v);
    hist.observe(v);
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  for (const double q : {0.05, 0.25, 0.50, 0.90, 0.99, 0.999}) {
    const double exact = io::percentile(samples, q);
    const double approx = snap.quantile(q);
    // Both the true order statistic and the interpolated estimate live in
    // the same log-spaced bucket, so they differ by at most one growth
    // factor (sqrt(2)); interpolation error on the rank adds at most one
    // more bucket at the seams.
    EXPECT_GE(approx, exact / (kBucketGrowth * kBucketGrowth))
        << "q=" << q << " exact=" << exact;
    EXPECT_LE(approx, exact * kBucketGrowth * kBucketGrowth)
        << "q=" << q << " exact=" << exact;
  }
}

TEST(ObsHistogram, NonFiniteObservationsAreCountedButExcludedFromSum) {
  Histogram hist;
  hist.observe(1.0);
  hist.observe(std::numeric_limits<double>::quiet_NaN());
  hist.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 1.0);
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("mmph_test_total");
  Counter& b = registry.counter("mmph_test_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Same name as a different kind is a caller bug, not a silent alias.
  EXPECT_THROW((void)registry.gauge("mmph_test_total"), InvalidArgument);
}

TEST(ObsRegistry, PointersSurviveLaterRegistrations) {
  Registry registry;
  Counter& first = registry.counter("mmph_first_total");
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("mmph_filler_" + std::to_string(i) + "_total");
  }
  first.add(7);
  EXPECT_EQ(registry.counter("mmph_first_total").value(), 7u);
}

TEST(ObsRegistry, ExpositionFormatIsPrometheusShaped) {
  Registry registry;
  registry.counter("mmph_requests_total", "requests served").add(42);
  registry.gauge("mmph_depth").set(3.5);
  Histogram& hist = registry.histogram("mmph_latency_seconds");
  hist.observe(5e-7);  // bucket 0
  hist.observe(3e-6);  // bucket 4 (bounds 2.83e-6 < 3e-6 <= 4e-6)

  const std::string text = registry.exposition_text();
  EXPECT_NE(text.find("# TYPE mmph_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmph_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mmph_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("mmph_depth 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mmph_latency_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative: bucket 0 holds 1, every bucket from index 4
  // on holds 2, and +Inf equals _count.
  EXPECT_NE(text.find("mmph_latency_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmph_latency_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmph_latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmph_latency_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("mmph_latency_seconds_sum 3.5e-06\n"),
            std::string::npos);

  registry.reset();
  const std::string zeroed = registry.exposition_text();
  EXPECT_NE(zeroed.find("mmph_requests_total 0\n"), std::string::npos);
  EXPECT_NE(zeroed.find("mmph_latency_seconds_count 0\n"),
            std::string::npos);
}

}  // namespace
}  // namespace mmph::obs
