// End-to-end integration tests: the full pipeline the benches and examples
// run, exercised across metrics, dimensions and solvers in one place.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "mmph/core/bounds.hpp"
#include "mmph/core/exhaustive.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/exp/experiment.hpp"
#include "mmph/exp/report.hpp"
#include "mmph/sim/simulator.hpp"

namespace mmph {
namespace {

// The paper's headline configuration: 40 nodes, 4x4 box, weights 1..5.
core::Problem paper_instance(std::uint64_t seed, std::size_t dim,
                             geo::Metric metric, double radius) {
  rnd::WorkloadSpec spec;
  spec.n = 40;
  spec.dim = dim;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng),
                                      radius, metric);
}

TEST(Integration, AllSolversProduceConsistentSolutions) {
  const core::Problem p = paper_instance(1, 2, geo::l2_metric(), 1.0);
  for (const std::string& name : core::solver_names()) {
    const auto solver = core::make_solver(name, p);
    const core::Solution s = solver->solve(p, 4);
    EXPECT_EQ(s.centers.size(), 4u) << name;
    EXPECT_EQ(s.round_rewards.size(), 4u) << name;
    EXPECT_NEAR(s.total_reward, core::objective_value(p, s.centers), 1e-9)
        << name;
    EXPECT_LE(s.total_reward, p.total_weight() + 1e-9) << name;
    EXPECT_GT(s.total_reward, 0.0) << name;
  }
}

TEST(Integration, ExhaustiveDominatesPointRestrictedGreedies) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const core::Problem p = paper_instance(seed, 2, geo::l2_metric(), 1.0);
    const double opt =
        core::make_solver("exhaustive", p)->solve(p, 2).total_reward;
    for (const std::string name : {"greedy1", "greedy2", "greedy3"}) {
      const double got =
          core::make_solver(name, p)->solve(p, 2).total_reward;
      EXPECT_LE(got, opt + 1e-9) << name << " seed=" << seed;
      EXPECT_GE(got / opt, core::approx_ratio_local_greedy(40, 2) - 1e-9)
          << name << " seed=" << seed;
    }
  }
}

TEST(Integration, PaperConfigurationRunsUnderAllFourMetricsAndDims) {
  const std::vector<std::pair<std::size_t, geo::Metric>> configs{
      {2, geo::l2_metric()},
      {2, geo::l1_metric()},
      {3, geo::l1_metric()},
      {3, geo::l2_metric()},
  };
  for (const auto& [dim, metric] : configs) {
    const core::Problem p = paper_instance(3, dim, metric, 1.5);
    for (const std::string name : {"greedy2", "greedy3", "greedy4"}) {
      const double reward =
          core::make_solver(name, p)->solve(p, 4).total_reward;
      EXPECT_GT(reward, 0.0) << name << " dim=" << dim;
    }
  }
}

TEST(Integration, SweepMatchesDirectTrials) {
  // run_cell must equal running the trials by hand with forked streams.
  exp::TrialSetup setup;
  setup.n = 10;
  setup.k = 2;
  setup.radius = 1.0;
  const std::vector<std::string> solvers{"greedy3"};
  const exp::CellStats cell = exp::run_cell(setup, solvers, false, 5, 17);
  io::RunningStats manual;
  const rnd::Rng base(17);
  for (std::size_t t = 0; t < 5; ++t) {
    rnd::Rng rng = base.fork(t);
    const exp::TrialResult r = exp::run_trial(setup, solvers, false, rng);
    manual.add(r.rewards.at("greedy3"));
  }
  EXPECT_DOUBLE_EQ(cell.reward.at("greedy3").mean(), manual.mean());
}

TEST(Integration, SimulatorWithEverySolverKeepsInvariant) {
  for (const std::string name : {"greedy2", "greedy3", "greedy4"}) {
    sim::SimConfig cfg;
    cfg.users = 15;
    cfg.slots = 5;
    cfg.k = 2;
    cfg.radius = 1.0;
    cfg.drift.sigma = 0.2;
    cfg.seed = 23;
    sim::BroadcastSimulator simulator(cfg, [name](const core::Problem& p) {
      return core::make_solver(name, p);
    });
    const sim::SimReport report = simulator.run();
    EXPECT_EQ(report.slots.size(), 5u) << name;
    for (const auto& slot : report.slots) {
      EXPECT_LE(slot.reward, slot.total_weight + 1e-9) << name;
    }
  }
}

TEST(Integration, Greedy4CanBeatPointExhaustive) {
  // greedy 4 searches continuous centers; on some instance it should beat
  // or match the best point-restricted solution. We only require "never
  // loses by much" across seeds plus "wins at least once" to document the
  // continuous-center advantage.
  int wins = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const core::Problem p = paper_instance(seed, 2, geo::l2_metric(), 0.75);
    const double point_opt =
        core::make_solver("exhaustive-points", p)->solve(p, 1).total_reward;
    const double g4 =
        core::make_solver("greedy4", p)->solve(p, 1).total_reward;
    if (g4 > point_opt + 1e-9) ++wins;
  }
  EXPECT_GE(wins, 1);
}

TEST(Integration, AggregateRatiosAreHighAndBounded) {
  // The paper's §VI-B prose ranks greedy 3 far above greedy 2 (84% vs 56%).
  // With both algorithms implemented exactly as specified, greedy 2's
  // per-round coverage-optimal choice dominates greedy 3's single-point
  // rule on average — the paper's reported ordering is not reproducible
  // from its own pseudocode (see EXPERIMENTS.md, deviation D1). What *is*
  // invariant: both sit well above the Theorem-2 bound and close to the
  // optimum at this scale, and greedy 3 stays within striking distance.
  exp::TrialSetup setup;
  setup.n = 20;
  setup.solver_config.grid_pitch = 0.5;
  const std::vector<std::string> solvers{"greedy2", "greedy3"};
  const auto cells =
      exp::run_sweep(setup, {2, 4}, {1.0, 1.5}, solvers, true, 10, 31);
  const auto means = exp::overall_ratio_means(cells, solvers);
  EXPECT_GT(means.at("greedy2"), 0.7);
  EXPECT_GT(means.at("greedy3"), 0.7);
  EXPECT_GE(means.at("greedy2"), means.at("greedy3") - 0.05);
  for (const auto& cell : cells) {
    const double bound =
        core::approx_ratio_local_greedy(cell.setup.n, cell.setup.k);
    EXPECT_GE(cell.ratio.at("greedy2").min(), bound - 1e-9);
    EXPECT_GE(cell.ratio.at("greedy3").min(), bound - 1e-9);
  }
}

}  // namespace
}  // namespace mmph
