// Golden regression tests: exact rewards for fixed seeds.
//
// These pin the full deterministic pipeline (PCG64 stream -> workload ->
// solver tie-breaking -> reward accounting) so that refactors cannot
// silently change published numbers. The constants were produced by this
// build (see tools/print_golden.cpp); an intentional behavior change
// should update them alongside EXPERIMENTS.md.
//
// Values are compared with a 1e-9 tolerance: bit-exactness across
// compilers is not required, but any algorithmic change moves these by
// far more.

#include <gtest/gtest.h>

#include "mmph/core/registry.hpp"
#include "mmph/random/workload.hpp"

namespace mmph {
namespace {

core::Problem golden_problem() {
  rnd::WorkloadSpec spec;  // n=40, 4x4, weights 1..5
  rnd::Rng rng(2011);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      geo::l2_metric());
}

struct GoldenCase {
  const char* solver;
  double expected_total;
};

class GoldenRegression : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRegression, TotalRewardIsPinned) {
  const GoldenCase& c = GetParam();
  const core::Problem p = golden_problem();
  const double got =
      core::make_solver(c.solver, p)->solve(p, 4).total_reward;
  EXPECT_NEAR(got, c.expected_total, 1e-9) << c.solver;
}

// GOLDEN_VALUES_BEGIN
INSTANTIATE_TEST_SUITE_P(
    Seed2011, GoldenRegression,
    ::testing::Values(GoldenCase{"greedy1", 54.394178540702413},
                      GoldenCase{"greedy1+polish", 54.515130530836885},
                      GoldenCase{"greedy2", 53.454110154622086},
                      GoldenCase{"greedy2-lazy", 53.454110154622086},
                      GoldenCase{"greedy2-indexed", 53.454110154622086},
                      GoldenCase{"greedy2+ls", 54.394178540702413},
                      GoldenCase{"greedy2-stoch", 53.101500734581599},
                      GoldenCase{"greedy3", 47.647518605761121},
                      GoldenCase{"greedy4", 55.009471112685659},
                      GoldenCase{"greedy4-indexed", 55.009471112685659},
                      GoldenCase{"exhaustive", 54.394178540702413},
                      GoldenCase{"sieve", 51.806820970031666},
                      GoldenCase{"kmeans", 40.318840808943769},
                      GoldenCase{"random", 35.24408129537057}),
    [](const ::testing::TestParamInfo<GoldenCase>& param_info) {
      std::string name = param_info.param.solver;
      for (char& ch : name) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return name;
    });
// GOLDEN_VALUES_END

TEST(GoldenRegression, WorkloadItselfIsPinned) {
  const core::Problem p = golden_problem();
  ASSERT_EQ(p.size(), 40u);
  // First point and weight of the seed-2011 stream.
  EXPECT_NEAR(p.point(0)[0], 2.9838063142510514, 1e-12);
  EXPECT_NEAR(p.point(0)[1], 3.7741289449041964, 1e-12);
  EXPECT_DOUBLE_EQ(p.weight(0), 1.0);
}

}  // namespace
}  // namespace mmph
