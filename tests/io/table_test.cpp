// Tests for the ASCII table renderer and numeric formatting.

#include <gtest/gtest.h>

#include <sstream>

#include "mmph/io/table.hpp"
#include "mmph/support/error.hpp"

namespace mmph::io {
namespace {

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 4), "2.0000");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

TEST(Percent, FormatsAsPaperDoes) {
  EXPECT_EQ(percent(0.8422), "84.22%");
  EXPECT_EQ(percent(0.5597), "55.97%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), mmph::InvalidArgument);
}

TEST(Table, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), mmph::InvalidArgument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"k", "reward"});
  t.add_row({"2", "44.6301"});
  t.add_row({"10", "9.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Rule row contains dashes sized to the widest cell.
  EXPECT_NE(out.find("--"), std::string::npos);
  // Both data values present.
  EXPECT_NE(out.find("44.6301"), std::string::npos);
  EXPECT_NE(out.find("9.1"), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name"});
  t.add_row({"hello, world"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  Table t({"solver", "ratio"});
  t.add_row({"greedy3", "84.22%"});
  t.add_row({"a|b", "1"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(),
            "| solver | ratio |\n"
            "|---|---|\n"
            "| greedy3 | 84.22% |\n"
            "| a\\|b | 1 |\n");
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table t({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace mmph::io
