// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include <vector>

#include "mmph/io/args.hpp"
#include "mmph/support/error.hpp"

namespace mmph::io {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyArgsUseFallbacks) {
  Args args = make_args({});
  EXPECT_EQ(args.get_int("trials", 30), 30);
  EXPECT_DOUBLE_EQ(args.get_double("pitch", 0.5), 0.5);
  EXPECT_EQ(args.get_string("out", "x"), "x");
  EXPECT_FALSE(args.get_flag("verbose"));
  EXPECT_NO_THROW(args.finish());
}

TEST(Args, EqualsSyntax) {
  Args args = make_args({"--trials=50", "--pitch=0.25", "--name=fig4"});
  EXPECT_EQ(args.get_int("trials", 0), 50);
  EXPECT_DOUBLE_EQ(args.get_double("pitch", 0.0), 0.25);
  EXPECT_EQ(args.get_string("name", ""), "fig4");
  args.finish();
}

TEST(Args, SpaceSyntax) {
  Args args = make_args({"--trials", "50", "--name", "fig4"});
  EXPECT_EQ(args.get_int("trials", 0), 50);
  EXPECT_EQ(args.get_string("name", ""), "fig4");
  args.finish();
}

TEST(Args, BareBooleanFlag) {
  Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.get_flag("verbose"));
  args.finish();
}

TEST(Args, ExplicitBooleanValues) {
  Args t = make_args({"--a=true", "--b=1", "--c=yes"});
  EXPECT_TRUE(t.get_flag("a"));
  EXPECT_TRUE(t.get_flag("b"));
  EXPECT_TRUE(t.get_flag("c"));
  Args f = make_args({"--a=false", "--b=0", "--c=no"});
  EXPECT_FALSE(f.get_flag("a"));
  EXPECT_FALSE(f.get_flag("b"));
  EXPECT_FALSE(f.get_flag("c"));
}

TEST(Args, MalformedValuesThrow) {
  Args a = make_args({"--trials=abc"});
  EXPECT_THROW((void)a.get_int("trials", 0), mmph::ParseError);
  Args b = make_args({"--pitch=0.5x"});
  EXPECT_THROW((void)b.get_double("pitch", 0.0), mmph::ParseError);
  Args c = make_args({"--flag=maybe"});
  EXPECT_THROW((void)c.get_flag("flag"), mmph::ParseError);
}

TEST(Args, NonFlagTokenRejected) {
  EXPECT_THROW(make_args({"positional"}), mmph::ParseError);
  EXPECT_THROW(make_args({"-x"}), mmph::ParseError);
}

TEST(Args, FinishFlagsUnknown) {
  Args args = make_args({"--trials=5", "--typo=1"});
  (void)args.get_int("trials", 0);
  try {
    args.finish();
    FAIL() << "finish should have thrown";
  } catch (const mmph::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("--typo"), std::string::npos);
  }
}

TEST(Args, HasMarksConsumed) {
  Args args = make_args({"--csv"});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("other"));
  EXPECT_NO_THROW(args.finish());
}

TEST(Args, NegativeNumbersAsValues) {
  Args args = make_args({"--offset=-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

TEST(Args, ProgramNameCaptured) {
  const char* argv[] = {"myprog", "--x=1"};
  Args args(2, argv);
  EXPECT_EQ(args.program(), "myprog");
  (void)args.get_int("x", 0);
}

}  // namespace
}  // namespace mmph::io
