// Tests for RunningStats (Welford), percentiles and Jain fairness.

#include <gtest/gtest.h>

#include <cmath>

#include "mmph/io/stats.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::io {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveOnRandomData) {
  rnd::Rng rng(1);
  RunningStats s;
  std::vector<double> data;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    data.push_back(x);
    s.add(x);
  }
  double sum = 0.0;
  for (double x : data) sum += x;
  const double mean = sum / static_cast<double>(data.size());
  double ss = 0.0;
  for (double x : data) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), ss / (static_cast<double>(data.size()) - 1.0),
              1e-6);
}

TEST(RunningStats, MergeEqualsSequential) {
  rnd::Rng rng(2);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  rnd::Rng rng(3);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Percentile, Endpoints) {
  const std::vector<double> data{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.5), 2.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(data, 0.75), 7.5);
}

TEST(Percentile, Validation) {
  EXPECT_THROW((void)percentile({}, 0.5), mmph::InvalidArgument);
  EXPECT_THROW((void)percentile({1.0}, 1.5), mmph::InvalidArgument);
}

TEST(PercentileInplace, SortsItsInput) {
  std::vector<double> data{3.0, 1.0, 2.0};
  (void)percentile_inplace(data, 0.5);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({2.0, 2.0, 2.0, 2.0}), 1.0);
}

TEST(JainFairness, MaximallyUnfair) {
  // One user gets everything: index = 1/n.
  EXPECT_DOUBLE_EQ(jain_fairness({8.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(JainFairness, InUnitInterval) {
  rnd::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> x(10);
    for (double& v : x) v = rng.uniform(0.0, 5.0);
    const double j = jain_fairness(x);
    EXPECT_GE(j, 1.0 / 10.0 - 1e-12);
    EXPECT_LE(j, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace mmph::io
