#!/bin/sh
# End-to-end test of the mmph_cli tool: generate -> solve -> evaluate ->
# describe round trip, plus error handling. Run by CTest with the cli
# binary path as $1.
set -e
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# generate + describe
"$CLI" generate --n 25 --seed 9 --norm l1 --out "$DIR/p.txt"
"$CLI" describe --problem "$DIR/p.txt" | grep -q "L1"
"$CLI" describe --problem "$DIR/p.txt" | grep -q "25"

# solve + evaluate consistency
"$CLI" solve --problem "$DIR/p.txt" --solver greedy3 --k 3 --out "$DIR/s.txt"
"$CLI" evaluate --problem "$DIR/p.txt" --solution "$DIR/s.txt" | grep -q "consistent"

# compare smoke: table lists every requested solver
"$CLI" compare --problem "$DIR/p.txt" --k 2 --solvers greedy2,greedy3 > "$DIR/cmp.txt"
grep -q "greedy2" "$DIR/cmp.txt"
grep -q "greedy3" "$DIR/cmp.txt"

# certify smoke: certificate ratio line present
"$CLI" certify --problem "$DIR/p.txt" --solution "$DIR/s.txt" --pitch 0.25 | grep -q "certified ratio"

# simulate smoke
"$CLI" simulate --users 10 --slots 5 --solver greedy3 | grep -q "total reward"

# serve-replay smoke: batched churn replay reports solve metrics and spans
"$CLI" serve-replay --users 120 --slots 4 --k 3 --churn 0.02 > "$DIR/serve.txt"
grep -q "incremental ratio" "$DIR/serve.txt"
grep -q "serve.batch" "$DIR/serve.txt"

# serve-net self-test smoke: in-process server + client over loopback;
# --stats appends the scraped Prometheus exposition to the report.
"$CLI" serve-net --users 100 --slots 3 --churn 0.02 --stats > "$DIR/net.txt"
grep -q "requests failed *0" "$DIR/net.txt"
grep -q "frame errors *0" "$DIR/net.txt"
grep -Eq "^mmph_net_requests_total [1-9]" "$DIR/net.txt"
grep -Eq "^mmph_serve_submitted_total [1-9]" "$DIR/net.txt"

# serve-net two-process smoke: listen + connect across real sockets
sh "$(dirname "$0")/net_smoke.sh" "$CLI"

# kStats two-process smoke: listen, replay, scrape with `stats`
sh "$(dirname "$0")/stats_smoke.sh" "$CLI"

# error handling: unknown command and unknown solver exit nonzero
if "$CLI" frobnicate 2>/dev/null; then echo "unknown command accepted"; exit 1; fi
if "$CLI" solve --problem "$DIR/p.txt" --solver nope --k 2 2>/dev/null; then
  echo "unknown solver accepted"; exit 1
fi
if "$CLI" evaluate --problem /does/not/exist --solution "$DIR/s.txt" 2>/dev/null; then
  echo "missing file accepted"; exit 1
fi
echo "cli_test OK"
