#!/bin/sh
# End-to-end test of the mmph_cli tool: generate -> solve -> evaluate ->
# describe round trip, plus error handling. Run by CTest with the cli
# binary path as $1.
set -e
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# generate + describe
"$CLI" generate --n 25 --seed 9 --norm l1 --out "$DIR/p.txt"
"$CLI" describe --problem "$DIR/p.txt" | grep -q "L1"
"$CLI" describe --problem "$DIR/p.txt" | grep -q "25"

# solve + evaluate consistency
"$CLI" solve --problem "$DIR/p.txt" --solver greedy3 --k 3 --out "$DIR/s.txt"
"$CLI" evaluate --problem "$DIR/p.txt" --solution "$DIR/s.txt" | grep -q "consistent"

# compare smoke: table lists every requested solver
"$CLI" compare --problem "$DIR/p.txt" --k 2 --solvers greedy2,greedy3 > "$DIR/cmp.txt"
grep -q "greedy2" "$DIR/cmp.txt"
grep -q "greedy3" "$DIR/cmp.txt"

# certify smoke: certificate ratio line present
"$CLI" certify --problem "$DIR/p.txt" --solution "$DIR/s.txt" --pitch 0.25 | grep -q "certified ratio"

# simulate smoke
"$CLI" simulate --users 10 --slots 5 --solver greedy3 | grep -q "total reward"

# ls solver tier: solve with the polish tier, and the ls solution never
# undercuts the lazy seed it polishes
"$CLI" solve --problem "$DIR/p.txt" --solver ls --k 3 --out "$DIR/ls.txt"
"$CLI" evaluate --problem "$DIR/p.txt" --solution "$DIR/ls.txt" > "$DIR/lseval.txt"
grep -q "consistent" "$DIR/lseval.txt"
grep -q "ls(greedy2-lazy)" "$DIR/lseval.txt"
"$CLI" compare --problem "$DIR/p.txt" --k 3 --solvers greedy2-lazy,ls > "$DIR/lscmp.txt"
grep -q "^greedy2-lazy " "$DIR/lscmp.txt"
grep -q "^ls " "$DIR/lscmp.txt"

# serve-replay smoke: batched churn replay reports solve metrics and spans
"$CLI" serve-replay --users 120 --slots 4 --k 3 --churn 0.02 > "$DIR/serve.txt"
grep -q "incremental ratio" "$DIR/serve.txt"
grep -q "serve.batch" "$DIR/serve.txt"

# serve-replay on the ls tier reports the polish counters
"$CLI" serve-replay --users 120 --slots 3 --k 3 --solver ls > "$DIR/servels.txt"
grep -q "ls moves" "$DIR/servels.txt"
grep -q "ls evals" "$DIR/servels.txt"
grep -q "serve.solve.polish" "$DIR/servels.txt"

# serve-net self-test smoke: in-process server + client over loopback;
# --stats appends the scraped Prometheus exposition to the report.
"$CLI" serve-net --users 100 --slots 3 --churn 0.02 --stats > "$DIR/net.txt"
grep -q "requests failed *0" "$DIR/net.txt"
grep -q "frame errors *0" "$DIR/net.txt"
grep -Eq "^mmph_net_requests_total [1-9]" "$DIR/net.txt"
grep -Eq "^mmph_serve_submitted_total [1-9]" "$DIR/net.txt"

# serve-net two-process smoke: listen + connect across real sockets
sh "$(dirname "$0")/net_smoke.sh" "$CLI"

# kStats two-process smoke: listen, replay, scrape with `stats`
sh "$(dirname "$0")/stats_smoke.sh" "$CLI"

# WAL round trip: run a durable server twice over the same --wal-dir; the
# second run must recover exactly the epoch the first one reached, and
# wal-dump/wal-recover must agree on the recovered digest.
run_wal_server() {
  rm -f "$DIR/wport"
  "$CLI" serve-net --listen --port 0 --port-file "$DIR/wport" \
    --run-seconds 30 --wal-dir "$DIR/wal" > "$1" 2>&1 &
  WAL_PID=$!
  tries=0
  while [ ! -s "$DIR/wport" ]; do
    kill -0 "$WAL_PID" 2>/dev/null || { cat "$1"; exit 1; }
    tries=$((tries + 1))
    [ "$tries" -gt 50 ] && { echo "no port file"; cat "$1"; exit 1; }
    sleep 0.1
  done
}
run_wal_server "$DIR/wal1.log"
"$CLI" serve-net --connect 127.0.0.1 --port "$(cat "$DIR/wport")" \
  --users 40 --slots 2 --churn 0.05 > "$DIR/walclient.txt"
grep -q "requests failed *0" "$DIR/walclient.txt"
kill "$WAL_PID" && wait "$WAL_PID" 2>/dev/null || true
"$CLI" wal-recover --dir "$DIR/wal" > "$DIR/recover.txt"
grep -q "clean *yes" "$DIR/recover.txt"
DIGEST=$(grep "store digest" "$DIR/recover.txt" | grep -o "0x[0-9a-f]*")
"$CLI" wal-dump --dir "$DIR/wal" | grep -q "digest $DIGEST"
run_wal_server "$DIR/wal2.log"
kill "$WAL_PID" && wait "$WAL_PID" 2>/dev/null || true
grep -q "wal: recovered" "$DIR/wal2.log"
grep -q "digest $DIGEST" "$DIR/wal2.log"

# error handling: unknown command and unknown solver exit nonzero
if "$CLI" frobnicate 2>/dev/null; then echo "unknown command accepted"; exit 1; fi
if "$CLI" solve --problem "$DIR/p.txt" --solver nope --k 2 2>/dev/null; then
  echo "unknown solver accepted"; exit 1
fi
if "$CLI" evaluate --problem /does/not/exist --solution "$DIR/s.txt" 2>/dev/null; then
  echo "missing file accepted"; exit 1
fi

# typed argument validation: non-positive counts and k > n fail up front
# with a named-flag error instead of wrapping through size_t casts
if "$CLI" serve-replay --users 20 --slots 2 --store-shards 0 2>"$DIR/err1.txt"; then
  echo "--store-shards 0 accepted"; exit 1
fi
grep -q "store-shards must be >= 1" "$DIR/err1.txt"
if "$CLI" serve-net --loops 0 2>"$DIR/err2.txt"; then
  echo "--loops 0 accepted"; exit 1
fi
grep -q "loops must be >= 1" "$DIR/err2.txt"
if "$CLI" serve-net --loops -2 2>"$DIR/err3.txt"; then
  echo "negative --loops accepted"; exit 1
fi
grep -q "loops must be >= 1" "$DIR/err3.txt"
if "$CLI" solve --problem "$DIR/p.txt" --solver greedy3 --k 26 2>"$DIR/err4.txt"; then
  echo "k > n accepted"; exit 1
fi
grep -q "exceeds the instance size" "$DIR/err4.txt"
if "$CLI" serve-replay --users 20 --slots 2 --solver frob 2>"$DIR/err5.txt"; then
  echo "unknown solver tier accepted"; exit 1
fi
grep -q "unknown --solver" "$DIR/err5.txt"
echo "cli_test OK"
