#!/bin/sh
# Two-process smoke test of the socket layer: start `mmph_cli serve-net
# --listen` on an ephemeral loopback port, replay a churn workload into
# it with `serve-net --connect` (NetClient), and check the replies. Runs
# the whole flow twice — at --loops 1 (the deterministic single-loop
# schedule) and --loops 4 (SO_REUSEPORT multi-loop front end). Used both
# by tools/check.sh net-smoke and by tests/cli_test.sh (ctest).
# Usage: net_smoke.sh <path-to-mmph_cli>
set -e
CLI="$1"
[ -n "$CLI" ] || { echo "usage: net_smoke.sh <mmph_cli>"; exit 2; }
DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

run_smoke() {
  LOOPS="$1"

  # Start the server on an ephemeral port (0 = kernel-assigned, published
  # via a port file; --run-seconds caps the lifetime so a wedged test
  # cannot leak a process). A bind/listen failure — possible when the host
  # is churning sockets even with kernel-assigned ports — retries with a
  # fresh attempt instead of flaking; any other premature death, or a
  # timeout waiting for the port file, fails loudly with the server log.
  attempt=0
  while :; do
    attempt=$((attempt + 1))
    rm -f "$DIR/port"
    "$CLI" serve-net --listen --port 0 --loops "$LOOPS" \
      --port-file "$DIR/port" \
      --run-seconds 30 > "$DIR/server.log" 2>&1 &
    SERVER_PID=$!

    tries=0
    while [ ! -s "$DIR/port" ]; do
      if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        wait "$SERVER_PID" 2>/dev/null || true
        SERVER_PID=""
        if [ "$attempt" -lt 3 ] && grep -Eq "bind|listen" "$DIR/server.log"; then
          echo "server bind failed (attempt $attempt), retrying with a fresh port" >&2
          sleep 0.2
          continue 2
        fi
        echo "server died before publishing its port; server log:"
        cat "$DIR/server.log"
        exit 1
      fi
      tries=$((tries + 1))
      if [ "$tries" -gt 50 ]; then
        echo "timed out waiting for the server port file; server log:"
        cat "$DIR/server.log"
        exit 1
      fi
      sleep 0.1
    done
    break
  done
  PORT=$(cat "$DIR/port")

  # Client: replay a small churn workload over the socket and verify every
  # request was answered kOk with a live placement.
  "$CLI" serve-net --connect 127.0.0.1 --port "$PORT" \
    --users 150 --slots 4 --churn 0.02 > "$DIR/client.txt"
  grep -q "requests failed *0" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }
  grep -q "requests timed out *0" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }
  grep -Eq "last centers *[1-9]" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }

  # Graceful shutdown: SIGTERM makes the server print its metrics table
  # (plus the per-loop breakdown when more than one loop ran).
  kill "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  grep -q "frame errors *0" "$DIR/server.log" || { cat "$DIR/server.log"; exit 1; }
  grep -q "connections accepted" "$DIR/server.log" || { cat "$DIR/server.log"; exit 1; }
  if [ "$LOOPS" -gt 1 ]; then
    grep -q "accept=reuseport" "$DIR/server.log" || { cat "$DIR/server.log"; exit 1; }
    grep -q "ownership checks" "$DIR/server.log" || { cat "$DIR/server.log"; exit 1; }
  fi
  echo "net_smoke --loops $LOOPS OK"
}

run_smoke 1
run_smoke 4
echo "net_smoke OK"
