#!/bin/sh
# Two-process smoke test of the socket layer: start `mmph_cli serve-net
# --listen` on an ephemeral loopback port, replay a churn workload into
# it with `serve-net --connect` (NetClient), and check the replies. Used
# both by tools/check.sh net-smoke and by tests/cli_test.sh (ctest).
# Usage: net_smoke.sh <path-to-mmph_cli>
set -e
CLI="$1"
[ -n "$CLI" ] || { echo "usage: net_smoke.sh <mmph_cli>"; exit 2; }
DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

# Server: ephemeral port (0 = kernel-assigned), written to a port file;
# --run-seconds caps the lifetime so a wedged test cannot leak a process.
"$CLI" serve-net --listen --port 0 --port-file "$DIR/port" \
  --run-seconds 30 > "$DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the port file (up to ~5 s).
tries=0
while [ ! -s "$DIR/port" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 50 ] || { echo "server never published its port"; cat "$DIR/server.log"; exit 1; }
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; cat "$DIR/server.log"; exit 1; }
  sleep 0.1
done
PORT=$(cat "$DIR/port")

# Client: replay a small churn workload over the socket and verify every
# request was answered kOk with a live placement.
"$CLI" serve-net --connect 127.0.0.1 --port "$PORT" \
  --users 150 --slots 4 --churn 0.02 > "$DIR/client.txt"
grep -q "requests failed *0" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }
grep -q "requests timed out *0" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }
grep -Eq "last centers *[1-9]" "$DIR/client.txt" || { cat "$DIR/client.txt"; exit 1; }

# Graceful shutdown: SIGTERM makes the server print its metrics table.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q "frame errors *0" "$DIR/server.log" || { cat "$DIR/server.log"; exit 1; }
grep -q "connections accepted" "$DIR/server.log" || { cat "$DIR/server.log"; exit 1; }
echo "net_smoke OK"
