// Tests for ThreadPool and TaskGroup: completion, exceptions, stress.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "mmph/parallel/thread_pool.hpp"
#include "mmph/support/error.hpp"

namespace mmph::par {
namespace {

TEST(ThreadPool, DefaultSizeMatchesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group;
  for (int i = 0; i < 100; ++i) {
    pool.submit(group.wrap([&counter] { counter.fetch_add(1); }));
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitRejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), InvalidArgument);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    TaskGroup group;
    for (int i = 0; i < 50; ++i) {
      pool.submit(group.wrap([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      }));
    }
    group.wait();
  }  // pool joins here
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(4);
  TaskGroup group;
  for (int i = 0; i < 10; ++i) {
    pool.submit(group.wrap([i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
    }));
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, AllTasksRunEvenWhenSomeThrow) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit(group.wrap([&ran, i] {
      ran.fetch_add(1);
      if (i % 5 == 0) throw std::runtime_error("boom");
    }));
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskGroup, WaitWithNoTasksReturnsImmediately) {
  TaskGroup group;
  EXPECT_NO_THROW(group.wait());
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> counter{0};
  pool.submit(group.wrap([&counter] { counter.fetch_add(1); }));
  group.wait();
  pool.submit(group.wrap([&counter] { counter.fetch_add(1); }));
  group.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskGroup, WrapRejectsEmpty) {
  TaskGroup group;
  EXPECT_THROW((void)group.wrap(std::function<void()>{}), InvalidArgument);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  TaskGroup group;
  constexpr int kTasks = 5000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit(group.wrap([&sum, i] { sum.fetch_add(i); }));
  }
  group.wait();
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Two tasks that wait for each other can only finish on >= 2 threads.
  ThreadPool pool(2);
  std::atomic<bool> a_started{false};
  std::atomic<bool> b_started{false};
  TaskGroup group;
  pool.submit(group.wrap([&] {
    a_started = true;
    while (!b_started) std::this_thread::yield();
  }));
  pool.submit(group.wrap([&] {
    b_started = true;
    while (!a_started) std::this_thread::yield();
  }));
  group.wait();
  SUCCEED();
}

}  // namespace
}  // namespace mmph::par
