// Tests for parallel_for / parallel_reduce: coverage, exceptions, results
// identical to serial execution.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mmph/parallel/parallel_for.hpp"

namespace mmph::par {
namespace {

TEST(DefaultGrain, NeverZero) {
  EXPECT_GE(default_grain(0, 4), 1u);
  EXPECT_GE(default_grain(1, 4), 1u);
  EXPECT_GE(default_grain(1000000, 0), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 41, 42, [&](std::size_t i) {
    EXPECT_EQ(i, 41u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, ExplicitGrainStillCoversRange) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1003;  // deliberately not a grain multiple
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 64);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [](std::size_t i) {
                     if (i == 513) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelForChunks, ChunksAreDisjointAndCover) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunks(pool, 0, kN, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 200000;
  const std::uint64_t got = parallel_reduce(
      pool, 0, kN, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  ThreadPool pool(2);
  const int got = parallel_reduce(
      pool, 3, 3, -7, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, -7);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  std::vector<double> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>((i * 2654435761u) % 10007);
  }
  const double got = parallel_reduce(
      pool, 0, data.size(), -1.0, [&](std::size_t i) { return data[i]; },
      [](double a, double b) { return a > b ? a : b; });
  EXPECT_DOUBLE_EQ(got, *std::max_element(data.begin(), data.end()));
}

TEST(ParallelFor, WorksOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ParallelFor, NestedParallelismDoesNotDeadlock) {
  // Outer loop on the global pool, inner loops on a private pool.
  ThreadPool inner(2);
  std::atomic<int> count{0};
  parallel_for(ThreadPool::global(), 0, 8, [&](std::size_t) {
    parallel_for(inner, 0, 100, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 800);
}

}  // namespace
}  // namespace mmph::par
