// Tests for the support library: error types and MMPH_REQUIRE semantics.

#include <gtest/gtest.h>

#include "mmph/support/assert.hpp"
#include "mmph/support/error.hpp"

namespace mmph {
namespace {

TEST(ErrorHierarchy, InvalidArgumentIsAnError) {
  const InvalidArgument e("bad");
  EXPECT_NE(dynamic_cast<const Error*>(&e), nullptr);
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&e), nullptr);
}

TEST(ErrorHierarchy, StateAndParseErrorsAreErrors) {
  EXPECT_THROW(throw StateError("s"), Error);
  EXPECT_THROW(throw ParseError("p"), Error);
}

TEST(ErrorHierarchy, WhatIsPreserved) {
  const Error e("something broke");
  EXPECT_STREQ(e.what(), "something broke");
}

TEST(Require, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(MMPH_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Require, FailingConditionThrowsInvalidArgument) {
  EXPECT_THROW(MMPH_REQUIRE(false, "always fails"), InvalidArgument);
}

TEST(Require, MessageContainsContext) {
  try {
    MMPH_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(Require, ConditionEvaluatedExactlyOnce) {
  int count = 0;
  MMPH_REQUIRE(++count > 0, "increments once");
  EXPECT_EQ(count, 1);
}

TEST(Assert, PassingAssertIsSilent) {
  int count = 0;
  MMPH_ASSERT(++count == 1, "side effect allowed in tests");
  SUCCEED();
}

}  // namespace
}  // namespace mmph
