// mmph::spatial unit tests: the radius-query contract (ascending superset
// of the closed metric ball, exact unmasked-only results), residual-aware
// masking, and — the invariant the serve layer leans on — a randomized
// add/update/swap-remove churn schedule leaving the incremental index
// answering queries identically to an index built from scratch over the
// same rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mmph/geometry/norms.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/spatial/kd_index.hpp"
#include "mmph/spatial/spatial_index.hpp"
#include "mmph/spatial/uniform_grid.hpp"

namespace mmph::spatial {
namespace {

geo::PointSet random_points(std::size_t n, std::size_t dim, rnd::Rng& rng,
                            double lo = -4.0, double hi = 4.0) {
  geo::PointSet points(dim);
  points.reserve(n);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) row[d] = rng.uniform(lo, hi);
    points.push_back(row);
  }
  return points;
}

/// Closed-ball reference: every unmasked id with d(center, p) <= radius.
std::vector<std::size_t> brute_ball(const SpatialIndex& index,
                                    geo::ConstVec center,
                                    const geo::Metric& metric) {
  std::vector<std::size_t> out;
  for (std::size_t id = 0; id < index.size(); ++id) {
    if (index.masked(id)) continue;
    if (metric.distance(center, index.point(id)) <= index.radius()) {
      out.push_back(id);
    }
  }
  return out;
}

/// The query contract: ascending, no duplicates, unmasked only, and a
/// superset of the closed metric ball.
void expect_query_contract(const SpatialIndex& index, geo::ConstVec center,
                           const geo::Metric& metric) {
  std::vector<std::size_t> got;
  index.query(center, got);
  ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
  ASSERT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
  for (const std::size_t id : got) {
    ASSERT_LT(id, index.size());
    EXPECT_FALSE(index.masked(id));
  }
  for (const std::size_t id : brute_ball(index, center, metric)) {
    EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
        << "ball point " << id << " missing from query";
  }
}

TEST(SpatialIndex, GridQueryIsAscendingSupersetOfBall) {
  const geo::Metric metrics[] = {geo::l1_metric(), geo::l2_metric(),
                                 geo::linf_metric()};
  for (const std::size_t dim : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
    for (const geo::Metric& metric : metrics) {
      rnd::Rng rng(7 * dim + static_cast<std::uint64_t>(metric.norm()));
      const geo::PointSet points = random_points(300, dim, rng);
      const UniformGridIndex index(points, 1.0);
      std::vector<double> center(dim);
      for (int q = 0; q < 40; ++q) {
        for (std::size_t d = 0; d < dim; ++d) {
          center[d] = rng.uniform(-5.0, 5.0);
        }
        expect_query_contract(index, center, metric);
      }
    }
  }
}

TEST(SpatialIndex, KdQueryIsExactClosedBall) {
  for (const std::size_t dim : {std::size_t{2}, std::size_t{6}}) {
    const geo::Metric metric = geo::l2_metric();
    rnd::Rng rng(101 + dim);
    const geo::PointSet points = random_points(250, dim, rng);
    const KdTreeIndex index(points, 1.5, metric);
    std::vector<double> center(dim);
    for (int q = 0; q < 30; ++q) {
      for (std::size_t d = 0; d < dim; ++d) center[d] = rng.uniform(-5.0, 5.0);
      std::vector<std::size_t> got;
      index.query(center, got);
      // The kd-tree answers the exact ball, not just a superset.
      EXPECT_EQ(got, brute_ball(index, center, metric));
    }
  }
}

TEST(SpatialIndex, FactoryPicksGridLowDimKdHigh) {
  rnd::Rng rng(5);
  const geo::PointSet low = random_points(32, 2, rng);
  const geo::PointSet high = random_points(32, kGridMaxDim + 1, rng);
  EXPECT_EQ(make_index(low, 1.0, geo::l2_metric())->kind(), IndexKind::kGrid);
  EXPECT_EQ(make_index(high, 1.0, geo::l2_metric())->kind(),
            IndexKind::kKdTree);
}

TEST(SpatialIndex, MaskingDropsPointsAndUnmaskRestores) {
  for (const IndexKind kind : {IndexKind::kGrid, IndexKind::kKdTree}) {
    rnd::Rng rng(17);
    const geo::PointSet points = random_points(120, 2, rng);
    const auto index = make_index(kind, points, 1.0, geo::l2_metric());
    const double center[] = {0.0, 0.0};
    std::vector<std::size_t> before;
    index->query(center, before);
    ASSERT_FALSE(before.empty()) << index_kind_name(kind);

    for (std::size_t i = 0; i < before.size(); i += 2) {
      index->mask(before[i]);
      index->mask(before[i]);  // idempotent
    }
    std::vector<std::size_t> masked;
    index->query(center, masked);
    for (std::size_t i = 0; i < before.size(); ++i) {
      const bool expect_present = (i % 2) != 0;
      EXPECT_EQ(std::binary_search(masked.begin(), masked.end(), before[i]),
                expect_present)
          << index_kind_name(kind);
    }
    EXPECT_TRUE(index->verify()) << index_kind_name(kind);

    index->unmask_all();
    std::vector<std::size_t> after;
    index->query(center, after);
    EXPECT_EQ(after, before) << index_kind_name(kind);
    EXPECT_TRUE(index->verify()) << index_kind_name(kind);
  }
}

/// The serve-layer invariant: a randomized interleave of add / update /
/// swap_remove (mirroring InstanceStore churn) leaves the incremental
/// index answering every query identically to a from-scratch build over
/// the same final rows — and identically after an explicit rebuild().
TEST(SpatialIndex, RandomChurnMatchesFreshRebuild) {
  for (const IndexKind kind : {IndexKind::kGrid, IndexKind::kKdTree}) {
    const geo::Metric metric = geo::l2_metric();
    rnd::Rng rng(kind == IndexKind::kGrid ? 23 : 29);
    const std::size_t dim = 2;
    geo::PointSet points = random_points(80, dim, rng);
    const auto index = make_index(kind, points, 1.0, metric);

    // Shadow copy of the rows, mutated in lockstep.
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < points.size(); ++i) {
      rows.emplace_back(points[i].begin(), points[i].end());
    }

    std::vector<double> p(dim);
    std::vector<double> center(dim);
    for (int step = 0; step < 600; ++step) {
      const std::int64_t op = rng.uniform_int(0, 2);
      if (op == 0 || rows.empty()) {
        for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-4.0, 4.0);
        index->add(p);
        rows.push_back(p);
      } else if (op == 1) {
        const auto id = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
        for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-4.0, 4.0);
        index->update(id, p);
        rows[id] = p;
      } else {
        const auto id = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
        index->swap_remove(id);
        rows[id] = rows.back();
        rows.pop_back();
      }
      if (step % 40 == 0) {
        ASSERT_TRUE(index->verify())
            << index_kind_name(kind) << " step " << step;
      }
      ASSERT_EQ(index->size(), rows.size());

      // Occasionally compare against a from-scratch build over the rows.
      if (step % 25 != 0) continue;
      std::vector<double> flat;
      for (const auto& row : rows) {
        flat.insert(flat.end(), row.begin(), row.end());
      }
      const geo::PointSet fresh_points(dim, flat);
      const auto fresh = make_index(kind, fresh_points, 1.0, metric);
      for (int q = 0; q < 10; ++q) {
        for (std::size_t d = 0; d < dim; ++d) {
          center[d] = rng.uniform(-5.0, 5.0);
        }
        std::vector<std::size_t> got, want;
        index->query(center, got);
        fresh->query(center, want);
        ASSERT_EQ(got, want)
            << index_kind_name(kind) << " step " << step << " query " << q;
      }
    }

    // Coordinates survived the churn exactly.
    for (std::size_t id = 0; id < rows.size(); ++id) {
      for (std::size_t d = 0; d < dim; ++d) {
        ASSERT_EQ(index->point(id)[d], rows[id][d]);
      }
    }

    // An explicit rebuild (the corruption-recovery path) changes nothing.
    std::vector<std::size_t> before, after;
    const double origin[] = {0.0, 0.0};
    index->query(origin, before);
    index->rebuild();
    EXPECT_TRUE(index->verify());
    index->query(origin, after);
    EXPECT_EQ(after, before) << index_kind_name(kind);
  }
}

TEST(SpatialIndex, StatsCountQueriesTouchesUpdatesRebuilds) {
  rnd::Rng rng(31);
  const geo::PointSet points = random_points(50, 2, rng);
  UniformGridIndex index(points, 1.0);
  const IndexStats built = index.stats();
  EXPECT_EQ(built.rebuilds, 1u);  // the constructor's bulk build
  EXPECT_EQ(built.queries, 0u);
  EXPECT_EQ(built.incremental_updates, 0u);

  const double center[] = {0.0, 0.0};
  std::vector<std::size_t> out;
  index.query(center, out);
  const double far[] = {100.0, 100.0};
  index.query(far, out);
  const IndexStats queried = index.stats();
  EXPECT_EQ(queried.queries, 2u);
  EXPECT_GE(queried.points_touched, 1u);  // the far query touched nothing

  const double p[] = {0.1, 0.2};
  index.add(p);
  index.update(0, p);
  index.swap_remove(0);
  EXPECT_EQ(index.stats().incremental_updates, 3u);

  index.rebuild();
  EXPECT_EQ(index.stats().rebuilds, 2u);
}

TEST(SpatialIndex, KdLooseRowsFoldBackViaAmortizedRebuild) {
  rnd::Rng rng(37);
  const geo::PointSet points = random_points(64, 2, rng);
  KdTreeIndex index(points, 1.0, geo::l2_metric());
  const std::uint64_t builds = index.stats().rebuilds;
  std::vector<double> p(2);
  // Push far past the loose-row threshold; the index must have folded the
  // overlay back into the tree at least once and stayed queryable.
  for (int i = 0; i < 300; ++i) {
    p[0] = rng.uniform(-4.0, 4.0);
    p[1] = rng.uniform(-4.0, 4.0);
    index.add(p);
  }
  EXPECT_GT(index.stats().rebuilds, builds);
  EXPECT_LE(index.loose_count(), index.size() / 8 + 64);
  EXPECT_TRUE(index.verify());
  const double center[] = {0.0, 0.0};
  expect_query_contract(index, center, geo::l2_metric());
}

}  // namespace
}  // namespace mmph::spatial
