// Indexed-vs-unindexed differential sweep: the spatial coverage index is
// an acceleration, never an approximation. Over the same ~210-instance
// seeded corpus as core/differential_test.cpp, every production solver
// (greedy2, lazy, stochastic, sharded) must produce *bit-identical*
// solutions under IndexMode::kGrid and IndexMode::kNone — the index
// returns an ascending superset of the coverage ball and out-of-ball
// terms contribute exact +0.0, so sums associate identically. Also pins
// the kd-tree fallback (dim > kGridMaxDim) and the kAuto threshold.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"
#include "mmph/core/stochastic_greedy.hpp"
#include "mmph/geometry/norms.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/sharded_solver.hpp"
#include "mmph/spatial/spatial_index.hpp"

namespace mmph::core {
namespace {

void expect_identical(const Solution& got, const Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.centers.size(), want.centers.size()) << context;
  ASSERT_EQ(got.centers.dim(), want.centers.dim()) << context;
  EXPECT_EQ(got.total_reward, want.total_reward) << context;  // bitwise
  for (std::size_t c = 0; c < got.centers.size(); ++c) {
    for (std::size_t d = 0; d < got.centers.dim(); ++d) {
      EXPECT_EQ(got.centers[c][d], want.centers[c][d])
          << context << " center " << c << " coord " << d;
    }
  }
}

template <typename SolveFn>
void expect_index_invisible(SolveFn&& solve, const std::string& context) {
  Solution plain, indexed;
  {
    const kernels::ScopedIndexMode off(kernels::IndexMode::kNone);
    plain = solve();
  }
  {
    const kernels::ScopedIndexMode on(kernels::IndexMode::kGrid);
    indexed = solve();
  }
  expect_identical(indexed, plain, context);
}

struct Variant {
  std::size_t dim;
  geo::Metric metric;
  rnd::WeightScheme weights;
  const char* label;
};

TEST(IndexedSolver, GridIndexIsBitInvisibleAcrossCorpus) {
  const Variant variants[] = {
      {2, geo::l2_metric(), rnd::WeightScheme::kSame, "2d-l2-unweighted"},
      {2, geo::l1_metric(), rnd::WeightScheme::kUniformInt, "2d-l1-weighted"},
      {3, geo::l2_metric(), rnd::WeightScheme::kUniformInt, "3d-l2-weighted"},
      {3, geo::l1_metric(), rnd::WeightScheme::kSame, "3d-l1-unweighted"},
  };
  par::ThreadPool pool(2);
  const serve::ShardedSolver sharded(pool, serve::ShardedSolverConfig{});
  const GreedyLocalSolver greedy2;
  const LazyGreedySolver lazy;
  const StochasticGreedySolver stochastic(0.2, 2011);

  int instances = 0;
  for (std::uint64_t seed = 1; seed <= 70; ++seed) {
    const Variant& variant = variants[seed % 4];
    rnd::WorkloadSpec spec;
    spec.n = 6 + seed % 7;  // 6..12
    spec.dim = variant.dim;
    spec.weights = variant.weights;
    rnd::Rng rng(seed);
    const Problem problem = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, variant.metric);

    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      if (k > spec.n) continue;
      ++instances;
      const std::string context = "seed=" + std::to_string(seed) + " " +
                                  variant.label + " n=" +
                                  std::to_string(spec.n) + " k=" +
                                  std::to_string(k);

      expect_index_invisible(
          [&] { return greedy2.solve(problem, k); }, context + " greedy2");
      expect_index_invisible(
          [&] { return lazy.solve(problem, k); }, context + " lazy");
      expect_index_invisible(
          [&] { return stochastic.solve(problem, k); },
          context + " stochastic");
      expect_index_invisible(
          [&] { return sharded.solve(problem, k); }, context + " sharded");
    }
  }
  EXPECT_GE(instances, 200) << "sweep shrank — differential coverage lost";
}

/// Above kGridMaxDim the kGrid request silently falls back to the kd-tree
/// index; that path must be just as invisible.
TEST(IndexedSolver, KdFallbackIsBitInvisibleHighDim) {
  rnd::WorkloadSpec spec;
  spec.n = 48;
  spec.dim = spatial::kGridMaxDim + 2;
  spec.weights = rnd::WeightScheme::kUniformInt;
  rnd::Rng rng(77);
  const Problem problem = Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());

  const LazyGreedySolver lazy;
  const GreedyLocalSolver greedy2;
  expect_index_invisible([&] { return lazy.solve(problem, 4); },
                         "high-dim lazy");
  expect_index_invisible([&] { return greedy2.solve(problem, 4); },
                         "high-dim greedy2");
}

/// kAuto must engage the index at kAutoIndexMinPoints (given a sparse
/// enough box — see the density-guard test below) and stay invisible; the
/// kAuto result must also match an explicit kGrid solve bit-for-bit.
TEST(IndexedSolver, AutoModeEngagesAtThresholdAndStaysInvisible) {
  rnd::WorkloadSpec spec;
  spec.n = kernels::kAutoIndexMinPoints;  // exactly at the threshold
  spec.dim = 2;
  spec.box_side = 64.0;  // sparse: a radius-1 query box is ~0.2% of this
  rnd::Rng rng(9001);
  const Problem problem = Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  const LazyGreedySolver lazy;

  Solution plain, grid, automatic;
  {
    const kernels::ScopedIndexMode off(kernels::IndexMode::kNone);
    plain = lazy.solve(problem, 4);
  }
  {
    const kernels::ScopedIndexMode on(kernels::IndexMode::kGrid);
    grid = lazy.solve(problem, 4);
  }
  {
    const kernels::ScopedIndexMode automode(kernels::IndexMode::kAuto);
    automatic = lazy.solve(problem, 4);
  }
  expect_identical(grid, plain, "kAuto-threshold grid-vs-plain");
  expect_identical(automatic, grid, "kAuto-threshold auto-vs-grid");
  EXPECT_TRUE(kernels::auto_index_profitable(problem));
}

/// The kAuto density guard: when coverage balls rival the whole box, a
/// query gathers (and merges) most of the population and the full scan is
/// cheaper — kAuto must decline to index such workloads, while an explicit
/// kGrid still forces the index (the differential corpus relies on that).
TEST(IndexedSolver, AutoDensityGuardSkipsDenseBoxes) {
  rnd::WorkloadSpec spec;
  spec.n = kernels::kAutoIndexMinPoints;
  spec.dim = 2;
  spec.box_side = 4.0;  // radius-1 query box spans (3/4)^2 = 56% of it
  rnd::Rng rng(42);
  const Problem dense = Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  EXPECT_FALSE(kernels::auto_index_profitable(dense));
  {
    const kernels::ScopedIndexMode automode(kernels::IndexMode::kAuto);
    EXPECT_EQ(kernels::IndexedActiveSet::try_make(dense), nullptr);
  }
  {
    const kernels::ScopedIndexMode force(kernels::IndexMode::kGrid);
    EXPECT_NE(kernels::IndexedActiveSet::try_make(dense), nullptr);
  }

  spec.box_side = 64.0;  // same population spread thin: ~0.2% per query
  rnd::Rng sparse_rng(42);
  const Problem sparse = Problem::from_workload(
      rnd::generate_workload(spec, sparse_rng), 1.0, geo::l2_metric());
  EXPECT_TRUE(kernels::auto_index_profitable(sparse));
  {
    const kernels::ScopedIndexMode automode(kernels::IndexMode::kAuto);
    EXPECT_NE(kernels::IndexedActiveSet::try_make(sparse), nullptr);
  }
}

TEST(IndexedSolver, ParseAndNameRoundTrip) {
  using kernels::IndexMode;
  EXPECT_EQ(kernels::parse_index_mode("none"), IndexMode::kNone);
  EXPECT_EQ(kernels::parse_index_mode("grid"), IndexMode::kGrid);
  EXPECT_EQ(kernels::parse_index_mode("auto"), IndexMode::kAuto);
  EXPECT_FALSE(kernels::parse_index_mode("octree").has_value());
  for (const IndexMode mode :
       {IndexMode::kNone, IndexMode::kGrid, IndexMode::kAuto}) {
    EXPECT_EQ(kernels::parse_index_mode(kernels::index_mode_name(mode)), mode);
  }
}

}  // namespace
}  // namespace mmph::core
