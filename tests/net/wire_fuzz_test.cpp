// Fuzz-ish decoder hardening: a deterministic PCG64 corpus of truncated,
// oversized, bad-version, bit-flipped, and random-garbage frames. The
// decoder must answer every input with a typed DecodeStatus — no crash,
// no hang, no exception, no partially decoded frame. Run this under
// MMPH_SANITIZE=ON (tools/check.sh net-fuzz) to also rule out UB.

#include "mmph/net/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mmph/random/pcg64.hpp"

namespace mmph::net {
namespace {

using rnd::Pcg64;

/// Builds one well-formed frame of a rng-chosen type, covering the whole
/// v2 surface: all five request kinds (kStats included) and responses
/// with any mix of centers and stats blobs.
std::vector<std::uint8_t> random_valid_frame(Pcg64& rng) {
  std::vector<std::uint8_t> bytes;
  switch (rng.next_below(6)) {
    case 0: {
      RequestFrame frame;
      frame.type = FrameType::kAddUsers;
      frame.request_id = rng();
      const std::size_t n = 1 + rng.next_below(8);
      const std::size_t dim = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i) {
        serve::UserRecord user;
        user.id = rng();
        user.weight = 0.5 + rng.next_double();
        for (std::size_t d = 0; d < dim; ++d) {
          user.interest.push_back(rng.next_double() * 10.0 - 5.0);
        }
        frame.users.push_back(std::move(user));
      }
      encode_request(frame, bytes);
      break;
    }
    case 1: {
      RequestFrame frame;
      frame.type = FrameType::kRemoveUsers;
      frame.request_id = rng();
      const std::size_t n = rng.next_below(16);
      for (std::size_t i = 0; i < n; ++i) frame.ids.push_back(rng());
      encode_request(frame, bytes);
      break;
    }
    case 2: {
      RequestFrame frame;
      frame.type = FrameType::kQueryPlacement;
      frame.request_id = rng();
      encode_request(frame, bytes);
      break;
    }
    case 3: {
      RequestFrame frame;
      frame.type = FrameType::kEvaluate;
      frame.request_id = rng();
      const std::size_t k = 1 + rng.next_below(4);
      const std::size_t dim = 1 + rng.next_below(4);
      geo::PointSet centers(dim);
      std::vector<double> row(dim);
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t d = 0; d < dim; ++d) row[d] = rng.next_double();
        centers.push_back(geo::ConstVec(row.data(), row.size()));
      }
      frame.centers = std::move(centers);
      encode_request(frame, bytes);
      break;
    }
    case 4: {
      RequestFrame frame;
      frame.type = FrameType::kStats;
      frame.request_id = rng();
      encode_request(frame, bytes);
      break;
    }
    default: {
      ResponseFrame frame;
      frame.request_id = rng();
      frame.status = static_cast<WireStatus>(rng.next_below(6));
      frame.epoch = rng();
      frame.objective = rng.next_double() * 100.0;
      if (rng.next_below(2) == 0) {
        frame.centers = geo::PointSet::from_rows({{0.25, 0.75}});
      }
      if (rng.next_below(2) == 0) {
        // v2 stats blob (kStats replies): arbitrary exposition text,
        // empty included.
        std::string stats;
        const std::size_t len = rng.next_below(96);
        for (std::size_t i = 0; i < len; ++i) {
          stats.push_back(static_cast<char>('\n' + rng.next_below(96)));
        }
        frame.stats = std::move(stats);
      }
      encode_response(frame, bytes);
      break;
    }
  }
  return bytes;
}

/// Drains a fresh decoder on \p bytes; asserts the contract, returns the
/// first non-kOk status (kNeedMoreData when the input is a clean prefix).
DecodeStatus drain(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  // Termination guard: next() must make progress. A stream of minimal
  // (header-only) frames yields at most size/kHeaderBytes frames.
  const std::size_t max_frames = bytes.size() / kHeaderBytes + 2;
  for (std::size_t i = 0; i < max_frames; ++i) {
    const FrameDecoder::Result result = decoder.next();
    if (result.status == DecodeStatus::kOk) continue;
    if (result.status == DecodeStatus::kNeedMoreData) {
      EXPECT_FALSE(decoder.poisoned());
      return result.status;
    }
    // Typed error: decoder must be poisoned and stay on that error.
    EXPECT_TRUE(decoder.poisoned()) << to_string(result.status);
    EXPECT_EQ(decoder.next().status, result.status);
    return result.status;
  }
  ADD_FAILURE() << "decoder failed to terminate on " << bytes.size()
                << " bytes";
  return DecodeStatus::kOk;
}

TEST(WireFuzz, TruncatedFramesNeverError) {
  Pcg64 rng(0xA11CE);
  for (int iter = 0; iter < 200; ++iter) {
    const std::vector<std::uint8_t> whole = random_valid_frame(rng);
    std::vector<std::uint8_t> cut = whole;
    cut.resize(rng.next_below(whole.size()));  // strict prefix
    const DecodeStatus status = drain(cut);
    // A prefix of a valid frame is always just incomplete, except when
    // truncation lands mid-stream after frames (not possible here: one
    // frame only), so the answer must be kNeedMoreData.
    EXPECT_EQ(status, DecodeStatus::kNeedMoreData)
        << "prefix len " << cut.size() << " of " << whole.size() << ": "
        << to_string(status);
  }
}

TEST(WireFuzz, BitFlippedFramesNeverCrash) {
  Pcg64 rng(0xB0B);
  int rejected = 0;
  int accepted = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(bytes.size());
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const DecodeStatus status = drain(bytes);
    // Some flips hit don't-care bits (coordinate mantissas) and still
    // decode; all others must map to a typed status. Both are fine —
    // the contract is "typed result, no crash, no hang".
    if (status == DecodeStatus::kOk || status == DecodeStatus::kNeedMoreData) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // Sanity: flipping header bytes must actually trip the validators.
  EXPECT_GT(rejected, 100) << "corpus too gentle: " << accepted << " accepted";
}

TEST(WireFuzz, RandomGarbageAlwaysTyped) {
  Pcg64 rng(0xDEAD1);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t len = rng.next_below(256);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    drain(bytes);  // contract checks live inside drain()
  }
}

TEST(WireFuzz, OversizedLengthClaimsRejectedWithoutAllocation) {
  Pcg64 rng(0x5EED);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    // Forge payload_len to an oversized claim; only the real (small)
    // payload follows. The decoder must reject from the header alone.
    const std::uint32_t huge =
        kMaxPayloadBytes + 1 +
        static_cast<std::uint32_t>(rng.next_below(1u << 20));
    for (int i = 0; i < 4; ++i) {
      bytes[16 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(huge >> (8 * i));
    }
    EXPECT_EQ(drain(bytes), DecodeStatus::kOversizedFrame);
  }
}

TEST(WireFuzz, BadVersionsRejected) {
  Pcg64 rng(0x7E57);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    std::uint8_t version = static_cast<std::uint8_t>(rng());
    if (version == kWireVersion) version ^= 0x80;
    bytes[4] = version;
    EXPECT_EQ(drain(bytes), DecodeStatus::kBadVersion);
  }
}

TEST(WireFuzz, TruncatedStatsBlobRejected) {
  // A no-centers response frame is header (20) + fixed body (24), so the
  // stats_len word sits at byte 44. Forging it to claim more (or fewer)
  // bytes than the payload actually carries must be a typed rejection —
  // a decoder that trusts stats_len would read past the frame.
  Pcg64 rng(0x57A75);
  for (int iter = 0; iter < 100; ++iter) {
    ResponseFrame frame;
    frame.request_id = rng();
    frame.status = WireStatus::kOk;
    frame.epoch = rng();
    std::string stats(1 + rng.next_below(64), '#');
    const std::uint32_t real_len = static_cast<std::uint32_t>(stats.size());
    frame.stats = std::move(stats);
    std::vector<std::uint8_t> bytes;
    encode_response(frame, bytes);

    std::uint32_t forged;
    if (rng.next_below(3) == 0) {
      forged = 0xFFFFFFFFu;  // oversized claim, way past the frame
    } else if (rng.next_below(2) == 0) {
      forged = real_len + 1 + static_cast<std::uint32_t>(rng.next_below(64));
    } else {
      forged = rng.next_below(real_len);  // undersized: trailing bytes
    }
    constexpr std::size_t kStatsLenOffset = 44;
    for (int i = 0; i < 4; ++i) {
      bytes[kStatsLenOffset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(forged >> (8 * i));
    }
    EXPECT_EQ(drain(bytes), DecodeStatus::kMalformedPayload)
        << "real_len=" << real_len << " forged=" << forged;
  }
}

TEST(WireFuzz, StatsRequestWithPayloadRejected) {
  // kStats (like kQueryPlacement) is argument-free: a nonzero payload is
  // malformed by definition, however plausible its bytes look.
  Pcg64 rng(0x57A76);
  for (int iter = 0; iter < 50; ++iter) {
    RequestFrame frame;
    frame.type = FrameType::kStats;
    frame.request_id = rng();
    std::vector<std::uint8_t> bytes;
    encode_request(frame, bytes);

    const std::uint32_t extra = 1 + static_cast<std::uint32_t>(
                                        rng.next_below(32));
    for (std::uint32_t i = 0; i < extra; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng()));
    }
    for (int i = 0; i < 4; ++i) {  // patch payload_len (offset 16)
      bytes[16 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(extra >> (8 * i));
    }
    EXPECT_EQ(drain(bytes), DecodeStatus::kMalformedPayload);
  }
}

TEST(WireFuzz, V1VersionMismatchRejected) {
  // v1 peers are explicitly rejected, not best-effort parsed: the v2
  // response layout moved the flags byte, so decoding a v1 frame as v2
  // would misread fields rather than fail cleanly. The decoder must
  // refuse from the header alone, for every frame shape.
  Pcg64 rng(0x57A77);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    bytes[4] = 1;  // the previous protocol version
    EXPECT_EQ(drain(bytes), DecodeStatus::kBadVersion);
    ASSERT_GE(kWireVersion, 2) << "v1 regression in kWireVersion";
  }
}

TEST(WireFuzz, ByteAtATimeGarbageMatchesWholeBufferVerdict) {
  Pcg64 rng(0xFEED);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint8_t> bytes = random_valid_frame(rng);
    bytes[rng.next_below(bytes.size())] ^= 0xFF;
    const DecodeStatus whole = drain(bytes);

    FrameDecoder trickle;
    DecodeStatus status = DecodeStatus::kNeedMoreData;
    for (const std::uint8_t b : bytes) {
      trickle.feed(&b, 1);
      FrameDecoder::Result result = trickle.next();
      while (result.status == DecodeStatus::kOk) result = trickle.next();
      status = result.status;  // first non-kOk, same as drain()
      if (trickle.poisoned()) break;
    }
    // Split boundaries must not change the verdict.
    EXPECT_EQ(status, whole)
        << to_string(status) << " vs " << to_string(whole);
  }
}

}  // namespace
}  // namespace mmph::net
