// Regression tests for the pipelined-client reconnect bug: disconnect()
// used to clear the in-flight queue outright, so a transport failure
// mid-pipeline silently dropped every outstanding request — the caller
// could never learn which of its sends completed. Now each abandoned
// slot is answered exactly once by drain_one() with the client-
// synthesized kConnectionLost status. The fault is injected through the
// chaos schedule (net.cli.read_reset: ECONNRESET mid-pipeline), so the
// production teardown path runs, not a test-only one.

#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/chaos/faulty_socket_ops.hpp"
#include "mmph/chaos/injector.hpp"
#include "mmph/net/client.hpp"
#include "mmph/net/server.hpp"
#include "mmph/support/error.hpp"

namespace mmph {
namespace {

serve::ServiceConfig service_config() {
  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 2;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;
  return config;
}

serve::UserRecord user(std::uint64_t id, double x, double y) {
  serve::UserRecord record;
  record.id = id;
  record.interest = {x, y};
  record.weight = 1.0;
  return record;
}

TEST(PipelineReconnect, MidPipelineResetFailsEverySlotExactlyOnce) {
  net::NetServerConfig net_config;
  net_config.loops = 1;
  net_config.poll_interval = std::chrono::milliseconds(2);
  net::NetServer server(service_config(), net_config);
  server.start();

  // Chaos schedule: every client read dies with ECONNRESET while armed.
  chaos::FaultPlan plan;
  plan.seed = 20260808;
  plan.with("net.cli.read_reset", 1.0);
  chaos::Injector injector(plan);
  injector.set_armed(false);
  chaos::FaultySocketOps faulty(injector,
                               std::string(chaos::kClientSitePrefix));

  net::NetClientConfig client_config;
  client_config.port = server.port();
  client_config.pipeline_window = 8;
  client_config.socket_ops = &faulty;
  net::NetClient client(client_config);

  std::vector<std::uint64_t> sent;
  sent.push_back(client.pipeline_add_users({user(1, 0.1, 0.1)}));
  sent.push_back(client.pipeline_add_users({user(2, 0.9, 0.9)}));
  sent.push_back(client.pipeline_query_placement());
  sent.push_back(client.pipeline_add_users({user(3, 0.5, 0.5)}));
  EXPECT_EQ(client.inflight(), 4u);

  // The connection dies under the first drain. The drain call itself
  // reports the transport failure; every in-flight slot moves to the
  // aborted queue instead of vanishing.
  injector.set_armed(true);
  EXPECT_THROW((void)client.drain_one(), net::NetError);
  injector.set_armed(false);
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.inflight(), 4u);

  // Blocking calls refuse to run over undrained abort completions: the
  // two modes still do not interleave.
  EXPECT_THROW((void)client.query_placement(), InvalidArgument);

  // Exactly-once: each slot is answered kConnectionLost, oldest first,
  // ids matching the sends one for one — then the pipeline is empty.
  std::set<std::uint64_t> completed;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const net::ResponseFrame reply = client.drain_one();
    EXPECT_EQ(reply.status, net::WireStatus::kConnectionLost);
    EXPECT_EQ(reply.request_id, sent[i]);
    EXPECT_TRUE(completed.insert(reply.request_id).second)
        << "request answered twice";
  }
  EXPECT_EQ(client.inflight(), 0u);
  EXPECT_THROW((void)client.drain_one(), InvalidArgument);

  // kConnectionLost means "in limbo", not "not executed": the reset was
  // injected on the CLIENT's read, so the server did (or will) process
  // the adds it already received. The reconnected blocking path
  // eventually sees their effect (polling: the old connection's frames
  // may still be queued server-side when the new connection queries).
  net::ResponseFrame settled;
  for (int tries = 0; tries < 200; ++tries) {
    settled = client.query_placement();
    ASSERT_EQ(settled.status, net::WireStatus::kOk);
    if (settled.epoch == 3u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(settled.epoch, 3u);

  // A fresh pipeline on the reconnected client works end to end.
  const std::uint64_t id_q = client.pipeline_query_placement();
  const net::ResponseFrame reply = client.drain_one();
  EXPECT_EQ(reply.request_id, id_q);
  EXPECT_EQ(reply.status, net::WireStatus::kOk);
  server.stop();
}

TEST(PipelineReconnect, AbortedSlotsCountAgainstTheWindow) {
  net::NetServerConfig net_config;
  net_config.loops = 1;
  net_config.poll_interval = std::chrono::milliseconds(2);
  net::NetServer server(service_config(), net_config);
  server.start();

  chaos::FaultPlan plan;
  plan.seed = 7;
  plan.with("net.cli.read_reset", 1.0);
  chaos::Injector injector(plan);
  injector.set_armed(false);
  chaos::FaultySocketOps faulty(injector,
                               std::string(chaos::kClientSitePrefix));

  net::NetClientConfig client_config;
  client_config.port = server.port();
  client_config.pipeline_window = 2;
  client_config.socket_ops = &faulty;
  net::NetClient client(client_config);

  (void)client.pipeline_query_placement();
  (void)client.pipeline_query_placement();
  injector.set_armed(true);
  EXPECT_THROW((void)client.drain_one(), net::NetError);
  injector.set_armed(false);

  // Two aborted slots fill the window: refilling before draining them
  // would let completions be outrun by new sends.
  EXPECT_EQ(client.inflight(), 2u);
  EXPECT_THROW((void)client.pipeline_query_placement(), InvalidArgument);
  EXPECT_EQ(client.drain_one().status, net::WireStatus::kConnectionLost);
  // One slot free again: the window admits exactly one new send.
  const std::uint64_t id = client.pipeline_query_placement();
  EXPECT_THROW((void)client.pipeline_query_placement(), InvalidArgument);
  // FIFO across the boundary: the remaining aborted slot completes
  // before the live request's real reply.
  EXPECT_EQ(client.drain_one().status, net::WireStatus::kConnectionLost);
  const net::ResponseFrame live = client.drain_one();
  EXPECT_EQ(live.request_id, id);
  EXPECT_EQ(live.status, net::WireStatus::kOk);
  server.stop();
}

TEST(PipelineReconnect, ToStringCoversConnectionLost) {
  EXPECT_STREQ(net::to_string(net::WireStatus::kConnectionLost),
               "kConnectionLost");
}

}  // namespace
}  // namespace mmph
