// NetServer end-to-end over loopback: the acceptance bar is that a
// workload replayed through NetClient -> TCP -> NetServer produces
// *bit-identical* placements and objectives (EXPECT_DOUBLE_EQ) to the
// same workload applied to an in-process PlacementService, plus explicit
// coverage of every defense: overload shedding, malformed-frame
// rejection, per-request deadlines, dimension mismatches, idle reaping.

#include "mmph/net/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mmph/net/client.hpp"
#include "mmph/net/socket.hpp"
#include "mmph/net/wire.hpp"
#include "mmph/obs/instruments.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/trace/span.hpp"

namespace mmph::net {
namespace {

using std::chrono::milliseconds;

serve::ServiceConfig small_service() {
  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 3;
  config.radius = 0.35;
  return config;
}

NetServerConfig fast_server() {
  NetServerConfig config;
  config.poll_interval = milliseconds(2);
  return config;
}

NetClientConfig client_for(const NetServer& server) {
  NetClientConfig config;
  config.port = server.port();
  return config;
}

TEST(NetServer, LoopbackReplayIsBitIdenticalToInProcess) {
  const serve::ServiceConfig service_config = small_service();
  NetServer server(service_config, fast_server());
  server.start();

  // Reference: the same workload applied directly, no sockets involved.
  serve::PlacementService direct(service_config);

  NetClient client(client_for(server));
  rnd::Pcg64 rng(2026);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;
  const geo::PointSet probe =
      geo::PointSet::from_rows({{0.2, 0.2}, {0.8, 0.5}, {0.5, 0.9}});
  std::uint64_t sent = 0;

  for (int round = 0; round < 6; ++round) {
    std::vector<serve::UserRecord> batch;
    for (int j = 0; j < 6; ++j) {
      serve::UserRecord user;
      user.id = next_id++;
      user.interest = {rng.next_double(), rng.next_double()};
      user.weight = 0.5 + rng.next_double();
      live.push_back(user.id);
      batch.push_back(user);
    }
    const ResponseFrame add = client.add_users(batch);
    ++sent;
    ASSERT_EQ(add.status, WireStatus::kOk) << to_string(add.status);
    direct.apply_add(batch);
    EXPECT_EQ(add.epoch, direct.epoch());

    if (round % 2 == 1) {  // churn: drop two random live users
      std::vector<std::uint64_t> victims;
      for (int j = 0; j < 2; ++j) {
        const std::size_t at = rng.next_below(live.size());
        victims.push_back(live[at]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      }
      const ResponseFrame removed = client.remove_users(victims);
      ++sent;
      ASSERT_EQ(removed.status, WireStatus::kOk) << to_string(removed.status);
      direct.apply_remove(victims);
      EXPECT_EQ(removed.epoch, direct.epoch());
    }

    const ResponseFrame query = client.query_placement();
    ++sent;
    ASSERT_EQ(query.status, WireStatus::kOk) << to_string(query.status);
    const serve::PlacementView view = direct.placement();
    EXPECT_EQ(query.epoch, view.epoch);
    EXPECT_DOUBLE_EQ(query.objective, view.objective);
    ASSERT_TRUE(query.centers.has_value());
    const geo::PointSet& got = *query.centers;
    const geo::PointSet& want = view.solution.centers;
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.dim(), want.dim());
    for (std::size_t c = 0; c < got.size(); ++c) {
      for (std::size_t d = 0; d < got.dim(); ++d) {
        EXPECT_DOUBLE_EQ(got[c][d], want[c][d])
            << "round " << round << " center " << c << " coord " << d;
      }
    }

    const ResponseFrame eval = client.evaluate(probe);
    ++sent;
    ASSERT_EQ(eval.status, WireStatus::kOk) << to_string(eval.status);
    EXPECT_DOUBLE_EQ(eval.objective, direct.evaluate(probe));
  }

  const NetMetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.accepted, 1u);
  EXPECT_EQ(m.requests, sent);
  EXPECT_EQ(m.frames_in, sent);
  EXPECT_EQ(m.frames_out, sent);
  EXPECT_EQ(m.frame_errors, 0u);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_GT(m.bytes_in, 0u);
  EXPECT_GT(m.bytes_out, 0u);
  EXPECT_EQ(client.reconnects(), 0u);
  server.stop();
}

TEST(NetServer, ShedsConnectionsBeyondMaxWithOverloaded) {
  NetServerConfig net = fast_server();
  net.max_connections = 1;
  NetServer server(small_service(), net);
  server.start();

  NetClient first(client_for(server));
  const ResponseFrame ok = first.query_placement();
  ASSERT_EQ(ok.status, WireStatus::kOk);  // first slot is owned + live

  NetClientConfig second_config = client_for(server);
  second_config.max_attempts = 1;  // a shed must surface, not retry away
  NetClient second(second_config);
  const ResponseFrame shed = second.query_placement();
  EXPECT_EQ(shed.status, WireStatus::kOverloaded) << to_string(shed.status);
  EXPECT_EQ(shed.request_id, 0u);  // connection-level notice

  // The first connection keeps working: shedding is per-connection.
  EXPECT_EQ(first.query_placement().status, WireStatus::kOk);
  EXPECT_GE(server.metrics().rejected_overloaded, 1u);
  server.stop();
}

TEST(NetServer, MalformedFrameGetsBadRequestThenClose) {
  NetServer server(small_service(), fast_server());
  server.start();

  Socket raw = tcp_connect("127.0.0.1", server.port(), milliseconds(1000));
  std::vector<std::uint8_t> garbage(64, 0xFF);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_TRUE(send_all(raw, garbage.data(), garbage.size(), deadline));

  // Expect exactly one kBadRequest reply, then EOF.
  FrameDecoder decoder;
  bool got_reply = false;
  bool got_eof = false;
  std::uint8_t chunk[4096];
  while (!got_eof) {
    const IoResult r = recv_some(raw, chunk, sizeof(chunk), deadline);
    ASSERT_NE(r.status, IoStatus::kWouldBlock) << "server never answered";
    ASSERT_NE(r.status, IoStatus::kError);
    if (r.status == IoStatus::kClosed) {
      got_eof = true;
      break;
    }
    decoder.feed(chunk, r.bytes);
    FrameDecoder::Result decoded = decoder.next();
    if (decoded.status == DecodeStatus::kNeedMoreData) continue;
    ASSERT_EQ(decoded.status, DecodeStatus::kOk)
        << to_string(decoded.status);
    ASSERT_TRUE(decoded.is_response);
    EXPECT_EQ(decoded.response.status, WireStatus::kBadRequest)
        << to_string(decoded.response.status);
    got_reply = true;
  }
  EXPECT_TRUE(got_reply);
  EXPECT_TRUE(got_eof);

  const NetMetricsSnapshot m = server.metrics();
  EXPECT_GE(m.frame_errors, 1u);
  EXPECT_GE(m.closed_error, 1u);
  EXPECT_EQ(m.requests, 0u) << "garbage must never reach the service";
  server.stop();
}

TEST(NetServer, ExpiredDeadlineAnswersTimeoutAndDropsMutation) {
  NetServerConfig net = fast_server();
  net.request_deadline = milliseconds(0);  // every request is born expired
  NetServer server(small_service(), net);
  server.start();

  NetClient client(client_for(server));
  const ResponseFrame add =
      client.add_users({serve::UserRecord{1, {0.5, 0.5}, 1.0}});
  EXPECT_EQ(add.status, WireStatus::kTimeout) << to_string(add.status);
  EXPECT_EQ(server.service().population(), 0u)
      << "expired mutation must not be applied";
  EXPECT_GE(server.metrics().timeouts, 1u);
  server.stop();
}

TEST(NetServer, DimensionMismatchIsPerRequestNotFatal) {
  NetServer server(small_service(), fast_server());  // dim = 2
  server.start();

  NetClient client(client_for(server));
  const ResponseFrame bad =
      client.add_users({serve::UserRecord{1, {0.1, 0.2, 0.3}, 1.0}});
  EXPECT_EQ(bad.status, WireStatus::kBadRequest) << to_string(bad.status);

  // Same connection still serves well-dimensioned requests.
  const ResponseFrame good =
      client.add_users({serve::UserRecord{2, {0.1, 0.2}, 1.0}});
  EXPECT_EQ(good.status, WireStatus::kOk) << to_string(good.status);
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_EQ(server.service().population(), 1u);
  server.stop();
}

TEST(NetServer, IdleConnectionsAreReaped) {
  NetServerConfig net = fast_server();
  net.idle_timeout = milliseconds(60);
  NetServer server(small_service(), net);
  server.start();

  Socket raw = tcp_connect("127.0.0.1", server.port(), milliseconds(1000));
  // Never send a frame; the server must hang up on its own.
  std::uint8_t byte = 0;
  const IoResult r =
      recv_some(raw, &byte, 1,
                std::chrono::steady_clock::now() + std::chrono::seconds(5));
  EXPECT_EQ(r.status, IoStatus::kClosed) << "expected idle reap";
  EXPECT_GE(server.metrics().closed_idle, 1u);
  EXPECT_EQ(server.metrics().open_connections, 0u);
  server.stop();
}

TEST(NetServer, EvaluateEmptyCentersAnswersBadRequestNotOk) {
  NetServer server(small_service(), fast_server());  // dim = 2
  server.start();

  NetClient client(client_for(server));
  // An empty center set is wire-legal (matching dim, count = 0), so it
  // passes the server's dimension pre-check and must be flagged by the
  // service itself -- not scored as a successful objective of 0.0.
  const ResponseFrame bad = client.evaluate(geo::PointSet(2));
  EXPECT_EQ(bad.status, WireStatus::kBadRequest) << to_string(bad.status);

  // Per-request failure: the same connection keeps serving.
  const ResponseFrame good = client.query_placement();
  EXPECT_EQ(good.status, WireStatus::kOk) << to_string(good.status);
  EXPECT_EQ(client.reconnects(), 0u);
  server.stop();
}

// --- kStats scrape plumbing ------------------------------------------------

// Value of `name<SP>value` exposition line; npos-like sentinel if absent.
std::uint64_t parse_counter(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  const std::string prefix = name + " ";
  while (std::getline(in, line)) {
    if (line.compare(0, prefix.size(), prefix) == 0) {
      return std::stoull(line.substr(prefix.size()));
    }
  }
  return std::numeric_limits<std::uint64_t>::max();
}

// Rebuild an obs::HistogramSnapshot from the cumulative `_bucket{le=...}`
// lines (+Inf last), `_sum`, and `_count` of one exposition histogram.
obs::HistogramSnapshot parse_histogram(const std::string& text,
                                       const std::string& name) {
  obs::HistogramSnapshot snap{};
  std::vector<std::uint64_t> cumulative;
  const std::string bucket_prefix = name + "_bucket{le=\"";
  const std::string sum_prefix = name + "_sum ";
  const std::string count_prefix = name + "_count ";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, bucket_prefix.size(), bucket_prefix) == 0) {
      const std::size_t close = line.find("\"} ");
      if (close != std::string::npos) {
        cumulative.push_back(std::stoull(line.substr(close + 3)));
      }
    } else if (line.compare(0, sum_prefix.size(), sum_prefix) == 0) {
      snap.sum = std::stod(line.substr(sum_prefix.size()));
    } else if (line.compare(0, count_prefix.size(), count_prefix) == 0) {
      snap.count = std::stoull(line.substr(count_prefix.size()));
    }
  }
  EXPECT_EQ(cumulative.size(), obs::kBucketCount)
      << "exposition for " << name << " is missing bucket lines";
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < cumulative.size() && i < snap.buckets.size();
       ++i) {
    snap.buckets[i] = cumulative[i] - prev;  // de-cumulate
    prev = cumulative[i];
  }
  return snap;
}

TEST(NetServer, StatsScrapeMatchesInProcessSnapshot) {
  // Spans are opt-in; flip the global collector on so the scrape carries
  // mmph_span_* series too, and restore it afterwards.
  trace::SpanCollector::global().set_enabled(true);
  trace::SpanCollector::global().reset();

  NetServer server(small_service(), fast_server());
  server.start();

  NetClient client(client_for(server));
  rnd::Pcg64 rng(77);
  std::uint64_t next_id = 1;
  std::uint64_t sent = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<serve::UserRecord> batch;
    for (int j = 0; j < 4; ++j) {
      serve::UserRecord user;
      user.id = next_id++;
      user.interest = {rng.next_double(), rng.next_double()};
      user.weight = 1.0;
      batch.push_back(user);
    }
    ASSERT_EQ(client.add_users(batch).status, WireStatus::kOk);
    ++sent;
    ASSERT_EQ(client.query_placement().status, WireStatus::kOk);
    ++sent;
  }

  // In-process truth, captured *before* the scrape. The stats request only
  // counts itself after the exposition is rendered and never records a
  // latency sample, so both views describe the same request stream.
  const NetMetricsSnapshot m = server.metrics();
  ASSERT_EQ(m.requests, sent);

  const ResponseFrame reply = client.stats();
  ASSERT_EQ(reply.status, WireStatus::kOk) << to_string(reply.status);
  ASSERT_TRUE(reply.stats.has_value());
  const std::string& text = *reply.stats;

  // Counters from all three registries are present and agree.
  EXPECT_EQ(parse_counter(text, "mmph_net_requests_total"), m.requests);
  EXPECT_EQ(parse_counter(text, "mmph_net_frame_errors_total"), 0u);
  EXPECT_EQ(parse_counter(text, "mmph_serve_submitted_total"), sent);
  EXPECT_NE(text.find("mmph_span_net_request_seconds_bucket"),
            std::string::npos)
      << "trace spans must be scrapable";

  // The latency histogram round-trips exactly: buckets and count are
  // integers in the exposition, so quantiles recomputed by a remote
  // scraper match the in-process snapshot bit-for-bit.
  const obs::HistogramSnapshot latency =
      parse_histogram(text, "mmph_net_request_latency_seconds");
  EXPECT_EQ(latency.count, sent);
  EXPECT_DOUBLE_EQ(latency.quantile(0.50), m.latency_p50_seconds);
  EXPECT_DOUBLE_EQ(latency.quantile(0.99), m.latency_p99_seconds);
  EXPECT_GT(latency.sum, 0.0);
  server.stop();
  trace::SpanCollector::global().set_enabled(false);
  trace::SpanCollector::global().reset();
}

TEST(NetServer, StartStopIsIdempotent) {
  NetServer server(small_service(), fast_server());
  server.start();
  const std::uint16_t port = server.port();
  EXPECT_GT(port, 0u);
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace mmph::net
