// Multi-loop NetServer tests: the --loops 1 golden replay digest (pinned
// against the pre-refactor single-threaded poll(2) server), multi-loop
// equivalence to the direct service, accept distribution in both modes,
// connection-ownership coverage, per-loop metric conservation, and the
// client's bounded pipelining.

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/net/client.hpp"
#include "mmph/net/server.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/support/error.hpp"

namespace mmph {
namespace {

// FNV-1a digest of every reply of the fixed workload below, computed once
// against the pre-refactor single-threaded poll(2) NetServer. The
// multi-loop server at --loops 1 must reproduce it bit-for-bit: same
// statuses, same epochs, same objective bits, same center coordinates.
constexpr std::uint64_t kGoldenReplayDigest = 0x03df0f1c230556daull;

class ReplyDigest {
 public:
  void mix_reply(const net::ResponseFrame& r) {
    mix_u64(static_cast<std::uint64_t>(r.status));
    mix_u64(r.epoch);
    mix_double(r.objective);
    if (r.centers.has_value()) {
      mix_u64(r.centers->size());
      for (std::size_t c = 0; c < r.centers->size(); ++c) {
        for (std::size_t d = 0; d < r.centers->dim(); ++d) {
          mix_double((*r.centers)[c][d]);
        }
      }
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return fnv_; }

 private:
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fnv_ ^= (v >> (8 * i)) & 0xFF;
      fnv_ *= 1099511628211ull;
    }
  }
  void mix_double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    mix_u64(bits);
  }

  std::uint64_t fnv_ = 1469598103934665603ull;
};

serve::ServiceConfig golden_service_config() {
  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 4;
  config.radius = 0.3;
  // Full solves only: the placement is a pure function of store content
  // and row order, independent of churn history.
  config.full_solve_churn_fraction = 0.0;
  return config;
}

/// Runs the fixed golden workload (8 rounds of adds, periodic removes, a
/// query, and an evaluate probe) through \p client, digesting every reply.
std::uint64_t replay_golden_workload(net::NetClient& client) {
  ReplyDigest digest;
  rnd::Pcg64 rng(20260808);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;
  const geo::PointSet probe =
      geo::PointSet::from_rows({{0.25, 0.25}, {0.75, 0.4}, {0.5, 0.85}});

  for (int round = 0; round < 8; ++round) {
    std::vector<serve::UserRecord> batch;
    for (int j = 0; j < 5; ++j) {
      serve::UserRecord user;
      user.id = next_id++;
      user.interest = {rng.next_double(), rng.next_double()};
      user.weight = 0.5 + rng.next_double();
      live.push_back(user.id);
      batch.push_back(user);
    }
    digest.mix_reply(client.add_users(batch));
    if (round % 3 == 2) {
      std::vector<std::uint64_t> victims;
      for (int j = 0; j < 2 && !live.empty(); ++j) {
        const std::size_t at = rng.next_below(live.size());
        victims.push_back(live[at]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      }
      digest.mix_reply(client.remove_users(victims));
    }
    digest.mix_reply(client.query_placement());
    digest.mix_reply(client.evaluate(probe));
  }
  return digest.value();
}

net::NetServerConfig fast_net_config(std::size_t loops) {
  net::NetServerConfig config;
  config.loops = loops;
  config.poll_interval = std::chrono::milliseconds(2);
  return config;
}

TEST(MultiLoop, GoldenReplayDigestAtOneLoop) {
  net::NetServer server(golden_service_config(), fast_net_config(1));
  server.start();
  EXPECT_EQ(server.loop_count(), 1u);
  EXPECT_EQ(server.accept_mode(), net::AcceptMode::kHandoff);

  net::NetClientConfig client_config;
  client_config.port = server.port();
  net::NetClient client(client_config);

  EXPECT_EQ(replay_golden_workload(client), kGoldenReplayDigest)
      << "--loops 1 replay diverged from the pre-refactor golden";
  server.stop();
}

TEST(MultiLoop, GoldenReplayDigestAtFourLoops) {
  // One client connection lands on one loop, which keeps the historical
  // deterministic schedule over its own connections — so even at four
  // loops the single-connection replay must still match the golden.
  net::NetServer server(golden_service_config(), fast_net_config(4));
  server.start();
  EXPECT_EQ(server.loop_count(), 4u);
  EXPECT_EQ(server.accept_mode(), net::AcceptMode::kReusePort);

  net::NetClientConfig client_config;
  client_config.port = server.port();
  net::NetClient client(client_config);

  EXPECT_EQ(replay_golden_workload(client), kGoldenReplayDigest);
  server.stop();
}

TEST(MultiLoop, GoldenReplayDigestWithOneStoreShard) {
  // --store-shards 1 is the bit-identity mode: the sharded store must
  // push exactly the unsharded call sequence through shard 0, so the
  // golden digest holds through the whole net stack unchanged.
  serve::ServiceConfig config = golden_service_config();
  config.store_shards = 1;
  net::NetServer server(config, fast_net_config(1));
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();
  net::NetClient client(client_config);

  EXPECT_EQ(replay_golden_workload(client), kGoldenReplayDigest)
      << "--store-shards 1 replay diverged from the pre-refactor golden";
  server.stop();
}

TEST(MultiLoop, ShardedStoreReplayDigestIsStableAtFourShards) {
  // At four store shards the global row order is the shard concatenation,
  // so objective bits legitimately differ from the unsharded golden — but
  // the replay is still a deterministic function of the workload, loops,
  // and shard count. Two independent runs (fresh server, fresh client)
  // must produce the same digest; the loop count must not matter either,
  // since one connection serializes through one loop.
  std::uint64_t digests[3] = {};
  const std::size_t loop_counts[3] = {1, 1, 4};
  for (int run = 0; run < 3; ++run) {
    serve::ServiceConfig config = golden_service_config();
    config.store_shards = 4;
    net::NetServer server(config, fast_net_config(loop_counts[run]));
    server.start();
    net::NetClientConfig client_config;
    client_config.port = server.port();
    net::NetClient client(client_config);
    digests[run] = replay_golden_workload(client);
    server.stop();
  }
  EXPECT_EQ(digests[0], digests[1])
      << "--store-shards 4 replay is not deterministic";
  EXPECT_EQ(digests[0], digests[2])
      << "--store-shards 4 digest depends on the loop count";
  EXPECT_NE(digests[0], 0u);
}

TEST(MultiLoop, HandoffDistributesConnectionsRoundRobin) {
  net::NetServerConfig net_config = fast_net_config(4);
  net_config.accept_mode = net::AcceptMode::kHandoff;
  net::NetServer server(golden_service_config(), net_config);
  server.start();
  EXPECT_EQ(server.accept_mode(), net::AcceptMode::kHandoff);

  // Connections are held open so each stays counted on its owner loop.
  std::vector<std::unique_ptr<net::NetClient>> clients;
  for (int i = 0; i < 8; ++i) {
    net::NetClientConfig client_config;
    client_config.port = server.port();
    clients.push_back(std::make_unique<net::NetClient>(client_config));
    const net::ResponseFrame reply = clients.back()->query_placement();
    EXPECT_EQ(reply.status, net::WireStatus::kOk);
  }

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < server.loop_count(); ++i) {
    const net::NetLoopSnapshot slice = server.loop_metrics(i);
    // Round-robin over 8 connections and 4 loops: exactly 2 each.
    EXPECT_EQ(slice.accepted, 2u) << "loop " << i;
    total += slice.accepted;
  }
  EXPECT_EQ(total, server.metrics().accepted);
  server.stop();
}

TEST(MultiLoop, ReusePortServesEveryConnection) {
  // The kernel decides SO_REUSEPORT placement, so the per-loop split is
  // not asserted — only that every connection lands somewhere, is owned
  // by exactly one loop, and the slices sum to the aggregate.
  net::NetServerConfig net_config = fast_net_config(4);
  net_config.accept_mode = net::AcceptMode::kReusePort;
  net::NetServer server(golden_service_config(), net_config);
  server.start();

  constexpr int kClients = 12;
  std::vector<std::unique_ptr<net::NetClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    net::NetClientConfig client_config;
    client_config.port = server.port();
    clients.push_back(std::make_unique<net::NetClient>(client_config));
    const net::ResponseFrame reply = clients.back()->query_placement();
    EXPECT_EQ(reply.status, net::WireStatus::kOk);
  }

  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;
  std::size_t open = 0;
  for (std::size_t i = 0; i < server.loop_count(); ++i) {
    const net::NetLoopSnapshot slice = server.loop_metrics(i);
    accepted += slice.accepted;
    requests += slice.requests;
    open += slice.open_connections;
  }
  const net::NetMetricsSnapshot m = server.metrics();
  EXPECT_EQ(accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(accepted, m.accepted);
  EXPECT_EQ(requests, m.requests);
  EXPECT_EQ(open, static_cast<std::size_t>(kClients));
  server.stop();
}

TEST(MultiLoop, OwnershipChecksCoverTheRequestPath) {
  net::NetServer server(golden_service_config(), fast_net_config(2));
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();
  net::NetClient client(client_config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.query_placement().status, net::WireStatus::kOk);
  }

  // Every read/collect/flush touch asserts ownership and bumps the
  // counter — a request cannot be served without several checks.
  const net::NetMetricsSnapshot m = server.metrics();
  EXPECT_GT(m.ownership_checks, 0u);
  std::uint64_t per_loop = 0;
  for (std::size_t i = 0; i < server.loop_count(); ++i) {
    per_loop += server.loop_metrics(i).ownership_checks;
  }
  EXPECT_EQ(per_loop, m.ownership_checks);
  server.stop();
}

TEST(MultiLoop, LoopLabeledSeriesAppearInStatsScrape) {
  net::NetServer server(golden_service_config(), fast_net_config(2));
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();
  net::NetClient client(client_config);
  EXPECT_EQ(client.query_placement().status, net::WireStatus::kOk);

  const net::ResponseFrame stats = client.stats();
  ASSERT_EQ(stats.status, net::WireStatus::kOk);
  ASSERT_TRUE(stats.stats.has_value());
  EXPECT_NE(stats.stats->find("mmph_net_loop_requests_total{loop=\"0\"}"),
            std::string::npos);
  EXPECT_NE(stats.stats->find("mmph_net_loop_requests_total{loop=\"1\"}"),
            std::string::npos);
  EXPECT_NE(stats.stats->find("mmph_net_ownership_checks_total"),
            std::string::npos);
  server.stop();
}

TEST(MultiLoop, RejectsBadLoopConfigs) {
  net::NetServerConfig net_config = fast_net_config(0);
  EXPECT_THROW(net::NetServer(golden_service_config(), net_config),
               InvalidArgument);
  net_config = fast_net_config(2);
  net_config.loop_socket_ops = {nullptr, nullptr, nullptr};  // wrong arity
  EXPECT_THROW(net::NetServer(golden_service_config(), net_config),
               InvalidArgument);
}

TEST(Pipelining, PipelinedRepliesMatchBlockingFifo) {
  net::NetServer server(golden_service_config(), fast_net_config(2));
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();
  client_config.pipeline_window = 8;
  net::NetClient client(client_config);

  std::vector<serve::UserRecord> users;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    serve::UserRecord user;
    user.id = id;
    user.interest = {0.1 * static_cast<double>(id),
                     0.9 - 0.1 * static_cast<double>(id)};
    user.weight = 1.0;
    users.push_back(user);
  }
  ASSERT_EQ(client.add_users(users).status, net::WireStatus::kOk);
  const net::ResponseFrame blocking = client.query_placement();
  ASSERT_EQ(blocking.status, net::WireStatus::kOk);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(client.pipeline_query_placement());
  EXPECT_EQ(client.inflight(), 8u);
  // The window is full: one more pipelined send must refuse, and a
  // blocking call must refuse to interleave.
  EXPECT_THROW((void)client.pipeline_query_placement(), InvalidArgument);
  EXPECT_THROW((void)client.query_placement(), InvalidArgument);

  for (int i = 0; i < 8; ++i) {
    const net::ResponseFrame reply = client.drain_one();
    EXPECT_EQ(reply.request_id, ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ(reply.status, net::WireStatus::kOk);
    EXPECT_EQ(reply.epoch, blocking.epoch);
    EXPECT_EQ(reply.objective, blocking.objective);
  }
  EXPECT_EQ(client.inflight(), 0u);
  EXPECT_THROW((void)client.drain_one(), InvalidArgument);

  // The pipeline drained cleanly; blocking calls work again.
  EXPECT_EQ(client.query_placement().status, net::WireStatus::kOk);
  server.stop();
}

TEST(Pipelining, MixedPipelineDrainsInOrderWithBatchSemantics) {
  serve::ServiceConfig service_config = golden_service_config();
  net::NetServer server(service_config, fast_net_config(1));
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();
  client_config.pipeline_window = 16;
  net::NetClient client(client_config);

  serve::UserRecord a;
  a.id = 1;
  a.interest = {0.2, 0.2};
  a.weight = 1.0;
  serve::UserRecord b;
  b.id = 2;
  b.interest = {0.8, 0.8};
  b.weight = 1.0;

  // All four frames arrive in one read pass and drain as ONE service
  // batch, so every reply reflects the post-batch store (documented
  // kQueryPlacement semantics): both adds applied, epoch 2, and both
  // queries identical.
  const std::uint64_t id_add1 = client.pipeline_add_users({a});
  const std::uint64_t id_q1 = client.pipeline_query_placement();
  const std::uint64_t id_add2 = client.pipeline_add_users({b});
  const std::uint64_t id_q2 = client.pipeline_query_placement();

  const net::ResponseFrame add1 = client.drain_one();
  const net::ResponseFrame query1 = client.drain_one();
  const net::ResponseFrame add2 = client.drain_one();
  const net::ResponseFrame query2 = client.drain_one();
  EXPECT_EQ(add1.request_id, id_add1);
  EXPECT_EQ(query1.request_id, id_q1);
  EXPECT_EQ(add2.request_id, id_add2);
  EXPECT_EQ(query2.request_id, id_q2);
  EXPECT_EQ(add1.status, net::WireStatus::kOk);
  EXPECT_EQ(add2.status, net::WireStatus::kOk);
  ASSERT_EQ(query1.status, net::WireStatus::kOk);
  ASSERT_EQ(query2.status, net::WireStatus::kOk);
  EXPECT_EQ(query1.epoch, 2u);
  EXPECT_EQ(query2.epoch, 2u);
  EXPECT_EQ(query1.objective, query2.objective);

  // A blocking query after the drain sees the same settled state.
  const net::ResponseFrame settled = client.query_placement();
  ASSERT_EQ(settled.status, net::WireStatus::kOk);
  EXPECT_EQ(settled.epoch, 2u);
  EXPECT_EQ(settled.objective, query2.objective);
  server.stop();
}

}  // namespace
}  // namespace mmph
