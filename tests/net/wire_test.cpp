// Wire codec: byte-exact header layout (endianness pin), round-trips for
// every frame type through whole-buffer and byte-at-a-time feeding, and
// typed rejection of every class of malformed frame.

#include "mmph/net/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace mmph::net {
namespace {

std::vector<serve::UserRecord> two_users() {
  return {serve::UserRecord{7, {1.5, -2.25}, 3.0},
          serve::UserRecord{9, {0.0, 4.0}, 1.0}};
}

/// Decodes exactly one frame, asserting success.
FrameDecoder::Result decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  FrameDecoder::Result result = decoder.next();
  EXPECT_EQ(result.status, DecodeStatus::kOk)
      << "decode failed: " << to_string(result.status);
  return result;
}

TEST(Wire, HeaderLayoutIsLittleEndianAndPinned) {
  RequestFrame frame;
  frame.type = FrameType::kQueryPlacement;
  frame.request_id = 0x1122334455667788ull;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);

  ASSERT_EQ(bytes.size(), kHeaderBytes);  // empty payload
  // magic 0x4D4D5048 little-endian
  EXPECT_EQ(bytes[0], 0x48);
  EXPECT_EQ(bytes[1], 0x50);
  EXPECT_EQ(bytes[2], 0x4D);
  EXPECT_EQ(bytes[3], 0x4D);
  EXPECT_EQ(bytes[4], kWireVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(FrameType::kQueryPlacement));
  EXPECT_EQ(bytes[6], 0);  // reserved
  EXPECT_EQ(bytes[7], 0);
  // request id little-endian
  EXPECT_EQ(bytes[8], 0x88);
  EXPECT_EQ(bytes[15], 0x11);
  // payload_len == 0
  EXPECT_EQ(bytes[16], 0);
  EXPECT_EQ(bytes[19], 0);
}

TEST(Wire, AddUsersRoundTrip) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.request_id = 42;
  frame.users = two_users();
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_FALSE(result.is_response);
  EXPECT_EQ(result.request.type, FrameType::kAddUsers);
  EXPECT_EQ(result.request.request_id, 42u);
  ASSERT_EQ(result.request.users.size(), 2u);
  EXPECT_EQ(result.request.users[0].id, 7u);
  EXPECT_EQ(result.request.users[0].weight, 3.0);
  EXPECT_EQ(result.request.users[0].interest,
            (std::vector<double>{1.5, -2.25}));
  EXPECT_EQ(result.request.users[1].id, 9u);
}

TEST(Wire, RemoveUsersRoundTrip) {
  RequestFrame frame;
  frame.type = FrameType::kRemoveUsers;
  frame.request_id = 1;
  frame.ids = {5, 0xFFFFFFFFFFFFFFFFull, 12};
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_EQ(result.request.type, FrameType::kRemoveUsers);
  EXPECT_EQ(result.request.ids,
            (std::vector<std::uint64_t>{5, 0xFFFFFFFFFFFFFFFFull, 12}));
}

TEST(Wire, EvaluateRoundTrip) {
  RequestFrame frame;
  frame.type = FrameType::kEvaluate;
  frame.request_id = 3;
  frame.centers = geo::PointSet::from_rows({{1.0, 2.0}, {-3.5, 0.25}});
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_EQ(result.request.type, FrameType::kEvaluate);
  ASSERT_TRUE(result.request.centers.has_value());
  ASSERT_EQ(result.request.centers->size(), 2u);
  EXPECT_EQ((*result.request.centers)[1][0], -3.5);
  EXPECT_EQ((*result.request.centers)[1][1], 0.25);
}

TEST(Wire, ResponseRoundTripWithAndWithoutCenters) {
  ResponseFrame with;
  with.request_id = 77;
  with.status = WireStatus::kOk;
  with.epoch = 123456789ull;
  with.objective = 98.0625;
  with.centers = geo::PointSet::from_rows({{0.5, 0.5}, {2.0, 3.0}});
  std::vector<std::uint8_t> bytes;
  encode_response(with, bytes);

  ResponseFrame without;
  without.request_id = 78;
  without.status = WireStatus::kTimeout;
  encode_response(without, bytes);  // second frame in the same buffer

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  FrameDecoder::Result first = decoder.next();
  ASSERT_EQ(first.status, DecodeStatus::kOk);
  EXPECT_TRUE(first.is_response);
  EXPECT_EQ(first.response.request_id, 77u);
  EXPECT_EQ(first.response.epoch, 123456789ull);
  EXPECT_EQ(first.response.objective, 98.0625);
  ASSERT_TRUE(first.response.centers.has_value());
  EXPECT_EQ(first.response.centers->size(), 2u);
  EXPECT_EQ((*first.response.centers)[1][1], 3.0);

  FrameDecoder::Result second = decoder.next();
  ASSERT_EQ(second.status, DecodeStatus::kOk);
  EXPECT_EQ(second.response.status, WireStatus::kTimeout)
      << to_string(second.response.status);
  EXPECT_FALSE(second.response.centers.has_value());
  EXPECT_EQ(decoder.next().status, DecodeStatus::kNeedMoreData);
}

TEST(Wire, ByteAtATimeFeedingReassemblesIdentically) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.request_id = 11;
  frame.users = two_users();
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);

  FrameDecoder decoder;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i + 1 < bytes.size()) {
      // Every prefix must just ask for more data, never error.
      ASSERT_EQ(decoder.next().status, DecodeStatus::kNeedMoreData)
          << "at byte " << i;
    }
    decoder.feed(&bytes[i], 1);
  }
  FrameDecoder::Result result = decoder.next();
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  ASSERT_EQ(result.request.users.size(), 2u);
  EXPECT_EQ(result.request.users[1].interest, (std::vector<double>{0.0, 4.0}));
}

// --- malformed input: every rejection is a typed status -------------------

std::vector<std::uint8_t> valid_query_bytes() {
  RequestFrame frame;
  frame.type = FrameType::kQueryPlacement;
  frame.request_id = 5;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  return bytes;
}

DecodeStatus status_of(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  return decoder.next().status;
}

TEST(Wire, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = valid_query_bytes();
  bytes[0] ^= 0xFF;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kBadMagic);
}

TEST(Wire, BadVersionRejected) {
  std::vector<std::uint8_t> bytes = valid_query_bytes();
  bytes[4] = kWireVersion + 1;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kBadVersion);
}

TEST(Wire, BadTypeRejected) {
  std::vector<std::uint8_t> bytes = valid_query_bytes();
  bytes[5] = 0;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kBadType);
  bytes[5] = 200;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kBadType);
}

TEST(Wire, NonzeroReservedRejected) {
  std::vector<std::uint8_t> bytes = valid_query_bytes();
  bytes[6] = 1;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, OversizedPayloadLengthRejectedBeforeBuffering) {
  std::vector<std::uint8_t> bytes = valid_query_bytes();
  bytes[19] = 0xFF;  // payload_len high byte -> ~4 GB claim
  // Only the header is present, yet the decoder must reject immediately
  // instead of waiting for (and buffering toward) an absurd length.
  EXPECT_EQ(status_of(bytes), DecodeStatus::kOversizedFrame);
}

TEST(Wire, QueryWithPayloadRejected) {
  std::vector<std::uint8_t> bytes = valid_query_bytes();
  bytes[16] = 4;  // payload_len = 4
  bytes.insert(bytes.end(), {1, 2, 3, 4});
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, OversizedBatchCountRejected) {
  RequestFrame frame;
  frame.type = FrameType::kRemoveUsers;
  frame.ids = {1, 2, 3};
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  // Forge count = kMaxBatchCount + 1 (first payload field).
  const std::uint32_t count = kMaxBatchCount + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[kHeaderBytes + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(count >> (8 * i));
  }
  EXPECT_EQ(status_of(bytes), DecodeStatus::kOversizedBatch);
}

TEST(Wire, TruncatedPayloadIsIncompleteNotError) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.users = two_users();
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  bytes.resize(bytes.size() - 5);  // drop the tail
  // The header promises more bytes than arrived: that is "wait", not
  // "error" — TCP delivers the rest later.
  EXPECT_EQ(status_of(bytes), DecodeStatus::kNeedMoreData);
}

TEST(Wire, PayloadShorterThanRecordsRejected) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.users = two_users();
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  // Shrink payload_len by one record so header and content disagree.
  const std::uint32_t lied = static_cast<std::uint32_t>(bytes.size()) -
                             static_cast<std::uint32_t>(kHeaderBytes) - 8;
  for (int i = 0; i < 4; ++i) {
    bytes[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(lied >> (8 * i));
  }
  bytes.resize(kHeaderBytes + lied);
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, NonFiniteWeightRejected) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.users = {serve::UserRecord{1, {0.0, 0.0}, 1.0}};
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  // weight starts at header + count(4) + dim(2) + id(8) = +14; make NaN.
  const std::size_t weight_at = kHeaderBytes + 14;
  for (std::size_t i = 0; i < 8; ++i) bytes[weight_at + i] = 0xFF;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, PoisonedDecoderStaysPoisoned) {
  std::vector<std::uint8_t> bad = valid_query_bytes();
  bad[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
  // A valid frame after the poison must NOT resurrect the stream.
  const std::vector<std::uint8_t> good = valid_query_bytes();
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next().status, DecodeStatus::kBadMagic);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Wire, ErrorResultCarriesHeaderRequestId) {
  RequestFrame frame;
  frame.type = FrameType::kQueryPlacement;
  frame.request_id = 31337;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  bytes[16] = 1;  // query with nonempty payload
  bytes.push_back(0);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const FrameDecoder::Result result = decoder.next();
  EXPECT_EQ(result.status, DecodeStatus::kMalformedPayload);
  EXPECT_EQ(result.request_id, 31337u)
      << "server needs the id to address its kBadRequest reply";
}

TEST(Wire, StatusMappingCoversServeStatuses) {
  EXPECT_EQ(to_wire_status(serve::ResponseStatus::kOk), WireStatus::kOk);
  EXPECT_EQ(to_wire_status(serve::ResponseStatus::kTimeout),
            WireStatus::kTimeout);
  EXPECT_EQ(to_wire_status(serve::ResponseStatus::kRejected),
            WireStatus::kRejected);
  EXPECT_EQ(to_wire_status(serve::ResponseStatus::kShutdown),
            WireStatus::kShutdown);
  EXPECT_EQ(to_wire_status(serve::ResponseStatus::kBadRequest),
            WireStatus::kBadRequest);
  EXPECT_EQ(to_wire_status(serve::ResponseStatus::kInternalError),
            WireStatus::kInternalError);
}

TEST(Wire, StatsRequestRoundTrip) {
  RequestFrame frame;
  frame.type = FrameType::kStats;
  frame.request_id = 99;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  ASSERT_EQ(bytes.size(), kHeaderBytes) << "stats request has no payload";

  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_FALSE(result.is_response);
  EXPECT_EQ(result.request.type, FrameType::kStats);
  EXPECT_EQ(result.request.request_id, 99u);
}

TEST(Wire, StatsRequestWithPayloadRejected) {
  RequestFrame frame;
  frame.type = FrameType::kStats;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  bytes[16] = 1;  // claim a 1-byte payload
  bytes.push_back(0);
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, ResponseWithStatsBlobRoundTrip) {
  ResponseFrame frame;
  frame.request_id = 44;
  frame.status = WireStatus::kOk;
  frame.epoch = 17;
  frame.stats = "# TYPE mmph_net_requests_total counter\n"
                "mmph_net_requests_total 12\n";
  std::vector<std::uint8_t> bytes;
  encode_response(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_TRUE(result.is_response);
  EXPECT_EQ(result.response.request_id, 44u);
  EXPECT_FALSE(result.response.centers.has_value());
  ASSERT_TRUE(result.response.stats.has_value());
  EXPECT_EQ(*result.response.stats, *frame.stats);
}

TEST(Wire, ResponseWithCentersAndStatsRoundTrip) {
  ResponseFrame frame;
  frame.request_id = 45;
  frame.centers = geo::PointSet::from_rows({{1.0, 2.0}});
  frame.stats = "mmph_serve_queue_depth 0\n";
  std::vector<std::uint8_t> bytes;
  encode_response(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  ASSERT_TRUE(result.response.centers.has_value());
  EXPECT_EQ((*result.response.centers)[0][1], 2.0);
  ASSERT_TRUE(result.response.stats.has_value());
  EXPECT_EQ(*result.response.stats, "mmph_serve_queue_depth 0\n");
}

TEST(Wire, ResponseStatsBlobWithTrailingBytesRejected) {
  ResponseFrame frame;
  frame.request_id = 46;
  frame.stats = "x";
  std::vector<std::uint8_t> bytes;
  encode_response(frame, bytes);
  // Append a junk byte and fix up payload_len: the blob-length field now
  // disagrees with the remaining bytes.
  bytes.push_back(0xAB);
  const std::uint32_t payload =
      static_cast<std::uint32_t>(bytes.size() - kHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    bytes[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, ResponseInternalErrorStatusRoundTrip) {
  ResponseFrame frame;
  frame.request_id = 47;
  frame.status = WireStatus::kInternalError;
  std::vector<std::uint8_t> bytes;
  encode_response(frame, bytes);
  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_EQ(result.response.status, WireStatus::kInternalError);
  // One past the last status value is malformed, not silently accepted.
  bytes[kHeaderBytes] =
      static_cast<std::uint8_t>(WireStatus::kInternalError) + 1;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

// --- v3 replication frames --------------------------------------------------

TEST(Wire, ReplSubscribeRoundTrip) {
  RequestFrame frame;
  frame.type = FrameType::kReplSubscribe;
  frame.request_id = 11;
  frame.have_epoch = 0xAABBCCDD11223344ull;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);
  ASSERT_EQ(bytes.size(), kHeaderBytes + 8);

  const FrameDecoder::Result result = decode_one(bytes);
  EXPECT_FALSE(result.is_response);
  EXPECT_FALSE(result.is_repl);
  EXPECT_EQ(result.request.type, FrameType::kReplSubscribe);
  EXPECT_EQ(result.request.request_id, 11u);
  EXPECT_EQ(result.request.have_epoch, 0xAABBCCDD11223344ull);

  // Payload must be exactly the u64: anything else is malformed.
  std::vector<std::uint8_t> longer = bytes;
  longer[16] = 9;  // payload_len = 9
  longer.push_back(0);
  EXPECT_EQ(status_of(longer), DecodeStatus::kMalformedPayload);
}

TEST(Wire, ReplOpsRoundTrip) {
  ReplFrame frame;
  frame.type = FrameType::kReplOps;
  frame.request_id = 5;
  frame.epoch = 123;
  frame.count = 2;
  frame.blob = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> bytes;
  encode_repl(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  ASSERT_TRUE(result.is_repl);
  EXPECT_FALSE(result.is_response);
  EXPECT_EQ(result.repl.type, FrameType::kReplOps);
  EXPECT_EQ(result.repl.request_id, 5u);
  EXPECT_EQ(result.repl.epoch, 123u);
  EXPECT_EQ(result.repl.count, 2u);
  EXPECT_EQ(result.repl.flags, 0u);
  EXPECT_EQ(result.repl.blob, frame.blob);
}

TEST(Wire, ReplSnapshotChunkRoundTrip) {
  ReplFrame frame;
  frame.type = FrameType::kReplSnapshot;
  frame.request_id = 6;
  frame.epoch = 77;
  frame.flags = kReplChunkFirst | kReplChunkLast;
  frame.blob = {9, 8, 7};
  std::vector<std::uint8_t> bytes;
  encode_repl(frame, bytes);

  const FrameDecoder::Result result = decode_one(bytes);
  ASSERT_TRUE(result.is_repl);
  EXPECT_EQ(result.repl.type, FrameType::kReplSnapshot);
  EXPECT_EQ(result.repl.epoch, 77u);
  EXPECT_EQ(result.repl.flags, kReplChunkFirst | kReplChunkLast);
  EXPECT_EQ(result.repl.blob, frame.blob);
}

TEST(Wire, ReplOpsZeroCountRejected) {
  ReplFrame frame;
  frame.type = FrameType::kReplOps;
  frame.epoch = 1;
  frame.count = 1;
  frame.blob = {1};
  std::vector<std::uint8_t> bytes;
  encode_repl(frame, bytes);
  // Forge count = 0 (first field after the epoch).
  for (int i = 0; i < 4; ++i) {
    bytes[kHeaderBytes + 8 + static_cast<std::size_t>(i)] = 0;
  }
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, ReplSnapshotBadFlagsRejected) {
  ReplFrame frame;
  frame.type = FrameType::kReplSnapshot;
  frame.epoch = 1;
  frame.flags = kReplChunkLast;
  frame.blob = {1};
  std::vector<std::uint8_t> bytes;
  encode_repl(frame, bytes);
  bytes[kHeaderBytes + 8] = 0x7F;  // undefined flag bits
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

TEST(Wire, ReplBlobLengthMustMatchPayloadExactly) {
  ReplFrame frame;
  frame.type = FrameType::kReplOps;
  frame.epoch = 2;
  frame.count = 1;
  frame.blob = {1, 2, 3, 4};
  std::vector<std::uint8_t> bytes;
  encode_repl(frame, bytes);
  // Shrink the inner blob_len claim by one: payload now has a stray byte.
  const std::size_t blob_len_at = kHeaderBytes + 8 + 4;
  ASSERT_EQ(bytes[blob_len_at], 4);
  bytes[blob_len_at] = 3;
  EXPECT_EQ(status_of(bytes), DecodeStatus::kMalformedPayload);
}

}  // namespace
}  // namespace mmph::net
