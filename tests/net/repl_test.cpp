// Primary -> replica streaming over a real loopback socket pair: live
// tail following, snapshot install for a subscriber behind the retained
// window, read-only enforcement on the replica, lag reaching zero at
// convergence, and failover (a promoted replica answers the placement
// the primary would have).

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/net/client.hpp"
#include "mmph/net/replica.hpp"
#include "mmph/net/server.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/support/error.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/snapshot.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::net {
namespace {

using std::chrono::milliseconds;

bool wait_until(const std::function<bool()>& pred,
                milliseconds timeout = milliseconds(10000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

serve::UserRecord make_user(std::uint64_t id, rnd::Pcg64& rng) {
  serve::UserRecord user;
  user.id = id;
  user.interest = {rng.next_double(), rng.next_double()};
  user.weight = 0.5 + rng.next_double();
  return user;
}

serve::ServiceConfig base_config() {
  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 3;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;  // placement = f(store) exactly
  return config;
}

struct Primary {
  explicit Primary(std::size_t tail_retain_bytes = 4u << 20) {
    wal_config.dir = "wal";
    wal_config.fsync = wal::FsyncPolicy::kGroupCommit;
    wal_config.tail_retain_bytes = tail_retain_bytes;
    wal_config.file_ops = &mem;
    writer = std::make_unique<wal::WalWriter>(wal_config);

    serve::ServiceConfig service_config = base_config();
    service_config.wal = writer.get();

    NetServerConfig net_config;
    net_config.poll_interval = milliseconds(2);
    server = std::make_unique<NetServer>(std::move(service_config),
                                         net_config);
    server->start();
  }
  ~Primary() { server->stop(); }

  wal::MemFileOps mem;
  wal::WalConfig wal_config;
  std::unique_ptr<wal::WalWriter> writer;
  std::unique_ptr<NetServer> server;
};

void add_users(NetClient& client, std::uint64_t first_id, std::size_t count,
               rnd::Pcg64& rng) {
  std::vector<serve::UserRecord> batch;
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(make_user(first_id + i, rng));
  }
  const ResponseFrame reply = client.add_users(std::move(batch));
  ASSERT_EQ(reply.status, WireStatus::kOk);
}

TEST(ReplTest, ReplicaFollowsLiveStreamBitwise) {
  Primary primary;
  NetClientConfig client_config;
  client_config.port = primary.server->port();
  NetClient client(client_config);

  rnd::Pcg64 rng(1);
  add_users(client, 1, 8, rng);

  serve::PlacementService replica(base_config());
  ReplicaAgentConfig agent_config;
  agent_config.port = primary.server->port();
  ReplicaAgent agent(replica, agent_config);
  agent.start();
  EXPECT_TRUE(replica.read_only());

  // Catch up with the pre-subscribe history...
  ASSERT_TRUE(wait_until([&] {
    return replica.epoch() == primary.server->service().epoch();
  }));
  // ...then follow live traffic, including removes.
  add_users(client, 100, 6, rng);
  ASSERT_EQ(client.remove_users({2, 4}).status, WireStatus::kOk);
  add_users(client, 200, 3, rng);
  ASSERT_TRUE(wait_until([&] {
    return replica.epoch() == primary.server->service().epoch();
  }));

  EXPECT_EQ(wal::snapshot_digest(replica.wal_snapshot()),
            wal::snapshot_digest(primary.server->service().wal_snapshot()));
  EXPECT_GT(agent.records_applied(), 0u);
  EXPECT_EQ(agent.lag_ops(), 0u);
  EXPECT_EQ(replica.metrics().repl_lag_ops, 0.0);

  // Read-only is enforced on both mutation paths.
  EXPECT_THROW(replica.apply_remove({1}), StateError);

  agent.stop();
}

TEST(ReplTest, BehindSubscriberInstallsSnapshot) {
  // A 64-byte tail window cannot retain even one record, so a subscriber
  // joining after the writes MUST be bootstrapped with a full snapshot.
  Primary primary(/*tail_retain_bytes=*/64);
  NetClientConfig client_config;
  client_config.port = primary.server->port();
  NetClient client(client_config);

  rnd::Pcg64 rng(2);
  for (std::uint64_t batch = 0; batch < 5; ++batch) {
    add_users(client, 1 + batch * 10, 4, rng);
  }

  serve::PlacementService replica(base_config());
  ReplicaAgentConfig agent_config;
  agent_config.port = primary.server->port();
  ReplicaAgent agent(replica, agent_config);
  agent.start();

  ASSERT_TRUE(wait_until([&] {
    return replica.epoch() == primary.server->service().epoch();
  }));
  EXPECT_GE(agent.snapshots_installed(), 1u);
  EXPECT_EQ(wal::snapshot_digest(replica.wal_snapshot()),
            wal::snapshot_digest(primary.server->service().wal_snapshot()));
  agent.stop();
}

TEST(ReplTest, SubscribeRejectedWithoutWal) {
  NetServerConfig net_config;
  net_config.poll_interval = milliseconds(2);
  NetServer server(base_config(), net_config);  // no WAL attached
  server.start();

  serve::PlacementService replica(base_config());
  ReplicaAgentConfig agent_config;
  agent_config.port = server.port();
  agent_config.retry_backoff = milliseconds(20);
  ReplicaAgent agent(replica, agent_config);
  agent.start();

  // Every subscribe attempt is answered kBadRequest and the session
  // drops; the agent keeps retrying without ever syncing anything.
  ASSERT_TRUE(wait_until([&] { return agent.resyncs() >= 2; }));
  EXPECT_EQ(agent.records_applied(), 0u);
  EXPECT_EQ(agent.snapshots_installed(), 0u);
  agent.stop();
  server.stop();
}

TEST(ReplTest, PromotedReplicaAnswersIdenticalPlacement) {
  Primary primary;
  NetClientConfig client_config;
  client_config.port = primary.server->port();
  NetClient client(client_config);

  rnd::Pcg64 rng(3);
  add_users(client, 1, 12, rng);
  ASSERT_EQ(client.remove_users({3, 7}).status, WireStatus::kOk);

  serve::PlacementService replica(base_config());
  ReplicaAgentConfig agent_config;
  agent_config.port = primary.server->port();
  ReplicaAgent agent(replica, agent_config);
  agent.start();
  ASSERT_TRUE(wait_until([&] {
    return replica.epoch() == primary.server->service().epoch();
  }));

  const serve::PlacementView primary_view =
      primary.server->service().placement();

  // Kill the primary, promote the replica.
  agent.stop();
  primary.server->stop();
  replica.set_read_only(false);

  const serve::PlacementView promoted = replica.placement();
  EXPECT_EQ(promoted.epoch, primary_view.epoch);
  EXPECT_EQ(promoted.population, primary_view.population);
  EXPECT_EQ(promoted.objective, primary_view.objective);
  ASSERT_EQ(promoted.solution.centers.size(),
            primary_view.solution.centers.size());
  for (std::size_t c = 0; c < promoted.solution.centers.size(); ++c) {
    for (std::size_t d = 0; d < promoted.solution.centers.dim(); ++d) {
      EXPECT_EQ(promoted.solution.centers[c][d],
                primary_view.solution.centers[c][d]);
    }
  }

  // The promoted service accepts writes again.
  rnd::Pcg64 rng2(4);
  replica.apply_add({make_user(999, rng2)});
  EXPECT_EQ(replica.population(), primary_view.population + 1);
}

}  // namespace
}  // namespace mmph::net
