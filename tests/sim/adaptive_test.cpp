// Tests for the adaptive (cost-model) scheduler selection.

#include <gtest/gtest.h>

#include "mmph/sim/adaptive.hpp"
#include "mmph/support/error.hpp"

namespace mmph::sim {
namespace {

TEST(Adaptive, Validation) {
  EXPECT_THROW(AdaptivePlanner(0.0), mmph::InvalidArgument);
  EXPECT_THROW(AdaptivePlanner(100.0, {}), mmph::InvalidArgument);
  EXPECT_THROW(AdaptivePlanner(100.0, {{"", 1.0}}), mmph::InvalidArgument);
  EXPECT_THROW(AdaptivePlanner(100.0, {{"greedy3", -1.0}}),
               mmph::InvalidArgument);
  AdaptivePlanner ok(100.0);
  EXPECT_THROW((void)ok.factory(0), mmph::InvalidArgument);
}

TEST(Adaptive, PredictedCostFollowsComplexity) {
  const AdaptiveRung linear{"greedy3", 1.0};
  const AdaptiveRung cubic{"greedy4", 3.0};
  EXPECT_DOUBLE_EQ(AdaptivePlanner::predicted_cost(linear, 100, 4), 400.0);
  EXPECT_DOUBLE_EQ(AdaptivePlanner::predicted_cost(cubic, 10, 2), 2000.0);
}

TEST(Adaptive, PicksBestAffordableRung) {
  // Budget 10000 ops, k=4: greedy4 fits for n <= cbrt(2500) ~ 13,
  // greedy2 for n <= 50, greedy3 beyond.
  const AdaptivePlanner planner(10000.0);
  EXPECT_EQ(planner.choose(10, 4).solver, "greedy4");
  EXPECT_EQ(planner.choose(40, 4).solver, "greedy2");
  EXPECT_EQ(planner.choose(500, 4).solver, "greedy3");
}

TEST(Adaptive, FallsBackToCheapestWhenNothingFits) {
  const AdaptivePlanner planner(1.0);  // nothing fits
  EXPECT_EQ(planner.choose(1000, 4).solver, "greedy3");
}

TEST(Adaptive, ChoiceCountsTrackUsage) {
  AdaptivePlanner planner(10000.0);
  (void)planner.choose(10, 4);   // greedy4
  (void)planner.choose(10, 4);   // greedy4
  (void)planner.choose(40, 4);   // greedy2
  (void)planner.choose(500, 4);  // greedy3
  const auto& counts = planner.choice_counts();
  EXPECT_EQ(counts[0], 1u);  // greedy3
  EXPECT_EQ(counts[1], 1u);  // greedy2
  EXPECT_EQ(counts[2], 2u);  // greedy4
}

TEST(Adaptive, CustomLadder) {
  const AdaptivePlanner planner(
      1e9, {{"random", 0.0}, {"greedy2-lazy", 2.0}});
  EXPECT_EQ(planner.choose(100, 4).solver, "greedy2-lazy");
  EXPECT_EQ(planner.ladder().size(), 2u);
}

TEST(Adaptive, DrivesSimulatorAndStaysDeterministic) {
  AdaptivePlanner planner(20000.0);
  SimConfig cfg;
  cfg.users = 30;
  cfg.slots = 5;
  cfg.k = 4;
  cfg.radius = 1.0;
  cfg.seed = 9;
  BroadcastSimulator sim(cfg, planner.factory(cfg.k));
  const SimReport report = sim.run();
  EXPECT_EQ(report.slots.size(), 5u);
  EXPECT_GT(report.total_reward, 0.0);
  // n=30, k=4: greedy4 costs 4*27000 > budget; greedy2 costs 3600 <=
  // budget -> greedy2 every slot.
  EXPECT_EQ(planner.choice_counts()[1], 5u);

  AdaptivePlanner planner2(20000.0);
  BroadcastSimulator sim2(cfg, planner2.factory(cfg.k));
  EXPECT_DOUBLE_EQ(sim2.run().total_reward, report.total_reward);
}

TEST(Adaptive, LargerBudgetNeverWorseOnAverage) {
  // More budget unlocks better algorithms; reward should not regress.
  SimConfig cfg;
  cfg.users = 25;
  cfg.slots = 8;
  cfg.k = 3;
  cfg.radius = 1.0;
  cfg.seed = 10;
  AdaptivePlanner tight(100.0);     // greedy3 only
  AdaptivePlanner roomy(1.0e9);     // greedy4 always
  BroadcastSimulator sim_tight(cfg, tight.factory(cfg.k));
  BroadcastSimulator sim_roomy(cfg, roomy.factory(cfg.k));
  const double reward_tight = sim_tight.run().total_reward;
  const double reward_roomy = sim_roomy.run().total_reward;
  EXPECT_GE(reward_roomy, reward_tight * 0.99);
}

}  // namespace
}  // namespace mmph::sim
