// Tests for the slot trace recorder: files written, replayable, faithful.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/sim/recorder.hpp"
#include "mmph/support/error.hpp"
#include "mmph/trace/trace.hpp"

namespace mmph::sim {
namespace {

SolverFactory greedy3_factory() {
  return [](const core::Problem&) {
    return std::make_unique<core::GreedySimpleSolver>();
  };
}

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mmph_recorder_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(RecorderTest, Validation) {
  EXPECT_THROW(TraceRecorder("", greedy3_factory()), mmph::InvalidArgument);
  EXPECT_THROW(TraceRecorder(dir_.string(), SolverFactory{}),
               mmph::InvalidArgument);
}

TEST_F(RecorderTest, RecordsEverySlot) {
  TraceRecorder recorder(dir_.string(), greedy3_factory());
  SimConfig cfg;
  cfg.users = 10;
  cfg.slots = 4;
  cfg.k = 2;
  cfg.radius = 1.0;
  cfg.seed = 3;
  BroadcastSimulator sim(cfg, recorder.factory());
  (void)sim.run();
  EXPECT_EQ(recorder.recorded_slots(), 4u);
  for (std::uint64_t slot = 0; slot < 4; ++slot) {
    EXPECT_TRUE(std::filesystem::exists(recorder.problem_path(slot)));
    EXPECT_TRUE(std::filesystem::exists(recorder.solution_path(slot)));
  }
}

TEST_F(RecorderTest, RecordedSlotReplaysConsistently) {
  TraceRecorder recorder(dir_.string(), greedy3_factory());
  SimConfig cfg;
  cfg.users = 12;
  cfg.slots = 3;
  cfg.k = 2;
  cfg.radius = 1.0;
  cfg.drift.sigma = 0.2;
  cfg.seed = 4;
  BroadcastSimulator sim(cfg, recorder.factory());
  (void)sim.run();

  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    const core::Problem p = trace::load_problem(recorder.problem_path(slot));
    const core::Solution recorded =
        trace::load_solution(recorder.solution_path(slot));
    // Re-running the same solver on the recorded instance reproduces the
    // recorded solution.
    const core::Solution replayed =
        core::GreedySimpleSolver().solve(p, recorded.centers.size());
    EXPECT_NEAR(replayed.total_reward, recorded.total_reward, 1e-9)
        << "slot " << slot;
    // And the recorded centers evaluate to the recorded value.
    EXPECT_NEAR(core::objective_value(p, recorded.centers),
                recorded.total_reward, 1e-9);
  }
}

TEST_F(RecorderTest, SolverNameMarksRecording) {
  TraceRecorder recorder(dir_.string(), greedy3_factory());
  const auto factory = recorder.factory();
  rnd::WorkloadSpec spec;
  spec.n = 5;
  rnd::Rng rng(5);
  const core::Problem p = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  EXPECT_EQ(factory(p)->name(), "greedy3+recorded");
}

TEST_F(RecorderTest, UnwritableDirectoryThrowsOnSolve) {
  TraceRecorder recorder("/nonexistent/dir", greedy3_factory());
  rnd::WorkloadSpec spec;
  spec.n = 5;
  rnd::Rng rng(6);
  const core::Problem p = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  EXPECT_THROW((void)recorder.factory()(p)->solve(p, 1), mmph::StateError);
}

TEST_F(RecorderTest, PathFormatIsStable) {
  TraceRecorder recorder(dir_.string(), greedy3_factory());
  EXPECT_EQ(recorder.problem_path(7),
            dir_.string() + "/slot_00007.problem");
  EXPECT_EQ(recorder.solution_path(12345),
            dir_.string() + "/slot_12345.solution");
}

}  // namespace
}  // namespace mmph::sim
