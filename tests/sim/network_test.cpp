// Tests for the multi-cell network simulator.

#include <gtest/gtest.h>

#include <memory>

#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/sim/network.hpp"
#include "mmph/support/error.hpp"

namespace mmph::sim {
namespace {

SolverFactory greedy3_factory() {
  return [](const core::Problem&) {
    return std::make_unique<core::GreedySimpleSolver>();
  };
}

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.stations = 3;
  cfg.users = 30;
  cfg.slots = 8;
  cfg.k_per_station = 2;
  cfg.radius = 1.0;
  cfg.seed = 5;
  return cfg;
}

TEST(Network, Validation) {
  NetworkConfig cfg = small_config();
  cfg.stations = 0;
  EXPECT_THROW(NetworkSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  cfg = small_config();
  cfg.users = 0;
  EXPECT_THROW(NetworkSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  cfg = small_config();
  cfg.area_side = 0.0;
  EXPECT_THROW(NetworkSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  EXPECT_THROW(NetworkSimulator(small_config(), SolverFactory{}),
               mmph::InvalidArgument);
}

TEST(Network, InitialAssociationIsNearestStation) {
  NetworkSimulator sim(small_config(), greedy3_factory());
  const geo::PointSet& stations = sim.stations();
  for (const NetworkUser& u : sim.users()) {
    const double attached = geo::l2_distance(u.position,
                                             stations[u.station]);
    for (std::size_t s = 0; s < stations.size(); ++s) {
      EXPECT_LE(attached, geo::l2_distance(u.position, stations[s]) + 1e-12);
    }
  }
}

TEST(Network, RunProducesOneMetricPerSlot) {
  NetworkSimulator sim(small_config(), greedy3_factory());
  const NetworkReport report = sim.run();
  ASSERT_EQ(report.slots.size(), 8u);
  for (std::size_t t = 0; t < report.slots.size(); ++t) {
    EXPECT_EQ(report.slots[t].slot, t);
  }
}

TEST(Network, MetricsInRange) {
  NetworkConfig cfg = small_config();
  cfg.mobility_sigma = 0.4;
  cfg.interest_sigma = 0.1;
  NetworkSimulator sim(cfg, greedy3_factory());
  const NetworkReport report = sim.run();
  for (const NetworkSlotMetrics& m : report.slots) {
    EXPECT_GE(m.reward, 0.0);
    EXPECT_LE(m.reward, m.total_weight + 1e-9);
    EXPECT_GE(m.satisfaction, 0.0);
    EXPECT_LE(m.satisfaction, 1.0 + 1e-12);
    EXPECT_LE(m.handovers, cfg.users);
    EXPECT_LE(m.max_cell_load, cfg.users);
    EXPECT_LE(m.min_cell_load, m.max_cell_load);
  }
}

TEST(Network, NoMobilityNoHandovers) {
  NetworkConfig cfg = small_config();
  cfg.mobility_sigma = 0.0;
  NetworkSimulator sim(cfg, greedy3_factory());
  const NetworkReport report = sim.run();
  EXPECT_EQ(report.total_handovers, 0u);
}

TEST(Network, MobilityCausesHandovers) {
  NetworkConfig cfg = small_config();
  cfg.mobility_sigma = 2.0;  // violent movement over a 10x10 area
  cfg.slots = 20;
  NetworkSimulator sim(cfg, greedy3_factory());
  const NetworkReport report = sim.run();
  EXPECT_GT(report.total_handovers, 0u);
}

TEST(Network, DeterministicGivenSeed) {
  NetworkConfig cfg = small_config();
  cfg.mobility_sigma = 0.3;
  NetworkSimulator a(cfg, greedy3_factory());
  NetworkSimulator b(cfg, greedy3_factory());
  const NetworkReport ra = a.run();
  const NetworkReport rb = b.run();
  ASSERT_EQ(ra.slots.size(), rb.slots.size());
  for (std::size_t t = 0; t < ra.slots.size(); ++t) {
    EXPECT_DOUBLE_EQ(ra.slots[t].reward, rb.slots[t].reward);
    EXPECT_EQ(ra.slots[t].handovers, rb.slots[t].handovers);
  }
}

TEST(Network, HysteresisValidation) {
  NetworkConfig cfg = small_config();
  cfg.handover_hysteresis = -0.1;
  EXPECT_THROW(NetworkSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  cfg.handover_hysteresis = 1.0;
  EXPECT_THROW(NetworkSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
}

TEST(Network, HysteresisReducesHandovers) {
  const auto handovers_with = [](double h) {
    NetworkConfig cfg = small_config();
    cfg.mobility_sigma = 0.8;
    cfg.slots = 25;
    cfg.handover_hysteresis = h;
    NetworkSimulator sim(cfg, greedy3_factory());
    return sim.run().total_handovers;
  };
  const std::uint64_t eager = handovers_with(0.0);
  const std::uint64_t damped = handovers_with(0.3);
  const std::uint64_t heavy = handovers_with(0.8);
  EXPECT_GE(eager, damped);
  EXPECT_GE(damped, heavy);
  EXPECT_GT(eager, heavy);  // strict somewhere along the sweep
}

TEST(Network, HysteresisDoesNotAffectInitialAttachment) {
  NetworkConfig cfg = small_config();
  cfg.handover_hysteresis = 0.9;
  NetworkSimulator sim(cfg, greedy3_factory());
  const geo::PointSet& stations = sim.stations();
  for (const NetworkUser& u : sim.users()) {
    const double attached =
        geo::l2_distance(u.position, stations[u.station]);
    for (std::size_t s = 0; s < stations.size(); ++s) {
      EXPECT_LE(attached, geo::l2_distance(u.position, stations[s]) + 1e-12);
    }
  }
}

TEST(Network, CellLoadsSumToUsers) {
  NetworkSimulator sim(small_config(), greedy3_factory());
  std::vector<std::size_t> loads(3, 0);
  for (const NetworkUser& u : sim.users()) {
    ASSERT_LT(u.station, 3u);
    ++loads[u.station];
  }
  EXPECT_EQ(loads[0] + loads[1] + loads[2], 30u);
}

TEST(Network, SingleStationBehavesLikeOneCell) {
  NetworkConfig cfg = small_config();
  cfg.stations = 1;
  NetworkSimulator sim(cfg, greedy3_factory());
  const NetworkReport report = sim.run();
  EXPECT_EQ(report.total_handovers, 0u);
  for (const NetworkSlotMetrics& m : report.slots) {
    EXPECT_EQ(m.max_cell_load, 30u);
    EXPECT_EQ(m.min_cell_load, 30u);
  }
}

TEST(Network, AccumulatedRewardsGrow) {
  NetworkSimulator sim(small_config(), greedy3_factory());
  (void)sim.run();
  double total = 0.0;
  for (const NetworkUser& u : sim.users()) total += u.accumulated_reward;
  EXPECT_GT(total, 0.0);
}

TEST(Network, WorksWithRegistrySolvers) {
  for (const std::string name : {"greedy2", "greedy4", "sieve"}) {
    NetworkConfig cfg = small_config();
    cfg.slots = 3;
    NetworkSimulator sim(cfg, [name](const core::Problem& p) {
      return core::make_solver(name, p);
    });
    const NetworkReport report = sim.run();
    EXPECT_GT(report.total_reward, 0.0) << name;
  }
}

TEST(NetworkReport, FinalizeAggregates) {
  NetworkReport report;
  NetworkSlotMetrics a;
  a.reward = 3.0;
  a.satisfaction = 0.3;
  a.handovers = 2;
  NetworkSlotMetrics b;
  b.reward = 5.0;
  b.satisfaction = 0.5;
  b.handovers = 1;
  report.slots = {a, b};
  report.finalize();
  EXPECT_DOUBLE_EQ(report.total_reward, 8.0);
  EXPECT_DOUBLE_EQ(report.mean_satisfaction, 0.4);
  EXPECT_EQ(report.total_handovers, 3u);
}

}  // namespace
}  // namespace mmph::sim
