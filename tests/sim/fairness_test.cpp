// Tests for the proportional-fairness planner.

#include <gtest/gtest.h>

#include <memory>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/sim/fairness.hpp"
#include "mmph/support/error.hpp"

namespace mmph::sim {
namespace {

SolverFactory greedy2_factory() {
  return [](const core::Problem&) {
    return std::make_unique<core::GreedyLocalSolver>();
  };
}

// A lopsided instance: a dense cluster plus fringe users that plain
// greedy ignores every slot.
core::Problem lopsided_problem() {
  geo::PointSet ps(2);
  std::vector<double> w;
  // Dense cluster around (1, 1).
  for (int i = 0; i < 12; ++i) {
    const std::vector<double> pt{1.0 + 0.05 * (i % 4), 1.0 + 0.05 * (i / 4)};
    ps.push_back(pt);
    w.push_back(1.0);
  }
  // Fringe users, pairwise coverable but far from the cluster.
  for (int i = 0; i < 4; ++i) {
    const std::vector<double> pt{3.5, 0.5 + 1.0 * i};
    ps.push_back(pt);
    w.push_back(1.0);
  }
  return core::Problem(std::move(ps), std::move(w), 0.8, geo::l2_metric());
}

TEST(Fairness, Validation) {
  EXPECT_THROW(FairnessAwarePlanner(SolverFactory{}, 1.0),
               mmph::InvalidArgument);
  EXPECT_THROW(FairnessAwarePlanner(greedy2_factory(), -0.1),
               mmph::InvalidArgument);
}

TEST(Fairness, AlphaZeroMatchesPlainScheduler) {
  FairnessAwarePlanner planner(greedy2_factory(), 0.0);
  const core::Problem p = lopsided_problem();
  for (int slot = 0; slot < 3; ++slot) {
    const core::Solution fair = planner.plan(p, 1);
    const core::Solution plain = core::GreedyLocalSolver().solve(p, 1);
    EXPECT_DOUBLE_EQ(fair.total_reward, plain.total_reward);
    EXPECT_TRUE(geo::approx_equal(fair.centers[0], plain.centers[0], 0.0));
  }
}

TEST(Fairness, SolutionIsTruthfulAgainstOriginalWeights) {
  FairnessAwarePlanner planner(greedy2_factory(), 4.0);
  const core::Problem p = lopsided_problem();
  for (int slot = 0; slot < 4; ++slot) {
    const core::Solution s = planner.plan(p, 1);
    EXPECT_NEAR(s.total_reward, core::objective_value(p, s.centers), 1e-9);
  }
}

TEST(Fairness, DeficitsTrackStarvedUsers) {
  FairnessAwarePlanner planner(greedy2_factory(), 0.0);
  const core::Problem p = lopsided_problem();
  (void)planner.plan(p, 1);  // plain greedy serves the cluster only
  const auto& deficits = planner.deficits();
  ASSERT_EQ(deficits.size(), p.size());
  // Fringe users (indices 12..15) accumulated deficit; cluster users not.
  for (std::size_t i = 12; i < 16; ++i) {
    EXPECT_GT(deficits[i], 0.0) << i;
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(deficits[i], 0.0, 1e-9) << i;
  }
}

TEST(Fairness, EventuallyServesTheFringe) {
  // With strong fairness pressure, the fringe must get a broadcast within
  // a few slots even though the cluster always wins the myopic choice.
  FairnessAwarePlanner planner(greedy2_factory(), 24.0);
  const core::Problem p = lopsided_problem();
  bool fringe_served = false;
  for (int slot = 0; slot < 10 && !fringe_served; ++slot) {
    const core::Solution s = planner.plan(p, 1);
    for (std::size_t i = 12; i < 16 && !fringe_served; ++i) {
      fringe_served = s.residual[i] < 1.0 - 1e-9;
    }
  }
  EXPECT_TRUE(fringe_served);

  // Plain greedy never serves them on this instance.
  const core::Solution plain = core::GreedyLocalSolver().solve(p, 1);
  for (std::size_t i = 12; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(plain.residual[i], 1.0);
  }
}

TEST(Fairness, ImprovesLongRunJainIndexAtModestRewardCost) {
  const core::Problem p = lopsided_problem();
  const auto run = [&](double alpha) {
    FairnessAwarePlanner planner(greedy2_factory(), alpha);
    std::vector<double> accumulated(p.size(), 0.0);
    double total = 0.0;
    for (int slot = 0; slot < 20; ++slot) {
      const core::Solution s = planner.plan(p, 1);
      for (std::size_t i = 0; i < p.size(); ++i) {
        accumulated[i] += p.weight(i) * (1.0 - s.residual[i]);
      }
      total += s.total_reward;
    }
    return std::make_pair(io::jain_fairness(accumulated), total);
  };
  const auto [jain_plain, total_plain] = run(0.0);
  const auto [jain_fair, total_fair] = run(24.0);
  EXPECT_GT(jain_fair, jain_plain + 0.05);   // meaningfully fairer
  EXPECT_GT(total_fair, 0.5 * total_plain);  // at a bounded reward cost
}

TEST(Fairness, PlugsIntoSimulatorAndHandlesChurn) {
  FairnessAwarePlanner planner(greedy2_factory(), 2.0);
  SimConfig cfg;
  cfg.users = 15;
  cfg.slots = 6;
  cfg.k = 2;
  cfg.radius = 1.0;
  cfg.drift.churn_prob = 0.5;  // population identity churns heavily
  cfg.seed = 12;
  BroadcastSimulator sim(cfg, planner.factory());
  const SimReport report = sim.run();
  EXPECT_EQ(report.slots.size(), 6u);
  EXPECT_GT(report.total_reward, 0.0);
}

TEST(Fairness, ResetClearsState) {
  FairnessAwarePlanner planner(greedy2_factory(), 2.0);
  const core::Problem p = lopsided_problem();
  (void)planner.plan(p, 1);
  planner.reset();
  EXPECT_TRUE(planner.deficits().empty());
}

}  // namespace
}  // namespace mmph::sim
