// Tests for the broadcast simulator: determinism, accounting, dynamics.

#include <gtest/gtest.h>

#include <memory>

#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/sim/simulator.hpp"
#include "mmph/support/error.hpp"

namespace mmph::sim {
namespace {

SolverFactory greedy3_factory() {
  return [](const core::Problem&) {
    return std::make_unique<core::GreedySimpleSolver>();
  };
}

SimConfig small_config() {
  SimConfig cfg;
  cfg.users = 20;
  cfg.slots = 10;
  cfg.k = 2;
  cfg.radius = 1.0;
  cfg.seed = 7;
  return cfg;
}

TEST(Simulator, Validation) {
  SimConfig cfg = small_config();
  cfg.users = 0;
  EXPECT_THROW(BroadcastSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  cfg = small_config();
  cfg.k = 0;
  EXPECT_THROW(BroadcastSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  cfg = small_config();
  cfg.radius = 0.0;
  EXPECT_THROW(BroadcastSimulator(cfg, greedy3_factory()),
               mmph::InvalidArgument);
  EXPECT_THROW(BroadcastSimulator(small_config(), SolverFactory{}),
               mmph::InvalidArgument);
}

TEST(Simulator, PopulationIsStable) {
  BroadcastSimulator sim(small_config(), greedy3_factory());
  EXPECT_EQ(sim.users().size(), 20u);
  (void)sim.step();
  EXPECT_EQ(sim.users().size(), 20u);
  EXPECT_EQ(sim.current_slot(), 1u);
}

TEST(Simulator, RunProducesOneMetricPerSlot) {
  BroadcastSimulator sim(small_config(), greedy3_factory());
  const SimReport report = sim.run();
  ASSERT_EQ(report.slots.size(), 10u);
  for (std::size_t t = 0; t < report.slots.size(); ++t) {
    EXPECT_EQ(report.slots[t].slot, t);
  }
}

TEST(Simulator, MetricsAreInRange) {
  BroadcastSimulator sim(small_config(), greedy3_factory());
  const SimReport report = sim.run();
  for (const SlotMetrics& m : report.slots) {
    EXPECT_GE(m.reward, 0.0);
    EXPECT_LE(m.reward, m.total_weight + 1e-9);
    EXPECT_GE(m.satisfaction, 0.0);
    EXPECT_LE(m.satisfaction, 1.0 + 1e-12);
    EXPECT_GE(m.fairness, 0.0);
    EXPECT_LE(m.fairness, 1.0 + 1e-12);
    EXPECT_LE(m.users_happy, 20u);
    EXPECT_GE(m.solve_seconds, 0.0);
  }
}

TEST(Simulator, DeterministicGivenSeed) {
  BroadcastSimulator a(small_config(), greedy3_factory());
  BroadcastSimulator b(small_config(), greedy3_factory());
  const SimReport ra = a.run();
  const SimReport rb = b.run();
  ASSERT_EQ(ra.slots.size(), rb.slots.size());
  for (std::size_t t = 0; t < ra.slots.size(); ++t) {
    EXPECT_DOUBLE_EQ(ra.slots[t].reward, rb.slots[t].reward);
  }
}

TEST(Simulator, StaticInterestsGiveConstantReward) {
  SimConfig cfg = small_config();
  cfg.drift = DriftModel{};  // no drift, no jumps, no churn
  BroadcastSimulator sim(cfg, greedy3_factory());
  const SimReport report = sim.run();
  for (std::size_t t = 1; t < report.slots.size(); ++t) {
    EXPECT_DOUBLE_EQ(report.slots[t].reward, report.slots[0].reward);
  }
}

TEST(Simulator, DriftChangesTheProblem) {
  SimConfig cfg = small_config();
  cfg.drift.sigma = 0.5;
  BroadcastSimulator sim(cfg, greedy3_factory());
  const SimReport report = sim.run();
  bool any_change = false;
  for (std::size_t t = 1; t < report.slots.size() && !any_change; ++t) {
    any_change = report.slots[t].reward != report.slots[0].reward;
  }
  EXPECT_TRUE(any_change);
}

TEST(Simulator, ChurnReplacesUsers) {
  SimConfig cfg = small_config();
  cfg.drift.churn_prob = 1.0;  // everyone leaves every slot
  BroadcastSimulator sim(cfg, greedy3_factory());
  const auto ids_before = sim.users();
  (void)sim.step();
  const auto& ids_after = sim.users();
  for (std::size_t i = 0; i < ids_after.size(); ++i) {
    EXPECT_NE(ids_after[i].id, ids_before[i].id);
    EXPECT_EQ(ids_after[i].joined_slot, 0u);  // spawned during slot 0
    EXPECT_DOUBLE_EQ(ids_after[i].accumulated_reward, 0.0);
  }
}

TEST(Simulator, AccumulatedRewardGrows) {
  SimConfig cfg = small_config();
  BroadcastSimulator sim(cfg, greedy3_factory());
  (void)sim.run();
  double total = 0.0;
  for (const User& u : sim.users()) total += u.accumulated_reward;
  EXPECT_GT(total, 0.0);
}

TEST(Simulator, SameWeightSchemeGivesUnitWeights) {
  SimConfig cfg = small_config();
  cfg.weights = rnd::WeightScheme::kSame;
  BroadcastSimulator sim(cfg, greedy3_factory());
  for (const User& u : sim.users()) EXPECT_DOUBLE_EQ(u.weight, 1.0);
}

TEST(Simulator, WorksWithRegistrySolvers) {
  for (const std::string name : {"greedy2", "greedy3", "greedy4"}) {
    SimConfig cfg = small_config();
    cfg.slots = 3;
    BroadcastSimulator sim(cfg, [name](const core::Problem& p) {
      return core::make_solver(name, p);
    });
    const SimReport report = sim.run();
    EXPECT_EQ(report.slots.size(), 3u) << name;
    EXPECT_GT(report.total_reward, 0.0) << name;
  }
}

TEST(SimReport, FinalizeAggregates) {
  SimReport report;
  SlotMetrics a;
  a.reward = 2.0;
  a.satisfaction = 0.5;
  a.fairness = 1.0;
  a.solve_seconds = 0.25;
  SlotMetrics b;
  b.reward = 4.0;
  b.satisfaction = 0.7;
  b.fairness = 0.8;
  b.solve_seconds = 0.75;
  report.slots = {a, b};
  report.finalize();
  EXPECT_DOUBLE_EQ(report.total_reward, 6.0);
  EXPECT_DOUBLE_EQ(report.mean_satisfaction, 0.6);
  EXPECT_DOUBLE_EQ(report.mean_fairness, 0.9);
  EXPECT_DOUBLE_EQ(report.total_solve_seconds, 1.0);
}

TEST(SimReport, FinalizeOnEmptyIsZero) {
  SimReport report;
  report.finalize();
  EXPECT_DOUBLE_EQ(report.total_reward, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_satisfaction, 0.0);
}

}  // namespace
}  // namespace mmph::sim
