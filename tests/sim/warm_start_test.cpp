// Tests for the warm-started replanner.

#include <gtest/gtest.h>

#include <memory>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/sim/warm_start.hpp"
#include "mmph/support/error.hpp"

namespace mmph::sim {
namespace {

SolverFactory greedy2_factory() {
  return [](const core::Problem&) {
    return std::make_unique<core::GreedyLocalSolver>();
  };
}

core::Problem instance(std::uint64_t seed, std::size_t n = 25) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      geo::l2_metric());
}

TEST(WarmStart, Validation) {
  EXPECT_THROW(WarmStartPlanner(SolverFactory{}), mmph::InvalidArgument);
  EXPECT_THROW(WarmStartPlanner(greedy2_factory(), 0), mmph::InvalidArgument);
}

TEST(WarmStart, FirstPlanIsCold) {
  WarmStartPlanner planner(greedy2_factory());
  const core::Problem p = instance(1);
  const core::Solution s = planner.plan(p, 3);
  EXPECT_EQ(planner.cold_solves(), 1u);
  EXPECT_EQ(planner.warm_solves(), 0u);
  EXPECT_EQ(s.centers.size(), 3u);
  // First plan comes straight from the cold solver.
  const core::Solution direct = core::GreedyLocalSolver().solve(p, 3);
  EXPECT_DOUBLE_EQ(s.total_reward, direct.total_reward);
}

TEST(WarmStart, SecondPlanIsWarmAndNotWorseOnSameInstance) {
  WarmStartPlanner planner(greedy2_factory());
  const core::Problem p = instance(2);
  const double cold = planner.plan(p, 3).total_reward;
  const double warm = planner.plan(p, 3).total_reward;
  EXPECT_EQ(planner.warm_solves(), 1u);
  EXPECT_GE(warm + 1e-9, cold);  // refinement never loses on the same input
}

TEST(WarmStart, TracksQualityUnderSmallPerturbations) {
  WarmStartPlanner planner(greedy2_factory());
  rnd::Rng rng(3);
  core::Problem base = instance(3, 30);
  (void)planner.plan(base, 3);
  // Drift every point slightly and replan warm; compare to cold greedy.
  for (int slot = 0; slot < 5; ++slot) {
    geo::PointSet pts(2);
    std::vector<double> w;
    for (std::size_t i = 0; i < base.size(); ++i) {
      const std::vector<double> moved{
          std::clamp(base.point(i)[0] + rng.normal(0.0, 0.05), 0.0, 4.0),
          std::clamp(base.point(i)[1] + rng.normal(0.0, 0.05), 0.0, 4.0)};
      pts.push_back(moved);
      w.push_back(base.weight(i));
    }
    base = core::Problem(std::move(pts), std::move(w), 1.0,
                         geo::l2_metric());
    const double warm = planner.plan(base, 3).total_reward;
    const double cold = core::GreedyLocalSolver().solve(base, 3).total_reward;
    EXPECT_GE(warm, 0.9 * cold) << "slot " << slot;
  }
  EXPECT_EQ(planner.warm_solves(), 5u);
}

TEST(WarmStart, KChangeFallsBackToCold) {
  WarmStartPlanner planner(greedy2_factory());
  const core::Problem p = instance(4);
  (void)planner.plan(p, 3);
  (void)planner.plan(p, 4);  // different k: history unusable
  EXPECT_EQ(planner.cold_solves(), 2u);
}

TEST(WarmStart, ResetForcesCold) {
  WarmStartPlanner planner(greedy2_factory());
  const core::Problem p = instance(5);
  (void)planner.plan(p, 2);
  planner.reset();
  (void)planner.plan(p, 2);
  EXPECT_EQ(planner.cold_solves(), 2u);
  EXPECT_EQ(planner.warm_solves(), 0u);
}

TEST(WarmStart, PlugsIntoSimulator) {
  WarmStartPlanner planner(greedy2_factory());
  SimConfig cfg;
  cfg.users = 20;
  cfg.slots = 6;
  cfg.k = 2;
  cfg.radius = 1.0;
  cfg.drift.sigma = 0.1;
  cfg.seed = 6;
  BroadcastSimulator sim(cfg, planner.factory());
  const SimReport report = sim.run();
  EXPECT_EQ(report.slots.size(), 6u);
  EXPECT_EQ(planner.cold_solves(), 1u);
  EXPECT_EQ(planner.warm_solves(), 5u);
  EXPECT_GT(report.total_reward, 0.0);
}

TEST(WarmStart, ComparableToColdGreedyInDriftingSimulation) {
  const auto run_with = [](SolverFactory factory, std::uint64_t seed) {
    SimConfig cfg;
    cfg.users = 25;
    cfg.slots = 12;
    cfg.k = 3;
    cfg.radius = 1.0;
    cfg.drift.sigma = 0.05;
    cfg.seed = seed;
    BroadcastSimulator sim(cfg, std::move(factory));
    return sim.run().total_reward;
  };
  WarmStartPlanner planner(greedy2_factory());
  const double warm = run_with(planner.factory(), 7);
  const double cold = run_with(greedy2_factory(), 7);
  EXPECT_GE(warm, 0.9 * cold);
}

}  // namespace
}  // namespace mmph::sim
