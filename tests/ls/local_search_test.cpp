// Tests for the ls polish tier: DeltaEvaluator agreement with the O(n)
// SwapEvaluator it accelerates, the polish-never-hurts guarantee, bitwise
// determinism (plain and tabu modes), the fault-abort path, and the
// borrowed-vs-owned spatial index equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/core/swap_evaluator.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/ls/registry.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/spatial/spatial_index.hpp"
#include "mmph/support/error.hpp"

namespace mmph::ls {
namespace {

core::Problem random_problem(std::size_t n, std::uint64_t seed,
                             geo::Metric metric = geo::l2_metric(),
                             core::RewardShape shape =
                                 core::RewardShape::kLinear) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.weights = rnd::WeightScheme::kUniformInt;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      metric, shape);
}

geo::PointSet first_points(const core::Problem& problem, std::size_t k) {
  geo::PointSet centers(problem.dim());
  for (std::size_t j = 0; j < k; ++j) centers.push_back(problem.points()[j]);
  return centers;
}

/// A syntactically valid (but typically poor) seed solution over the first
/// k instance points, with exact accounting.
core::Solution poor_seed(const core::Problem& problem, std::size_t k) {
  core::Solution seed;
  seed.solver_name = "seed";
  seed.centers = first_points(problem, k);
  std::vector<double> residual = core::fresh_residual(problem);
  for (std::size_t j = 0; j < seed.centers.size(); ++j) {
    const double g = core::apply_center(problem, seed.centers[j], residual);
    seed.round_rewards.push_back(g);
    seed.total_reward += g;
  }
  return seed;
}

void expect_identical(const core::Solution& got, const core::Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.centers.size(), want.centers.size()) << context;
  EXPECT_EQ(got.total_reward, want.total_reward) << context;  // bitwise
  for (std::size_t c = 0; c < got.centers.size(); ++c) {
    for (std::size_t d = 0; d < got.centers.dim(); ++d) {
      EXPECT_EQ(got.centers[c][d], want.centers[c][d])
          << context << " center " << c << " coord " << d;
    }
  }
}

TEST(DeltaEvaluator, Validation) {
  const core::Problem p = random_problem(20, 1);
  EXPECT_THROW(DeltaEvaluator(p, geo::PointSet(2)), InvalidArgument);
  EXPECT_THROW(DeltaEvaluator(p, geo::PointSet::from_rows({{0.0, 0.0, 0.0}})),
               InvalidArgument);
  // A borrowed index must describe exactly this problem.
  const core::Problem other = random_problem(21, 2);
  auto wrong =
      spatial::make_index(other.points(), other.radius(), other.metric());
  EXPECT_THROW(DeltaEvaluator(p, first_points(p, 3), wrong.get()),
               InvalidArgument);
}

TEST(DeltaEvaluator, AgreesWithSwapEvaluatorAcrossSwapSequence) {
  const core::Problem problem = random_problem(160, 7);
  const std::size_t k = 5;
  DeltaEvaluator delta(problem, first_points(problem, k));
  core::SwapEvaluator full(problem, first_points(problem, k));

  EXPECT_NEAR(delta.current_value(), full.current_value(), 1e-9);
  EXPECT_NEAR(delta.exact_value(),
              core::objective_value(problem, delta.centers()), 1e-9);

  rnd::Rng rng(11);
  for (int step = 0; step < 120; ++step) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(problem.size()) - 1));
    const geo::ConstVec candidate = problem.points()[c];
    const double got = delta.delta_for_swap(j, candidate);
    const double want =
        full.value_with_swap(j, candidate) - full.current_value();
    EXPECT_NEAR(got, want, 1e-9) << "step " << step;
    if (step % 3 == 0) {
      delta.commit_swap(j, candidate);
      full.commit_swap(j, candidate);
      EXPECT_NEAR(delta.current_value(), full.current_value(), 1e-9);
      // The accumulated value never drifts from the cached totals.
      EXPECT_NEAR(delta.current_value(), delta.exact_value(), 1e-9);
    }
  }
}

TEST(DeltaEvaluator, BinaryRewardShapeAgreesToo) {
  const core::Problem problem = random_problem(
      90, 3, geo::l2_metric(), core::RewardShape::kBinary);
  DeltaEvaluator delta(problem, first_points(problem, 4));
  core::SwapEvaluator full(problem, first_points(problem, 4));
  for (std::size_t c = 0; c < problem.size(); c += 7) {
    const double got = delta.delta_for_swap(1, problem.points()[c]);
    const double want =
        full.value_with_swap(1, problem.points()[c]) - full.current_value();
    EXPECT_NEAR(got, want, 1e-9) << "candidate " << c;
  }
}

TEST(Polish, NeverHurtsAndImprovesAPoorSeed) {
  const core::Problem problem = random_problem(220, 17);
  const core::Solution seed = poor_seed(problem, 4);
  LsStats stats;
  const core::Solution out =
      polish(problem, seed, problem.points(), {}, &stats);
  EXPECT_GE(out.total_reward, seed.total_reward);
  // The first k points of the workload are a poor placement; local search
  // must find strictly better centers here.
  EXPECT_TRUE(stats.improved);
  EXPECT_GT(out.total_reward, seed.total_reward);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_GT(stats.evals, 0u);
  EXPECT_EQ(out.solver_name, "seed+ls");
  // Accounting is exact: rounds re-derived from the final centers.
  ASSERT_EQ(out.round_rewards.size(), out.centers.size());
  EXPECT_NEAR(out.total_reward, core::objective_value(problem, out.centers),
              1e-9);
}

TEST(Polish, DeterministicBitwise) {
  const core::Problem problem = random_problem(180, 23);
  const core::Solution seed = poor_seed(problem, 5);
  const core::Solution a = polish(problem, seed, problem.points());
  const core::Solution b = polish(problem, seed, problem.points());
  expect_identical(a, b, "same seed, same polish");
}

TEST(Polish, BorrowedIndexMatchesOwnedBitwise) {
  const core::Problem problem = random_problem(200, 31);
  const core::Solution seed = poor_seed(problem, 4);
  auto index = spatial::make_index(problem.points(), problem.radius(),
                                   problem.metric());
  // Leave masks set, as an indexed solve would: polish must unmask.
  index->mask(3);
  index->mask(17);
  const core::Solution borrowed =
      polish(problem, seed, problem.points(), {}, nullptr, index.get());
  const core::Solution owned = polish(problem, seed, problem.points());
  expect_identical(borrowed, owned, "borrowed vs owned index");
}

TEST(Polish, PureSwapModeStillNeverHurts) {
  const core::Problem problem = random_problem(150, 41);
  const core::Solution seed = poor_seed(problem, 4);
  LsConfig config;
  config.shift_moves = false;
  LsStats stats;
  const core::Solution out =
      polish(problem, seed, problem.points(), config, &stats);
  EXPECT_GE(out.total_reward, seed.total_reward);
  EXPECT_EQ(stats.shift_moves, 0u);
}

TEST(Polish, TabuModeDeterministicAndMonotone) {
  const core::Problem problem = random_problem(170, 53);
  const core::Solution seed = poor_seed(problem, 5);
  LsConfig config;
  config.tabu_tenure = 4;
  config.seed = 99;
  const core::Solution a = polish(problem, seed, problem.points(), config);
  const core::Solution b = polish(problem, seed, problem.points(), config);
  expect_identical(a, b, "tabu same seed");
  EXPECT_GE(a.total_reward, seed.total_reward);
  // A different tie-break stream may walk a different path but must obey
  // the same monotone contract.
  config.seed = 100;
  const core::Solution c = polish(problem, seed, problem.points(), config);
  EXPECT_GE(c.total_reward, seed.total_reward);
}

TEST(Polish, FaultAbortReturnsSeedVerbatim) {
  const core::Problem problem = random_problem(140, 61);
  const core::Solution seed = poor_seed(problem, 4);
  LsConfig config;
  std::uint64_t consults = 0;
  config.fault_hook = [&](std::string_view site) {
    ++consults;
    return site == kFaultLsEvalThrow;
  };
  LsStats stats;
  const core::Solution out =
      polish(problem, seed, problem.points(), config, &stats);
  EXPECT_TRUE(stats.aborted);
  EXPECT_FALSE(stats.improved);
  EXPECT_GT(consults, 0u);
  expect_identical(out, seed, "aborted polish");
  EXPECT_EQ(out.solver_name, seed.solver_name);
}

TEST(Polish, ValidatesArguments) {
  const core::Problem problem = random_problem(30, 71);
  const core::Solution seed = poor_seed(problem, 2);
  EXPECT_THROW((void)polish(problem, seed, geo::PointSet(2)),
               InvalidArgument);
  EXPECT_THROW((void)polish(problem, seed,
                            geo::PointSet::from_rows({{0.0, 0.0, 0.0}})),
               InvalidArgument);
}

TEST(LocalSearchSolver, PolishesItsBaseAndReportsStats) {
  const core::Problem problem = random_problem(240, 83);
  const auto base = std::make_shared<core::LazyGreedySolver>();
  const LocalSearchSolver solver(base);
  EXPECT_EQ(solver.name(), "ls(greedy2-lazy)");
  const core::Solution lazy = base->solve(problem, 6);
  const core::Solution polished = solver.solve(problem, 6);
  EXPECT_GE(polished.total_reward, lazy.total_reward);
  EXPECT_EQ(polished.solver_name, "ls(greedy2-lazy)");
  EXPECT_GT(solver.last_stats().evals, 0u);
}

TEST(Registry, LsNamesResolveAndDelegate) {
  const core::Problem problem = random_problem(120, 91);
  const auto names = solver_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "ls"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ls-tabu"), names.end());

  // Qualified: ADL on Problem would also find core::make_solver.
  const auto ls_solver = mmph::ls::make_solver("ls", problem);
  const auto tabu_solver = mmph::ls::make_solver("ls-tabu", problem);
  const auto lazy = mmph::ls::make_solver("greedy2-lazy", problem);
  const double lazy_value = lazy->solve(problem, 4).total_reward;
  EXPECT_GE(ls_solver->solve(problem, 4).total_reward, lazy_value);
  EXPECT_GE(tabu_solver->solve(problem, 4).total_reward, lazy_value);
  EXPECT_THROW((void)mmph::ls::make_solver("no-such-solver", problem),
               InvalidArgument);
}

}  // namespace
}  // namespace mmph::ls
