// Tests for the certified upper bounds: every bound must dominate the
// exhaustive optimum over the candidate set (the certificate the quality
// tier leans on), the marginal scan must be pool-invariant bitwise, and
// bad arguments must be rejected up front.

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <string>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/ls/bounds.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::ls {
namespace {

core::Problem random_problem(std::size_t n, std::uint64_t seed,
                             geo::Metric metric = geo::l2_metric()) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.weights = rnd::WeightScheme::kUniformInt;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                      metric);
}

TEST(Bounds, Validation) {
  const core::Problem problem = random_problem(10, 1);
  const core::LazyGreedySolver lazy;
  const core::Solution reference = lazy.solve(problem, 2);
  EXPECT_THROW((void)certified_upper_bounds(problem, 0, reference,
                                            problem.points()),
               InvalidArgument);
  EXPECT_THROW((void)certified_upper_bounds(problem, 2, reference,
                                            geo::PointSet(2)),
               InvalidArgument);
  EXPECT_THROW(
      (void)certified_upper_bounds(
          problem, 2, reference,
          geo::PointSet::from_rows({{0.0, 0.0, 0.0}})),
      InvalidArgument);
}

TEST(Bounds, EveryBoundDominatesTheExhaustiveOptimum) {
  const core::LazyGreedySolver lazy;
  int instances = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const geo::Metric metric =
        seed % 2 == 0 ? geo::l2_metric() : geo::l1_metric();
    const core::Problem problem = random_problem(7 + seed % 5, seed, metric);
    for (const std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      ++instances;
      const std::string context =
          "seed=" + std::to_string(seed) + " k=" + std::to_string(k);
      const double optimum =
          core::ExhaustiveSolver::over_points(problem).solve(problem, k)
              .total_reward;
      const core::Solution reference = lazy.solve(problem, k);
      const UpperBounds bounds =
          certified_upper_bounds(problem, k, reference, problem.points());
      const double slack = 1e-9 * std::max(1.0, optimum);

      EXPECT_EQ(bounds.reference_value, reference.total_reward) << context;
      // Certificates: OPT over the candidate points never exceeds any of
      // the four ceilings, and hence not their min either.
      EXPECT_LE(optimum, bounds.ratio_bound + slack) << context;
      EXPECT_LE(optimum, bounds.submodular_bound + slack) << context;
      EXPECT_LE(optimum, bounds.marginal_bound + slack) << context;
      EXPECT_LE(optimum, bounds.weight_bound + slack) << context;
      EXPECT_LE(optimum, bounds.best() + slack) << context;
      // Internal ordering: the finite-k ratio beats the 1-1/e limit, the
      // marginal bound never undercuts the reference, and best() is the
      // min of the ceilings.
      EXPECT_LE(bounds.ratio_bound, bounds.submodular_bound + slack)
          << context;
      EXPECT_GE(bounds.marginal_bound, bounds.reference_value - slack)
          << context;
      EXPECT_LE(bounds.best(), bounds.ratio_bound + slack) << context;
      EXPECT_LE(bounds.best(), bounds.marginal_bound + slack) << context;
      EXPECT_LE(bounds.best(), bounds.weight_bound + slack) << context;
      // No reference-vs-optimum sanity check: greedy may re-select a point
      // (re-covering its partially-served neighbors), so it optimizes over
      // center *multisets* and can legitimately beat the distinct-subset
      // exhaustive optimum. The certificates above cover the multiset
      // optimum too (greedy is standard greedy over the k-fold expanded
      // ground set), which is why they must dominate `optimum` as well.
      EXPECT_LE(reference.total_reward, bounds.best() + slack) << context;
    }
  }
  EXPECT_EQ(instances, 72);
}

TEST(Bounds, WeightBoundIsTheTotalDemand) {
  const core::Problem problem = random_problem(40, 5);
  const core::LazyGreedySolver lazy;
  const core::Solution reference = lazy.solve(problem, 3);
  const UpperBounds bounds =
      certified_upper_bounds(problem, 3, reference, problem.points());
  const double total = std::accumulate(problem.weights().begin(),
                                       problem.weights().end(), 0.0);
  EXPECT_EQ(bounds.weight_bound, total);
}

TEST(Bounds, PoolShardedMarginalScanMatchesSerialBitwise) {
  const core::Problem problem = random_problem(300, 9);
  const core::LazyGreedySolver lazy;
  const core::Solution reference = lazy.solve(problem, 5);
  const UpperBounds serial =
      certified_upper_bounds(problem, 5, reference, problem.points());
  par::ThreadPool pool(3);
  const UpperBounds sharded = certified_upper_bounds(
      problem, 5, reference, problem.points(), &pool);
  EXPECT_EQ(serial.marginal_bound, sharded.marginal_bound);  // bitwise
  EXPECT_EQ(serial.ratio_bound, sharded.ratio_bound);
  EXPECT_EQ(serial.best(), sharded.best());
}

TEST(Bounds, MarginalBoundTightWhenGreedySaturates) {
  // One dense cluster, k larger than needed: greedy saturates the demand,
  // every remaining marginal is ~0, and the marginal bound collapses to
  // ~f(S) — far tighter than the ratio bound.
  rnd::WorkloadSpec spec;
  spec.n = 60;
  spec.placement = rnd::Placement::kClustered;
  rnd::Rng rng(13);
  const core::Problem problem = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 4.0, geo::l2_metric());
  const core::LazyGreedySolver lazy;
  const core::Solution reference = lazy.solve(problem, 6);
  const UpperBounds bounds =
      certified_upper_bounds(problem, 6, reference, problem.points());
  EXPECT_LT(bounds.marginal_bound, bounds.ratio_bound);
  EXPECT_LE(bounds.best(), bounds.marginal_bound);
}

}  // namespace
}  // namespace mmph::ls
