// Solver quality tier (ctest label: quality). On the same 210-instance
// differential corpus as core/differential_test.cpp, this pins the chain
//
//     exhaustive >= ls >= lazy >= Thm-2 floor      and      ls <= bound
//
// with certified upper bounds standing in for the optimum, plus bitwise
// reproducibility of the polish. A 100-seed sweep at sizes where
// exhaustive cannot run extends the bound + determinism invariants to the
// regime the quality tier exists for.
//
// Two empirical facts about this corpus, pinned deliberately:
//
//   - `ls == exhaustive` on 209 of the 210 instances. The one exception
//     (seed 60, 2d-l2-unweighted, k=3) is a genuine 1-swap local optimum:
//     the lazy seed (5.48520806482909...) admits no improving single swap,
//     while the optimum (5.56078588108930...) needs a coordinated 2-swap.
//     A monotone polish cannot cross that valley, so the tier asserts
//     equality with an allowance of at most one mismatch, never worse than
//     a few percent.
//   - greedy may re-select an already chosen point (profitably re-covering
//     its partially served neighbors), i.e. it optimizes over center
//     multisets; the certified bounds cover that multiset optimum, which
//     is why `ls <= bound` must hold even where ls touches the distinct-
//     subset exhaustive value.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/ls/bounds.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::ls {
namespace {

struct Variant {
  std::size_t dim;
  geo::Metric metric;
  rnd::WeightScheme weights;
  const char* label;
};

/// Theorem 2: greedy achieves at least (1 - (1 - 1/n)^k) * OPT.
double theorem2_ratio(std::size_t n, std::size_t k) {
  return 1.0 - std::pow(1.0 - 1.0 / static_cast<double>(n),
                        static_cast<double>(k));
}

void expect_identical(const core::Solution& got, const core::Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.centers.size(), want.centers.size()) << context;
  EXPECT_EQ(got.total_reward, want.total_reward) << context;  // bitwise
  for (std::size_t c = 0; c < got.centers.size(); ++c) {
    for (std::size_t d = 0; d < got.centers.dim(); ++d) {
      EXPECT_EQ(got.centers[c][d], want.centers[c][d])
          << context << " center " << c << " coord " << d;
    }
  }
}

TEST(QualityTier, ExhaustiveLsLazyFloorChainOnDifferentialCorpus) {
  const Variant variants[] = {
      {2, geo::l2_metric(), rnd::WeightScheme::kSame, "2d-l2-unweighted"},
      {2, geo::l1_metric(), rnd::WeightScheme::kUniformInt, "2d-l1-weighted"},
      {3, geo::l2_metric(), rnd::WeightScheme::kUniformInt, "3d-l2-weighted"},
      {3, geo::l1_metric(), rnd::WeightScheme::kSame, "3d-l1-unweighted"},
  };
  const core::LazyGreedySolver lazy_solver;

  int instances = 0;
  int optimal_matches = 0;
  std::vector<std::string> mismatches;
  for (std::uint64_t seed = 1; seed <= 70; ++seed) {
    const Variant& variant = variants[seed % 4];
    rnd::WorkloadSpec spec;
    spec.n = 6 + seed % 7;  // 6..12
    spec.dim = variant.dim;
    spec.weights = variant.weights;
    rnd::Rng rng(seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, variant.metric);

    for (const std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      ++instances;
      const std::string context = "seed=" + std::to_string(seed) + " " +
                                  variant.label + " n=" +
                                  std::to_string(spec.n) + " k=" +
                                  std::to_string(k);

      const double optimum =
          core::ExhaustiveSolver::over_points(problem).solve(problem, k)
              .total_reward;
      const double slack = 1e-9 * std::max(1.0, optimum);

      const core::Solution lazy = lazy_solver.solve(problem, k);
      LsStats stats;
      const core::Solution polished =
          polish(problem, lazy, problem.points(), {}, &stats);
      const UpperBounds bounds =
          certified_upper_bounds(problem, k, lazy, problem.points());

      // The chain. `ls >= lazy` is structural (polish returns the seed
      // verbatim unless strictly better), so no slack on that link.
      EXPECT_LE(polished.total_reward, optimum + slack)
          << context << " ls above the point-restricted optimum";
      EXPECT_GE(polished.total_reward, lazy.total_reward) << context;
      EXPECT_GE(lazy.total_reward,
                theorem2_ratio(spec.n, k) * optimum - slack)
          << context << " lazy under the Theorem 2 floor";

      // Certified ceiling, valid at any n.
      EXPECT_LE(polished.total_reward, bounds.best() + slack)
          << context << " ls above its certified upper bound";
      EXPECT_LE(optimum, bounds.best() + slack)
          << context << " bound does not certify the optimum";

      // Bitwise reproducibility of the whole polish.
      const core::Solution again =
          polish(problem, lazy, problem.points());
      expect_identical(polished, again, context + " re-run");

      if (polished.total_reward >= optimum - slack) {
        ++optimal_matches;
      } else {
        mismatches.push_back(context);
      }

      // Exact accounting survived the polish.
      EXPECT_NEAR(polished.total_reward,
                  core::objective_value(problem, polished.centers), 1e-9)
          << context;
    }
  }
  EXPECT_GE(instances, 210) << "corpus shrank — quality coverage lost";
  // 209/210 today (the seed-60 local optimum above); any second mismatch
  // means the polish regressed.
  EXPECT_GE(optimal_matches, instances - 1) << [&] {
    std::string all = "ls missed the optimum on:";
    for (const std::string& m : mismatches) all += "\n  " + m;
    return all;
  }();
}

TEST(QualityTier, HundredSeedDeterminismAndBoundSweepBeyondExhaustive) {
  // n = 150..400: far past what ExhaustiveSolver can enumerate, which is
  // exactly where the certified bound is the only available oracle. Poor
  // seeds (the first k points) force real move sequences through the
  // delta evaluator on every instance.
  const core::LazyGreedySolver lazy_solver;
  int improved = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    rnd::WorkloadSpec spec;
    spec.n = 150 + (seed * 37) % 251;
    spec.dim = 2 + seed % 2;
    spec.weights =
        seed % 3 == 0 ? rnd::WeightScheme::kSame : rnd::WeightScheme::kZipf;
    rnd::Rng rng(seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const std::size_t k = 3 + seed % 4;
    const std::string context = "seed=" + std::to_string(seed) + " n=" +
                                std::to_string(spec.n) + " k=" +
                                std::to_string(k);

    core::Solution poor;
    poor.solver_name = "seed";
    poor.centers = geo::PointSet(problem.dim());
    for (std::size_t j = 0; j < k; ++j) {
      poor.centers.push_back(problem.points()[j]);
    }
    std::vector<double> residual = core::fresh_residual(problem);
    for (std::size_t j = 0; j < k; ++j) {
      const double g =
          core::apply_center(problem, poor.centers[j], residual);
      poor.round_rewards.push_back(g);
      poor.total_reward += g;
    }

    LsConfig config;
    config.tabu_tenure = seed % 2 == 0 ? 0 : 3;  // alternate both modes
    config.seed = seed;
    LsStats stats;
    const core::Solution a =
        polish(problem, poor, problem.points(), config, &stats);
    const core::Solution b = polish(problem, poor, problem.points(), config);
    expect_identical(a, b, context + " determinism");
    EXPECT_GE(a.total_reward, poor.total_reward) << context;
    if (stats.improved) ++improved;

    const core::Solution lazy = lazy_solver.solve(problem, k);
    const UpperBounds bounds =
        certified_upper_bounds(problem, k, lazy, problem.points());
    EXPECT_LE(a.total_reward,
              bounds.best() + 1e-9 * std::max(1.0, bounds.best()))
        << context << " polished value above the certified bound";
  }
  // The sweep must exercise real move commits, not converge-at-seed noops.
  EXPECT_GE(improved, 90);
}

}  // namespace
}  // namespace mmph::ls
