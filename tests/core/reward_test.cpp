// Tests for the reward kernels against hand-computed values (Eq. 1-3).

#include <gtest/gtest.h>

#include "mmph/core/reward.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

// Three collinear points at x = 0, 1, 3 with weights 1, 2, 4; radius 2.
Problem line_problem() {
  return Problem(geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}}),
                 {1.0, 2.0, 4.0}, 2.0, geo::l2_metric());
}

TEST(UnitCoverage, HandValues) {
  const Problem p = line_problem();
  const std::vector<double> center{0.0, 0.0};
  // d = 0, 1, 3 with r = 2 -> u = 1, 0.5, 0 (clamped).
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 0), 1.0);
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 1), 0.5);
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 2), 0.0);
}

TEST(UnitCoverage, ExactlyAtRadiusIsZero) {
  const Problem p = line_problem();
  const std::vector<double> center{5.0, 0.0};  // d to x=3 is exactly 2
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 2), 0.0);
}

TEST(UnitCoverage, RespectsMetric) {
  const Problem p(geo::PointSet::from_rows({{1.0, 1.0}}), {1.0}, 3.0,
                  geo::l1_metric());
  const std::vector<double> center{0.0, 0.0};
  // L1 distance 2, r=3 -> u = 1/3.
  EXPECT_NEAR(unit_coverage(p, center, 0), 1.0 / 3.0, 1e-12);
}

TEST(FreshResidual, AllOnes) {
  const Problem p = line_problem();
  const auto y = fresh_residual(p);
  ASSERT_EQ(y.size(), 3u);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(CoverageReward, FreshResidualHandValue) {
  const Problem p = line_problem();
  auto y = fresh_residual(p);
  const std::vector<double> center{0.0, 0.0};
  // g = 1*1 + 2*0.5 + 4*0 = 2.
  EXPECT_DOUBLE_EQ(coverage_reward(p, center, y), 2.0);
}

TEST(CoverageReward, ResidualCapsContribution) {
  const Problem p = line_problem();
  std::vector<double> y{0.25, 0.25, 1.0};
  const std::vector<double> center{0.0, 0.0};
  // z = min(1, .25)=0.25, min(.5, .25)=0.25, 0 -> g = 1*.25 + 2*.25 = 0.75.
  EXPECT_DOUBLE_EQ(coverage_reward(p, center, y), 0.75);
}

TEST(ApplyCenter, UpdatesResidualAndReturnsGain) {
  const Problem p = line_problem();
  auto y = fresh_residual(p);
  const std::vector<double> center{0.0, 0.0};
  const double g = apply_center(p, center, y);
  EXPECT_DOUBLE_EQ(g, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(ApplyCenter, SecondApplicationGivesLess) {
  const Problem p = line_problem();
  auto y = fresh_residual(p);
  const std::vector<double> center{0.0, 0.0};
  const double g1 = apply_center(p, center, y);
  const double g2 = apply_center(p, center, y);
  EXPECT_GT(g1, g2);
  // Second pass only collects point 1's remaining 0.5 -> 2*0.5 = 1.
  EXPECT_DOUBLE_EQ(g2, 1.0);
  const double g3 = apply_center(p, center, y);
  EXPECT_DOUBLE_EQ(g3, 0.0);  // exhausted
}

TEST(ApplyCenter, ResidualNeverNegative) {
  const Problem p = line_problem();
  auto y = fresh_residual(p);
  const std::vector<double> center{0.5, 0.0};
  for (int round = 0; round < 5; ++round) {
    (void)apply_center(p, center, y);
    for (double v : y) EXPECT_GE(v, -1e-15);
  }
}

TEST(SinglePointReward, IsWeightTimesResidual) {
  const Problem p = line_problem();
  std::vector<double> y{1.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(single_point_reward(p, 0, y), 1.0);
  EXPECT_DOUBLE_EQ(single_point_reward(p, 1, y), 1.0);
  EXPECT_DOUBLE_EQ(single_point_reward(p, 2, y), 0.0);
}

TEST(CoverageReward, MatchesTableIOrderOfMagnitude) {
  // Sanity: a center on top of a weight-5 point claims at least 5.
  const Problem p(geo::PointSet::from_rows({{1.0, 1.0}, {1.2, 1.0}}),
                  {5.0, 3.0}, 1.0, geo::l2_metric());
  auto y = fresh_residual(p);
  const std::vector<double> c{1.0, 1.0};
  // 5*1 + 3*(1-0.2) = 5 + 2.4.
  EXPECT_NEAR(coverage_reward(p, c, y), 7.4, 1e-12);
}

}  // namespace
}  // namespace mmph::core
