// Tests for the binary (classic max-coverage) reward shape extension.

#include <gtest/gtest.h>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/core/submodular.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {
namespace {

Problem line_problem(RewardShape shape) {
  return Problem(geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}}),
                 {1.0, 2.0, 4.0}, 2.0, geo::l2_metric(), shape);
}

TEST(RewardShape, Names) {
  EXPECT_STREQ(reward_shape_name(RewardShape::kLinear), "linear");
  EXPECT_STREQ(reward_shape_name(RewardShape::kBinary), "binary");
}

TEST(RewardShape, DefaultIsLinear) {
  EXPECT_EQ(line_problem(RewardShape::kLinear).reward_shape(),
            RewardShape::kLinear);
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  EXPECT_EQ(p.reward_shape(), RewardShape::kLinear);
}

TEST(RewardShape, BinaryUnitCoverageIsStep) {
  const Problem p = line_problem(RewardShape::kBinary);
  const std::vector<double> center{0.0, 0.0};
  // d = 0, 1, 3 with r = 2 -> u = 1, 1, 0.
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 0), 1.0);
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 1), 1.0);
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 2), 0.0);
}

TEST(RewardShape, BinaryBoundaryIsInclusive) {
  // Linear gives 0 exactly at distance r; binary gives full reward.
  const Problem p = line_problem(RewardShape::kBinary);
  const std::vector<double> center{5.0, 0.0};  // d to x=3 is exactly 2
  EXPECT_DOUBLE_EQ(unit_coverage(p, center, 2), 1.0);
}

TEST(RewardShape, BinaryCoverageRewardIsCoveredWeight) {
  const Problem p = line_problem(RewardShape::kBinary);
  const auto y = fresh_residual(p);
  const std::vector<double> center{0.0, 0.0};
  // Covers points 0 and 1 fully: 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(coverage_reward(p, center, y), 3.0);
}

TEST(RewardShape, BinaryDominatesLinearPointwise) {
  rnd::WorkloadSpec spec;
  spec.n = 25;
  rnd::Rng rng(1);
  const rnd::Workload wl = rnd::generate_workload(spec, rng);
  const Problem linear(
      geo::PointSet(wl.points), std::vector<double>(wl.weights), 1.0,
      geo::l2_metric(), RewardShape::kLinear);
  const Problem binary(
      geo::PointSet(wl.points), std::vector<double>(wl.weights), 1.0,
      geo::l2_metric(), RewardShape::kBinary);
  const auto y = fresh_residual(linear);
  rnd::Rng qrng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<double> c{qrng.uniform(0.0, 4.0),
                                qrng.uniform(0.0, 4.0)};
    EXPECT_GE(coverage_reward(binary, c, y) + 1e-12,
              coverage_reward(linear, c, y));
  }
}

TEST(RewardShape, BinaryObjectiveStillSubmodular) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), rng.uniform(0.5, 2.0),
        geo::l2_metric(), RewardShape::kBinary);
    geo::PointSet chain(2);
    std::vector<double> c(2);
    for (int j = 0; j < 5; ++j) {
      c[0] = rng.uniform(0.0, 4.0);
      c[1] = rng.uniform(0.0, 4.0);
      chain.push_back(c);
    }
    std::vector<double> extra{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    const auto v = check_diminishing_returns(p, chain, 1, 4, extra);
    EXPECT_FALSE(v.violated) << "trial " << trial;
    EXPECT_TRUE(check_monotone(p, chain));
  }
}

TEST(RewardShape, SolversWorkUnderBinary) {
  rnd::WorkloadSpec spec;
  spec.n = 15;
  rnd::Rng rng(4);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric(),
                                           RewardShape::kBinary);
  const Solution greedy = GreedyLocalSolver().solve(p, 2);
  const Solution opt = ExhaustiveSolver::over_points(p).solve(p, 2);
  EXPECT_GT(greedy.total_reward, 0.0);
  EXPECT_LE(greedy.total_reward, opt.total_reward + 1e-9);
  EXPECT_NEAR(greedy.total_reward, objective_value(p, greedy.centers), 1e-9);
  // Classic max-coverage greedy bound: >= (1 - 1/e) of the point optimum.
  EXPECT_GE(greedy.total_reward, (1.0 - 1.0 / 2.718281828) *
                                     opt.total_reward - 1e-9);
}

TEST(RewardShape, BinaryRewardAtLeastLinearForSameCenters) {
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(5);
  const rnd::Workload wl = rnd::generate_workload(spec, rng);
  const Problem linear(geo::PointSet(wl.points),
                       std::vector<double>(wl.weights), 1.0,
                       geo::l2_metric(), RewardShape::kLinear);
  const Problem binary(geo::PointSet(wl.points),
                       std::vector<double>(wl.weights), 1.0,
                       geo::l2_metric(), RewardShape::kBinary);
  const Solution s = GreedyLocalSolver().solve(linear, 3);
  EXPECT_GE(objective_value(binary, s.centers) + 1e-9,
            objective_value(linear, s.centers));
}

}  // namespace
}  // namespace mmph::core
