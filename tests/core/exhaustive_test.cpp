// Tests for the exhaustive baseline: optimality on small instances,
// pruning/parallel consistency, guards.

#include <gtest/gtest.h>

#include <vector>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

// Brute force: evaluate every k-combination of candidates directly.
double brute_force_best(const Problem& p, const geo::PointSet& candidates,
                        std::size_t k) {
  std::vector<std::size_t> combo(k);
  double best = -1.0;
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t start,
                                                          std::size_t depth) {
    if (depth == k) {
      best = std::max(best, objective_value(p, candidates, combo));
      return;
    }
    for (std::size_t c = start; c + (k - depth) <= candidates.size(); ++c) {
      combo[depth] = c;
      rec(c + 1, depth + 1);
    }
  };
  rec(0, 0);
  return best;
}

TEST(Binomial, HandValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(40, 4), 91390.0);
  EXPECT_DOUBLE_EQ(binomial(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial(7, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(7, 7), 1.0);
}

TEST(Exhaustive, Name) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  EXPECT_EQ(ExhaustiveSolver::over_points(p).name(), "exhaustive");
}

TEST(Exhaustive, RejectsEmptyCandidates) {
  EXPECT_THROW(ExhaustiveSolver(geo::PointSet(2)), InvalidArgument);
}

TEST(Exhaustive, RejectsKAboveCandidateCount) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  EXPECT_THROW((void)ExhaustiveSolver::over_points(p).solve(p, 2),
               InvalidArgument);
}

TEST(Exhaustive, MaxSubsetsGuard) {
  rnd::WorkloadSpec spec;
  spec.n = 40;
  rnd::Rng rng(51);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  ExhaustiveOptions opts;
  opts.max_subsets = 100.0;  // far below C(40, 4)
  EXPECT_THROW((void)ExhaustiveSolver::over_points(p, opts).solve(p, 4),
               InvalidArgument);
}

TEST(Exhaustive, MatchesBruteForceOnSmallInstances) {
  rnd::WorkloadSpec spec;
  spec.n = 8;
  rnd::Rng rng(52);
  for (int trial = 0; trial < 20; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0 + 0.25 * (trial % 4),
        trial % 2 ? geo::l1_metric() : geo::l2_metric());
    const ExhaustiveSolver solver = ExhaustiveSolver::over_points(p);
    for (std::size_t k : {1u, 2u, 3u}) {
      const double got = solver.solve(p, k).total_reward;
      const double want =
          brute_force_best(p, candidates_from_points(p), k);
      EXPECT_NEAR(got, want, 1e-9)
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(Exhaustive, PruningOnOffAgree) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.5, geo::l2_metric());
    ExhaustiveOptions pruned;
    ExhaustiveOptions plain;
    plain.use_pruning = false;
    const double a =
        ExhaustiveSolver::over_points(p, pruned).solve(p, 3).total_reward;
    const double b =
        ExhaustiveSolver::over_points(p, plain).solve(p, 3).total_reward;
    EXPECT_NEAR(a, b, 1e-12) << "trial " << trial;
  }
}

TEST(Exhaustive, ParallelSerialAgree) {
  rnd::WorkloadSpec spec;
  spec.n = 12;
  rnd::Rng rng(54);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    ExhaustiveOptions par_opts;
    ExhaustiveOptions ser_opts;
    ser_opts.parallel = false;
    const Solution a =
        ExhaustiveSolver::over_points(p, par_opts).solve(p, 3);
    const Solution b =
        ExhaustiveSolver::over_points(p, ser_opts).solve(p, 3);
    EXPECT_NEAR(a.total_reward, b.total_reward, 1e-12) << "trial " << trial;
  }
}

TEST(Exhaustive, DominatesGreedyAlgorithms) {
  rnd::WorkloadSpec spec;
  spec.n = 12;
  rnd::Rng rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const double opt =
        ExhaustiveSolver::over_points(p).solve(p, 2).total_reward;
    const double g2 = GreedyLocalSolver().solve(p, 2).total_reward;
    const double g3 = GreedySimpleSolver().solve(p, 2).total_reward;
    EXPECT_GE(opt + 1e-9, g2) << "trial " << trial;
    EXPECT_GE(opt + 1e-9, g3) << "trial " << trial;
  }
}

TEST(Exhaustive, GridCandidatesAtLeastPointCandidates) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(56);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const double points_only =
      ExhaustiveSolver::over_points(p).solve(p, 2).total_reward;
  const double with_grid =
      ExhaustiveSolver::over_grid_and_points(p, 0.5).solve(p, 2).total_reward;
  EXPECT_GE(with_grid + 1e-9, points_only);
}

TEST(Exhaustive, SolutionAccountingConsistent) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(57);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l2_metric());
  const Solution s = ExhaustiveSolver::over_points(p).solve(p, 3);
  EXPECT_EQ(s.centers.size(), 3u);
  EXPECT_EQ(s.round_rewards.size(), 3u);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(Exhaustive, KEqualsOneFindsBestSingleCenter) {
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {0.3, 0.0}, {5.0, 5.0}}),
      {1.0, 1.0, 1.0}, 1.0, geo::l2_metric());
  const Solution s = ExhaustiveSolver::over_points(p).solve(p, 1);
  // Best single center is point 0 or 1 (covers both at 1 + 0.7).
  EXPECT_NEAR(s.total_reward, 1.7, 1e-12);
}

}  // namespace
}  // namespace mmph::core
