// Tests for the continuous-optimum certificates.

#include <gtest/gtest.h>

#include <cmath>

#include "mmph/core/certificate.hpp"
#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed,
                       geo::Metric metric = geo::l2_metric()) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                metric);
}

TEST(Certificate, LipschitzConstantIsTotalWeightOverR) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}}),
                  {2.0, 3.0}, 2.0, geo::l2_metric());
  EXPECT_DOUBLE_EQ(coverage_lipschitz_constant(p), 2.5);
}

TEST(Certificate, LipschitzRejectsBinaryShape) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric(), RewardShape::kBinary);
  EXPECT_THROW((void)coverage_lipschitz_constant(p), InvalidArgument);
}

TEST(Certificate, LipschitzBoundHoldsEmpirically) {
  // |g(c) - g(c')| <= L * d(c, c') on random center pairs.
  for (const geo::Metric metric : {geo::l1_metric(), geo::l2_metric()}) {
    const Problem p = random_problem(25, 1, metric);
    const double lipschitz = coverage_lipschitz_constant(p);
    const auto y = fresh_residual(p);
    rnd::Rng rng(2);
    for (int trial = 0; trial < 200; ++trial) {
      const std::vector<double> a{rng.uniform(0.0, 4.0),
                                  rng.uniform(0.0, 4.0)};
      const std::vector<double> b{rng.uniform(0.0, 4.0),
                                  rng.uniform(0.0, 4.0)};
      const double ga = coverage_reward(p, a, y);
      const double gb = coverage_reward(p, b, y);
      EXPECT_LE(std::fabs(ga - gb),
                lipschitz * metric.distance(a, b) + 1e-9)
          << metric.name();
    }
  }
}

TEST(Certificate, CoveringRadiusFormulas) {
  EXPECT_DOUBLE_EQ(grid_covering_radius(1.0, 2, geo::linf_metric()), 0.5);
  EXPECT_NEAR(grid_covering_radius(1.0, 2, geo::l2_metric()),
              0.5 * std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(grid_covering_radius(1.0, 3, geo::l1_metric()), 1.5, 1e-12);
  EXPECT_THROW((void)grid_covering_radius(0.0, 2, geo::l2_metric()),
               InvalidArgument);
}

TEST(Certificate, RoundBoundDominatesEveryProbedCenter) {
  const Problem p = random_problem(20, 3);
  const double bound = continuous_round_upper_bound(p, 0.5);
  const auto y = fresh_residual(p);
  rnd::Rng rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<double> c{rng.uniform(-1.0, 5.0),
                                rng.uniform(-1.0, 5.0)};
    EXPECT_LE(coverage_reward(p, c, y), bound + 1e-9);
  }
}

TEST(Certificate, OptBoundDominatesEverySolver) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = random_problem(15, seed);
    const double bound = continuous_opt_upper_bound(p, 2, 0.25);
    EXPECT_GE(bound + 1e-9,
              ExhaustiveSolver::over_grid_and_points(p, 0.25)
                  .solve(p, 2).total_reward);
    EXPECT_GE(bound + 1e-9,
              GreedyComplexSolver().solve(p, 2).total_reward);
  }
}

TEST(Certificate, BoundCappedByTotalWeight) {
  // Large k: no bound should exceed sum of weights.
  const Problem p = random_problem(10, 7);
  EXPECT_LE(continuous_opt_upper_bound(p, 100, 0.5),
            p.total_weight() + 1e-12);
}

TEST(Certificate, TightensWithFinerGrid) {
  const Problem p = random_problem(20, 8);
  const double coarse = continuous_opt_upper_bound(p, 2, 1.0);
  const double fine = continuous_opt_upper_bound(p, 2, 0.25);
  EXPECT_LE(fine, coarse + 1e-9);
}

TEST(Certificate, CertifiedRatioIsValidAndUseful) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = random_problem(20, seed + 10);
    const Solution s = GreedyLocalSolver().solve(p, 3);
    const RatioCertificate cert = certify_ratio(p, s, 0.25);
    EXPECT_DOUBLE_EQ(cert.value, s.total_reward);
    EXPECT_GT(cert.certified_ratio, 0.0);
    EXPECT_LE(cert.certified_ratio, 1.0 + 1e-12);
    // With a fine grid, greedy2's certificate should be nontrivial —
    // well above the Theorem-2 worst case.
    EXPECT_GT(cert.certified_ratio, 0.3) << "seed " << seed;
  }
}

TEST(Certificate, CertifiedRatioImprovesWithFinerGrid) {
  const Problem p = random_problem(20, 21);
  const Solution s = GreedyLocalSolver().solve(p, 3);
  EXPECT_GE(certify_ratio(p, s, 0.25).certified_ratio,
            certify_ratio(p, s, 1.0).certified_ratio - 1e-12);
}

}  // namespace
}  // namespace mmph::core
