// Tests for the 1-swap local-search refinement solver.

#include <gtest/gtest.h>

#include <memory>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/local_search.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed, double radius = 1.0) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), radius,
                                geo::l2_metric());
}

TEST(LocalSearch, Validation) {
  EXPECT_THROW(LocalSearchSolver(nullptr, geo::PointSet::from_rows({{0.0}})),
               InvalidArgument);
  EXPECT_THROW(LocalSearchSolver(std::make_shared<GreedyLocalSolver>(),
                                 geo::PointSet(2)),
               InvalidArgument);
  EXPECT_THROW(LocalSearchSolver(std::make_shared<GreedyLocalSolver>(),
                                 geo::PointSet::from_rows({{0.0, 0.0}}), 0),
               InvalidArgument);
}

TEST(LocalSearch, NameAppendsSuffix) {
  const auto ls = LocalSearchSolver(std::make_shared<GreedySimpleSolver>(),
                                    geo::PointSet::from_rows({{0.0, 0.0}}));
  EXPECT_EQ(ls.name(), "greedy3+ls");
}

TEST(LocalSearch, NeverWorseThanBase) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(25, seed);
    const double base = GreedyLocalSolver().solve(p, 3).total_reward;
    const double refined =
        LocalSearchSolver::greedy2_over_grid(p, 0.5).solve(p, 3).total_reward;
    EXPECT_GE(refined + 1e-9, base) << "seed " << seed;
  }
}

TEST(LocalSearch, ImprovesAWeakBase) {
  // greedy3 leaves coverage on the table; local search should close part
  // of the gap to greedy2 on average.
  double base_total = 0.0;
  double refined_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(30, seed);
    const LocalSearchSolver ls(std::make_shared<GreedySimpleSolver>(),
                               candidates_from_points(p));
    base_total += GreedySimpleSolver().solve(p, 3).total_reward;
    refined_total += ls.solve(p, 3).total_reward;
  }
  EXPECT_GT(refined_total, base_total * 1.01);
}

TEST(LocalSearch, ReachesPointOptimumOnSmallInstances) {
  // With candidates = the points and k small, 1-swap local search from
  // greedy2 should usually land on the exhaustive point optimum; require
  // it on strictly most seeds and never above it.
  int optimal = 0;
  constexpr int kSeeds = 10;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Problem p = random_problem(12, seed);
    const LocalSearchSolver ls(std::make_shared<GreedyLocalSolver>(),
                               candidates_from_points(p));
    const double refined = ls.solve(p, 2).total_reward;
    const double opt =
        ExhaustiveSolver::over_points(p).solve(p, 2).total_reward;
    EXPECT_LE(refined, opt + 1e-9);
    if (refined >= opt - 1e-9) ++optimal;
  }
  EXPECT_GE(optimal, 7);
}

TEST(LocalSearch, AccountingConsistentAfterSwaps) {
  const Problem p = random_problem(30, 42);
  const LocalSearchSolver ls = LocalSearchSolver::greedy2_over_grid(p, 0.5);
  const Solution s = ls.solve(p, 4);
  EXPECT_EQ(s.centers.size(), 4u);
  EXPECT_EQ(s.round_rewards.size(), 4u);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
  EXPECT_EQ(s.solver_name, "greedy2+ls");
}

TEST(LocalSearch, SwapCountReported) {
  const Problem p = random_problem(30, 43);
  const LocalSearchSolver weak(std::make_shared<GreedySimpleSolver>(),
                               candidates_from_points(p));
  const double base = GreedySimpleSolver().solve(p, 3).total_reward;
  const Solution s = weak.solve(p, 3);
  if (s.total_reward > base + 1e-9) {
    EXPECT_GT(weak.last_swap_count(), 0u);
  } else {
    EXPECT_EQ(weak.last_swap_count(), 0u);
  }
}

TEST(LocalSearch, DeterministicAcrossRuns) {
  const Problem p = random_problem(25, 44);
  const LocalSearchSolver ls = LocalSearchSolver::greedy2_over_grid(p, 0.5);
  const Solution a = ls.solve(p, 3);
  const Solution b = ls.solve(p, 3);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  for (std::size_t j = 0; j < a.centers.size(); ++j) {
    EXPECT_TRUE(geo::approx_equal(a.centers[j], b.centers[j], 0.0));
  }
}

TEST(LocalSearch, DimensionMismatchThrows) {
  const Problem p = random_problem(10, 45);
  const LocalSearchSolver ls(std::make_shared<GreedyLocalSolver>(),
                             geo::PointSet::from_rows({{0.0, 0.0, 0.0}}));
  EXPECT_THROW((void)ls.solve(p, 2), InvalidArgument);
}

}  // namespace
}  // namespace mmph::core
