// Property tests for the classical submodular-greedy guarantee:
// Algorithm 2 is exactly Nemhauser-Wolsey-Fisher greedy on the finite
// ground set of input points, so its value is >= (1 - (1 - 1/k)^k) of the
// point-restricted optimum — a much stronger statement than the paper's
// Theorem 2 (1 - (1 - 1/n)^k) and one the implementation should honor on
// every instance.

#include <gtest/gtest.h>

#include <tuple>

#include "mmph/core/bounds.hpp"
#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {
namespace {

class ClassicalBoundSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ClassicalBoundSweep, GreedyTwoMeetsNemhauserBound) {
  const auto [n, k, norm_id] = GetParam();
  const geo::Metric metric =
      norm_id == 1 ? geo::l1_metric() : geo::l2_metric();
  const double bound = approx_ratio_round_based(static_cast<std::size_t>(k));
  rnd::WorkloadSpec spec;
  spec.n = static_cast<std::size_t>(n);
  rnd::Rng rng(91 + n * 10 + k + norm_id);
  for (int trial = 0; trial < 8; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), rng.uniform(0.75, 2.0), metric);
    const double opt =
        ExhaustiveSolver::over_points(p).solve(p, k).total_reward;
    ASSERT_GT(opt, 0.0);
    const double greedy = GreedyLocalSolver().solve(p, k).total_reward;
    EXPECT_GE(greedy / opt, bound - 1e-9)
        << "n=" << n << " k=" << k << " norm=" << norm_id
        << " trial=" << trial;
    // The lazy variant computes the same algorithm, so the same bound.
    const double lazy = LazyGreedySolver().solve(p, k).total_reward;
    EXPECT_GE(lazy / opt, bound - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassicalBoundSweep,
    ::testing::Combine(::testing::Values(10, 14), ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2)));

TEST(ClassicalBound, TightInstanceStillClearsBound) {
  // A known hard pattern for greedy: one big cluster vs two medium ones.
  // Greedy takes the big one first and pays for it; the bound must hold.
  geo::PointSet ps(2);
  std::vector<double> w;
  auto add_cluster = [&](double x, double y, int count, double weight) {
    for (int i = 0; i < count; ++i) {
      const std::vector<double> pt{x + 0.01 * i, y};
      ps.push_back(pt);
      w.push_back(weight);
    }
  };
  add_cluster(0.0, 0.0, 6, 1.0);    // big middle cluster
  add_cluster(10.0, 0.0, 4, 1.0);   // side cluster A
  add_cluster(-10.0, 0.0, 4, 1.0);  // side cluster B
  const Problem p(std::move(ps), std::move(w), 1.0, geo::l2_metric());
  const double opt = ExhaustiveSolver::over_points(p).solve(p, 2).total_reward;
  const double greedy = GreedyLocalSolver().solve(p, 2).total_reward;
  EXPECT_GE(greedy / opt, approx_ratio_round_based(2) - 1e-9);
}

}  // namespace
}  // namespace mmph::core
