// Metamorphic properties of the production solvers (greedy2, lazy,
// sharded, ls): transformations of the instance with a known effect on
// the answer.
//
//   - user permutation: reordering the points (with their weights) must
//     not change solution quality (1e-9 — summation order legitimately
//     reshuffles float accumulation);
//   - duplicate points at half weight: splitting every user into two
//     co-located half-weight users leaves every center set's objective
//     exactly unchanged (w/2 is exact, rounding commutes with *0.5), so
//     solution quality must match to accumulation noise;
//   - power-of-2 uniform scaling: doubling every coordinate and the
//     radius leaves every d/r ratio bit-identical (IEEE scaling and sqrt
//     are exact under powers of two), so the solve must be *bitwise*
//     identical — same total, same centers (scaled).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/ls/registry.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/sharded_solver.hpp"

namespace mmph::core {
namespace {

Problem make_problem(std::size_t n, std::uint64_t seed, std::size_t dim,
                     geo::Metric metric) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.weights = rnd::WeightScheme::kUniformInt;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                metric);
}

/// The four production solvers under test, value-only interface.
struct SolverSet {
  par::ThreadPool pool{2};
  serve::ShardedSolver sharded{pool, {}};
  GreedyLocalSolver greedy2;
  LazyGreedySolver lazy;

  [[nodiscard]] std::vector<std::pair<std::string, Solution>> solve_all(
      const Problem& problem, std::size_t k) const {
    std::vector<std::pair<std::string, Solution>> out;
    out.emplace_back("greedy2", greedy2.solve(problem, k));
    out.emplace_back("lazy", lazy.solve(problem, k));
    out.emplace_back("sharded", sharded.solve(problem, k));
    const ls::LocalSearchSolver ls_solver(
        std::make_shared<LazyGreedySolver>());
    out.emplace_back("ls", ls_solver.solve(problem, k));
    return out;
  }
};

/// Deterministic permutation of [0, n).
std::vector<std::size_t> permutation(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rnd::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

TEST(Metamorphic, UserPermutationPreservesSolutionQuality) {
  const SolverSet solvers;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem problem = make_problem(80, seed, 2 + seed % 2,
                                         seed % 2 == 0 ? geo::l2_metric()
                                                       : geo::l1_metric());
    const auto perm = permutation(problem.size(), seed * 1000 + 1);
    geo::PointSet shuffled(problem.dim());
    std::vector<double> weights;
    for (const std::size_t i : perm) {
      shuffled.push_back(problem.points()[i]);
      weights.push_back(problem.weights()[i]);
    }
    const Problem permuted(std::move(shuffled), std::move(weights),
                           problem.radius(), problem.metric());

    for (const std::size_t k : {std::size_t{2}, std::size_t{5}}) {
      const auto base = solvers.solve_all(problem, k);
      const auto perm_solutions = solvers.solve_all(permuted, k);
      for (std::size_t s = 0; s < base.size(); ++s) {
        const std::string context = "seed=" + std::to_string(seed) + " k=" +
                                    std::to_string(k) + " " + base[s].first;
        const double tolerance =
            1e-9 * std::max(1.0, base[s].second.total_reward);
        EXPECT_NEAR(base[s].second.total_reward,
                    perm_solutions[s].second.total_reward, tolerance)
            << context;
      }
    }
  }
}

TEST(Metamorphic, DuplicatePointsAtHalfWeightPreserveSolutionQuality) {
  const SolverSet solvers;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem problem = make_problem(60, seed, 2, geo::l2_metric());
    geo::PointSet doubled(problem.dim());
    std::vector<double> weights;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      doubled.push_back(problem.points()[i]);
      weights.push_back(problem.weights()[i] * 0.5);
      doubled.push_back(problem.points()[i]);
      weights.push_back(problem.weights()[i] * 0.5);
    }
    const Problem split(std::move(doubled), std::move(weights),
                        problem.radius(), problem.metric());

    // The transformation fixes every center set's value exactly...
    const auto probe = solvers.solve_all(problem, 4);
    for (const auto& [name, solution] : probe) {
      EXPECT_NEAR(objective_value(problem, solution.centers),
                  objective_value(split, solution.centers),
                  1e-9 * std::max(1.0, solution.total_reward))
          << "seed=" << seed << " " << name << " (fixed center set)";
    }
    // ...so each solver's achieved quality must be preserved too (the
    // duplicated copy of a chosen center is an exact zero-gain candidate,
    // never a distraction).
    const auto on_split = solvers.solve_all(split, 4);
    for (std::size_t s = 0; s < probe.size(); ++s) {
      EXPECT_NEAR(probe[s].second.total_reward,
                  on_split[s].second.total_reward,
                  1e-9 * std::max(1.0, probe[s].second.total_reward))
          << "seed=" << seed << " " << probe[s].first;
    }
  }
}

TEST(Metamorphic, PowerOfTwoScalingIsBitwiseInvariant) {
  const SolverSet solvers;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const geo::Metric metric =
        seed % 2 == 0 ? geo::l2_metric() : geo::l1_metric();
    const Problem problem = make_problem(90, seed, 2, metric);
    geo::PointSet scaled(problem.dim());
    std::vector<double> row(problem.dim());
    for (std::size_t i = 0; i < problem.size(); ++i) {
      for (std::size_t d = 0; d < problem.dim(); ++d) {
        row[d] = problem.points()[i][d] * 4.0;
      }
      scaled.push_back(row);
    }
    const Problem big(std::move(scaled), problem.weights(),
                      problem.radius() * 4.0, problem.metric());

    for (const std::size_t k : {std::size_t{3}, std::size_t{6}}) {
      const auto base = solvers.solve_all(problem, k);
      const auto big_solutions = solvers.solve_all(big, k);
      for (std::size_t s = 0; s < base.size(); ++s) {
        const std::string context = "seed=" + std::to_string(seed) + " k=" +
                                    std::to_string(k) + " " + base[s].first;
        const Solution& a = base[s].second;
        const Solution& b = big_solutions[s].second;
        EXPECT_EQ(a.total_reward, b.total_reward) << context;  // bitwise
        ASSERT_EQ(a.centers.size(), b.centers.size()) << context;
        for (std::size_t c = 0; c < a.centers.size(); ++c) {
          for (std::size_t d = 0; d < a.centers.dim(); ++d) {
            EXPECT_EQ(a.centers[c][d] * 4.0, b.centers[c][d])
                << context << " center " << c << " coord " << d;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace mmph::core
