// Tests for Algorithm 4 (complex local greedy): free centers, disk growth.

#include <gtest/gtest.h>

#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

TEST(GreedyComplex, Name) {
  EXPECT_EQ(GreedyComplexSolver().name(), "greedy4");
}

TEST(GreedyComplex, RecentersBetweenTwoPoints) {
  // Two weight-1 points 1.6 apart with r = 1: no single input point covers
  // both fully, but the midpoint covers each at u = 0.2... whereas centering
  // on one point yields 1 + 0 = 1. Midpoint: 2 * (1 - 0.8) = 0.4. Hmm —
  // centering on a point is better here. Use a tighter pair: 0.8 apart,
  // point-center: 1 + (1 - 0.8) = 1.2; midpoint: 2 * (1 - 0.4) = 1.2 — tie.
  // Make the pair asymmetric in weight so the midpoint wins strictly:
  // weights 1 and 1, distance 0.5: point-center 1 + 0.5 = 1.5,
  // midpoint 2 * 0.75 = 1.5 — also tie (L2 is linear on a segment).
  // A triangle makes the interior strictly better.
  const double h = 0.5;
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {0.5, h}}),
      {1.0, 1.0, 1.0}, 1.2, geo::l2_metric());
  const Solution s = GreedyComplexSolver().solve(p, 1);
  // The solver may return an interior center; it must do at least as well
  // as the best input point.
  const Solution s2 = GreedyLocalSolver().solve(p, 1);
  EXPECT_GE(s.total_reward + 1e-9, s2.total_reward);
}

TEST(GreedyComplex, CentersNeedNotBeInputPoints) {
  // Symmetric cross of four points: the center of mass is strictly better
  // than any input point, and the smallest enclosing ball of the four
  // points is centered there.
  const Problem p(
      geo::PointSet::from_rows(
          {{0.5, 0.0}, {-0.5, 0.0}, {0.0, 0.5}, {0.0, -0.5}}),
      {1.0, 1.0, 1.0, 1.0}, 1.0, geo::l2_metric());
  const Solution s = GreedyComplexSolver().solve(p, 1);
  // Origin center: 4 * (1 - 0.5) = 2. Any input point: 1 + 2*(1-0.707...)
  // + 0 ~ 1.59. The walk should find (near) the origin.
  EXPECT_GT(s.total_reward, 1.9);
  EXPECT_NEAR(s.centers[0][0], 0.0, 1e-6);
  EXPECT_NEAR(s.centers[0][1], 0.0, 1e-6);
}

TEST(GreedyComplex, NeverWorseThanItsSeedPoints) {
  // By construction the walk starts at each input point and only accepts
  // improving moves, so round 1 is >= greedy2's round 1.
  rnd::WorkloadSpec spec;
  spec.n = 25;
  rnd::Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const double g4 = GreedyComplexSolver().solve(p, 1).total_reward;
    const double g2 = GreedyLocalSolver().solve(p, 1).total_reward;
    EXPECT_GE(g4 + 1e-9, g2) << "trial " << trial;
  }
}

TEST(GreedyComplex, TotalMatchesObjective) {
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(22);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l2_metric());
  const Solution s = GreedyComplexSolver().solve(p, 4);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(GreedyComplex, WorksUnderL1WithPaperProjection) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(23);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l1_metric());
  const Solution s =
      GreedyComplexSolver(geo::L1CenterRule::kPaperProjection).solve(p, 2);
  EXPECT_GT(s.total_reward, 0.0);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(GreedyComplex, ExactL1RuleAtLeastAsGoodOnAverage) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(24);
  double paper_total = 0.0;
  double exact_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.5, geo::l1_metric());
    paper_total += GreedyComplexSolver(geo::L1CenterRule::kPaperProjection)
                       .solve(p, 2)
                       .total_reward;
    exact_total += GreedyComplexSolver(geo::L1CenterRule::kExactIfPossible)
                       .solve(p, 2)
                       .total_reward;
  }
  // Not a theorem (greedy walks differ), but with the exact smaller balls
  // the walk should not be systematically worse.
  EXPECT_GE(exact_total, 0.9 * paper_total);
}

TEST(GreedyComplex, WorksUnderLinf) {
  rnd::WorkloadSpec spec;
  spec.n = 15;
  rnd::Rng rng(25);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::linf_metric());
  const Solution s = GreedyComplexSolver().solve(p, 2);
  EXPECT_GT(s.total_reward, 0.0);
}

TEST(GreedyComplex, WorksIn3D) {
  rnd::WorkloadSpec spec;
  spec.n = 40;
  spec.dim = 3;
  rnd::Rng rng(26);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l1_metric());
  const Solution s = GreedyComplexSolver().solve(p, 2);
  EXPECT_EQ(s.centers.dim(), 3u);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(GreedyComplex, SinglePointInstance) {
  const Problem p(geo::PointSet::from_rows({{1.0, 2.0}}), {2.0}, 1.0,
                  geo::l2_metric());
  const Solution s = GreedyComplexSolver().solve(p, 1);
  EXPECT_DOUBLE_EQ(s.total_reward, 2.0);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 1.0);
}

}  // namespace
}  // namespace mmph::core
