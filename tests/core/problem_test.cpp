// Tests for Problem construction and validation.

#include <gtest/gtest.h>

#include "mmph/core/problem.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

geo::PointSet two_points() {
  return geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 1.0}});
}

TEST(Problem, BasicAccessors) {
  const Problem p(two_points(), {1.0, 2.0}, 1.5, geo::l2_metric());
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_DOUBLE_EQ(p.radius(), 1.5);
  EXPECT_DOUBLE_EQ(p.total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(p.weight(1), 2.0);
  EXPECT_DOUBLE_EQ(p.point(1)[0], 1.0);
  EXPECT_EQ(p.metric().norm(), geo::Norm::kL2);
}

TEST(Problem, RejectsEmptyPoints) {
  EXPECT_THROW(Problem(geo::PointSet(2), {}, 1.0, geo::l2_metric()),
               InvalidArgument);
}

TEST(Problem, RejectsWeightCountMismatch) {
  EXPECT_THROW(Problem(two_points(), {1.0}, 1.0, geo::l2_metric()),
               InvalidArgument);
}

TEST(Problem, RejectsNonPositiveRadius) {
  EXPECT_THROW(Problem(two_points(), {1.0, 1.0}, 0.0, geo::l2_metric()),
               InvalidArgument);
  EXPECT_THROW(Problem(two_points(), {1.0, 1.0}, -2.0, geo::l2_metric()),
               InvalidArgument);
}

TEST(Problem, RejectsNonPositiveWeights) {
  EXPECT_THROW(Problem(two_points(), {1.0, 0.0}, 1.0, geo::l2_metric()),
               InvalidArgument);
  EXPECT_THROW(Problem(two_points(), {1.0, -1.0}, 1.0, geo::l2_metric()),
               InvalidArgument);
}

TEST(Problem, FromWorkload) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(1);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l1_metric());
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(p.metric().norm(), geo::Norm::kL1);
}

}  // namespace
}  // namespace mmph::core
