// Tests for Algorithm 3 (simple local greedy): selection rule, tie-breaks,
// round accounting.

#include <gtest/gtest.h>

#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

TEST(GreedySimple, Name) {
  EXPECT_EQ(GreedySimpleSolver().name(), "greedy3");
}

TEST(GreedySimple, RejectsZeroK) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  EXPECT_THROW((void)GreedySimpleSolver().solve(p, 0), InvalidArgument);
}

TEST(GreedySimple, PicksHeaviestPointFirst) {
  // Far-apart points so coverage is single-point only.
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}),
      {2.0, 5.0, 3.0}, 1.0, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 1);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 10.0);  // the weight-5 point
  EXPECT_DOUBLE_EQ(s.total_reward, 5.0);
}

TEST(GreedySimple, SelectionOrderFollowsResidualWeight) {
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}),
      {2.0, 5.0, 3.0}, 1.0, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 3);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 10.0);
  EXPECT_DOUBLE_EQ(s.centers[1][0], 20.0);
  EXPECT_DOUBLE_EQ(s.centers[2][0], 0.0);
  EXPECT_DOUBLE_EQ(s.total_reward, 10.0);
}

TEST(GreedySimple, TieBreaksToLowestIndex) {
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}),
      {3.0, 3.0, 3.0}, 1.0, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 1);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 0.0);
}

TEST(GreedySimple, CenterIsAlwaysAnInputPoint) {
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(5);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 4);
  for (std::size_t j = 0; j < s.centers.size(); ++j) {
    bool found = false;
    for (std::size_t i = 0; i < p.size() && !found; ++i) {
      found = geo::approx_equal(s.centers[j], p.point(i));
    }
    EXPECT_TRUE(found) << "center " << j << " is not an input point";
  }
}

TEST(GreedySimple, RoundRewardsSumToTotal) {
  rnd::WorkloadSpec spec;
  spec.n = 40;
  rnd::Rng rng(6);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 4);
  double sum = 0.0;
  for (double g : s.round_rewards) sum += g;
  EXPECT_NEAR(sum, s.total_reward, 1e-12);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(GreedySimple, ResidualConsistentWithReward) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(7);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 3);
  double claimed = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    claimed += p.weight(i) * (1.0 - s.residual[i]);
  }
  EXPECT_NEAR(claimed, s.total_reward, 1e-9);
}

TEST(GreedySimple, KLargerThanNStillWorks) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}, {0.5, 0.0}}),
                  {1.0, 1.0}, 1.0, geo::l2_metric());
  const Solution s = GreedySimpleSolver().solve(p, 5);
  EXPECT_EQ(s.centers.size(), 5u);
  EXPECT_LE(s.total_reward, p.total_weight() + 1e-12);
}

TEST(GreedySimple, WorksIn3DWithL1) {
  rnd::WorkloadSpec spec;
  spec.n = 40;
  spec.dim = 3;
  rnd::Rng rng(8);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l1_metric());
  const Solution s = GreedySimpleSolver().solve(p, 4);
  EXPECT_EQ(s.centers.dim(), 3u);
  EXPECT_GT(s.total_reward, 0.0);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

}  // namespace
}  // namespace mmph::core
