// Cross-solver determinism: every registered solver must produce
// bit-identical center sequences across repeated solves of the same
// Problem object, and identical *values* regardless of thread schedule
// (the exhaustive solver parallelizes internally).

#include <gtest/gtest.h>

#include <string>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {
namespace {

Problem instance(std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                geo::l2_metric());
}

class SolverDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverDeterminism, RepeatedSolvesIdentical) {
  const std::string name = GetParam();
  const Problem p = instance(3);
  const auto solver = make_solver(name, p);
  const Solution a = solver->solve(p, 3);
  const Solution b = solver->solve(p, 3);
  EXPECT_EQ(a.total_reward, b.total_reward) << name;
  ASSERT_EQ(a.centers.size(), b.centers.size()) << name;
  for (std::size_t j = 0; j < a.centers.size(); ++j) {
    for (std::size_t d = 0; d < a.centers.dim(); ++d) {
      EXPECT_EQ(a.centers[j][d], b.centers[j][d])
          << name << " round " << j;
    }
  }
}

TEST_P(SolverDeterminism, FreshSolverObjectIdentical) {
  const std::string name = GetParam();
  const Problem p = instance(4);
  const double a = make_solver(name, p)->solve(p, 3).total_reward;
  const double b = make_solver(name, p)->solve(p, 3).total_reward;
  EXPECT_EQ(a, b) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, SolverDeterminism,
    ::testing::Values("greedy1", "greedy2", "greedy2-lazy",
                      "greedy2-indexed", "greedy2-stoch", "greedy2+ls",
                      "greedy3", "greedy4", "exhaustive",
                      "exhaustive-points", "random", "kmeans", "sieve",
                      "greedy4-indexed", "greedy1+polish"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& ch : name) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return name;
    });

TEST(SolverDeterminism, ExhaustiveValueStableAcrossParallelism) {
  const Problem p = instance(5);
  ExhaustiveOptions par_opts;   // parallel
  ExhaustiveOptions ser_opts;
  ser_opts.parallel = false;
  for (int repeat = 0; repeat < 5; ++repeat) {
    const double a = ExhaustiveSolver::over_grid_and_points(p, 0.5, par_opts)
                         .solve(p, 2)
                         .total_reward;
    const double b = ExhaustiveSolver::over_grid_and_points(p, 0.5, ser_opts)
                         .solve(p, 2)
                         .total_reward;
    EXPECT_EQ(a, b) << "repeat " << repeat;
  }
}

}  // namespace
}  // namespace mmph::core
