// Tests for the one-pass Sieve-Streaming solver: the (1/2 - eps)
// guarantee against the point optimum, determinism, and sieve mechanics.

#include <gtest/gtest.h>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/sieve_streaming.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed, double radius = 1.0) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), radius,
                                geo::l2_metric());
}

TEST(SieveStreaming, ValidatesEpsilon) {
  EXPECT_THROW(SieveStreamingSolver(0.0), InvalidArgument);
  EXPECT_THROW(SieveStreamingSolver(1.0), InvalidArgument);
  EXPECT_NO_THROW(SieveStreamingSolver(0.25));
}

TEST(SieveStreaming, Name) {
  EXPECT_EQ(SieveStreamingSolver().name(), "sieve");
}

TEST(SieveStreaming, RejectsZeroK) {
  const Problem p = random_problem(5, 1);
  EXPECT_THROW((void)SieveStreamingSolver().solve(p, 0), InvalidArgument);
}

TEST(SieveStreaming, AtMostKCentersAllFromInput) {
  const Problem p = random_problem(30, 2);
  const Solution s = SieveStreamingSolver().solve(p, 4);
  EXPECT_GE(s.centers.size(), 1u);
  EXPECT_LE(s.centers.size(), 4u);
  for (std::size_t j = 0; j < s.centers.size(); ++j) {
    bool found = false;
    for (std::size_t i = 0; i < p.size() && !found; ++i) {
      found = geo::approx_equal(s.centers[j], p.point(i));
    }
    EXPECT_TRUE(found);
  }
}

TEST(SieveStreaming, HalfMinusEpsGuarantee) {
  // Theory: f(sieve) >= (1/2 - eps) * OPT over the same ground set.
  const double eps = 0.1;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(15, seed);
    for (std::size_t k : {2u, 3u}) {
      const double opt =
          ExhaustiveSolver::over_points(p).solve(p, k).total_reward;
      const double sieve =
          SieveStreamingSolver(eps).solve(p, k).total_reward;
      EXPECT_GE(sieve, (0.5 - eps) * opt - 1e-9)
          << "seed=" << seed << " k=" << k;
      EXPECT_LE(sieve, opt + 1e-9);
    }
  }
}

TEST(SieveStreaming, Deterministic) {
  const Problem p = random_problem(40, 3);
  const SieveStreamingSolver solver(0.2);
  const Solution a = solver.solve(p, 4);
  const Solution b = solver.solve(p, 4);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  ASSERT_EQ(a.centers.size(), b.centers.size());
  for (std::size_t j = 0; j < a.centers.size(); ++j) {
    EXPECT_TRUE(geo::approx_equal(a.centers[j], b.centers[j], 0.0));
  }
}

TEST(SieveStreaming, SmallerEpsilonMeansMoreSieves) {
  const Problem p = random_problem(30, 4);
  const SieveStreamingSolver coarse(0.5);
  const SieveStreamingSolver fine(0.05);
  (void)coarse.solve(p, 3);
  const std::size_t coarse_sieves = coarse.last_sieve_count();
  (void)fine.solve(p, 3);
  EXPECT_GT(fine.last_sieve_count(), coarse_sieves);
}

TEST(SieveStreaming, AccountingConsistent) {
  const Problem p = random_problem(25, 5);
  const Solution s = SieveStreamingSolver().solve(p, 3);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
  EXPECT_EQ(s.round_rewards.size(), s.centers.size());
}

TEST(SieveStreaming, ReasonableQualityVsGreedy) {
  // In practice sieve lands well above its worst-case bound.
  double sieve_total = 0.0;
  double greedy_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Problem p = random_problem(50, seed);
    sieve_total += SieveStreamingSolver(0.1).solve(p, 4).total_reward;
    greedy_total += GreedyLocalSolver().solve(p, 4).total_reward;
  }
  EXPECT_GE(sieve_total, 0.7 * greedy_total);
}

TEST(SieveStreaming, SinglePointStream) {
  const Problem p(geo::PointSet::from_rows({{1.0, 1.0}}), {2.0}, 1.0,
                  geo::l2_metric());
  const Solution s = SieveStreamingSolver().solve(p, 3);
  ASSERT_EQ(s.centers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_reward, 2.0);
}

}  // namespace
}  // namespace mmph::core
