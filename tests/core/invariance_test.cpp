// Physical-invariance property tests for the objective and solvers:
// rewards must be invariant under point-set permutation and rigid
// translation, and covariant under uniform scaling of space and radius.
// These catch a whole class of indexing/normalization bugs that
// value-level tests miss.

#include <gtest/gtest.h>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {
namespace {

struct Instance {
  geo::PointSet points{2};
  std::vector<double> weights;
};

Instance random_instance(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  rnd::Workload wl = rnd::generate_workload(spec, rng);
  return {std::move(wl.points), std::move(wl.weights)};
}

geo::PointSet random_centers(std::size_t k, rnd::Rng& rng) {
  geo::PointSet centers(2);
  std::vector<double> c(2);
  for (std::size_t j = 0; j < k; ++j) {
    c[0] = rng.uniform(0.0, 4.0);
    c[1] = rng.uniform(0.0, 4.0);
    centers.push_back(c);
  }
  return centers;
}

TEST(Invariance, ObjectiveInvariantUnderPointPermutation) {
  rnd::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance inst = random_instance(20, 10 + trial);
    const geo::PointSet centers = random_centers(3, rng);

    const Problem original(geo::PointSet(inst.points),
                           std::vector<double>(inst.weights), 1.0,
                           geo::l2_metric());

    const auto perm = rng.permutation(20);
    geo::PointSet shuffled(2);
    std::vector<double> shuffled_w;
    for (std::size_t i : perm) {
      shuffled.push_back(inst.points[i]);
      shuffled_w.push_back(inst.weights[i]);
    }
    const Problem permuted(std::move(shuffled), std::move(shuffled_w), 1.0,
                           geo::l2_metric());

    EXPECT_NEAR(objective_value(original, centers),
                objective_value(permuted, centers), 1e-9)
        << "trial " << trial;
  }
}

TEST(Invariance, Greedy2RewardInvariantUnderPermutation) {
  // greedy2's selection key (coverage reward) is continuous in the random
  // coordinates, so exact ties have measure zero: its achieved value is
  // permutation-invariant on generic instances.
  rnd::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = random_instance(25, 30 + trial);
    const Problem original(geo::PointSet(inst.points),
                           std::vector<double>(inst.weights), 1.0,
                           geo::l2_metric());
    const auto perm = rng.permutation(25);
    geo::PointSet shuffled(2);
    std::vector<double> shuffled_w;
    for (std::size_t i : perm) {
      shuffled.push_back(inst.points[i]);
      shuffled_w.push_back(inst.weights[i]);
    }
    const Problem permuted(std::move(shuffled), std::move(shuffled_w), 1.0,
                           geo::l2_metric());
    EXPECT_NEAR(GreedyLocalSolver().solve(original, 3).total_reward,
                GreedyLocalSolver().solve(permuted, 3).total_reward, 1e-9);
  }
}

TEST(Invariance, Greedy3IsOrderDependentByDesign) {
  // A property of the paper's Algorithm 3 worth pinning: with integer
  // weights its selection key w_i * y_i ties across many points, and the
  // paper's lowest-index tie-break then makes the *outcome* depend on how
  // users happen to be numbered. (greedy2 does not suffer from this —
  // its continuous coverage key almost never ties.) Demonstrate on a
  // crafted instance: two weight-5 points, one inside a cluster and one
  // isolated; whichever comes first is picked.
  geo::PointSet ps = geo::PointSet::from_rows({
      {0.0, 0.0},   // heavy point inside the cluster
      {10.0, 0.0},  // heavy isolated point
      {0.3, 0.0},
      {-0.3, 0.0},
  });
  const std::vector<double> w{5.0, 5.0, 2.0, 2.0};
  const Problem forward(geo::PointSet(ps), std::vector<double>(w), 1.0,
                        geo::l2_metric());
  // Swap the two heavy points' order.
  geo::PointSet swapped = geo::PointSet::from_rows({
      {10.0, 0.0},
      {0.0, 0.0},
      {0.3, 0.0},
      {-0.3, 0.0},
  });
  const Problem backward(std::move(swapped), std::vector<double>(w), 1.0,
                         geo::l2_metric());
  const double f = GreedySimpleSolver().solve(forward, 1).total_reward;
  const double b = GreedySimpleSolver().solve(backward, 1).total_reward;
  // Forward picks the cluster-heavy point (5 + 2*0.7*2 = 7.8); backward
  // picks the isolated one (5.0).
  EXPECT_NEAR(f, 7.8, 1e-9);
  EXPECT_NEAR(b, 5.0, 1e-9);
}

TEST(Invariance, ObjectiveInvariantUnderTranslation) {
  rnd::Rng rng(3);
  for (const geo::Metric metric :
       {geo::l1_metric(), geo::l2_metric(), geo::linf_metric()}) {
    const Instance inst = random_instance(20, 50);
    const geo::PointSet centers = random_centers(3, rng);
    const double tx = rng.uniform(-10.0, 10.0);
    const double ty = rng.uniform(-10.0, 10.0);

    geo::PointSet moved_points(2);
    for (std::size_t i = 0; i < inst.points.size(); ++i) {
      const std::vector<double> p{inst.points[i][0] + tx,
                                  inst.points[i][1] + ty};
      moved_points.push_back(p);
    }
    geo::PointSet moved_centers(2);
    for (std::size_t j = 0; j < centers.size(); ++j) {
      const std::vector<double> c{centers[j][0] + tx, centers[j][1] + ty};
      moved_centers.push_back(c);
    }

    const Problem original(geo::PointSet(inst.points),
                           std::vector<double>(inst.weights), 1.0, metric);
    const Problem moved(std::move(moved_points),
                        std::vector<double>(inst.weights), 1.0, metric);
    EXPECT_NEAR(objective_value(original, centers),
                objective_value(moved, moved_centers), 1e-9)
        << metric.name();
  }
}

TEST(Invariance, ObjectiveCovariantUnderUniformScaling) {
  // Scaling every coordinate and the radius by s leaves all d/r ratios,
  // hence the objective, unchanged.
  rnd::Rng rng(4);
  for (double s : {0.1, 2.0, 37.5}) {
    const Instance inst = random_instance(20, 60);
    const geo::PointSet centers = random_centers(3, rng);

    geo::PointSet scaled_points(2);
    for (std::size_t i = 0; i < inst.points.size(); ++i) {
      const std::vector<double> p{inst.points[i][0] * s,
                                  inst.points[i][1] * s};
      scaled_points.push_back(p);
    }
    geo::PointSet scaled_centers(2);
    for (std::size_t j = 0; j < centers.size(); ++j) {
      const std::vector<double> c{centers[j][0] * s, centers[j][1] * s};
      scaled_centers.push_back(c);
    }

    const Problem original(geo::PointSet(inst.points),
                           std::vector<double>(inst.weights), 1.0,
                           geo::l2_metric());
    const Problem scaled(std::move(scaled_points),
                         std::vector<double>(inst.weights), 1.0 * s,
                         geo::l2_metric());
    EXPECT_NEAR(objective_value(original, centers),
                objective_value(scaled, scaled_centers), 1e-9)
        << "s=" << s;
  }
}

TEST(Invariance, WeightScalingScalesObjective) {
  // f is linear in the weights: doubling every w doubles f.
  rnd::Rng rng(5);
  const Instance inst = random_instance(15, 70);
  const geo::PointSet centers = random_centers(2, rng);
  std::vector<double> doubled(inst.weights);
  for (double& w : doubled) w *= 2.0;
  const Problem original(geo::PointSet(inst.points),
                         std::vector<double>(inst.weights), 1.0,
                         geo::l2_metric());
  const Problem scaled(geo::PointSet(inst.points), std::move(doubled), 1.0,
                       geo::l2_metric());
  EXPECT_NEAR(2.0 * objective_value(original, centers),
              objective_value(scaled, centers), 1e-9);
}

}  // namespace
}  // namespace mmph::core
