// Tests for direct objective evaluation and its equivalence with the
// sequential residual formulation (Eq. 7 == sum of round rewards).

#include <gtest/gtest.h>

#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem line_problem() {
  return Problem(geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}}),
                 {1.0, 2.0, 4.0}, 2.0, geo::l2_metric());
}

TEST(Objective, EmptyCenterSetIsZero) {
  const Problem p = line_problem();
  EXPECT_DOUBLE_EQ(objective_value(p, geo::PointSet(2)), 0.0);
}

TEST(Objective, SingleCenterHandValue) {
  const Problem p = line_problem();
  const auto centers = geo::PointSet::from_rows({{0.0, 0.0}});
  EXPECT_DOUBLE_EQ(objective_value(p, centers), 2.0);
}

TEST(Objective, PerPointCapAtOne) {
  const Problem p = line_problem();
  // Two identical centers: coverage fractions add but cap at 1 per point.
  const auto centers = geo::PointSet::from_rows({{0.0, 0.0}, {0.0, 0.0}});
  // Point 0: min(1+1,1)=1 -> 1; point 1: min(.5+.5,1)=1 -> 2; point 2: 0.
  EXPECT_DOUBLE_EQ(objective_value(p, centers), 3.0);
}

TEST(Objective, DimensionMismatchThrows) {
  const Problem p = line_problem();
  const auto centers = geo::PointSet::from_rows({{0.0, 0.0, 0.0}});
  EXPECT_THROW((void)objective_value(p, centers), InvalidArgument);
}

TEST(Objective, IndexedOverloadMatchesDirect) {
  const Problem p = line_problem();
  const auto candidates =
      geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}});
  const std::vector<std::size_t> chosen{0, 2};
  geo::PointSet direct(2);
  direct.push_back(candidates[0]);
  direct.push_back(candidates[2]);
  EXPECT_DOUBLE_EQ(objective_value(p, candidates, chosen),
                   objective_value(p, direct));
}

TEST(Objective, NeverExceedsTotalWeight) {
  const Problem p = line_problem();
  const auto centers = geo::PointSet::from_rows(
      {{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}, {2.0, 0.0}});
  EXPECT_LE(objective_value(p, centers), p.total_weight() + 1e-12);
}

TEST(MarginalGain, MatchesDifference) {
  const Problem p = line_problem();
  const auto centers = geo::PointSet::from_rows({{0.0, 0.0}});
  const std::vector<double> extra{3.0, 0.0};
  geo::PointSet bigger(2);
  bigger.push_back(centers[0]);
  bigger.push_back(extra);
  EXPECT_NEAR(marginal_gain(p, centers, extra),
              objective_value(p, bigger) - objective_value(p, centers),
              1e-12);
}

TEST(MarginalGain, OfDuplicateCoveringCenter) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  const auto centers = geo::PointSet::from_rows({{0.0, 0.0}});
  const std::vector<double> extra{0.0, 0.0};
  EXPECT_DOUBLE_EQ(marginal_gain(p, centers, extra), 0.0);
}

// Property: direct objective equals the sum of sequential round rewards,
// for random instances and random center sequences, across metrics.
class ObjectiveEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ObjectiveEquivalence, SequentialResidualMatchesDirect) {
  const auto [dim, norm_id] = GetParam();
  const geo::Metric metric =
      norm_id == 1 ? geo::l1_metric()
                   : (norm_id == 2 ? geo::l2_metric() : geo::linf_metric());
  rnd::Rng rng(100 * dim + norm_id);
  for (int trial = 0; trial < 50; ++trial) {
    rnd::WorkloadSpec spec;
    spec.n = 15;
    spec.dim = static_cast<std::size_t>(dim);
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), rng.uniform(0.5, 2.0), metric);

    geo::PointSet centers(p.dim());
    auto y = fresh_residual(p);
    double sequential = 0.0;
    const int k = 1 + trial % 5;
    std::vector<double> c(p.dim());
    for (int j = 0; j < k; ++j) {
      for (auto& v : c) v = rng.uniform(0.0, 4.0);
      centers.push_back(c);
      sequential += apply_center(p, c, y);
    }
    EXPECT_NEAR(sequential, objective_value(p, centers), 1e-9)
        << "dim=" << dim << " norm=" << norm_id << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ObjectiveEquivalence,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 2, 0)));

}  // namespace
}  // namespace mmph::core
