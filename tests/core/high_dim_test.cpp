// Tests for the m-D / general p-norm claims: the paper states the
// algorithms generalize to m dimensions and arbitrary p-norms; these
// sweeps exercise exactly that surface (dims 4-6, p in {1, 2, 3, inf}).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {
namespace {

geo::Metric metric_for(int id) {
  switch (id) {
    case 1:
      return geo::l1_metric();
    case 2:
      return geo::l2_metric();
    case 3:
      return geo::Metric(3.0);
    default:
      return geo::linf_metric();
  }
}

class HighDimSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(HighDimSweep, AllGreedyAlgorithmsSolveConsistently) {
  const auto [dim, metric_id] = GetParam();
  const geo::Metric metric = metric_for(metric_id);
  rnd::WorkloadSpec spec;
  spec.n = 25;
  spec.dim = dim;
  rnd::Rng rng(101 + dim * 10 + metric_id);
  for (int trial = 0; trial < 5; ++trial) {
    // Radius scaled up with dimension so coverage stays nontrivial
    // (distances grow ~ dim^(1/p) in a fixed box).
    const double radius = 1.0 + 0.5 * static_cast<double>(dim);
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), radius, metric);

    const Solution g2 = GreedyLocalSolver().solve(p, 3);
    const Solution g3 = GreedySimpleSolver().solve(p, 3);
    const Solution g4 = GreedyComplexSolver().solve(p, 3);
    for (const Solution* s : {&g2, &g3, &g4}) {
      EXPECT_EQ(s->centers.dim(), dim);
      EXPECT_GT(s->total_reward, 0.0)
          << s->solver_name << " dim=" << dim << " p=" << metric.name();
      EXPECT_NEAR(s->total_reward, objective_value(p, s->centers), 1e-9)
          << s->solver_name;
      EXPECT_LE(s->total_reward, p.total_weight() + 1e-9);
    }
    // greedy2's first round dominates greedy3's by construction.
    EXPECT_GE(g2.round_rewards[0] + 1e-9, g3.round_rewards[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HighDimSweep,
    ::testing::Combine(::testing::Values(std::size_t{4}, std::size_t{5},
                                         std::size_t{6}),
                       ::testing::Values(1, 2, 3, 0)));

TEST(HighDim, ExhaustiveStillDominatesInFiveD) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  spec.dim = 5;
  rnd::Rng rng(202);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           3.0, geo::l1_metric());
  const double opt =
      ExhaustiveSolver::over_points(p).solve(p, 2).total_reward;
  EXPECT_GE(opt + 1e-9, GreedyLocalSolver().solve(p, 2).total_reward);
  EXPECT_GE(opt + 1e-9, GreedySimpleSolver().solve(p, 2).total_reward);
}

TEST(HighDim, GeneralPNormRewardsDecreaseWithP) {
  // For fixed instance and centers, d_p decreases in p, so coverage (and
  // f) increases in p. Verify across p = 1, 2, 3, inf with shared centers.
  rnd::WorkloadSpec spec;
  spec.n = 20;
  spec.dim = 4;
  rnd::Rng rng(303);
  const rnd::Workload wl = rnd::generate_workload(spec, rng);
  geo::PointSet centers(4);
  std::vector<double> c(4);
  for (int j = 0; j < 3; ++j) {
    for (auto& v : c) v = rng.uniform(0.0, 4.0);
    centers.push_back(c);
  }
  double previous = -1.0;
  for (int metric_id : {1, 2, 3, 0}) {
    const Problem p(geo::PointSet(wl.points), std::vector<double>(wl.weights),
                    2.0, metric_for(metric_id));
    const double f = objective_value(p, centers);
    EXPECT_GE(f + 1e-9, previous) << "p-norm ordering violated";
    previous = f;
  }
}

}  // namespace
}  // namespace mmph::core
