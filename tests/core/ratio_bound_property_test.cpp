// Property tests for Theorem 2: on small instances where the exhaustive
// optimum over the points domain is computable, the local greedy algorithms
// achieve at least 1 - (1 - 1/n)^k of it. (The bound holds a fortiori for
// the point-restricted optimum, which lower-bounds the continuous one only
// through the same candidate set — we also check against a grid-augmented
// optimum for greedy 2 and greedy 3, whose proofs do not depend on the
// candidate domain.)

#include <gtest/gtest.h>

#include <tuple>

#include "mmph/core/bounds.hpp"
#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {
namespace {

class RatioBoundSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(RatioBoundSweep, Theorem2HoldsAgainstGridOptimum) {
  const auto [n, k, radius] = GetParam();
  rnd::WorkloadSpec spec;
  spec.n = static_cast<std::size_t>(n);
  rnd::Rng rng(81 + n * 100 + k * 10 + static_cast<int>(radius * 4));
  const double bound = approx_ratio_local_greedy(n, k);
  for (int trial = 0; trial < 8; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), radius, geo::l2_metric());
    const double opt =
        ExhaustiveSolver::over_grid_and_points(p, 0.5).solve(p, k)
            .total_reward;
    ASSERT_GT(opt, 0.0);
    const double g2 = GreedyLocalSolver().solve(p, k).total_reward;
    const double g3 = GreedySimpleSolver().solve(p, k).total_reward;
    EXPECT_GE(g2 / opt, bound - 1e-9)
        << "greedy2 n=" << n << " k=" << k << " r=" << radius;
    EXPECT_GE(g3 / opt, bound - 1e-9)
        << "greedy3 n=" << n << " k=" << k << " r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RatioBoundSweep,
    ::testing::Combine(::testing::Values(8, 12), ::testing::Values(1, 2, 3),
                       ::testing::Values(1.0, 2.0)));

TEST(RatioBound, Theorem1StyleBoundForRoundOracleOnPointDomain) {
  // When the round oracle optimizes over the same finite candidate set the
  // exhaustive baseline uses, Theorem 1's argument applies to that domain:
  // ratio >= 1 - (1 - 1/k)^k.
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(82);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.5, geo::l2_metric());
    for (std::size_t k : {2u, 3u}) {
      const geo::PointSet candidates = candidates_from_points(p);
      const double opt =
          ExhaustiveSolver::over_points(p).solve(p, k).total_reward;
      const double heuristic =
          RoundBasedSolver(candidates).solve(p, k).total_reward;
      EXPECT_GE(heuristic / opt, approx_ratio_round_based(k) - 1e-9)
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(RatioBound, GreedyRatiosAreAtMostOneOnPointDomain) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(83);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const double opt =
        ExhaustiveSolver::over_points(p).solve(p, 2).total_reward;
    EXPECT_LE(GreedyLocalSolver().solve(p, 2).total_reward, opt + 1e-9);
    EXPECT_LE(GreedySimpleSolver().solve(p, 2).total_reward, opt + 1e-9);
  }
}

}  // namespace
}  // namespace mmph::core
