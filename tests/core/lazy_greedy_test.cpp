// Tests for the lazy-evaluation greedy: identical results to Algorithm 2
// with (usually far) fewer coverage-reward evaluations.

#include <gtest/gtest.h>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

TEST(LazyGreedy, Name) {
  EXPECT_EQ(LazyGreedySolver().name(), "greedy2-lazy");
}

TEST(LazyGreedy, RejectsZeroK) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  EXPECT_THROW((void)LazyGreedySolver().solve(p, 0), InvalidArgument);
}

class LazyVsEager : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LazyVsEager, SameCentersAndReward) {
  const auto [n, k] = GetParam();
  rnd::WorkloadSpec spec;
  spec.n = static_cast<std::size_t>(n);
  rnd::Rng rng(41 + n + k);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const Solution eager = GreedyLocalSolver().solve(p, k);
    const Solution lazy = LazyGreedySolver().solve(p, k);
    ASSERT_EQ(lazy.centers.size(), eager.centers.size());
    EXPECT_NEAR(lazy.total_reward, eager.total_reward, 1e-9)
        << "n=" << n << " k=" << k << " trial=" << trial;
    for (std::size_t j = 0; j < eager.centers.size(); ++j) {
      EXPECT_TRUE(geo::approx_equal(lazy.centers[j], eager.centers[j], 1e-12))
          << "round " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LazyVsEager,
                         ::testing::Combine(::testing::Values(10, 25, 60),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(LazyGreedy, EvaluationCountIsTracked) {
  rnd::WorkloadSpec spec;
  spec.n = 50;
  rnd::Rng rng(43);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const LazyGreedySolver solver;
  (void)solver.solve(p, 4);
  // At least the initial n evaluations, at most what eager would do.
  EXPECT_GE(solver.last_evaluation_count(), 50u);
  EXPECT_LE(solver.last_evaluation_count(), 4u * 50u + 50u);
}

TEST(LazyGreedy, SavesWorkOnSpreadOutInstances) {
  // Widely spread points barely interact, so marginal gains rarely change:
  // lazy evaluation should do far fewer than k*n evaluations.
  geo::PointSet ps(2);
  std::vector<double> weights;
  rnd::Rng rng(44);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> pt{static_cast<double>(i) * 10.0,
                                 rng.uniform(0.0, 1.0)};
    ps.push_back(pt);
    weights.push_back(rng.uniform(1.0, 5.0));
  }
  const Problem p(std::move(ps), std::move(weights), 1.0, geo::l2_metric());
  const LazyGreedySolver solver;
  (void)solver.solve(p, 10);
  // Eager would use 10 * 100 = 1000 evaluations; lazy needs the initial
  // 100 plus ~1 refresh per round.
  EXPECT_LT(solver.last_evaluation_count(), 250u);
}

TEST(LazyGreedy, MatchesObjective) {
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(45);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l1_metric());
  const Solution s = LazyGreedySolver().solve(p, 4);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

}  // namespace
}  // namespace mmph::core
