// Tests for budgeted content selection: validation, feasibility, the
// safeguard, and quality vs the exact knapsack optimum.

#include <gtest/gtest.h>

#include <cmath>

#include "mmph/core/budgeted.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                geo::l2_metric());
}

BudgetedInstance make_instance(const Problem& p, double budget,
                               std::uint64_t seed) {
  BudgetedInstance inst;
  inst.problem = &p;
  inst.budget = budget;
  rnd::Rng rng(seed);
  inst.costs.resize(p.size());
  for (double& c : inst.costs) c = rng.uniform(0.5, 2.0);
  return inst;
}

TEST(Budgeted, Validation) {
  const Problem p = random_problem(5, 1);
  BudgetedInstance inst;
  inst.problem = nullptr;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst.problem = &p;
  inst.costs = {1.0, 1.0};  // wrong size
  inst.budget = 1.0;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst.costs.assign(5, 1.0);
  inst.budget = 0.0;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst.budget = 1.0;
  inst.costs[2] = 0.0;
  EXPECT_THROW(inst.validate(), InvalidArgument);
}

TEST(Budgeted, GreedyRespectsBudget) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(20, seed);
    const BudgetedInstance inst = make_instance(p, 3.0, seed + 100);
    const BudgetedSolution sol = budgeted_greedy(inst);
    EXPECT_LE(sol.total_cost, inst.budget + 1e-12);
    double recomputed_cost = 0.0;
    for (std::size_t i : sol.chosen) recomputed_cost += inst.costs[i];
    EXPECT_NEAR(recomputed_cost, sol.total_cost, 1e-12);
  }
}

TEST(Budgeted, UnitCostsLargeBudgetMatchesUnconstrained) {
  // With all costs 1 and budget >= n, the budget never binds: the greedy
  // keeps adding while any candidate has positive marginal gain.
  const Problem p = random_problem(10, 2);
  BudgetedInstance inst;
  inst.problem = &p;
  inst.costs.assign(10, 1.0);
  inst.budget = 100.0;
  const BudgetedSolution sol = budgeted_greedy(inst);
  // Everything claimable gets claimed: total reward equals total weight
  // of points that can be fully covered by centers at points (w_i at
  // distance 0 are always claimable).
  EXPECT_GT(sol.total_reward, 0.0);
  EXPECT_LE(sol.total_reward, p.total_weight() + 1e-9);
  // Every point that is itself a center candidate ends fully satisfied.
  EXPECT_NEAR(sol.total_reward, p.total_weight(), 1e-9);
}

TEST(Budgeted, SafeguardBeatsRatioTrap) {
  // Classic trap: a cheap tiny-gain item has the best ratio and eats the
  // budget share, while one expensive item carrying most of the value
  // fits the whole budget alone. The safeguard must pick the big one.
  // Layout: cluster of high-weight points coverable by candidate 0 (cost
  // = budget), plus a far cheap candidate with trivial gain.
  geo::PointSet ps = geo::PointSet::from_rows(
      {{0.0, 0.0}, {0.1, 0.0}, {-0.1, 0.0}, {50.0, 0.0}});
  const Problem p(std::move(ps), {5.0, 5.0, 5.0, 0.1}, 1.0,
                  geo::l2_metric());
  BudgetedInstance inst;
  inst.problem = &p;
  inst.costs = {10.0, 10.0, 10.0, 0.1};
  inst.budget = 10.0;
  const BudgetedSolution sol = budgeted_greedy(inst);
  // Ratio rule would take candidate 3 (ratio 1.0 vs ~1.45... actually
  // candidate 0 gain = 5 + 4.5 + 4.5 = 14, ratio 1.4) — construct the
  // numbers so the cheap item wins on ratio: gain 0.1 / cost 0.1 = 1.0 <
  // 1.4. Make cluster costs higher relative to gain:
  // (kept as a regression against accidental ratio-only behavior).
  EXPECT_GE(sol.total_reward, 13.9);
}

TEST(Budgeted, GreedyWithinHalfOneMinusInvEOfOptimum) {
  const double bound = 0.5 * (1.0 - std::exp(-1.0));
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Problem p = random_problem(12, seed);
    const BudgetedInstance inst = make_instance(p, 2.5, seed + 50);
    const BudgetedSolution greedy = budgeted_greedy(inst);
    const BudgetedSolution opt = budgeted_exhaustive(inst);
    ASSERT_GT(opt.total_reward, 0.0);
    EXPECT_GE(greedy.total_reward, bound * opt.total_reward - 1e-9)
        << "seed " << seed;
    EXPECT_LE(greedy.total_reward, opt.total_reward + 1e-9);
  }
}

TEST(Budgeted, ExhaustiveRespectsBudgetAndSizeGuard) {
  const Problem p = random_problem(10, 3);
  const BudgetedInstance inst = make_instance(p, 2.0, 7);
  const BudgetedSolution opt = budgeted_exhaustive(inst);
  EXPECT_LE(opt.total_cost, inst.budget + 1e-12);

  const Problem big = random_problem(30, 4);
  BudgetedInstance too_big = make_instance(big, 2.0, 8);
  EXPECT_THROW((void)budgeted_exhaustive(too_big), InvalidArgument);
}

TEST(Budgeted, TinyBudgetPicksBestAffordableSingleton) {
  const Problem p = random_problem(15, 5);
  BudgetedInstance inst;
  inst.problem = &p;
  inst.costs.assign(15, 1.0);
  inst.budget = 1.0;  // exactly one center affordable
  const BudgetedSolution sol = budgeted_greedy(inst);
  ASSERT_EQ(sol.chosen.size(), 1u);
  const BudgetedSolution opt = budgeted_exhaustive(inst);
  EXPECT_NEAR(sol.total_reward, opt.total_reward, 1e-9);
}

TEST(Budgeted, NothingAffordableYieldsEmptySolution) {
  const Problem p = random_problem(5, 6);
  BudgetedInstance inst;
  inst.problem = &p;
  inst.costs.assign(5, 10.0);
  inst.budget = 1.0;
  const BudgetedSolution sol = budgeted_greedy(inst);
  EXPECT_TRUE(sol.chosen.empty());
  EXPECT_DOUBLE_EQ(sol.total_reward, 0.0);
}

TEST(BudgetedPartialEnumeration, Validation) {
  const Problem p = random_problem(5, 8);
  const BudgetedInstance inst = make_instance(p, 2.0, 9);
  EXPECT_THROW((void)budgeted_partial_enumeration(inst, 0), InvalidArgument);
  EXPECT_THROW((void)budgeted_partial_enumeration(inst, 4), InvalidArgument);
}

TEST(BudgetedPartialEnumeration, NeverWorseThanSafeguardedGreedy) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(15, seed);
    const BudgetedInstance inst = make_instance(p, 3.0, seed + 20);
    const double greedy = budgeted_greedy(inst).total_reward;
    const double enum1 = budgeted_partial_enumeration(inst, 1).total_reward;
    const double enum2 = budgeted_partial_enumeration(inst, 2).total_reward;
    // Prefix-1 enumeration includes the empty prefix (= plain cost-benefit
    // greedy) and all singletons, so it dominates the safeguarded greedy.
    EXPECT_GE(enum1, greedy - 1e-9) << "seed " << seed;
    EXPECT_GE(enum2, enum1 - 1e-9) << "seed " << seed;
  }
}

TEST(BudgetedPartialEnumeration, MeetsOneMinusInvEBound) {
  const double bound = 1.0 - std::exp(-1.0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = random_problem(10, seed + 30);
    const BudgetedInstance inst = make_instance(p, 2.5, seed + 40);
    const double opt = budgeted_exhaustive(inst).total_reward;
    ASSERT_GT(opt, 0.0);
    const double enum3 =
        budgeted_partial_enumeration(inst, 3).total_reward;
    EXPECT_GE(enum3, bound * opt - 1e-9) << "seed " << seed;
    EXPECT_LE(enum3, opt + 1e-9);
  }
}

TEST(BudgetedPartialEnumeration, RespectsBudget) {
  const Problem p = random_problem(12, 50);
  const BudgetedInstance inst = make_instance(p, 2.0, 51);
  const BudgetedSolution sol = budgeted_partial_enumeration(inst, 2);
  EXPECT_LE(sol.total_cost, inst.budget + 1e-12);
  double cost = 0.0;
  for (std::size_t i : sol.chosen) cost += inst.costs[i];
  EXPECT_NEAR(cost, sol.total_cost, 1e-12);
}

TEST(Budgeted, Deterministic) {
  const Problem p = random_problem(20, 7);
  const BudgetedInstance inst = make_instance(p, 4.0, 9);
  const BudgetedSolution a = budgeted_greedy(inst);
  const BudgetedSolution b = budgeted_greedy(inst);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
}

}  // namespace
}  // namespace mmph::core
