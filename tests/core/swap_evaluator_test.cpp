// Tests for the incremental swap evaluator: exact agreement with the
// direct objective across long random swap sequences.

#include <gtest/gtest.h>

#include "mmph/core/objective.hpp"
#include "mmph/core/swap_evaluator.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed,
                       geo::Metric metric = geo::l2_metric()) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                metric);
}

geo::PointSet random_centers(std::size_t k, std::size_t dim, rnd::Rng& rng) {
  geo::PointSet centers(dim);
  std::vector<double> c(dim);
  for (std::size_t j = 0; j < k; ++j) {
    for (auto& v : c) v = rng.uniform(0.0, 4.0);
    centers.push_back(c);
  }
  return centers;
}

TEST(SwapEvaluator, Validation) {
  const Problem p = random_problem(5, 1);
  EXPECT_THROW(SwapEvaluator(p, geo::PointSet(2)), InvalidArgument);
  EXPECT_THROW(SwapEvaluator(p, geo::PointSet::from_rows({{0.0, 0.0, 0.0}})),
               InvalidArgument);
}

TEST(SwapEvaluator, InitialValueMatchesObjective) {
  const Problem p = random_problem(30, 2);
  rnd::Rng rng(3);
  const geo::PointSet centers = random_centers(4, 2, rng);
  const SwapEvaluator eval(p, centers);
  EXPECT_NEAR(eval.current_value(), objective_value(p, centers), 1e-9);
}

TEST(SwapEvaluator, TrialDoesNotMutate) {
  const Problem p = random_problem(20, 4);
  rnd::Rng rng(5);
  const geo::PointSet centers = random_centers(3, 2, rng);
  const SwapEvaluator eval(p, centers);
  const double before = eval.current_value();
  const std::vector<double> cand{1.0, 1.0};
  (void)eval.value_with_swap(1, cand);
  EXPECT_DOUBLE_EQ(eval.current_value(), before);
}

TEST(SwapEvaluator, TrialMatchesDirectEvaluation) {
  const Problem p = random_problem(25, 6);
  rnd::Rng rng(7);
  geo::PointSet centers = random_centers(3, 2, rng);
  const SwapEvaluator eval(p, centers);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::vector<double> cand{rng.uniform(0.0, 4.0),
                                   rng.uniform(0.0, 4.0)};
    geo::PointSet swapped = centers;
    geo::assign(swapped.mutable_point(j), cand);
    EXPECT_NEAR(eval.value_with_swap(j, cand), objective_value(p, swapped),
                1e-9);
  }
}

TEST(SwapEvaluator, LongCommitSequenceStaysExact) {
  for (const geo::Metric metric : {geo::l1_metric(), geo::l2_metric()}) {
    const Problem p = random_problem(30, 8, metric);
    rnd::Rng rng(9);
    geo::PointSet centers = random_centers(4, 2, rng);
    SwapEvaluator eval(p, centers);
    for (int step = 0; step < 200; ++step) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, 3));
      const std::vector<double> cand{rng.uniform(0.0, 4.0),
                                     rng.uniform(0.0, 4.0)};
      eval.commit_swap(j, cand);
      geo::assign(centers.mutable_point(j), cand);
      ASSERT_NEAR(eval.current_value(), objective_value(p, centers), 1e-9)
          << "step " << step << " metric " << metric.name();
    }
  }
}

TEST(SwapEvaluator, CommitUpdatesCenters) {
  const Problem p = random_problem(10, 10);
  rnd::Rng rng(11);
  SwapEvaluator eval(p, random_centers(2, 2, rng));
  const std::vector<double> cand{2.0, 2.0};
  eval.commit_swap(0, cand);
  EXPECT_DOUBLE_EQ(eval.centers()[0][0], 2.0);
  EXPECT_DOUBLE_EQ(eval.centers()[0][1], 2.0);
}

TEST(SwapEvaluator, IndexOutOfRangeThrows) {
  const Problem p = random_problem(10, 12);
  rnd::Rng rng(13);
  SwapEvaluator eval(p, random_centers(2, 2, rng));
  const std::vector<double> cand{1.0, 1.0};
  EXPECT_THROW((void)eval.value_with_swap(2, cand), InvalidArgument);
  EXPECT_THROW(eval.commit_swap(5, cand), InvalidArgument);
}

TEST(SwapEvaluator, WorksWithBinaryRewardShape) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(14);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric(),
                                           RewardShape::kBinary);
  geo::PointSet centers = random_centers(3, 2, rng);
  SwapEvaluator eval(p, centers);
  EXPECT_NEAR(eval.current_value(), objective_value(p, centers), 1e-9);
  const std::vector<double> cand{0.5, 0.5};
  geo::PointSet swapped = centers;
  geo::assign(swapped.mutable_point(2), cand);
  EXPECT_NEAR(eval.value_with_swap(2, cand), objective_value(p, swapped),
              1e-9);
}

}  // namespace
}  // namespace mmph::core
