// Tests for Algorithm 1 realized with a grid candidate oracle ("greedy 1").

#include <gtest/gtest.h>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

TEST(RoundBased, Name) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  EXPECT_EQ(RoundBasedSolver::over_grid(p, 0.5).name(), "greedy1");
}

TEST(RoundBased, RejectsEmptyCandidateSet) {
  EXPECT_THROW(RoundBasedSolver(geo::PointSet(2)), InvalidArgument);
}

TEST(RoundBased, ExplicitCandidates) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}}),
                  {1.0, 1.0}, 1.0, geo::l2_metric());
  // Only one candidate: it must be chosen in every round.
  const RoundBasedSolver solver(geo::PointSet::from_rows({{0.5, 0.0}}));
  const Solution s = solver.solve(p, 2);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 0.5);
  EXPECT_DOUBLE_EQ(s.centers[1][0], 0.5);
  // Round 1 claims 2 * (1 - 0.5) = 1; round 2 the remaining 1.
  EXPECT_DOUBLE_EQ(s.round_rewards[0], 1.0);
  EXPECT_DOUBLE_EQ(s.round_rewards[1], 1.0);
}

TEST(RoundBased, CandidateDimensionMismatchThrows) {
  const Problem p(geo::PointSet::from_rows({{0.0, 0.0}}), {1.0}, 1.0,
                  geo::l2_metric());
  const RoundBasedSolver solver(geo::PointSet::from_rows({{0.0, 0.0, 0.0}}));
  EXPECT_THROW((void)solver.solve(p, 1), InvalidArgument);
}

TEST(RoundBased, GridOracleIncludesInputPoints) {
  const Problem p(geo::PointSet::from_rows({{0.3, 0.3}, {3.7, 3.7}}),
                  {1.0, 1.0}, 1.0, geo::l2_metric());
  const RoundBasedSolver solver = RoundBasedSolver::over_grid(p, 0.5);
  // Candidates = grid over bbox union the two points themselves.
  EXPECT_GE(solver.candidates().size(), 2u);
  bool found = false;
  for (std::size_t c = 0; c < solver.candidates().size() && !found; ++c) {
    found = geo::approx_equal(solver.candidates()[c], p.point(0));
  }
  EXPECT_TRUE(found);
}

TEST(RoundBased, BeatsOrMatchesGreedy2PerRoundWithFineGrid) {
  // With a fine grid (superset of behaviorally-distinct centers), the
  // round-oracle's first round dominates greedy 2's first round.
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const Solution s1 = RoundBasedSolver::over_grid(p, 0.1).solve(p, 1);
    const Solution s2 = GreedyLocalSolver().solve(p, 1);
    EXPECT_GE(s1.total_reward + 1e-9, s2.total_reward) << "trial " << trial;
  }
}

TEST(RoundBased, TotalMatchesObjective) {
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(32);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l1_metric());
  const Solution s = RoundBasedSolver::over_grid(p, 0.25).solve(p, 3);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(RoundBased, RoundRewardsNonIncreasing) {
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(33);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const Solution s = RoundBasedSolver::over_grid(p, 0.25).solve(p, 5);
  for (std::size_t j = 1; j < s.round_rewards.size(); ++j) {
    EXPECT_LE(s.round_rewards[j], s.round_rewards[j - 1] + 1e-9);
  }
}

TEST(RoundBased, FinerGridNeverHurtsRoundOne) {
  rnd::WorkloadSpec spec;
  spec.n = 15;
  rnd::Rng rng(34);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const double coarse =
      RoundBasedSolver::over_grid(p, 1.0).solve(p, 1).total_reward;
  const double fine =
      RoundBasedSolver::over_grid(p, 0.1).solve(p, 1).total_reward;
  EXPECT_GE(fine + 1e-9, coarse);
}

}  // namespace
}  // namespace mmph::core
