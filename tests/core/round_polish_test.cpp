// Tests for the continuous polish of the round-based oracle.

#include <gtest/gtest.h>

#include "mmph/core/objective.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/core/round_polish.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                geo::l2_metric());
}

TEST(RoundPolish, Validation) {
  EXPECT_THROW(PolishedRoundSolver(geo::PointSet(2), 1.0), InvalidArgument);
  const geo::PointSet one = geo::PointSet::from_rows({{0.0, 0.0}});
  EXPECT_THROW(PolishedRoundSolver(geo::PointSet(one), 0.0), InvalidArgument);
  EXPECT_THROW(PolishedRoundSolver(geo::PointSet(one), 1.0, 2.0),
               InvalidArgument);
  EXPECT_THROW(PolishedRoundSolver(geo::PointSet(one), 1.0, 0.0),
               InvalidArgument);
}

TEST(RoundPolish, Name) {
  const Problem p = random_problem(5, 1);
  EXPECT_EQ(PolishedRoundSolver::over_grid(p, 0.5).name(), "greedy1+polish");
}

TEST(RoundPolish, NeverWorseThanGridOracleAtKOne) {
  // For k = 1 the polished round is a strict superset search, so it
  // dominates the grid oracle exactly.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(25, seed);
    const double grid_only =
        RoundBasedSolver::over_grid(p, 0.5).solve(p, 1).total_reward;
    const double polished =
        PolishedRoundSolver::over_grid(p, 0.5).solve(p, 1).total_reward;
    EXPECT_GE(polished + 1e-9, grid_only) << "seed=" << seed;
  }
}

TEST(RoundPolish, ComparableAtLargerK) {
  // Greedy is myopic: a better round-1 pick is not *guaranteed* to help
  // the k-round total, but it should not systematically hurt either.
  double grid_total = 0.0;
  double polished_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = random_problem(25, seed);
    grid_total +=
        RoundBasedSolver::over_grid(p, 0.5).solve(p, 3).total_reward;
    polished_total +=
        PolishedRoundSolver::over_grid(p, 0.5).solve(p, 3).total_reward;
  }
  EXPECT_GE(polished_total, 0.99 * grid_total);
}

TEST(RoundPolish, FindsOffGridOptimum) {
  // Symmetric cross of four points around an off-grid center: the best
  // center is the cross's middle (0.55, 0.55), not any coarse grid point.
  const double cx = 0.55, cy = 0.55;
  geo::PointSet ps(2);
  for (const auto& off : {std::pair{0.3, 0.0}, std::pair{-0.3, 0.0},
                          std::pair{0.0, 0.3}, std::pair{0.0, -0.3}}) {
    const std::vector<double> pt{cx + off.first, cy + off.second};
    ps.push_back(pt);
  }
  const Problem p(std::move(ps), {1.0, 1.0, 1.0, 1.0}, 1.0,
                  geo::l2_metric());
  // Coarse grid (pitch 1.0) cannot represent (0.55, 0.55).
  const Solution s = PolishedRoundSolver::over_grid(p, 1.0).solve(p, 1);
  EXPECT_NEAR(s.centers[0][0], cx, 0.02);
  EXPECT_NEAR(s.centers[0][1], cy, 0.02);
  // Optimal reward: 4 * (1 - 0.3) = 2.8.
  EXPECT_NEAR(s.total_reward, 2.8, 0.01);
}

TEST(RoundPolish, Deterministic) {
  const Problem p = random_problem(20, 3);
  const PolishedRoundSolver solver = PolishedRoundSolver::over_grid(p, 0.5);
  const Solution a = solver.solve(p, 3);
  const Solution b = solver.solve(p, 3);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  for (std::size_t j = 0; j < a.centers.size(); ++j) {
    EXPECT_TRUE(geo::approx_equal(a.centers[j], b.centers[j], 0.0));
  }
}

TEST(RoundPolish, AccountingConsistent) {
  const Problem p = random_problem(20, 4);
  const Solution s = PolishedRoundSolver::over_grid(p, 0.5).solve(p, 3);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(RoundPolish, WorksUnderL1) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(5);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l1_metric());
  const double grid_only =
      RoundBasedSolver::over_grid(p, 0.5).solve(p, 2).total_reward;
  const double polished =
      PolishedRoundSolver::over_grid(p, 0.5).solve(p, 2).total_reward;
  EXPECT_GE(polished + 1e-9, grid_only);
}

}  // namespace
}  // namespace mmph::core
