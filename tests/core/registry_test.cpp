// Tests for name-based solver construction.

#include <gtest/gtest.h>

#include "mmph/core/registry.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem small_problem() {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(61);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                geo::l2_metric());
}

TEST(Registry, ListsAllNames) {
  const auto names = solver_names();
  EXPECT_EQ(names.size(), 15u);
}

TEST(Registry, EveryListedNameConstructsAndSolves) {
  const Problem p = small_problem();
  for (const std::string& name : solver_names()) {
    const auto solver = make_solver(name, p);
    ASSERT_NE(solver, nullptr) << name;
    const Solution s = solver->solve(p, 2);
    if (name == "sieve") {
      // Sieve-streaming may answer with fewer than k centers.
      EXPECT_LE(s.centers.size(), 2u) << name;
      EXPECT_GE(s.centers.size(), 1u) << name;
    } else {
      EXPECT_EQ(s.centers.size(), 2u) << name;
    }
    EXPECT_GT(s.total_reward, 0.0) << name;
  }
}

TEST(Registry, NamesRoundTrip) {
  const Problem p = small_problem();
  for (const std::string& name : solver_names()) {
    if (name == "exhaustive-points") continue;  // reports as "exhaustive"
    EXPECT_EQ(make_solver(name, p)->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  const Problem p = small_problem();
  EXPECT_THROW((void)make_solver("greedy9", p), InvalidArgument);
  EXPECT_THROW((void)make_solver("", p), InvalidArgument);
}

TEST(Registry, GridPitchReachesRoundBased) {
  const Problem p = small_problem();
  SolverConfig coarse;
  coarse.grid_pitch = 2.0;
  SolverConfig fine;
  fine.grid_pitch = 0.25;
  const double g_coarse = make_solver("greedy1", p, coarse)->solve(p, 1).total_reward;
  const double g_fine = make_solver("greedy1", p, fine)->solve(p, 1).total_reward;
  EXPECT_GE(g_fine + 1e-9, g_coarse);
}

TEST(Registry, LazyMatchesEager) {
  const Problem p = small_problem();
  const double eager = make_solver("greedy2", p)->solve(p, 3).total_reward;
  const double lazy = make_solver("greedy2-lazy", p)->solve(p, 3).total_reward;
  EXPECT_NEAR(eager, lazy, 1e-9);
}

}  // namespace
}  // namespace mmph::core
