// Tests for the blocked reward kernels (kernels.hpp): equivalence with the
// per-point reference path across norms, dimensions, reward shapes and
// residual states; ActiveSet semantics; ParallelEvaluator determinism; and
// solver-identity — the same centers with the blocked path on and off.

#include "mmph/core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "mmph/core/indexed_reward.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/sharded_solver.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::size_t dim, geo::Metric metric,
                       RewardShape shape, std::uint64_t seed,
                       double radius = 1.0) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.dim = dim;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), radius,
                                metric, shape);
}

/// Residual states exercised by the equivalence sweeps.
std::vector<std::vector<double>> residual_cases(std::size_t n) {
  std::vector<double> zero(n, 0.0);
  std::vector<double> full(n, 1.0);
  std::vector<double> partial(n);
  for (std::size_t i = 0; i < n; ++i) {
    partial[i] = static_cast<double>(i % 3) / 2.0;  // 0, 0.5, 1, 0, ...
  }
  return {zero, partial, full};
}

double reference_coverage(const Problem& p, geo::ConstVec c,
                          std::span<const double> y) {
  kernels::ScopedBlockedKernels off(false);
  return coverage_reward(p, c, y);
}

double reference_apply(const Problem& p, geo::ConstVec c,
                       std::span<double> y) {
  kernels::ScopedBlockedKernels off(false);
  return apply_center(p, c, y);
}

TEST(BlockKernels, MatchScalarAcrossNormsDimsShapesResiduals) {
  const std::vector<geo::Metric> metrics{geo::l1_metric(), geo::l2_metric(),
                                         geo::linf_metric(), geo::Metric(3.0)};
  for (const geo::Metric& metric : metrics) {
    for (const std::size_t dim : {2u, 3u, 5u}) {
      for (const RewardShape shape :
           {RewardShape::kLinear, RewardShape::kBinary}) {
        const Problem p = random_problem(300, dim, metric, shape, 17);
        for (const auto& y : residual_cases(p.size())) {
          for (std::size_t c = 0; c < 10; ++c) {
            const geo::ConstVec center = p.point(c * 7);
            const double expect = reference_coverage(p, center, y);
            const double got = kernels::block_coverage_reward(p, center, y);
            EXPECT_NEAR(got, expect, 1e-12 * (1.0 + std::fabs(expect)))
                << metric.name() << " dim=" << dim
                << " shape=" << reward_shape_name(shape);
          }
        }
      }
    }
  }
}

TEST(BlockKernels, ApplyMatchesScalarResidualUpdates) {
  const std::vector<geo::Metric> metrics{geo::l1_metric(), geo::l2_metric(),
                                         geo::linf_metric()};
  for (const geo::Metric& metric : metrics) {
    for (const RewardShape shape :
         {RewardShape::kLinear, RewardShape::kBinary}) {
      const Problem p = random_problem(300, 2, metric, shape, 29);
      std::vector<double> y_ref = fresh_residual(p);
      std::vector<double> y_blk = fresh_residual(p);
      for (std::size_t round = 0; round < 4; ++round) {
        const geo::ConstVec center = p.point(round * 31);
        const double g_ref = reference_apply(p, center, y_ref);
        const double g_blk = kernels::block_apply_center(p, center, y_blk);
        EXPECT_NEAR(g_blk, g_ref, 1e-12 * (1.0 + std::fabs(g_ref)));
        for (std::size_t i = 0; i < p.size(); ++i) {
          EXPECT_NEAR(y_blk[i], y_ref[i], 1e-13) << "point " << i;
        }
      }
    }
  }
}

TEST(BlockKernels, LargeBlockCountAndTailHandled) {
  // n spanning several kBlockSize blocks plus a ragged tail.
  const std::size_t n = 3 * kernels::kBlockSize + 37;
  const Problem p =
      random_problem(n, 2, geo::l2_metric(), RewardShape::kLinear, 41);
  const auto y = fresh_residual(p);
  for (std::size_t c = 0; c < 5; ++c) {
    const geo::ConstVec center = p.point(c * 101);
    EXPECT_NEAR(kernels::block_coverage_reward(p, center, y),
                reference_coverage(p, center, y), 1e-12);
  }
}

TEST(IndexedKernels, BlockedCellSpansMatchReferencePath) {
  for (const geo::Metric& metric : {geo::l1_metric(), geo::l2_metric()}) {
    const Problem p =
        random_problem(400, 2, metric, RewardShape::kLinear, 53);
    const IndexedProblem indexed(p);
    auto y_on = fresh_residual(p);
    auto y_off = fresh_residual(p);
    for (std::size_t c = 0; c < 8; ++c) {
      const geo::ConstVec center = p.point(c * 13);
      double cov_on, cov_off, app_on, app_off;
      {
        kernels::ScopedBlockedKernels on(true);
        cov_on = indexed.coverage_reward(center, y_on);
        app_on = indexed.apply_center(center, y_on);
      }
      {
        kernels::ScopedBlockedKernels off(false);
        cov_off = indexed.coverage_reward(center, y_off);
        app_off = indexed.apply_center(center, y_off);
      }
      EXPECT_NEAR(cov_on, cov_off, 1e-12 * (1.0 + std::fabs(cov_off)));
      EXPECT_NEAR(app_on, app_off, 1e-12 * (1.0 + std::fabs(app_off)));
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_NEAR(y_on[i], y_off[i], 1e-13);
    }
  }
}

TEST(ActiveSet, MatchesFullScanAndCompacts) {
  const Problem p =
      random_problem(500, 2, geo::l2_metric(), RewardShape::kLinear, 61);
  kernels::ActiveSet active(p);
  std::vector<double> y = fresh_residual(p);
  EXPECT_EQ(active.active_count(), p.size());

  for (std::size_t round = 0; round < 6; ++round) {
    const geo::ConstVec center = p.point(round * 71);
    const double expect_cov = kernels::block_coverage_reward(p, center, y);
    EXPECT_DOUBLE_EQ(active.coverage_reward(center), expect_cov);
    const double expect_gain = kernels::block_apply_center(p, center, y);
    EXPECT_DOUBLE_EQ(active.apply_center(center), expect_gain);
  }

  // The active set's exported residual equals the full-vector state.
  std::vector<double> exported(p.size());
  active.export_residual(exported);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(exported[i], y[i]) << "point " << i;
  }

  // Exhausted points are dropped from the scan but counted out exactly.
  std::size_t active_in_y = 0;
  for (const double v : y) active_in_y += v > 0.0 ? 1 : 0;
  EXPECT_EQ(active.active_count(), active_in_y);
}

TEST(ActiveSet, ZeroResidualStartsEmpty) {
  const Problem p =
      random_problem(64, 2, geo::l2_metric(), RewardShape::kLinear, 67);
  const std::vector<double> zeros(p.size(), 0.0);
  kernels::ActiveSet active(p, zeros);
  EXPECT_EQ(active.active_count(), 0u);
  EXPECT_EQ(active.scan_size(), 0u);
  EXPECT_DOUBLE_EQ(active.coverage_reward(p.point(0)), 0.0);
  std::vector<double> exported(p.size(), 5.0);
  active.export_residual(exported);
  for (const double v : exported) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ActiveSet, ExplicitCompactPreservesSums) {
  const Problem p =
      random_problem(300, 3, geo::l1_metric(), RewardShape::kLinear, 71);
  kernels::ActiveSet active(p);
  (void)active.apply_center(p.point(5));
  (void)active.apply_center(p.point(90));
  const double before = active.coverage_reward(p.point(33));
  active.compact();
  EXPECT_DOUBLE_EQ(active.coverage_reward(p.point(33)), before);
}

TEST(ParallelEvaluator, PoolAndSerialGainsAreIdentical) {
  const Problem p =
      random_problem(400, 2, geo::l2_metric(), RewardShape::kLinear, 83);
  const auto y = fresh_residual(p);
  const kernels::ParallelEvaluator serial(nullptr);
  const kernels::ParallelEvaluator parallel(&par::ThreadPool::global());
  const std::vector<double> a = serial.point_gains(p, y);
  const std::vector<double> b = parallel.point_gains(p, y);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "candidate " << i;
  }
  // Same determinism over an active set and over an explicit pool.
  const kernels::ActiveSet active(p);
  const std::vector<double> c = serial.point_gains(active);
  const std::vector<double> d = parallel.point_gains(active);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c[i], d[i]) << "candidate " << i;
  }
  const std::vector<double> e = serial.pool_gains(p, p.points(), y);
  const std::vector<double> f = parallel.pool_gains(p, p.points(), y);
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_DOUBLE_EQ(e[i], f[i]) << "candidate " << i;
  }
}

/// Asserts both solutions picked exactly the same center coordinates.
void expect_identical_centers(const Solution& a, const Solution& b) {
  ASSERT_EQ(a.centers.size(), b.centers.size());
  for (std::size_t j = 0; j < a.centers.size(); ++j) {
    for (std::size_t d = 0; d < a.centers.dim(); ++d) {
      EXPECT_DOUBLE_EQ(a.centers[j][d], b.centers[j][d])
          << "center " << j << " dim " << d;
    }
  }
}

TEST(SolverIdentity, LazyGreedySameCentersKernelsOnAndOff) {
  for (const geo::Metric& metric : {geo::l1_metric(), geo::l2_metric()}) {
    const Problem p =
        random_problem(250, 2, metric, RewardShape::kLinear, 97);
    Solution on, off;
    {
      kernels::ScopedBlockedKernels guard(true);
      on = LazyGreedySolver().solve(p, 6);
    }
    {
      kernels::ScopedBlockedKernels guard(false);
      off = LazyGreedySolver().solve(p, 6);
    }
    expect_identical_centers(on, off);
    EXPECT_NEAR(on.total_reward, off.total_reward, 1e-9);
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_NEAR(on.residual[i], off.residual[i], 1e-12);
    }
  }
}

TEST(SolverIdentity, LazyGreedyParallelInitSameCenters) {
  const Problem p =
      random_problem(300, 2, geo::l2_metric(), RewardShape::kLinear, 101);
  const Solution serial = LazyGreedySolver().solve(p, 5);
  const Solution parallel =
      LazyGreedySolver(&par::ThreadPool::global()).solve(p, 5);
  expect_identical_centers(serial, parallel);
  EXPECT_DOUBLE_EQ(serial.total_reward, parallel.total_reward);
}

TEST(SolverIdentity, IndexedGreedySameCentersKernelsOnAndOff) {
  const Problem p =
      random_problem(250, 2, geo::l2_metric(), RewardShape::kLinear, 103);
  Solution on, off;
  {
    kernels::ScopedBlockedKernels guard(true);
    on = IndexedGreedyLocalSolver().solve(p, 5);
  }
  {
    kernels::ScopedBlockedKernels guard(false);
    off = IndexedGreedyLocalSolver().solve(p, 5);
  }
  expect_identical_centers(on, off);
}

TEST(SolverIdentity, ShardedSolverSameCentersKernelsOnAndOff) {
  const Problem p =
      random_problem(600, 2, geo::l2_metric(), RewardShape::kLinear, 107);
  serve::ShardedSolverConfig config;
  config.max_shards = 4;
  config.min_shard_size = 32;
  serve::ShardedSolver solver(par::ThreadPool::global(), config);
  Solution on, off;
  {
    kernels::ScopedBlockedKernels guard(true);
    on = solver.solve(p, 5);
  }
  {
    kernels::ScopedBlockedKernels guard(false);
    off = solver.solve(p, 5);
  }
  expect_identical_centers(on, off);
  EXPECT_NEAR(on.total_reward, off.total_reward, 1e-9);
}

TEST(EvaluationCount, StableAcrossKernelAndParallelPaths) {
  const Problem p =
      random_problem(200, 2, geo::l2_metric(), RewardShape::kLinear, 109);
  const LazyGreedySolver serial;
  (void)serial.solve(p, 4);
  const std::size_t baseline = serial.last_evaluation_count();
  // The first-round scan alone is n evaluations; laziness keeps the rest
  // far below a full k*n rescan.
  EXPECT_GE(baseline, p.size());
  EXPECT_LT(baseline, 4 * p.size());

  // Identical work with the blocked path off (same heap trajectory)...
  {
    kernels::ScopedBlockedKernels guard(false);
    const LazyGreedySolver reference;
    (void)reference.solve(p, 4);
    EXPECT_EQ(reference.last_evaluation_count(), baseline);
  }
  // ...and with the first-round scan sharded across the pool.
  const LazyGreedySolver parallel(&par::ThreadPool::global());
  (void)parallel.solve(p, 4);
  EXPECT_EQ(parallel.last_evaluation_count(), baseline);
}

}  // namespace
}  // namespace mmph::core
