// Differential sweep: on ~200 small seeded instances (n <= 12, 2-D/3-D,
// 1-/2-norm, weighted/unweighted) every production greedy must stay
// within the paper's Theorem 2 ratio 1-(1-1/n)^k of the exhaustive
// optimum over input points, lazy greedy must select *bit-identical*
// solutions to the plain Algorithm 2 it accelerates, and ShardedSolver
// on a sub-min_shard_size instance (single shard) must match lazy greedy
// bit-for-bit. Any regression in scoring, tie-breaking, or the lazy
// priority queue shows up as a seed-stamped failure here.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/geometry/norms.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/sharded_solver.hpp"

namespace mmph::core {
namespace {

struct Variant {
  std::size_t dim;
  geo::Metric metric;
  rnd::WeightScheme weights;
  const char* label;
};

/// Theorem 2: greedy achieves at least (1 - (1 - 1/n)^k) * OPT.
double theorem2_ratio(std::size_t n, std::size_t k) {
  return 1.0 - std::pow(1.0 - 1.0 / static_cast<double>(n),
                        static_cast<double>(k));
}

void expect_identical(const Solution& got, const Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.centers.size(), want.centers.size()) << context;
  ASSERT_EQ(got.centers.dim(), want.centers.dim()) << context;
  EXPECT_EQ(got.total_reward, want.total_reward) << context;  // bitwise
  for (std::size_t c = 0; c < got.centers.size(); ++c) {
    for (std::size_t d = 0; d < got.centers.dim(); ++d) {
      EXPECT_EQ(got.centers[c][d], want.centers[c][d])
          << context << " center " << c << " coord " << d;
    }
  }
}

TEST(Differential, GreedyFamilyVsExhaustiveOptimum) {
  const Variant variants[] = {
      {2, geo::l2_metric(), rnd::WeightScheme::kSame, "2d-l2-unweighted"},
      {2, geo::l1_metric(), rnd::WeightScheme::kUniformInt, "2d-l1-weighted"},
      {3, geo::l2_metric(), rnd::WeightScheme::kUniformInt, "3d-l2-weighted"},
      {3, geo::l1_metric(), rnd::WeightScheme::kSame, "3d-l1-unweighted"},
  };
  par::ThreadPool pool(2);
  const serve::ShardedSolverConfig shard_config;  // min_shard_size = 64
  ASSERT_GE(shard_config.min_shard_size, 12u)
      << "instances below must fit one shard for the bit-equality claim";
  const serve::ShardedSolver sharded(pool, shard_config);
  const GreedyLocalSolver greedy2;
  const GreedySimpleSolver greedy3;
  const LazyGreedySolver lazy;

  int instances = 0;
  for (std::uint64_t seed = 1; seed <= 70; ++seed) {
    const Variant& variant = variants[seed % 4];
    rnd::WorkloadSpec spec;
    spec.n = 6 + seed % 7;  // 6..12
    spec.dim = variant.dim;
    spec.weights = variant.weights;
    rnd::Rng rng(seed);
    const Problem problem = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, variant.metric);

    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      if (k > spec.n) continue;
      ++instances;
      const std::string context = "seed=" + std::to_string(seed) + " " +
                                  variant.label + " n=" +
                                  std::to_string(spec.n) + " k=" +
                                  std::to_string(k);

      const double optimum =
          ExhaustiveSolver::over_points(problem).solve(problem, k)
              .total_reward;
      const double floor = theorem2_ratio(spec.n, k) * optimum;
      // A hair of slack: the *ratio arithmetic* here is floating point;
      // the solver rewards themselves are compared exactly below.
      const double slack = 1e-9 * std::max(1.0, optimum);

      const Solution s2 = greedy2.solve(problem, k);
      const Solution s3 = greedy3.solve(problem, k);
      const Solution sl = lazy.solve(problem, k);
      const Solution ss = sharded.solve(problem, k);
      EXPECT_GE(s2.total_reward, floor - slack) << context << " greedy2";
      EXPECT_GE(s3.total_reward, floor - slack) << context << " greedy3";
      EXPECT_GE(sl.total_reward, floor - slack) << context << " lazy";
      EXPECT_GE(ss.total_reward, floor - slack) << context << " sharded";
      // Greedy never beats the optimum over the same candidate set.
      EXPECT_LE(s2.total_reward, optimum + slack) << context;

      // Lazy evaluation is an acceleration, not an approximation: it must
      // pick the same centers as Algorithm 2, bit for bit...
      expect_identical(sl, s2, context + " lazy-vs-greedy2");
      // ...and a single-shard sharded solve collapses to lazy greedy.
      expect_identical(ss, sl, context + " sharded-vs-lazy");
    }
  }
  EXPECT_GE(instances, 200) << "sweep shrank — differential coverage lost";
}

}  // namespace
}  // namespace mmph::core
