// Tests for the spatially-indexed reward kernels and the indexed greedy.

#include <gtest/gtest.h>

#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/indexed_reward.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::size_t dim, double radius,
                       geo::Metric metric, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  spec.dim = dim;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), radius,
                                metric);
}

TEST(IndexedReward, CoverageMatchesPlainKernel) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = random_problem(60, 2, 1.0, geo::l2_metric(), seed);
    const IndexedProblem indexed(p);
    const auto y = fresh_residual(p);
    rnd::Rng rng(seed + 100);
    for (int trial = 0; trial < 30; ++trial) {
      const std::vector<double> c{rng.uniform(0.0, 4.0),
                                  rng.uniform(0.0, 4.0)};
      EXPECT_NEAR(indexed.coverage_reward(c, y), coverage_reward(p, c, y),
                  1e-9);
    }
  }
}

TEST(IndexedReward, CoverageMatchesUnderL1AndLinf) {
  for (geo::Metric metric : {geo::l1_metric(), geo::linf_metric()}) {
    const Problem p = random_problem(50, 3, 1.5, metric, 7);
    const IndexedProblem indexed(p);
    const auto y = fresh_residual(p);
    rnd::Rng rng(8);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> c(3);
      for (auto& v : c) v = rng.uniform(0.0, 4.0);
      EXPECT_NEAR(indexed.coverage_reward(c, y), coverage_reward(p, c, y),
                  1e-9);
    }
  }
}

TEST(IndexedReward, ApplyMatchesPlainKernel) {
  const Problem p = random_problem(40, 2, 1.0, geo::l2_metric(), 9);
  const IndexedProblem indexed(p);
  auto y_plain = fresh_residual(p);
  auto y_indexed = fresh_residual(p);
  rnd::Rng rng(10);
  for (int round = 0; round < 5; ++round) {
    const std::vector<double> c{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    const double g_plain = apply_center(p, c, y_plain);
    const double g_indexed = indexed.apply_center(c, y_indexed);
    EXPECT_NEAR(g_plain, g_indexed, 1e-9);
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_NEAR(y_plain[i], y_indexed[i], 1e-12);
    }
  }
}

TEST(IndexedReward, PartialResidualsHandled) {
  const Problem p = random_problem(30, 2, 1.5, geo::l2_metric(), 11);
  const IndexedProblem indexed(p);
  std::vector<double> y(p.size());
  rnd::Rng rng(12);
  for (auto& v : y) v = rng.uniform(0.0, 1.0);
  const std::vector<double> c{2.0, 2.0};
  EXPECT_NEAR(indexed.coverage_reward(c, y), coverage_reward(p, c, y), 1e-9);
}

TEST(IndexedGreedy, Name) {
  EXPECT_EQ(IndexedGreedyLocalSolver().name(), "greedy2-indexed");
}

TEST(IndexedGreedy, RejectsZeroK) {
  const Problem p = random_problem(5, 2, 1.0, geo::l2_metric(), 13);
  EXPECT_THROW((void)IndexedGreedyLocalSolver().solve(p, 0), InvalidArgument);
}

TEST(IndexedGreedy, MatchesPlainGreedy2) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = random_problem(50, 2, 1.0, geo::l2_metric(), seed);
    const Solution plain = GreedyLocalSolver().solve(p, 4);
    const Solution indexed = IndexedGreedyLocalSolver().solve(p, 4);
    EXPECT_NEAR(plain.total_reward, indexed.total_reward, 1e-9)
        << "seed " << seed;
  }
}

TEST(IndexedGreedyComplex, Name) {
  EXPECT_EQ(IndexedGreedyComplexSolver().name(), "greedy4-indexed");
}

TEST(IndexedGreedyComplex, MatchesPlainGreedy4) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = random_problem(40, 2, 1.0, geo::l2_metric(), seed);
    const Solution plain = GreedyComplexSolver().solve(p, 4);
    const Solution indexed = IndexedGreedyComplexSolver().solve(p, 4);
    EXPECT_NEAR(plain.total_reward, indexed.total_reward, 1e-9)
        << "seed " << seed;
    ASSERT_EQ(plain.centers.size(), indexed.centers.size());
    for (std::size_t j = 0; j < plain.centers.size(); ++j) {
      EXPECT_TRUE(
          geo::approx_equal(plain.centers[j], indexed.centers[j], 1e-9))
          << "seed " << seed << " round " << j;
    }
  }
}

TEST(IndexedGreedyComplex, MatchesPlainUnderL1In3D) {
  const Problem p = random_problem(30, 3, 1.5, geo::l1_metric(), 21);
  const double plain = GreedyComplexSolver().solve(p, 3).total_reward;
  const double indexed = IndexedGreedyComplexSolver().solve(p, 3).total_reward;
  EXPECT_NEAR(plain, indexed, 1e-9);
}

TEST(IndexedGreedyComplex, AccountingConsistent) {
  const Problem p = random_problem(25, 2, 1.0, geo::l2_metric(), 22);
  const Solution s = IndexedGreedyComplexSolver().solve(p, 3);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
  EXPECT_THROW((void)IndexedGreedyComplexSolver().solve(p, 0),
               InvalidArgument);
}

TEST(IndexedGreedy, SolutionAccountingConsistent) {
  const Problem p = random_problem(40, 3, 1.5, geo::l1_metric(), 14);
  const Solution s = IndexedGreedyLocalSolver().solve(p, 3);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
  double sum = 0.0;
  for (double g : s.round_rewards) sum += g;
  EXPECT_NEAR(sum, s.total_reward, 1e-12);
}

}  // namespace
}  // namespace mmph::core
