// Tests for the RoundSolverBase shared loop, via a minimal mock solver:
// every round-based algorithm inherits these invariants, so they are
// pinned once here against a solver with fully predictable choices.

#include <gtest/gtest.h>

#include "mmph/core/reward.hpp"
#include "mmph/core/solver.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

/// Always selects the given fixed center.
class FixedCenterSolver final : public RoundSolverBase {
 public:
  explicit FixedCenterSolver(std::vector<double> center)
      : center_(std::move(center)) {}

  [[nodiscard]] std::string name() const override { return "fixed"; }

  mutable int select_calls = 0;

 protected:
  void select_center(const Problem&, std::span<const double>,
                     std::span<double> out) const override {
    ++select_calls;
    geo::assign(out, center_);
  }

 private:
  std::vector<double> center_;
};

/// Throws on the configured round (tests exception propagation).
class ThrowingSolver final : public RoundSolverBase {
 public:
  explicit ThrowingSolver(int throw_on_round) : round_(throw_on_round) {}

  [[nodiscard]] std::string name() const override { return "throwing"; }

 protected:
  void select_center(const Problem& problem, std::span<const double>,
                     std::span<double> out) const override {
    if (++calls_ == round_) throw StateError("synthetic failure");
    geo::assign(out, problem.point(0));
  }

 private:
  int round_;
  mutable int calls_ = 0;
};

Problem line_problem() {
  return Problem(geo::PointSet::from_rows({{0.0, 0.0}, {1.0, 0.0}}),
                 {1.0, 2.0}, 2.0, geo::l2_metric());
}

TEST(RoundSolverBase, CallsSelectOncePerRound) {
  const FixedCenterSolver solver({0.0, 0.0});
  (void)solver.solve(line_problem(), 5);
  EXPECT_EQ(solver.select_calls, 5);
}

TEST(RoundSolverBase, NamePropagatesToSolution) {
  const FixedCenterSolver solver({0.0, 0.0});
  EXPECT_EQ(solver.solve(line_problem(), 1).solver_name, "fixed");
}

TEST(RoundSolverBase, AccountingShapesMatchK) {
  const FixedCenterSolver solver({0.5, 0.0});
  const Solution s = solver.solve(line_problem(), 3);
  EXPECT_EQ(s.centers.size(), 3u);
  EXPECT_EQ(s.round_rewards.size(), 3u);
  EXPECT_EQ(s.residual.size(), 2u);
}

TEST(RoundSolverBase, RepeatedCenterExhaustsResiduals) {
  // Center at (0,0), r=2: u = (1, 0.5). Round rewards: 1*1 + 2*0.5 = 2;
  // then point 1's remaining 0.5 -> 1.0; then 0.
  const FixedCenterSolver solver({0.0, 0.0});
  const Solution s = solver.solve(line_problem(), 3);
  EXPECT_DOUBLE_EQ(s.round_rewards[0], 2.0);
  EXPECT_DOUBLE_EQ(s.round_rewards[1], 1.0);
  EXPECT_DOUBLE_EQ(s.round_rewards[2], 0.0);
  EXPECT_DOUBLE_EQ(s.total_reward, 3.0);
}

TEST(RoundSolverBase, ResidualsStayInUnitInterval) {
  rnd::WorkloadSpec spec;
  spec.n = 20;
  rnd::Rng rng(1);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l2_metric());
  const FixedCenterSolver solver({2.0, 2.0});
  const Solution s = solver.solve(p, 10);
  for (double y : s.residual) {
    EXPECT_GE(y, -1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
  }
}

TEST(RoundSolverBase, ZeroKRejected) {
  const FixedCenterSolver solver({0.0, 0.0});
  EXPECT_THROW((void)solver.solve(line_problem(), 0), InvalidArgument);
}

TEST(RoundSolverBase, SelectExceptionPropagates) {
  const ThrowingSolver solver(2);
  EXPECT_THROW((void)solver.solve(line_problem(), 3), StateError);
}

TEST(RoundSolverBase, TotalEqualsRoundSum) {
  const FixedCenterSolver solver({1.0, 0.0});
  const Solution s = solver.solve(line_problem(), 4);
  double sum = 0.0;
  for (double g : s.round_rewards) sum += g;
  EXPECT_DOUBLE_EQ(sum, s.total_reward);
}

}  // namespace
}  // namespace mmph::core
