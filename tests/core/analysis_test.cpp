// Tests for the expected-reward analysis model, including Monte Carlo
// validation of the closed forms.

#include <gtest/gtest.h>

#include <cmath>

#include "mmph/core/analysis.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(UnitBallVolume, KnownClosedForms) {
  // L2: circle pi, sphere 4/3 pi.
  EXPECT_NEAR(unit_ball_volume(2, 2.0), kPi, 1e-12);
  EXPECT_NEAR(unit_ball_volume(3, 2.0), 4.0 / 3.0 * kPi, 1e-12);
  // L1 (cross-polytope): 2^m / m!.
  EXPECT_NEAR(unit_ball_volume(2, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(unit_ball_volume(3, 1.0), 8.0 / 6.0, 1e-12);
  // Linf (cube): 2^m.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(unit_ball_volume(2, inf), 4.0, 1e-12);
  EXPECT_NEAR(unit_ball_volume(4, inf), 16.0, 1e-12);
  // 1-D: every norm gives the segment [-1, 1].
  EXPECT_NEAR(unit_ball_volume(1, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(unit_ball_volume(1, 3.7), 2.0, 1e-12);
}

TEST(UnitBallVolume, MonotoneInP) {
  // Larger p means a bigger ball (L1 ball inside L2 inside Linf).
  for (std::size_t dim : {2u, 3u, 5u}) {
    EXPECT_LT(unit_ball_volume(dim, 1.0), unit_ball_volume(dim, 2.0));
    EXPECT_LT(unit_ball_volume(dim, 2.0), unit_ball_volume(dim, 8.0));
  }
}

TEST(UnitBallVolume, Validation) {
  EXPECT_THROW((void)unit_ball_volume(0, 2.0), InvalidArgument);
  EXPECT_THROW((void)unit_ball_volume(2, 0.5), InvalidArgument);
}

TEST(BallVolume, ScalesWithRadiusPower) {
  const double v1 = ball_volume(3, geo::l2_metric(), 1.0);
  const double v2 = ball_volume(3, geo::l2_metric(), 2.0);
  EXPECT_NEAR(v2 / v1, 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(ball_volume(2, geo::l1_metric(), 0.0), 0.0);
}

TEST(BallVolume, MonteCarloAgreement) {
  // Fraction of the [-1,1]^2 square inside the unit L1/L2 balls.
  rnd::Rng rng(1);
  int in_l1 = 0, in_l2 = 0;
  const int samples = 200000;
  for (int s = 0; s < samples; ++s) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    if (std::fabs(x) + std::fabs(y) <= 1.0) ++in_l1;
    if (x * x + y * y <= 1.0) ++in_l2;
  }
  EXPECT_NEAR(4.0 * in_l1 / samples, unit_ball_volume(2, 1.0), 0.02);
  EXPECT_NEAR(4.0 * in_l2 / samples, unit_ball_volume(2, 2.0), 0.02);
}

TEST(MeanUnitCoverage, ClosedForm) {
  EXPECT_DOUBLE_EQ(mean_unit_coverage(1, RewardShape::kLinear), 0.5);
  EXPECT_DOUBLE_EQ(mean_unit_coverage(2, RewardShape::kLinear), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(mean_unit_coverage(3, RewardShape::kLinear), 0.25);
  EXPECT_DOUBLE_EQ(mean_unit_coverage(2, RewardShape::kBinary), 1.0);
}

TEST(MeanUnitCoverage, MonteCarloAgreement) {
  // Sample points uniformly in the unit L2 disk; average (1 - d).
  rnd::Rng rng(2);
  double sum = 0.0;
  int count = 0;
  while (count < 100000) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    const double d = std::sqrt(x * x + y * y);
    if (d > 1.0) continue;
    sum += 1.0 - d;
    ++count;
  }
  EXPECT_NEAR(sum / count, mean_unit_coverage(2, RewardShape::kLinear),
              0.005);
}

TEST(ExpectedReward, MatchesMeasuredCoverageAwayFromBoundary) {
  // Large box, small radius, center in the middle: boundary effects are
  // negligible and the model should match the empirical mean closely.
  const std::size_t n = 4000;
  const double box = 20.0;
  const double r = 1.5;
  rnd::Rng rng(3);
  geo::PointSet pts(2);
  std::vector<double> weights(n, 1.0);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.uniform(0.0, box);
    p[1] = rng.uniform(0.0, box);
    pts.push_back(p);
  }
  const Problem problem(std::move(pts), std::move(weights), r,
                        geo::l2_metric());
  const auto y = fresh_residual(problem);
  // Average measured reward over interior probe centers.
  double measured = 0.0;
  int probes = 0;
  for (double cx = 5.0; cx <= 15.0; cx += 2.5) {
    for (double cy = 5.0; cy <= 15.0; cy += 2.5) {
      const std::vector<double> c{cx, cy};
      measured += coverage_reward(problem, c, y);
      ++probes;
    }
  }
  measured /= probes;
  const double predicted = expected_single_center_reward(
      n, 2, geo::l2_metric(), r, box, 1.0);
  EXPECT_NEAR(measured, predicted, 0.2 * predicted);
}

TEST(ExpectedReward, BinaryPredictionHigherThanLinear) {
  const double lin = expected_single_center_reward(
      100, 2, geo::l2_metric(), 1.0, 4.0, 1.0, RewardShape::kLinear);
  const double bin = expected_single_center_reward(
      100, 2, geo::l2_metric(), 1.0, 4.0, 1.0, RewardShape::kBinary);
  EXPECT_NEAR(bin / lin, 3.0, 1e-9);  // factor (m+1) in 2-D
}

TEST(ExpectedReward, CoverProbabilitySaturates) {
  // Huge radius: every point is covered; reward = n * E[w] * E[u].
  const double v = expected_single_center_reward(
      50, 2, geo::l2_metric(), 100.0, 4.0, 2.0, RewardShape::kBinary);
  EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(Curvature, InUnitInterval) {
  rnd::WorkloadSpec spec;
  spec.n = 15;
  rnd::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), rng.uniform(0.5, 2.0),
        geo::l2_metric());
    const double c = curvature_estimate(p);
    EXPECT_GE(c, 0.0) << trial;
    EXPECT_LE(c, 1.0) << trial;
  }
}

TEST(Curvature, ZeroForNonInteractingPoints) {
  // Points so far apart that no two coverage ranges overlap: f is modular
  // over the point ground set, so curvature is 0.
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}}),
      {1.0, 2.0, 3.0}, 1.0, geo::l2_metric());
  EXPECT_NEAR(curvature_estimate(p), 0.0, 1e-12);
}

TEST(Curvature, OneForFullyRedundantPoints) {
  // Coincident points: once one center is placed, a duplicate center adds
  // nothing, so the top marginal is 0 and curvature is 1.
  const Problem p(geo::PointSet::from_rows({{1.0, 1.0}, {1.0, 1.0}}),
                  {1.0, 1.0}, 1.0, geo::l2_metric());
  EXPECT_NEAR(curvature_estimate(p), 1.0, 1e-12);
}

TEST(Curvature, GuaranteeEndpoints) {
  EXPECT_DOUBLE_EQ(curvature_guarantee(0.0), 1.0);
  EXPECT_NEAR(curvature_guarantee(1.0), 1.0 - std::exp(-1.0), 1e-12);
  // Decreasing in c.
  EXPECT_GT(curvature_guarantee(0.3), curvature_guarantee(0.8));
  EXPECT_THROW((void)curvature_guarantee(-0.1), InvalidArgument);
  EXPECT_THROW((void)curvature_guarantee(1.5), InvalidArgument);
}

TEST(Curvature, GuaranteeDominatesOneMinusInvE) {
  for (double c = 0.05; c <= 1.0; c += 0.05) {
    EXPECT_GE(curvature_guarantee(c), 1.0 - std::exp(-1.0) - 1e-12);
  }
}

TEST(ExpectedReward, Validation) {
  EXPECT_THROW((void)expected_single_center_reward(0, 2, geo::l2_metric(),
                                                   1.0, 4.0, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)expected_single_center_reward(10, 2, geo::l2_metric(),
                                                   1.0, 0.0, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)expected_single_center_reward(10, 2, geo::l2_metric(),
                                                   1.0, 4.0, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace mmph::core
