// Tests for Algorithm 2 (local greedy): coverage-based selection.

#include <gtest/gtest.h>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

TEST(GreedyLocal, Name) { EXPECT_EQ(GreedyLocalSolver().name(), "greedy2"); }

TEST(GreedyLocal, PrefersClusterOverLoneHeavyPoint) {
  // A weight-4 lone point vs a cluster of three weight-2 points: coverage
  // reward of the cluster center (2*1 + 2*0.8 + 2*0.8 = 5.2) beats 4.
  const Problem p(
      geo::PointSet::from_rows(
          {{10.0, 0.0}, {0.0, 0.0}, {0.2, 0.0}, {-0.2, 0.0}}),
      {4.0, 2.0, 2.0, 2.0}, 1.0, geo::l2_metric());
  const Solution s = GreedyLocalSolver().solve(p, 1);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 0.0);
  EXPECT_NEAR(s.total_reward, 5.2, 1e-12);
}

TEST(GreedyLocal, SimpleGreedyDiffersHere) {
  // Same instance: Algorithm 3 takes the lone weight-4 point instead.
  const Problem p(
      geo::PointSet::from_rows(
          {{10.0, 0.0}, {0.0, 0.0}, {0.2, 0.0}, {-0.2, 0.0}}),
      {4.0, 2.0, 2.0, 2.0}, 1.0, geo::l2_metric());
  const Solution s3 = GreedySimpleSolver().solve(p, 1);
  EXPECT_DOUBLE_EQ(s3.centers[0][0], 10.0);
  EXPECT_DOUBLE_EQ(s3.total_reward, 4.0);
}

TEST(GreedyLocal, TieBreaksToLowestIndex) {
  const Problem p(
      geo::PointSet::from_rows({{0.0, 0.0}, {10.0, 0.0}}),
      {1.0, 1.0}, 1.0, geo::l2_metric());
  const Solution s = GreedyLocalSolver().solve(p, 1);
  EXPECT_DOUBLE_EQ(s.centers[0][0], 0.0);
}

TEST(GreedyLocal, TotalMatchesObjective) {
  rnd::WorkloadSpec spec;
  spec.n = 40;
  rnd::Rng rng(11);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.5, geo::l2_metric());
  const Solution s = GreedyLocalSolver().solve(p, 4);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(GreedyLocal, RoundRewardsAreMonotoneNonIncreasing) {
  // Submodularity: the best coverage reward cannot grow between rounds.
  rnd::WorkloadSpec spec;
  spec.n = 40;
  rnd::Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const Solution s = GreedyLocalSolver().solve(p, 6);
    for (std::size_t j = 1; j < s.round_rewards.size(); ++j) {
      EXPECT_LE(s.round_rewards[j], s.round_rewards[j - 1] + 1e-9)
          << "trial " << trial << " round " << j;
    }
  }
}

TEST(GreedyLocal, FirstRoundAtLeastSimpleGreedy) {
  // The coverage reward of the best point dominates the single-point rule.
  rnd::WorkloadSpec spec;
  spec.n = 30;
  rnd::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
    const Solution s2 = GreedyLocalSolver().solve(p, 1);
    const Solution s3 = GreedySimpleSolver().solve(p, 1);
    EXPECT_GE(s2.total_reward + 1e-9, s3.total_reward) << "trial " << trial;
  }
}

TEST(GreedyLocal, CenterIsAlwaysAnInputPoint) {
  rnd::WorkloadSpec spec;
  spec.n = 25;
  rnd::Rng rng(14);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           2.0, geo::l1_metric());
  const Solution s = GreedyLocalSolver().solve(p, 4);
  for (std::size_t j = 0; j < s.centers.size(); ++j) {
    bool found = false;
    for (std::size_t i = 0; i < p.size() && !found; ++i) {
      found = geo::approx_equal(s.centers[j], p.point(i));
    }
    EXPECT_TRUE(found);
  }
}

TEST(GreedyLocal, SinglePointInstance) {
  const Problem p(geo::PointSet::from_rows({{1.0, 1.0}}), {3.0}, 1.0,
                  geo::l2_metric());
  const Solution s = GreedyLocalSolver().solve(p, 2);
  EXPECT_DOUBLE_EQ(s.total_reward, 3.0);
  EXPECT_DOUBLE_EQ(s.round_rewards[0], 3.0);
  EXPECT_DOUBLE_EQ(s.round_rewards[1], 0.0);  // nothing left to claim
}

}  // namespace
}  // namespace mmph::core
