// Tests for candidate center set construction (points, grids, unions).

#include <gtest/gtest.h>

#include <set>

#include "mmph/core/candidate_set.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem square_problem() {
  return Problem(
      geo::PointSet::from_rows({{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}, {4.0, 4.0}}),
      {1.0, 1.0, 1.0, 1.0}, 1.0, geo::l2_metric());
}

TEST(CandidatesFromPoints, CopiesEveryPoint) {
  const Problem p = square_problem();
  const geo::PointSet cands = candidates_from_points(p);
  ASSERT_EQ(cands.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cands[i][0], p.point(i)[0]);
    EXPECT_DOUBLE_EQ(cands[i][1], p.point(i)[1]);
  }
}

TEST(CandidatesGrid, CountsIncludeEndpoints) {
  geo::Box box;
  box.lo = {0.0, 0.0};
  box.hi = {4.0, 4.0};
  const geo::PointSet grid = candidates_grid(box, 1.0);
  EXPECT_EQ(grid.size(), 25u);  // 5 x 5
}

TEST(CandidatesGrid, NonMultipleSpanStillCovered) {
  geo::Box box;
  box.lo = {0.0};
  box.hi = {1.0};
  const geo::PointSet grid = candidates_grid(box, 0.4);
  // Lines at 0, 0.4, 0.8 -> 3 points; endpoint 1.0 is not on the lattice.
  EXPECT_EQ(grid.size(), 3u);
}

TEST(CandidatesGrid, ExactMultipleIncludesFarEdge) {
  geo::Box box;
  box.lo = {0.0};
  box.hi = {2.0};
  const geo::PointSet grid = candidates_grid(box, 0.5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[4][0], 2.0);
}

TEST(CandidatesGrid, ThreeDimensional) {
  geo::Box box;
  box.lo = {0.0, 0.0, 0.0};
  box.hi = {1.0, 1.0, 1.0};
  const geo::PointSet grid = candidates_grid(box, 0.5);
  EXPECT_EQ(grid.size(), 27u);  // 3^3
  EXPECT_EQ(grid.dim(), 3u);
}

TEST(CandidatesGrid, AllPointsInsideBox) {
  geo::Box box;
  box.lo = {-1.0, 2.0};
  box.hi = {1.0, 3.0};
  const geo::PointSet grid = candidates_grid(box, 0.3);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(box.contains(grid[i], 1e-12)) << i;
  }
}

TEST(CandidatesGrid, Validation) {
  geo::Box box;
  box.lo = {0.0};
  box.hi = {1.0};
  EXPECT_THROW((void)candidates_grid(box, 0.0), InvalidArgument);
  EXPECT_THROW((void)candidates_grid(box, -1.0), InvalidArgument);
  geo::Box inverted;
  inverted.lo = {1.0};
  inverted.hi = {0.0};
  EXPECT_THROW((void)candidates_grid(inverted, 0.5), InvalidArgument);
}

TEST(CandidatesGrid, MaxPointsGuard) {
  geo::Box box;
  box.lo = {0.0, 0.0};
  box.hi = {4.0, 4.0};
  EXPECT_THROW((void)candidates_grid(box, 0.001, 1000), InvalidArgument);
}

TEST(CandidatesGridOver, CoversInstanceBoundingBox) {
  const Problem p = square_problem();
  const geo::PointSet grid = candidates_grid_over(p, 1.0);
  EXPECT_EQ(grid.size(), 25u);
}

TEST(CandidatesGridOver, MarginExpandsBox) {
  const Problem p = square_problem();
  const geo::PointSet grid = candidates_grid_over(p, 1.0, 1.0);
  EXPECT_EQ(grid.size(), 49u);  // 7 x 7 over [-1, 5]^2
}

TEST(CandidatesUnion, Concatenates) {
  const Problem p = square_problem();
  const geo::PointSet a = candidates_from_points(p);
  geo::Box box;
  box.lo = {0.0, 0.0};
  box.hi = {4.0, 4.0};
  const geo::PointSet b = candidates_grid(box, 4.0);  // the 4 corners
  const geo::PointSet u = candidates_union(a, b);
  EXPECT_EQ(u.size(), 8u);
}

TEST(CandidatesUnion, DimensionMismatchThrows) {
  const geo::PointSet a(2);
  const geo::PointSet b(3);
  EXPECT_THROW((void)candidates_union(a, b), InvalidArgument);
}

}  // namespace
}  // namespace mmph::core
