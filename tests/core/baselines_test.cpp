// Tests for the random and k-means baseline solvers.

#include <gtest/gtest.h>

#include <set>

#include "mmph/core/baselines.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed,
                       geo::Metric metric = geo::l2_metric()) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                metric);
}

TEST(RandomSolver, Name) { EXPECT_EQ(RandomSolver().name(), "random"); }

TEST(RandomSolver, RejectsZeroK) {
  const Problem p = random_problem(5, 1);
  EXPECT_THROW((void)RandomSolver().solve(p, 0), InvalidArgument);
}

TEST(RandomSolver, CentersAreDistinctInputPoints) {
  const Problem p = random_problem(20, 2);
  const Solution s = RandomSolver(7).solve(p, 5);
  ASSERT_EQ(s.centers.size(), 5u);
  std::set<std::size_t> matched;
  for (std::size_t j = 0; j < 5; ++j) {
    bool found = false;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (geo::approx_equal(s.centers[j], p.point(i))) {
        EXPECT_FALSE(matched.count(i)) << "duplicate center";
        matched.insert(i);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RandomSolver, DeterministicGivenSeed) {
  const Problem p = random_problem(20, 3);
  const Solution a = RandomSolver(11).solve(p, 3);
  const Solution b = RandomSolver(11).solve(p, 3);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  const Solution c = RandomSolver(12).solve(p, 3);
  // Different seed virtually always picks a different set.
  bool same = true;
  for (std::size_t j = 0; j < 3 && same; ++j) {
    same = geo::approx_equal(a.centers[j], c.centers[j]);
  }
  EXPECT_FALSE(same);
}

TEST(RandomSolver, KBeyondNWrapsAround) {
  const Problem p = random_problem(3, 4);
  const Solution s = RandomSolver().solve(p, 7);
  EXPECT_EQ(s.centers.size(), 7u);
  EXPECT_LE(s.total_reward, p.total_weight() + 1e-9);
}

TEST(RandomSolver, AccountingConsistent) {
  const Problem p = random_problem(25, 5);
  const Solution s = RandomSolver().solve(p, 4);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(KMeans, Validation) {
  EXPECT_THROW(KMeansSolver(0), InvalidArgument);
  const Problem p = random_problem(5, 6);
  EXPECT_THROW((void)KMeansSolver().solve(p, 0), InvalidArgument);
}

TEST(KMeans, Name) { EXPECT_EQ(KMeansSolver().name(), "kmeans"); }

TEST(KMeans, ProducesKCentersOfRightDimension) {
  const Problem p = random_problem(30, 7);
  const Solution s = KMeansSolver().solve(p, 4);
  EXPECT_EQ(s.centers.size(), 4u);
  EXPECT_EQ(s.centers.dim(), 2u);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
}

TEST(KMeans, DeterministicGivenSeed) {
  const Problem p = random_problem(30, 8);
  const Solution a = KMeansSolver(50, 3).solve(p, 3);
  const Solution b = KMeansSolver(50, 3).solve(p, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(geo::approx_equal(a.centers[j], b.centers[j], 0.0));
  }
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  // Three tight clusters far apart: k-means with k=3 should put one
  // center near each cluster centroid.
  geo::PointSet ps(2);
  std::vector<double> weights;
  rnd::Rng rng(9);
  const double centers_xy[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      const std::vector<double> pt{
          centers_xy[c][0] + rng.uniform(-0.2, 0.2),
          centers_xy[c][1] + rng.uniform(-0.2, 0.2)};
      ps.push_back(pt);
      weights.push_back(1.0);
    }
  }
  const Problem p(std::move(ps), std::move(weights), 1.0, geo::l2_metric());
  const Solution s = KMeansSolver().solve(p, 3);
  for (int c = 0; c < 3; ++c) {
    double best = 1e9;
    for (std::size_t j = 0; j < 3; ++j) {
      const std::vector<double> target{centers_xy[c][0], centers_xy[c][1]};
      best = std::min(best, geo::l2_distance(s.centers[j], target));
    }
    EXPECT_LT(best, 0.3) << "cluster " << c << " not recovered";
  }
}

TEST(KMeans, L1UsesMediansAndHandlesOutliers) {
  // One far outlier: the 1-norm (median) center should stay with the mass
  // while the 2-norm (mean) center gets dragged.
  geo::PointSet ps(2);
  std::vector<double> weights(8, 1.0);
  for (int i = 0; i < 7; ++i) {
    const std::vector<double> pt{static_cast<double>(i % 3) * 0.1, 0.0};
    ps.push_back(pt);
  }
  const std::vector<double> outlier{100.0, 0.0};
  ps.push_back(outlier);
  const Problem l1(geo::PointSet(ps), std::vector<double>(weights), 1.0,
                   geo::l1_metric());
  const Solution s = KMeansSolver().solve(l1, 1);
  EXPECT_LT(s.centers[0][0], 1.0);  // median resists the outlier
}

TEST(KMeans, MoreCentersNeverHurtMuch) {
  const Problem p = random_problem(40, 10);
  const double r2 = KMeansSolver().solve(p, 2).total_reward;
  const double r6 = KMeansSolver().solve(p, 6).total_reward;
  EXPECT_GE(r6 + 1e-9, r2 * 0.95);
}

TEST(Baselines, GreedyBeatsRandomOnAverage) {
  double greedy_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Problem p = random_problem(30, seed);
    greedy_total += GreedyLocalSolver().solve(p, 3).total_reward;
    random_total += RandomSolver(seed).solve(p, 3).total_reward;
  }
  EXPECT_GT(greedy_total, random_total * 1.1);
}

TEST(Baselines, GreedyBeatsKMeansOnTheCappedObjective) {
  // k-means optimizes distortion, not capped coverage: greedy2 should win
  // on f on average (this is the point of having the baseline).
  double greedy_total = 0.0;
  double kmeans_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Problem p = random_problem(40, seed);
    greedy_total += GreedyLocalSolver().solve(p, 4).total_reward;
    kmeans_total += KMeansSolver(50, seed).solve(p, 4).total_reward;
  }
  EXPECT_GE(greedy_total, kmeans_total);
}

}  // namespace
}  // namespace mmph::core
