// Property tests for Lemma 0a/0b: the objective is monotone submodular.
//
// These are the empirical counterpart of the paper's NP-hardness machinery:
// random instances, random center chains, random extra centers — the
// diminishing-returns inequality must hold every time.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "mmph/core/submodular.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

geo::PointSet random_centers(std::size_t count, std::size_t dim,
                             rnd::Rng& rng) {
  geo::PointSet centers(dim);
  std::vector<double> c(dim);
  for (std::size_t j = 0; j < count; ++j) {
    for (auto& v : c) v = rng.uniform(0.0, 4.0);
    centers.push_back(c);
  }
  return centers;
}

TEST(Lemma0a, ScalarInequalityHoldsOnRandomInputs) {
  // g = min(y+a,1) - min(a,1) - min(y+a+b,1) + min(a+b,1) >= 0.
  rnd::Rng rng(71);
  for (int trial = 0; trial < 100000; ++trial) {
    const double a = rng.uniform(0.0, 2.0);
    const double b = rng.uniform(0.0, 2.0);
    const double y = rng.uniform(0.0, 2.0);
    const double g = std::min(y + a, 1.0) - std::min(a, 1.0) -
                     std::min(y + a + b, 1.0) + std::min(a + b, 1.0);
    ASSERT_GE(g, -1e-12) << "a=" << a << " b=" << b << " y=" << y;
  }
}

class SubmodularSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SubmodularSweep, DiminishingReturns) {
  const auto [dim, norm_id] = GetParam();
  const geo::Metric metric =
      norm_id == 1 ? geo::l1_metric() : geo::l2_metric();
  rnd::Rng rng(72 + dim * 10 + norm_id);
  rnd::WorkloadSpec spec;
  spec.n = 20;
  spec.dim = static_cast<std::size_t>(dim);
  for (int trial = 0; trial < 100; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), rng.uniform(0.5, 2.0), metric);
    const geo::PointSet chain = random_centers(6, p.dim(), rng);
    std::vector<double> extra(p.dim());
    for (auto& v : extra) v = rng.uniform(0.0, 4.0);
    const std::size_t a = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const std::size_t b = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(a), 6));
    const auto v = check_diminishing_returns(p, chain, a, b, extra);
    EXPECT_FALSE(v.violated)
        << "dim=" << dim << " norm=" << norm_id << " trial=" << trial
        << " gain(A)=" << v.gain_small << " gain(B)=" << v.gain_large;
  }
}

TEST_P(SubmodularSweep, Monotone) {
  const auto [dim, norm_id] = GetParam();
  const geo::Metric metric =
      norm_id == 1 ? geo::l1_metric() : geo::l2_metric();
  rnd::Rng rng(73 + dim * 10 + norm_id);
  rnd::WorkloadSpec spec;
  spec.n = 20;
  spec.dim = static_cast<std::size_t>(dim);
  for (int trial = 0; trial < 100; ++trial) {
    const Problem p = Problem::from_workload(
        rnd::generate_workload(spec, rng), rng.uniform(0.5, 2.0), metric);
    const geo::PointSet chain = random_centers(6, p.dim(), rng);
    EXPECT_TRUE(check_monotone(p, chain)) << "trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubmodularSweep,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 2)));

TEST(Submodular, CheckerValidatesPrefixSizes) {
  rnd::WorkloadSpec spec;
  spec.n = 5;
  rnd::Rng rng(74);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const geo::PointSet chain = random_centers(3, 2, rng);
  std::vector<double> extra{0.0, 0.0};
  EXPECT_THROW((void)check_diminishing_returns(p, chain, 2, 1, extra),
               InvalidArgument);
  EXPECT_THROW((void)check_diminishing_returns(p, chain, 0, 4, extra),
               InvalidArgument);
}

TEST(Submodular, ViolationReportCarriesGains) {
  rnd::WorkloadSpec spec;
  spec.n = 10;
  rnd::Rng rng(75);
  const Problem p = Problem::from_workload(rnd::generate_workload(spec, rng),
                                           1.0, geo::l2_metric());
  const geo::PointSet chain = random_centers(4, 2, rng);
  std::vector<double> extra{1.0, 1.0};
  const auto v = check_diminishing_returns(p, chain, 1, 3, extra);
  EXPECT_GE(v.gain_small + 1e-9, v.gain_large);
  EXPECT_GE(v.gain_small, 0.0);
  EXPECT_GE(v.gain_large, 0.0);
}

}  // namespace
}  // namespace mmph::core
