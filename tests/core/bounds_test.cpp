// Tests for the analytic Theorem 1/2 approximation-ratio bounds (Fig. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "mmph/core/bounds.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

TEST(RoundBasedBound, HandValues) {
  EXPECT_DOUBLE_EQ(approx_ratio_round_based(1), 1.0);
  EXPECT_DOUBLE_EQ(approx_ratio_round_based(2), 0.75);
  EXPECT_NEAR(approx_ratio_round_based(4), 1.0 - std::pow(0.75, 4), 1e-12);
}

TEST(RoundBasedBound, DecreasesTowardOneMinusInvE) {
  double prev = approx_ratio_round_based(1);
  for (std::size_t k = 2; k <= 100; ++k) {
    const double cur = approx_ratio_round_based(k);
    EXPECT_LT(cur, prev) << "k=" << k;
    EXPECT_GT(cur, one_minus_inv_e()) << "k=" << k;
    prev = cur;
  }
  EXPECT_NEAR(approx_ratio_round_based(100000), one_minus_inv_e(), 1e-5);
}

TEST(LocalGreedyBound, HandValues) {
  // 1 - (1 - 1/10)^2 = 0.19.
  EXPECT_NEAR(approx_ratio_local_greedy(10, 2), 0.19, 1e-12);
  // 1 - (1 - 1/40)^4.
  EXPECT_NEAR(approx_ratio_local_greedy(40, 4), 1.0 - std::pow(0.975, 4),
              1e-12);
}

TEST(LocalGreedyBound, IncreasesInK) {
  for (std::size_t k = 1; k < 20; ++k) {
    EXPECT_LT(approx_ratio_local_greedy(40, k),
              approx_ratio_local_greedy(40, k + 1));
  }
}

TEST(LocalGreedyBound, DecreasesInN) {
  for (std::size_t n = 5; n < 100; n += 5) {
    EXPECT_GT(approx_ratio_local_greedy(n, 4),
              approx_ratio_local_greedy(n + 5, 4));
  }
}

TEST(Bounds, Approx1DominatesApprox2WhenNExceedsK) {
  // Fig. 2's visual claim: approx.1 is much larger than approx.2 for n > k.
  for (std::size_t n : {10u, 40u}) {
    for (std::size_t k = 1; k <= n / 2; ++k) {
      EXPECT_GT(approx_ratio_round_based(k) + 1e-12,
                approx_ratio_local_greedy(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Bounds, EqualWhenNEqualsK) {
  // With n == k the two formulas coincide.
  EXPECT_DOUBLE_EQ(approx_ratio_round_based(7),
                   approx_ratio_local_greedy(7, 7));
}

TEST(Bounds, Validation) {
  EXPECT_THROW((void)approx_ratio_round_based(0), InvalidArgument);
  EXPECT_THROW((void)approx_ratio_local_greedy(0, 1), InvalidArgument);
  EXPECT_THROW((void)approx_ratio_local_greedy(1, 0), InvalidArgument);
}

TEST(Bounds, AlwaysInUnitInterval) {
  for (std::size_t n = 1; n <= 50; n += 7) {
    for (std::size_t k = 1; k <= 20; k += 3) {
      const double r = approx_ratio_local_greedy(n, k);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

}  // namespace
}  // namespace mmph::core
