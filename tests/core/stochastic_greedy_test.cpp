// Tests for the stochastic (sampled) greedy extension.

#include <gtest/gtest.h>

#include <cmath>

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/stochastic_greedy.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {
namespace {

Problem random_problem(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return Problem::from_workload(rnd::generate_workload(spec, rng), 1.0,
                                geo::l2_metric());
}

TEST(StochasticGreedy, ValidatesEpsilon) {
  EXPECT_THROW(StochasticGreedySolver(0.0), InvalidArgument);
  EXPECT_THROW(StochasticGreedySolver(1.0), InvalidArgument);
  EXPECT_THROW(StochasticGreedySolver(-0.5), InvalidArgument);
  EXPECT_NO_THROW(StochasticGreedySolver(0.5));
}

TEST(StochasticGreedy, Name) {
  EXPECT_EQ(StochasticGreedySolver().name(), "greedy2-stoch");
}

TEST(StochasticGreedy, SampleSizeFormula) {
  const StochasticGreedySolver solver(0.1);
  // ceil((n/k) * ln(10)).
  EXPECT_EQ(solver.sample_size(100, 4),
            static_cast<std::size_t>(std::ceil(25.0 * std::log(10.0))));
  // Clamped to n.
  EXPECT_EQ(solver.sample_size(10, 1), 10u);
  // At least 1.
  EXPECT_GE(StochasticGreedySolver(0.9).sample_size(100, 100), 1u);
}

TEST(StochasticGreedy, SmallerEpsilonMeansBiggerSample) {
  EXPECT_GT(StochasticGreedySolver(0.01).sample_size(200, 4),
            StochasticGreedySolver(0.5).sample_size(200, 4));
}

TEST(StochasticGreedy, DeterministicGivenSeed) {
  const Problem p = random_problem(60, 1);
  const StochasticGreedySolver a(0.2, 7);
  const StochasticGreedySolver b(0.2, 7);
  const Solution sa = a.solve(p, 4);
  const Solution sb = b.solve(p, 4);
  EXPECT_DOUBLE_EQ(sa.total_reward, sb.total_reward);
  for (std::size_t j = 0; j < sa.centers.size(); ++j) {
    EXPECT_TRUE(geo::approx_equal(sa.centers[j], sb.centers[j], 0.0));
  }
}

TEST(StochasticGreedy, DifferentSeedsUsuallyDiffer) {
  const Problem p = random_problem(80, 2);
  const double ra = StochasticGreedySolver(0.5, 1).solve(p, 4).total_reward;
  const double rb = StochasticGreedySolver(0.5, 99).solve(p, 4).total_reward;
  // Not guaranteed, but with eps=0.5 samples are small and seeds diverge.
  EXPECT_NE(ra, rb);
}

TEST(StochasticGreedy, FullSampleEqualsEagerGreedy) {
  // When the sample covers all n points every round (tiny epsilon), the
  // algorithm degenerates to Algorithm 2 exactly (same tie-breaking, since
  // the sample is index-sorted before scanning).
  const Problem p = random_problem(20, 3);
  const StochasticGreedySolver full(1e-9, 5);
  ASSERT_EQ(full.sample_size(20, 3), 20u);
  const Solution stoch = full.solve(p, 3);
  const Solution eager = GreedyLocalSolver().solve(p, 3);
  EXPECT_NEAR(stoch.total_reward, eager.total_reward, 1e-12);
  for (std::size_t j = 0; j < eager.centers.size(); ++j) {
    EXPECT_TRUE(geo::approx_equal(stoch.centers[j], eager.centers[j], 0.0));
  }
}

TEST(StochasticGreedy, QualityNearEagerOnAverage) {
  double stoch_total = 0.0;
  double eager_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Problem p = random_problem(60, seed);
    stoch_total += StochasticGreedySolver(0.1, seed).solve(p, 4).total_reward;
    eager_total += GreedyLocalSolver().solve(p, 4).total_reward;
  }
  EXPECT_GE(stoch_total, 0.85 * eager_total);
  // Sampling can occasionally luck into a better k-set than eager greedy
  // (greedy is not optimal), so only a soft upper bound applies.
  EXPECT_LE(stoch_total, eager_total * 1.05);
}

TEST(StochasticGreedy, AccountingConsistent) {
  const Problem p = random_problem(40, 6);
  const Solution s = StochasticGreedySolver(0.2, 11).solve(p, 4);
  EXPECT_NEAR(s.total_reward, objective_value(p, s.centers), 1e-9);
  EXPECT_EQ(s.centers.size(), 4u);
}

TEST(StochasticGreedy, RejectsZeroK) {
  const Problem p = random_problem(10, 7);
  EXPECT_THROW((void)StochasticGreedySolver().solve(p, 0), InvalidArgument);
}

}  // namespace
}  // namespace mmph::core
