// Seed-sweep driver for the chaos harness — the binary behind
// `tools/check.sh chaos`. Runs hundreds of seeded fault schedules
// through the serve and net stacks and exits nonzero on the first
// invariant violation, printing the seed so the failure reproduces with
//
//   chaos_runner --mode serve --seed <N>
//   (or --mode net / --mode wal / --mode shards / --mode ls)
//
// Usage:
//   chaos_runner [--serve-seeds N] [--net-seeds M] [--wal-seeds W]
//                [--shard-seeds P] [--ls-seeds Q] [--base-seed B]
//                [--mode all|serve|net|wal|shards|ls]
//                [--seed S] [--ops K] [--loops L] [--shards C]
//
// --seed runs exactly one schedule per selected mode (reproduction);
// otherwise seeds B .. B+N-1 per mode are swept. --loops selects the net
// server's event-loop count (default: sweep each seed at 1 AND 4 loops,
// so every net seed exercises both the deterministic single-loop path
// and the multi-loop path with per-loop fault streams). --shards does the
// same for the sharded-store mode's store/WAL shard count (default:
// sweep each seed at 1 AND 4 shards — legacy layout and per-shard dirs).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mmph/chaos/harness.hpp"

namespace {

struct RunnerOptions {
  std::uint64_t serve_seeds = 400;
  std::uint64_t net_seeds = 100;
  std::uint64_t wal_seeds = 250;
  std::uint64_t shard_seeds = 120;
  std::uint64_t ls_seeds = 200;
  std::uint64_t base_seed = 1;
  std::uint64_t one_seed = 0;  // 0 = sweep
  std::size_t ops = 0;         // 0 = harness default
  std::size_t loops = 0;       // 0 = sweep both 1 and 4
  std::size_t shards = 0;      // 0 = sweep both 1 and 4
  bool run_serve = true;
  bool run_net = true;
  bool run_wal = true;
  bool run_shards = true;
  bool run_ls = true;
};

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr,
               "chaos_runner: %s\n"
               "usage: chaos_runner [--serve-seeds N] [--net-seeds M]\n"
               "                    [--wal-seeds W] [--shard-seeds P]\n"
               "                    [--ls-seeds Q] [--base-seed B]\n"
               "                    [--mode all|serve|net|wal|shards|ls]\n"
               "                    [--seed S] [--ops K] [--loops L]\n"
               "                    [--shards C]\n",
               what);
  std::exit(2);
}

std::uint64_t parse_u64(const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') usage_error("bad number");
  return static_cast<std::uint64_t>(value);
}

RunnerOptions parse(int argc, char** argv) {
  RunnerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--serve-seeds") {
      options.serve_seeds = parse_u64(value());
    } else if (arg == "--net-seeds") {
      options.net_seeds = parse_u64(value());
    } else if (arg == "--wal-seeds") {
      options.wal_seeds = parse_u64(value());
    } else if (arg == "--shard-seeds") {
      options.shard_seeds = parse_u64(value());
    } else if (arg == "--ls-seeds") {
      options.ls_seeds = parse_u64(value());
    } else if (arg == "--base-seed") {
      options.base_seed = parse_u64(value());
    } else if (arg == "--seed") {
      options.one_seed = parse_u64(value());
    } else if (arg == "--ops") {
      options.ops = static_cast<std::size_t>(parse_u64(value()));
    } else if (arg == "--loops") {
      options.loops = static_cast<std::size_t>(parse_u64(value()));
      if (options.loops == 0) usage_error("--loops must be >= 1");
    } else if (arg == "--shards") {
      options.shards = static_cast<std::size_t>(parse_u64(value()));
      if (options.shards == 0) usage_error("--shards must be >= 1");
    } else if (arg == "--mode") {
      const std::string mode = value();
      options.run_serve = mode == "all" || mode == "serve";
      options.run_net = mode == "all" || mode == "net";
      options.run_wal = mode == "all" || mode == "wal";
      options.run_shards = mode == "all" || mode == "shards";
      options.run_ls = mode == "all" || mode == "ls";
      if (!options.run_serve && !options.run_net && !options.run_wal &&
          !options.run_shards && !options.run_ls) {
        usage_error("bad --mode");
      }
    } else {
      usage_error(("unknown flag " + arg).c_str());
    }
  }
  return options;
}

bool report(const mmph::chaos::ChaosResult& result, const char* mode) {
  if (!result.ok) {
    std::fprintf(stderr,
                 "FAIL [%s] %s\n"
                 "reproduce: chaos_runner --mode %s --seed %llu\n",
                 mode, result.message.c_str(), mode,
                 static_cast<unsigned long long>(result.seed));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const RunnerOptions options = parse(argc, argv);
  std::uint64_t schedules = 0;
  std::uint64_t faults = 0;

  if (options.run_serve) {
    const std::uint64_t first =
        options.one_seed != 0 ? options.one_seed : options.base_seed;
    const std::uint64_t count =
        options.one_seed != 0 ? 1 : options.serve_seeds;
    for (std::uint64_t i = 0; i < count; ++i) {
      mmph::chaos::ServeChaosOptions serve_options;
      serve_options.seed = first + i;
      if (options.ops != 0) serve_options.operations = options.ops;
      const mmph::chaos::ChaosResult result =
          mmph::chaos::run_serve_chaos(serve_options);
      if (!report(result, "serve")) return 1;
      ++schedules;
      faults += result.faults_fired;
      if ((i + 1) % 50 == 0) {
        std::printf("serve: %llu/%llu schedules ok\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(count));
        std::fflush(stdout);
      }
    }
  }

  if (options.run_net) {
    const std::uint64_t first =
        options.one_seed != 0 ? options.one_seed : options.base_seed;
    const std::uint64_t count = options.one_seed != 0 ? 1 : options.net_seeds;
    std::vector<std::size_t> loop_counts;
    if (options.loops != 0) {
      loop_counts.push_back(options.loops);
    } else {
      loop_counts = {1, 4};  // deterministic path AND the sharded path
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      for (const std::size_t loops : loop_counts) {
        mmph::chaos::NetChaosOptions net_options;
        net_options.seed = first + i;
        net_options.loops = loops;
        if (options.ops != 0) net_options.operations = options.ops;
        const mmph::chaos::ChaosResult result =
            mmph::chaos::run_net_chaos(net_options);
        if (!result.ok) {
          std::fprintf(stderr,
                       "FAIL [net] %s\n"
                       "reproduce: chaos_runner --mode net --seed %llu "
                       "--loops %zu\n",
                       result.message.c_str(),
                       static_cast<unsigned long long>(result.seed), loops);
          return 1;
        }
        ++schedules;
        faults += result.faults_fired;
      }
      if ((i + 1) % 20 == 0) {
        std::printf("net: %llu/%llu seeds ok (loops swept per seed)\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(count));
        std::fflush(stdout);
      }
    }
  }

  if (options.run_wal) {
    const std::uint64_t first =
        options.one_seed != 0 ? options.one_seed : options.base_seed;
    const std::uint64_t count = options.one_seed != 0 ? 1 : options.wal_seeds;
    for (std::uint64_t i = 0; i < count; ++i) {
      mmph::chaos::WalChaosOptions wal_options;
      wal_options.seed = first + i;
      if (options.ops != 0) wal_options.operations = options.ops;
      const mmph::chaos::ChaosResult result =
          mmph::chaos::run_wal_chaos(wal_options);
      if (!report(result, "wal")) return 1;
      ++schedules;
      faults += result.faults_fired;
      if ((i + 1) % 50 == 0) {
        std::printf("wal: %llu/%llu schedules ok\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(count));
        std::fflush(stdout);
      }
    }
  }

  if (options.run_shards) {
    const std::uint64_t first =
        options.one_seed != 0 ? options.one_seed : options.base_seed;
    const std::uint64_t count =
        options.one_seed != 0 ? 1 : options.shard_seeds;
    std::vector<std::size_t> shard_counts;
    if (options.shards != 0) {
      shard_counts.push_back(options.shards);
    } else {
      shard_counts = {1, 4};  // legacy root layout AND per-shard dirs
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      for (const std::size_t shards : shard_counts) {
        mmph::chaos::StoreShardChaosOptions shard_options;
        shard_options.seed = first + i;
        shard_options.shards = shards;
        if (options.ops != 0) shard_options.operations = options.ops;
        const mmph::chaos::ChaosResult result =
            mmph::chaos::run_store_shard_chaos(shard_options);
        if (!result.ok) {
          std::fprintf(stderr,
                       "FAIL [shards] %s\n"
                       "reproduce: chaos_runner --mode shards --seed %llu "
                       "--shards %zu\n",
                       result.message.c_str(),
                       static_cast<unsigned long long>(result.seed), shards);
          return 1;
        }
        ++schedules;
        faults += result.faults_fired;
      }
      if ((i + 1) % 20 == 0) {
        std::printf("shards: %llu/%llu seeds ok (shard counts swept)\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(count));
        std::fflush(stdout);
      }
    }
  }

  if (options.run_ls) {
    const std::uint64_t first =
        options.one_seed != 0 ? options.one_seed : options.base_seed;
    const std::uint64_t count = options.one_seed != 0 ? 1 : options.ls_seeds;
    for (std::uint64_t i = 0; i < count; ++i) {
      mmph::chaos::LsChaosOptions ls_options;
      ls_options.seed = first + i;
      if (options.ops != 0) ls_options.operations = options.ops;
      const mmph::chaos::ChaosResult result =
          mmph::chaos::run_ls_chaos(ls_options);
      if (!report(result, "ls")) return 1;
      ++schedules;
      faults += result.faults_fired;
      if ((i + 1) % 50 == 0) {
        std::printf("ls: %llu/%llu schedules ok\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(count));
        std::fflush(stdout);
      }
    }
  }

  std::printf("chaos: %llu schedules clean, %llu faults injected\n",
              static_cast<unsigned long long>(schedules),
              static_cast<unsigned long long>(faults));
  return 0;
}
