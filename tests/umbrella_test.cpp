// Verifies the umbrella header compiles standalone and exposes the API.

#include "mmph/mmph.hpp"

#include <gtest/gtest.h>

namespace mmph {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  rnd::WorkloadSpec spec;
  spec.n = 12;
  rnd::Rng rng(1);
  const core::Problem p = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  const core::Solution s = core::make_solver("greedy2", p)->solve(p, 2);
  EXPECT_GT(s.total_reward, 0.0);
  EXPECT_NEAR(s.total_reward, core::objective_value(p, s.centers), 1e-9);

  // The ls tier is reachable through the umbrella too: polish the greedy
  // solution and certify it against the upper bound.
  const core::Solution polished = ls::polish(p, s, p.points());
  const ls::UpperBounds bounds =
      ls::certified_upper_bounds(p, 2, s, p.points());
  EXPECT_GE(polished.total_reward, s.total_reward);
  EXPECT_LE(polished.total_reward, bounds.best() + 1e-9);
}

}  // namespace
}  // namespace mmph
