// Tests for the paired statistical comparison.

#include <gtest/gtest.h>

#include <vector>

#include "mmph/exp/paired.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::exp {
namespace {

TEST(Paired, Validation) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)paired_compare(a, b), mmph::InvalidArgument);
  const std::vector<double> empty;
  EXPECT_THROW((void)paired_compare(empty, empty), mmph::InvalidArgument);
  EXPECT_THROW((void)paired_compare(a, a, -1.0), mmph::InvalidArgument);
}

TEST(Paired, CountsWinsAndTies) {
  const std::vector<double> a{3.0, 1.0, 2.0, 2.0};
  const std::vector<double> b{1.0, 3.0, 2.0, 2.0 + 1e-12};
  const PairedComparison cmp = paired_compare(a, b);
  EXPECT_EQ(cmp.samples, 4u);
  EXPECT_EQ(cmp.wins_a, 1u);
  EXPECT_EQ(cmp.wins_b, 1u);
  EXPECT_EQ(cmp.ties, 2u);
}

TEST(Paired, IdenticalSamplesNotSignificant) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const PairedComparison cmp = paired_compare(a, a);
  EXPECT_EQ(cmp.ties, 4u);
  EXPECT_DOUBLE_EQ(cmp.mean_diff, 0.0);
  EXPECT_FALSE(cmp.significant_95);
}

TEST(Paired, ConstantShiftIsMaximallySignificant) {
  // b = a - 0.5 exactly: zero variance of differences, nonzero mean.
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{0.5, 1.5, 2.5};
  const PairedComparison cmp = paired_compare(a, b);
  EXPECT_EQ(cmp.wins_a, 3u);
  EXPECT_TRUE(cmp.significant_95);
  EXPECT_GT(cmp.t_statistic, 0.0);
}

TEST(Paired, DetectsConsistentSmallAdvantage) {
  rnd::Rng rng(1);
  std::vector<double> a(200), b(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double base = rng.uniform(10.0, 20.0);
    b[i] = base;
    a[i] = base + 0.2 + rng.normal(0.0, 0.1);  // small but consistent edge
  }
  const PairedComparison cmp = paired_compare(a, b);
  EXPECT_GT(cmp.wins_a, cmp.wins_b);
  EXPECT_TRUE(cmp.significant_95);
}

TEST(Paired, NoiseAloneIsNotSignificant) {
  rnd::Rng rng(7);
  std::vector<double> a(100), b(100);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double base = rng.uniform(10.0, 20.0);
    a[i] = base + rng.normal(0.0, 0.5);
    b[i] = base + rng.normal(0.0, 0.5);
  }
  const PairedComparison cmp = paired_compare(a, b);
  // With symmetric noise the t-statistic should be modest. (A 5% false
  // positive rate is inherent; the seed is fixed, so this is stable.)
  EXPECT_LT(std::fabs(cmp.t_statistic), 1.96);
}

TEST(Paired, TStatisticSignTracksDirection) {
  const std::vector<double> lo{1.0, 1.1, 0.9, 1.0};
  const std::vector<double> hi{2.0, 2.1, 1.9, 2.0};
  EXPECT_LT(paired_compare(lo, hi).t_statistic, 0.0);
  EXPECT_GT(paired_compare(hi, lo).t_statistic, 0.0);
}

}  // namespace
}  // namespace mmph::exp
