// Tests for report rendering edge cases and output formats.

#include <gtest/gtest.h>

#include <sstream>

#include "mmph/exp/experiment.hpp"
#include "mmph/exp/report.hpp"
#include "mmph/support/error.hpp"

namespace mmph::exp {
namespace {

std::vector<CellStats> tiny_sweep(bool with_exhaustive) {
  TrialSetup setup;
  setup.n = 8;
  setup.k = 2;
  setup.radius = 1.0;
  setup.solver_config.grid_pitch = 1.0;
  return run_sweep(setup, {2}, {1.0}, {"greedy2", "greedy3"},
                   with_exhaustive, 3, 5);
}

TEST(Report, RatioTableRendersMarkdown) {
  const auto cells = tiny_sweep(true);
  io::Table table = ratio_table(cells, {"greedy2", "greedy3"});
  std::ostringstream os;
  table.print_markdown(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("| n | k | r |", 0), 0u);
  EXPECT_NE(out.find("| ratio(greedy2) |"), std::string::npos);
  EXPECT_NE(out.find("|---|"), std::string::npos);
}

TEST(Report, RatioTableCsvHasHeaderAndRow) {
  const auto cells = tiny_sweep(true);
  io::Table table = ratio_table(cells, {"greedy2", "greedy3"});
  std::ostringstream os;
  table.print_csv(os);
  const std::string out = os.str();
  // header + one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("approx.1,approx.2"), std::string::npos);
}

TEST(Report, RewardTableOmitsBoundColumns) {
  const auto cells = tiny_sweep(false);
  io::Table table = reward_table(cells, {"greedy2", "greedy3"});
  std::ostringstream os;
  table.print(os);
  EXPECT_EQ(os.str().find("approx"), std::string::npos);
}

TEST(Report, OverallMeansSkipSolverAbsentFromCells) {
  const auto cells = tiny_sweep(true);
  // Asking for a solver that never ran pools zero samples -> mean 0.
  const auto means = overall_ratio_means(cells, {"greedy2", "greedy9"});
  EXPECT_GT(means.at("greedy2"), 0.0);
  EXPECT_DOUBLE_EQ(means.at("greedy9"), 0.0);
}

TEST(Report, CellStatsCarrySetup) {
  const auto cells = tiny_sweep(false);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].setup.n, 8u);
  EXPECT_EQ(cells[0].setup.k, 2u);
  EXPECT_EQ(cells[0].trials, 3u);
  EXPECT_TRUE(cells[0].ratio.empty());  // no exhaustive -> no ratios
}

TEST(Report, ExhaustiveStatsPopulatedOnlyWhenRequested) {
  const auto with = tiny_sweep(true);
  const auto without = tiny_sweep(false);
  EXPECT_EQ(with[0].exhaustive.count(), 3u);
  EXPECT_EQ(without[0].exhaustive.count(), 0u);
}

}  // namespace
}  // namespace mmph::exp
