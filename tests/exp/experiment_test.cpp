// Tests for the experiment harness: determinism, aggregation, reporting.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "mmph/core/bounds.hpp"
#include "mmph/exp/experiment.hpp"
#include "mmph/exp/report.hpp"

namespace mmph::exp {
namespace {

TrialSetup small_setup() {
  TrialSetup s;
  s.n = 10;
  s.k = 2;
  s.radius = 1.0;
  s.solver_config.grid_pitch = 1.0;  // keep exhaustive tiny in tests
  return s;
}

const std::vector<std::string> kSolvers{"greedy2", "greedy3"};

TEST(RunTrial, ProducesRewardPerSolver) {
  rnd::Rng rng(1);
  const TrialResult r = run_trial(small_setup(), kSolvers, true, rng);
  EXPECT_EQ(r.rewards.size(), 2u);
  EXPECT_GT(r.exhaustive_reward, 0.0);
  for (const auto& [name, reward] : r.rewards) {
    EXPECT_GT(reward, 0.0) << name;
    EXPECT_LE(reward, r.exhaustive_reward + 1e-9) << name;
  }
}

TEST(RunTrial, WithoutExhaustiveSetsNaN) {
  rnd::Rng rng(2);
  const TrialResult r = run_trial(small_setup(), kSolvers, false, rng);
  EXPECT_TRUE(std::isnan(r.exhaustive_reward));
  EXPECT_EQ(r.rewards.size(), 2u);
}

TEST(RunTrial, DeterministicGivenRngState) {
  rnd::Rng a(3);
  rnd::Rng b(3);
  const TrialResult ra = run_trial(small_setup(), kSolvers, true, a);
  const TrialResult rb = run_trial(small_setup(), kSolvers, true, b);
  EXPECT_DOUBLE_EQ(ra.exhaustive_reward, rb.exhaustive_reward);
  EXPECT_EQ(ra.rewards.at("greedy2"), rb.rewards.at("greedy2"));
}

TEST(RunCell, AggregatesRequestedTrials) {
  const CellStats cell = run_cell(small_setup(), kSolvers, true, 8, 99);
  EXPECT_EQ(cell.trials, 8u);
  EXPECT_EQ(cell.reward.at("greedy2").count(), 8u);
  EXPECT_EQ(cell.ratio.at("greedy3").count(), 8u);
  EXPECT_EQ(cell.exhaustive.count(), 8u);
  EXPECT_GT(cell.ratio.at("greedy3").mean(), 0.0);
  EXPECT_LE(cell.ratio.at("greedy3").mean(), 1.0 + 1e-9);
}

TEST(RunCell, DeterministicAcrossRuns) {
  const CellStats a = run_cell(small_setup(), kSolvers, true, 6, 42);
  const CellStats b = run_cell(small_setup(), kSolvers, true, 6, 42);
  EXPECT_DOUBLE_EQ(a.ratio.at("greedy2").mean(), b.ratio.at("greedy2").mean());
  EXPECT_DOUBLE_EQ(a.exhaustive.mean(), b.exhaustive.mean());
}

TEST(RunCell, DifferentSeedsDiffer) {
  const CellStats a = run_cell(small_setup(), kSolvers, false, 6, 42);
  const CellStats b = run_cell(small_setup(), kSolvers, false, 6, 43);
  EXPECT_NE(a.reward.at("greedy2").mean(), b.reward.at("greedy2").mean());
}

TEST(RunSweep, EmitsOneRowPerCell) {
  const auto rows = run_sweep(small_setup(), {1, 2}, {1.0, 1.5, 2.0},
                              kSolvers, false, 3, 7);
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].setup.k, 1u);
  EXPECT_DOUBLE_EQ(rows[0].setup.radius, 1.0);
  EXPECT_EQ(rows[5].setup.k, 2u);
  EXPECT_DOUBLE_EQ(rows[5].setup.radius, 2.0);
}

TEST(Report, RatioTableShape) {
  const auto rows =
      run_sweep(small_setup(), {2}, {1.0, 2.0}, kSolvers, true, 3, 7);
  const io::Table table = ratio_table(rows, kSolvers);
  EXPECT_EQ(table.rows(), 2u);
  // n, k, r + 2 solvers + approx.1 + approx.2.
  EXPECT_EQ(table.columns(), 7u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("ratio(greedy3)"), std::string::npos);
  EXPECT_NE(os.str().find("approx.2"), std::string::npos);
}

TEST(Report, RewardTableShape) {
  const auto rows =
      run_sweep(small_setup(), {2, 4}, {1.0}, kSolvers, false, 3, 7);
  const io::Table table = reward_table(rows, kSolvers);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 5u);
}

TEST(Report, OverallMeansPoolAcrossCells) {
  const auto rows =
      run_sweep(small_setup(), {1, 2}, {1.0, 2.0}, kSolvers, true, 4, 11);
  const auto ratios = overall_ratio_means(rows, kSolvers);
  const auto rewards = overall_reward_means(rows, kSolvers);
  for (const auto& name : kSolvers) {
    EXPECT_GT(ratios.at(name), 0.0);
    EXPECT_LE(ratios.at(name), 1.0 + 1e-9);
    EXPECT_GT(rewards.at(name), 0.0);
  }
}

TEST(RunTrial, PlacementChangesTheInstances) {
  TrialSetup uniform = small_setup();
  TrialSetup clustered = small_setup();
  clustered.placement = rnd::Placement::kClustered;
  rnd::Rng a(21), b(21);
  const TrialResult ru = run_trial(uniform, kSolvers, false, a);
  const TrialResult rc = run_trial(clustered, kSolvers, false, b);
  EXPECT_NE(ru.rewards.at("greedy2"), rc.rewards.at("greedy2"));
}

TEST(RunTrial, BinaryShapeYieldsHigherRewards) {
  // Binary coverage dominates linear decay pointwise, so for the same
  // instances every solver's reward is at least as large.
  TrialSetup linear = small_setup();
  TrialSetup binary = small_setup();
  binary.shape = core::RewardShape::kBinary;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rnd::Rng a(seed), b(seed);
    const TrialResult rl = run_trial(linear, kSolvers, false, a);
    const TrialResult rb = run_trial(binary, kSolvers, false, b);
    for (const auto& name : kSolvers) {
      EXPECT_GE(rb.rewards.at(name) + 1e-9, rl.rewards.at(name))
          << name << " seed " << seed;
    }
  }
}

TEST(Report, GreedyRatiosExceedTheorem2Bound) {
  // The harness-level restatement of the paper's headline sanity check.
  const auto rows =
      run_sweep(small_setup(), {2}, {1.0, 1.5, 2.0}, kSolvers, true, 10, 13);
  for (const auto& cell : rows) {
    const double bound =
        core::approx_ratio_local_greedy(cell.setup.n, cell.setup.k);
    EXPECT_GE(cell.ratio.at("greedy2").min(), bound - 1e-9);
    EXPECT_GE(cell.ratio.at("greedy3").min(), bound - 1e-9);
  }
}

}  // namespace
}  // namespace mmph::exp
