// Distribution-quality tests: beyond the moment checks in rng_test, these
// compare empirical CDFs at several quantiles (a fixed-grid
// Kolmogorov-Smirnov-style check) so shape errors that preserve mean and
// variance still fail.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mmph/io/stats.hpp"
#include "mmph/random/rng.hpp"

namespace mmph::rnd {
namespace {

std::vector<double> draw(std::size_t n, std::uint64_t seed,
                         double (*gen)(Rng&)) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = gen(rng);
  return out;
}

double empirical_cdf(const std::vector<double>& sorted, double x) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

TEST(DistributionQuality, UniformCdfMatchesAtDeciles) {
  auto sample = draw(100000, 1, [](Rng& r) { return r.uniform(); });
  std::sort(sample.begin(), sample.end());
  for (int d = 1; d <= 9; ++d) {
    const double x = d / 10.0;
    EXPECT_NEAR(empirical_cdf(sample, x), x, 0.006) << "decile " << d;
  }
}

TEST(DistributionQuality, NormalCdfMatchesAtKnownQuantiles) {
  auto sample = draw(200000, 2, [](Rng& r) { return r.normal(); });
  std::sort(sample.begin(), sample.end());
  // (x, Phi(x)) reference pairs.
  const std::pair<double, double> refs[] = {
      {-1.959964, 0.025}, {-1.0, 0.158655}, {0.0, 0.5},
      {1.0, 0.841345},    {1.959964, 0.975}};
  for (const auto& [x, phi] : refs) {
    EXPECT_NEAR(empirical_cdf(sample, x), phi, 0.005) << "x=" << x;
  }
}

TEST(DistributionQuality, ExponentialCdfMatches) {
  auto sample = draw(200000, 3, [](Rng& r) { return r.exponential(2.0); });
  std::sort(sample.begin(), sample.end());
  for (double x : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    const double cdf = 1.0 - std::exp(-2.0 * x);
    EXPECT_NEAR(empirical_cdf(sample, x), cdf, 0.005) << "x=" << x;
  }
}

TEST(DistributionQuality, NormalTailSymmetry) {
  auto sample = draw(200000, 4, [](Rng& r) { return r.normal(); });
  std::sort(sample.begin(), sample.end());
  for (double x : {0.5, 1.5, 2.5}) {
    const double upper = 1.0 - empirical_cdf(sample, x);
    const double lower = empirical_cdf(sample, -x);
    EXPECT_NEAR(upper, lower, 0.006) << "x=" << x;
  }
}

TEST(DistributionQuality, ZipfMatchesHarmonicLaw) {
  // P(rank = j) should be (1/j^s) / H_{n,s}; check the head ranks.
  const std::size_t n = 20;
  const double s = 1.0;
  Rng rng(5);
  std::vector<int> counts(n + 1, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[rng.zipf(n, s)];
  double h = 0.0;
  for (std::size_t j = 1; j <= n; ++j) h += 1.0 / static_cast<double>(j);
  for (std::size_t j = 1; j <= 5; ++j) {
    const double expected = (1.0 / static_cast<double>(j)) / h;
    EXPECT_NEAR(static_cast<double>(counts[j]) / draws, expected, 0.005)
        << "rank " << j;
  }
}

TEST(DistributionQuality, PercentileAgreesWithRunningStatsExtremes) {
  auto sample = draw(5000, 6, [](Rng& r) { return r.uniform(3.0, 9.0); });
  io::RunningStats stats;
  for (double v : sample) stats.add(v);
  EXPECT_DOUBLE_EQ(io::percentile(sample, 0.0), stats.min());
  EXPECT_DOUBLE_EQ(io::percentile(sample, 1.0), stats.max());
}

}  // namespace
}  // namespace mmph::rnd
