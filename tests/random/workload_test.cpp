// Tests for synthetic workload generation (the paper's simulation inputs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mmph/random/workload.hpp"
#include "mmph/support/error.hpp"

namespace mmph::rnd {
namespace {

TEST(WorkloadSpec, DescribeMentionsKeyFields) {
  WorkloadSpec spec;
  spec.n = 40;
  spec.dim = 3;
  const std::string d = spec.describe();
  EXPECT_NE(d.find("n=40"), std::string::npos);
  EXPECT_NE(d.find("dim=3"), std::string::npos);
  EXPECT_NE(d.find("uniform"), std::string::npos);
}

TEST(Workload, PaperDefaultShape) {
  WorkloadSpec spec;  // n=40, 2-D, 4x4 box, weights 1..5
  Rng rng(42);
  const Workload wl = generate_workload(spec, rng);
  EXPECT_EQ(wl.points.size(), 40u);
  EXPECT_EQ(wl.points.dim(), 2u);
  EXPECT_EQ(wl.weights.size(), 40u);
  for (std::size_t i = 0; i < wl.size(); ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_GE(wl.points[i][d], 0.0);
      EXPECT_LE(wl.points[i][d], 4.0);
    }
    EXPECT_GE(wl.weights[i], 1.0);
    EXPECT_LE(wl.weights[i], 5.0);
    EXPECT_EQ(wl.weights[i], std::floor(wl.weights[i]));  // integer weights
  }
}

TEST(Workload, SameWeightScheme) {
  WorkloadSpec spec;
  spec.weights = WeightScheme::kSame;
  spec.same_weight = 1.0;
  Rng rng(1);
  const Workload wl = generate_workload(spec, rng);
  for (double w : wl.weights) EXPECT_DOUBLE_EQ(w, 1.0);
  EXPECT_DOUBLE_EQ(wl.total_weight(), 40.0);
}

TEST(Workload, ZipfWeightsAreRanks) {
  WorkloadSpec spec;
  spec.weights = WeightScheme::kZipf;
  spec.n = 50;
  Rng rng(2);
  const Workload wl = generate_workload(spec, rng);
  for (double w : wl.weights) {
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 50.0);
  }
}

TEST(Workload, ThreeDBox) {
  WorkloadSpec spec;
  spec.dim = 3;
  spec.n = 160;
  Rng rng(3);
  const Workload wl = generate_workload(spec, rng);
  EXPECT_EQ(wl.points.dim(), 3u);
  EXPECT_EQ(wl.points.size(), 160u);
}

TEST(Workload, DeterministicGivenSeed) {
  WorkloadSpec spec;
  Rng a(7);
  Rng b(7);
  const Workload w1 = generate_workload(spec, a);
  const Workload w2 = generate_workload(spec, b);
  EXPECT_EQ(w1.weights, w2.weights);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1.points[i][0], w2.points[i][0]);
    EXPECT_EQ(w1.points[i][1], w2.points[i][1]);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadSpec spec;
  Rng a(7);
  Rng b(8);
  const Workload w1 = generate_workload(spec, a);
  const Workload w2 = generate_workload(spec, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < w1.size() && !any_diff; ++i) {
    any_diff = w1.points[i][0] != w2.points[i][0];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, HaltonPlacementFillsEvenly) {
  WorkloadSpec spec;
  spec.placement = Placement::kHalton;
  spec.n = 400;
  Rng rng(4);
  const Workload wl = generate_workload(spec, rng);
  int quadrants[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < wl.size(); ++i) {
    const int q = (wl.points[i][0] < 2.0 ? 0 : 1) +
                  (wl.points[i][1] < 2.0 ? 0 : 2);
    ++quadrants[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_NEAR(quadrants[q], 100, 10);
}

TEST(Workload, ClusteredPlacementStaysInBox) {
  WorkloadSpec spec;
  spec.placement = Placement::kClustered;
  spec.clusters = 2;
  spec.cluster_stddev = 0.3;
  spec.n = 200;
  Rng rng(5);
  const Workload wl = generate_workload(spec, rng);
  for (std::size_t i = 0; i < wl.size(); ++i) {
    EXPECT_GE(wl.points[i][0], 0.0);
    EXPECT_LE(wl.points[i][0], 4.0);
  }
}

TEST(Workload, ClusteredPlacementActuallyClusters) {
  // With tiny stddev, points concentrate near at most `clusters` locations:
  // mean nearest-neighbor distance is much smaller than uniform.
  WorkloadSpec spec;
  spec.placement = Placement::kClustered;
  spec.clusters = 3;
  spec.cluster_stddev = 0.05;
  spec.n = 60;
  Rng rng(6);
  const Workload wl = generate_workload(spec, rng);
  double total_nn = 0.0;
  for (std::size_t i = 0; i < wl.size(); ++i) {
    double nn = 1e9;
    for (std::size_t j = 0; j < wl.size(); ++j) {
      if (i == j) continue;
      const double dx = wl.points[i][0] - wl.points[j][0];
      const double dy = wl.points[i][1] - wl.points[j][1];
      nn = std::min(nn, std::sqrt(dx * dx + dy * dy));
    }
    total_nn += nn;
  }
  EXPECT_LT(total_nn / static_cast<double>(wl.size()), 0.15);
}

TEST(Workload, Validation) {
  Rng rng(9);
  WorkloadSpec bad;
  bad.n = 0;
  EXPECT_THROW((void)generate_workload(bad, rng), mmph::InvalidArgument);
  bad = WorkloadSpec{};
  bad.box_side = 0.0;
  EXPECT_THROW((void)generate_workload(bad, rng), mmph::InvalidArgument);
  bad = WorkloadSpec{};
  bad.weight_lo = 5;
  bad.weight_hi = 1;
  EXPECT_THROW((void)generate_workload(bad, rng), mmph::InvalidArgument);
}

TEST(WorkloadNames, EnumNames) {
  EXPECT_STREQ(placement_name(Placement::kUniform), "uniform");
  EXPECT_STREQ(placement_name(Placement::kHalton), "halton");
  EXPECT_STREQ(placement_name(Placement::kClustered), "clustered");
  EXPECT_STREQ(weight_scheme_name(WeightScheme::kSame), "same");
  EXPECT_STREQ(weight_scheme_name(WeightScheme::kUniformInt), "uniform-int");
  EXPECT_STREQ(weight_scheme_name(WeightScheme::kZipf), "zipf");
}

}  // namespace
}  // namespace mmph::rnd
