// Tests for Halton low-discrepancy sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mmph/random/halton.hpp"
#include "mmph/support/error.hpp"

namespace mmph::rnd {
namespace {

TEST(VanDerCorput, Base2KnownPrefix) {
  // One-based elements in base 2: 1/2, 1/4, 3/4, 1/8, 5/8, ...
  EXPECT_DOUBLE_EQ(van_der_corput(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(van_der_corput(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(van_der_corput(2, 2), 0.75);
  EXPECT_DOUBLE_EQ(van_der_corput(3, 2), 0.125);
  EXPECT_DOUBLE_EQ(van_der_corput(4, 2), 0.625);
}

TEST(VanDerCorput, Base3KnownPrefix) {
  EXPECT_NEAR(van_der_corput(0, 3), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(van_der_corput(1, 3), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(van_der_corput(2, 3), 1.0 / 9.0, 1e-15);
}

TEST(VanDerCorput, AlwaysInUnitInterval) {
  for (std::size_t i = 0; i < 10000; ++i) {
    const double x = van_der_corput(i, 5);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(VanDerCorput, RejectsBadBase) {
  EXPECT_THROW((void)van_der_corput(0, 1), mmph::InvalidArgument);
}

TEST(Halton, ShapeAndRange) {
  const auto seq = halton_sequence(100, 3);
  ASSERT_EQ(seq.size(), 300u);
  for (double v : seq) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Halton, RejectsUnsupportedDimension) {
  EXPECT_THROW((void)halton_sequence(10, 0), mmph::InvalidArgument);
  EXPECT_THROW((void)halton_sequence(10, 17), mmph::InvalidArgument);
}

TEST(Halton, Deterministic) {
  EXPECT_EQ(halton_sequence(50, 2), halton_sequence(50, 2));
}

TEST(Halton, PointsAreDistinct) {
  const auto seq = halton_sequence(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = i + 1; j < 200; ++j) {
      const bool same =
          seq[i * 2] == seq[j * 2] && seq[i * 2 + 1] == seq[j * 2 + 1];
      EXPECT_FALSE(same) << i << " vs " << j;
    }
  }
}

TEST(Halton, LowDiscrepancyBeatsWorstCase) {
  // Crude equidistribution check: each of the 4 quadrants of [0,1)^2 gets
  // 1/4 of the mass within a tight tolerance (Halton is far better than
  // i.i.d. sampling at n = 400).
  const std::size_t n = 400;
  const auto seq = halton_sequence(n, 2);
  int counts[2][2] = {{0, 0}, {0, 0}};
  for (std::size_t i = 0; i < n; ++i) {
    const int qx = seq[i * 2] < 0.5 ? 0 : 1;
    const int qy = seq[i * 2 + 1] < 0.5 ? 0 : 1;
    ++counts[qx][qy];
  }
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_NEAR(counts[a][b], 100, 8);
    }
  }
}

}  // namespace
}  // namespace mmph::rnd
