// Tests for the PCG64 engine: determinism, range, basic statistics.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mmph/random/pcg64.hpp"

namespace mmph::rnd {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 2;
  EXPECT_NE(splitmix64_next(s1), splitmix64_next(s2));
}

TEST(Pcg64, SameSeedSameStream) {
  Pcg64 a(42);
  Pcg64 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Pcg64, DifferentSeedsDiffer) {
  Pcg64 a(1);
  Pcg64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Pcg64, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Pcg64>);
  EXPECT_EQ(Pcg64::min(), 0u);
  EXPECT_EQ(Pcg64::max(), ~0ull);
}

TEST(Pcg64, NextDoubleInUnitInterval) {
  Pcg64 g(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = g.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Pcg64, NextDoubleMeanIsHalf) {
  Pcg64 g(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += g.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Pcg64, NextBelowRespectsBound) {
  Pcg64 g(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.next_below(17), 17u);
  }
}

TEST(Pcg64, NextBelowCoversAllResidues) {
  Pcg64 g(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg64, NextBelowZeroBound) {
  Pcg64 g(1);
  EXPECT_EQ(g.next_below(0), 0u);
}

TEST(Pcg64, BitsLookUniformPerNibble) {
  // Chi-square-lite: each of 16 nibble values of the low 4 bits should
  // appear roughly n/16 times.
  Pcg64 g(23);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[g() & 0xF];
  for (int v = 0; v < 16; ++v) {
    EXPECT_NEAR(counts[v], n / 16, n / 16 * 0.08) << "nibble " << v;
  }
}

}  // namespace
}  // namespace mmph::rnd
