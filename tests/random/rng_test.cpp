// Tests for the Rng facade: ranges, determinism, forking, moments.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mmph/random/rng.hpp"
#include "mmph/support/error.hpp"

namespace mmph::rnd {
namespace {

TEST(Rng, SeedIsRecorded) {
  const Rng rng(99);
  EXPECT_EQ(rng.seed(), 99u);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable, incl. both endpoints
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, -2);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -2);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(6);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(8);
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalValidation) {
  Rng rng(9);
  EXPECT_THROW((void)rng.categorical({}), InvalidArgument);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW((void)rng.categorical({1.0, -1.0}), InvalidArgument);
}

TEST(Rng, ZipfRanksAreInRange) {
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t v = rng.zipf(10, 1.0);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
  }
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t v = rng.zipf(100, 1.2);
    if (v <= 10) ++low;
    if (v > 90) ++high;
  }
  EXPECT_GT(low, 5 * high);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(12);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(5, 0.0) - 1];
  for (int v = 0; v < 5; ++v) {
    EXPECT_NEAR(counts[v], n / 5, n / 5 * 0.1);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(13);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(14);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, SameSeedSameDraws) {
  Rng a(100);
  Rng b(100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const Rng parent(42);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(0);
  Rng c3 = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // Different salts give (with overwhelming probability) different streams.
  Rng c1b = parent.fork(0);
  EXPECT_NE(c1b.next_u64(), c3.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng parent(42);
  const std::uint64_t before = Rng(42).next_u64();
  (void)parent.fork(5);
  EXPECT_EQ(parent.next_u64(), before);
}

}  // namespace
}  // namespace mmph::rnd
