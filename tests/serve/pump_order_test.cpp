// Regression test for the multi-loop pump ordering bug: pop_batch and
// process_batch take different locks, so two event loops pumping the same
// service concurrently could historically pop batch N and N+1 and apply
// them in the opposite order — a store/WAL sequence no client submitted,
// which breaks group-commit ordering and replica.lag accounting. pump()
// now serializes the whole pop+process pass; this test drives two pumping
// threads over order-sensitive mutations and is in the TSan gate
// (tools/check.sh shards).

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/serve/placement_service.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/recovery.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::serve {
namespace {

UserRecord user(std::uint64_t id, double weight, double x, double y) {
  UserRecord record;
  record.id = id;
  record.interest = {x, y};
  record.weight = weight;
  return record;
}

TEST(PumpOrder, ConcurrentPumpsApplySubmissionOrder) {
  wal::MemFileOps mem;
  wal::WalConfig wal_config;
  wal_config.dir = "wal";
  wal_config.file_ops = &mem;
  wal::WalWriter writer(wal_config);

  ServiceConfig config;
  config.dim = 2;
  config.k = 2;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;
  config.queue_capacity = 4096;
  config.max_batch = 1;  // one submission per batch: order is observable
  config.wal = &writer;
  PlacementService service(config);

  // Every submission overwrites the SAME user: the final store row is the
  // last applied write, so any reordering of the apply sequence surfaces
  // as a wrong terminal weight; the WAL replay cross-checks the order
  // end to end.
  constexpr std::uint64_t kWrites = 200;
  std::vector<std::future<Response>> replies;
  replies.reserve(kWrites);
  for (std::uint64_t i = 1; i <= kWrites; ++i) {
    replies.push_back(service.submit(Request::add_users(
        {user(1, static_cast<double>(i), 0.1, 0.2)})));
  }

  std::atomic<std::uint64_t> handled{0};
  auto pump_loop = [&] {
    while (handled.load(std::memory_order_relaxed) < kWrites) {
      handled.fetch_add(service.pump(std::chrono::milliseconds(1)),
                        std::memory_order_relaxed);
    }
  };
  std::thread a(pump_loop);
  std::thread b(pump_loop);
  a.join();
  b.join();

  for (auto& reply : replies) {
    EXPECT_EQ(reply.get().status, ResponseStatus::kOk);
  }
  EXPECT_EQ(service.population(), 1u);
  EXPECT_EQ(service.epoch(), kWrites);
  const auto found_weight = [&] {
    const wal::WalSnapshot snap = service.wal_snapshot();
    return snap.weights.at(0);
  }();
  EXPECT_EQ(found_weight, static_cast<double>(kWrites));

  // The log tells the same story: replaying it reproduces the exact
  // terminal state, which it only can if append order == apply order.
  writer.commit();
  const wal::RecoveryResult recovered = wal::recover("wal", 2, mem);
  EXPECT_TRUE(recovered.clean) << recovered.detail;
  EXPECT_EQ(recovered.store.epoch, kWrites);
  ASSERT_EQ(recovered.store.size(), 1u);
  EXPECT_EQ(recovered.store.weights[0], static_cast<double>(kWrites));
}

TEST(PumpOrder, ConcurrentPumpsHandleEachRequestExactlyOnce) {
  ServiceConfig config;
  config.dim = 2;
  config.k = 2;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;
  config.queue_capacity = 4096;
  config.max_batch = 8;
  PlacementService service(config);

  constexpr std::uint64_t kUsers = 300;
  std::vector<std::future<Response>> replies;
  replies.reserve(kUsers);
  for (std::uint64_t i = 1; i <= kUsers; ++i) {
    const double x = 0.003 * static_cast<double>(i);
    replies.push_back(
        service.submit(Request::add_users({user(i, 1.0, x, 1.0 - x)})));
  }

  std::atomic<std::uint64_t> handled{0};
  auto pump_loop = [&] {
    while (handled.load(std::memory_order_relaxed) < kUsers) {
      handled.fetch_add(service.pump(std::chrono::milliseconds(1)),
                        std::memory_order_relaxed);
    }
  };
  std::thread a(pump_loop);
  std::thread b(pump_loop);
  std::thread c(pump_loop);
  a.join();
  b.join();
  c.join();

  for (auto& reply : replies) {
    EXPECT_EQ(reply.get().status, ResponseStatus::kOk);
  }
  // Exactly once: every distinct user applied, the epoch counted each
  // exactly one time, and the pump tally matches the submission count.
  EXPECT_EQ(service.population(), kUsers);
  EXPECT_EQ(service.epoch(), kUsers);
  EXPECT_EQ(handled.load(), kUsers);
}

}  // namespace
}  // namespace mmph::serve
