// PlacementService with a region-sharded InstanceStore: config
// validation, shards == 1 bit-identity against the unsharded service,
// content equivalence across shard counts, per-shard WAL crash recovery
// (restore_sharded round-trip), the store.shard.alloc_fail and
// wal.barrier.fsync_fail fault sites, replication rejection while
// sharded, and the loop->shard affinity counters.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/core/exhaustive.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/support/error.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/sharded_wal.hpp"

namespace mmph::serve {
namespace {

UserRecord user(std::uint64_t id, double weight, double x, double y) {
  UserRecord record;
  record.id = id;
  record.interest = {x, y};
  record.weight = weight;
  return record;
}

ServiceConfig sharded_config(std::size_t shards) {
  ServiceConfig config;
  config.dim = 2;
  config.k = 4;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;
  config.store_shards = shards;
  return config;
}

/// Fixed mixed workload: adds, overwrites, removes. Deterministic.
void run_workload(PlacementService& service) {
  rnd::Pcg64 rng(20260808);
  std::vector<std::uint64_t> live;
  std::uint64_t next_id = 1;
  for (int round = 0; round < 6; ++round) {
    std::vector<UserRecord> batch;
    for (int j = 0; j < 7; ++j) {
      const std::uint64_t id = next_id++;
      batch.push_back(user(id, 0.5 + rng.next_double(), rng.next_double(),
                           rng.next_double()));
      live.push_back(id);
    }
    service.apply_add(batch);
    if (round % 2 == 1 && live.size() > 3) {
      std::vector<std::uint64_t> victims = {live[0], live[2]};
      live.erase(live.begin() + 2);
      live.erase(live.begin());
      service.apply_remove(victims);
    }
  }
}

/// Rows of \p snap sorted by id, flattened to comparable tuples.
std::vector<std::tuple<std::uint64_t, double, double, double>> sorted_rows(
    const wal::WalSnapshot& snap) {
  std::vector<std::tuple<std::uint64_t, double, double, double>> rows;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    rows.emplace_back(snap.ids[i], snap.weights[i], snap.coords[2 * i],
                      snap.coords[2 * i + 1]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ShardServiceConfig, ValidatesShardWiring) {
  // wal requires store_shards == 1.
  wal::MemFileOps mem;
  wal::WalConfig wal_config;
  wal_config.dir = "wal";
  wal_config.file_ops = &mem;
  wal::WalWriter writer(wal_config);
  ServiceConfig bad = sharded_config(2);
  bad.wal = &writer;
  EXPECT_THROW(PlacementService{bad}, InvalidArgument);

  // shard_wal's shard count must match store_shards.
  wal::WalConfig base;
  base.dir = "swal";
  base.file_ops = &mem;
  wal::ShardedWal coordinator(base, 4, wal::ShardedRecovery{});
  ServiceConfig mismatch = sharded_config(2);
  mismatch.shard_wal = &coordinator;
  EXPECT_THROW(PlacementService{mismatch}, InvalidArgument);

  // wal and shard_wal are mutually exclusive.
  wal::WalConfig base1;
  base1.dir = "swal1";
  base1.file_ops = &mem;
  wal::ShardedWal single(base1, 1, wal::ShardedRecovery{});
  ServiceConfig both = sharded_config(1);
  both.wal = &writer;
  both.shard_wal = &single;
  EXPECT_THROW(PlacementService{both}, InvalidArgument);

  // store_shards == 0 is invalid.
  EXPECT_THROW(PlacementService{sharded_config(0)}, InvalidArgument);
}

TEST(ShardService, OneShardIsBitIdenticalToUnsharded) {
  ServiceConfig plain_config = sharded_config(1);
  plain_config.store_shards = 1;
  PlacementService plain(plain_config);

  // Same workload through a 1-shard store with a ShardedWal attached:
  // the --store-shards 1 golden discipline — identical responses,
  // identical epochs, identical placement bits, WAL or not.
  wal::MemFileOps mem;
  wal::WalConfig base;
  base.dir = "wal";
  base.file_ops = &mem;
  wal::ShardedWal coordinator(base, 1, wal::ShardedRecovery{});
  ServiceConfig logged_config = sharded_config(1);
  logged_config.shard_wal = &coordinator;
  PlacementService logged(logged_config);

  run_workload(plain);
  run_workload(logged);

  EXPECT_EQ(plain.epoch(), logged.epoch());
  EXPECT_EQ(plain.population(), logged.population());

  const PlacementView view_plain = plain.placement();
  const PlacementView view_logged = logged.placement();
  EXPECT_EQ(view_plain.epoch, view_logged.epoch);
  EXPECT_EQ(view_plain.objective, view_logged.objective);  // bitwise
  const geo::PointSet& c1 = view_plain.solution.centers;
  const geo::PointSet& c2 = view_logged.solution.centers;
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    for (std::size_t d = 0; d < 2; ++d) EXPECT_EQ(c1[i][d], c2[i][d]);
  }

  // And the store images agree row for row (same order: one shard).
  const wal::WalSnapshot s1 = plain.wal_snapshot();
  const wal::WalSnapshot s2 = logged.wal_snapshot();
  EXPECT_EQ(s1.epoch, s2.epoch);
  EXPECT_EQ(s1.ids, s2.ids);
  EXPECT_EQ(s1.weights, s2.weights);
  EXPECT_EQ(s1.coords, s2.coords);
}

TEST(ShardService, ShardCountsAgreeOnContent) {
  PlacementService one(sharded_config(1));
  PlacementService two(sharded_config(2));
  PlacementService four(sharded_config(4));
  run_workload(one);
  run_workload(two);
  run_workload(four);

  EXPECT_EQ(one.population(), two.population());
  EXPECT_EQ(one.population(), four.population());

  const auto rows1 = sorted_rows(one.wal_snapshot());
  const auto rows2 = sorted_rows(two.wal_snapshot());
  const auto rows4 = sorted_rows(four.wal_snapshot());
  EXPECT_EQ(rows1, rows2);
  EXPECT_EQ(rows1, rows4);

  // The objective of an explicit center set is a per-user sum — shard
  // layout only changes the summation order, so values agree to fp noise.
  const geo::PointSet probe =
      geo::PointSet::from_rows({{0.25, 0.25}, {0.75, 0.4}, {0.5, 0.85}});
  const double f1 = one.evaluate(probe);
  EXPECT_NEAR(one.evaluate(probe), two.evaluate(probe), 1e-9 * (1.0 + f1));
  EXPECT_NEAR(f1, four.evaluate(probe), 1e-9 * (1.0 + f1));

  // Sharded solves still produce a valid placement over everyone.
  const PlacementView view = four.placement();
  EXPECT_EQ(view.population, four.population());
  EXPECT_EQ(view.solution.centers.size(), 4u);
  EXPECT_GT(view.objective, 0.0);
}

TEST(ShardService, ShardedSolveIsDeterministic) {
  PlacementService a(sharded_config(4));
  PlacementService b(sharded_config(4));
  run_workload(a);
  run_workload(b);
  const PlacementView va = a.placement();
  const PlacementView vb = b.placement();
  EXPECT_EQ(va.epoch, vb.epoch);
  EXPECT_EQ(va.objective, vb.objective);  // bitwise
  ASSERT_EQ(va.solution.centers.size(), vb.solution.centers.size());
  for (std::size_t i = 0; i < va.solution.centers.size(); ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(va.solution.centers[i][d], vb.solution.centers[i][d]);
    }
  }
}

TEST(ShardService, CrashRecoveryRestoresEveryShardBitwise) {
  wal::MemFileOps mem;
  wal::WalConfig base;
  base.dir = "wal";
  base.file_ops = &mem;
  wal::ShardedWal coordinator(base, 4, wal::ShardedRecovery{});
  ServiceConfig config = sharded_config(4);
  config.shard_wal = &coordinator;
  PlacementService service(config);
  run_workload(service);
  const wal::WalSnapshot live = service.wal_snapshot();

  // Crash: clone the filesystem as-is and recover from the clone.
  const std::unique_ptr<wal::MemFileOps> crashed = mem.clone();
  const wal::ShardedRecovery recovered =
      wal::recover_sharded("wal", 4, 2, *crashed);
  EXPECT_TRUE(recovered.clean);
  EXPECT_TRUE(recovered.dir_found);
  EXPECT_EQ(recovered.global_epoch, service.epoch());
  EXPECT_EQ(recovered.rows, service.population());

  wal::ShardedWal resumed_wal(
      [&] {
        wal::WalConfig c;
        c.dir = "wal";
        c.file_ops = crashed.get();
        return c;
      }(),
      4, recovered);
  ServiceConfig resumed_config = sharded_config(4);
  resumed_config.shard_wal = &resumed_wal;
  PlacementService resumed(resumed_config);
  resumed.restore_sharded(recovered);

  // Bitwise identical: per shard (the global snapshot is the shard
  // concatenation, so equal globals at equal shard layout means equal
  // shards) and in the aggregate.
  const wal::WalSnapshot after = resumed.wal_snapshot();
  EXPECT_EQ(after.epoch, live.epoch);
  EXPECT_EQ(after.ids, live.ids);
  EXPECT_EQ(after.weights, live.weights);
  EXPECT_EQ(after.coords, live.coords);

  // The recovered service keeps serving: mutations chain onto the
  // restored per-shard epochs and queries solve.
  resumed.apply_add({user(9001, 1.0, 0.4, 0.6)});
  EXPECT_EQ(resumed.epoch(), live.epoch + 1);
  EXPECT_GT(resumed.placement().objective, 0.0);
}

TEST(ShardService, ShardAllocFaultFiresBeforeAnyMutation) {
  ServiceConfig config = sharded_config(2);
  bool armed = true;
  config.fault_hook = [&](std::string_view site) {
    return armed && site == kFaultStoreShardAllocFail;
  };
  PlacementService service(config);
  armed = false;
  service.apply_add({user(1, 1.0, 0.1, 0.2)});
  const std::uint64_t epoch = service.epoch();

  armed = true;
  EXPECT_THROW(service.apply_add({user(2, 1.0, 0.3, 0.4)}), std::bad_alloc);
  EXPECT_THROW(service.apply_remove({1}), std::bad_alloc);
  EXPECT_EQ(service.population(), 1u);
  EXPECT_EQ(service.epoch(), epoch);

  // Batched path: the request is answered kInternalError, batch intact.
  std::future<Response> reply =
      service.submit(Request::add_users({user(3, 1.0, 0.5, 0.5)}));
  (void)service.pump();
  EXPECT_EQ(reply.get().status, ResponseStatus::kInternalError);
  EXPECT_EQ(service.population(), 1u);
  armed = false;
}

TEST(ShardService, BarrierFaultPoisonsTheWholeLogSet) {
  wal::MemFileOps mem;
  bool armed = false;
  wal::BarrierFaultHook hook = [&](std::string_view) { return armed; };
  wal::WalConfig base;
  base.dir = "wal";
  base.file_ops = &mem;
  wal::ShardedWal coordinator(base, 2, wal::ShardedRecovery{}, hook);
  ServiceConfig config = sharded_config(2);
  config.shard_wal = &coordinator;
  PlacementService service(config);
  service.apply_add({user(1, 1.0, 0.1, 0.2)});

  // The barrier dies: the batch is applied in memory but its durability
  // is unknown — the call surfaces WalError (batch path: kInternalError)
  // and every shard's writer is poisoned.
  armed = true;
  EXPECT_THROW(service.apply_add({user(2, 1.0, 0.9, 0.8)}), wal::WalError);
  EXPECT_TRUE(coordinator.failed());
  armed = false;
  // Poisoned log set: later mutations refuse before touching the store.
  const std::uint64_t epoch = service.epoch();
  EXPECT_THROW(service.apply_add({user(3, 1.0, 0.5, 0.5)}), wal::WalError);
  EXPECT_EQ(service.epoch(), epoch);
}

TEST(ShardService, ReplicationEndpointsRejectedWhileSharded) {
  PlacementService service(sharded_config(2));
  service.apply_add({user(1, 1.0, 0.1, 0.2)});

  // wal() is what the server streams replication from: null while
  // sharded, so kReplSubscribe is rejected at the server layer.
  EXPECT_EQ(service.wal(), nullptr);

  wal::WalSnapshot snapshot;
  snapshot.epoch = 1;
  snapshot.dim = 2;
  snapshot.ids = {7};
  snapshot.weights = {1.0};
  snapshot.coords = {0.3, 0.3};
  EXPECT_THROW(service.restore_from(snapshot), StateError);

  wal::WalRecord record;
  record.type = wal::RecordType::kUpsert;
  record.dim = 2;
  record.epoch = 2;
  record.ids = {8};
  record.weights = {1.0};
  record.coords = {0.4, 0.4};
  EXPECT_THROW(service.apply_replicated(record), StateError);
}

TEST(ShardService, AffinityCountersTrackTheHintShardMatch) {
  ServiceConfig config = sharded_config(2);
  PlacementService service(config);

  // Route one user whose shard we know, once with the matching hint and
  // once with the off-by-one hint.
  Request hit = Request::add_users({user(1, 1.0, 0.1, 0.2)});
  // Compute the true shard by asking a throwaway store with the same map.
  ShardedInstanceStore probe(2, 2, 0.3);
  const std::vector<double> p = {0.1, 0.2};
  const std::uint32_t shard = static_cast<std::uint32_t>(
      probe.shard_of_point(geo::ConstVec(p.data(), 2)));
  hit.shard_hint = shard;
  std::future<Response> r1 = service.submit(std::move(hit));
  (void)service.pump();
  EXPECT_EQ(r1.get().status, ResponseStatus::kOk);

  Request miss = Request::add_users({user(2, 1.0, 0.1, 0.2)});
  miss.shard_hint = shard + 1;  // wraps to the other shard via % 2
  std::future<Response> r2 = service.submit(std::move(miss));
  (void)service.pump();
  EXPECT_EQ(r2.get().status, ResponseStatus::kOk);

  const std::string text = service.metrics_registry().exposition_text();
  EXPECT_NE(text.find("mmph_store_shard_affinity_hits_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mmph_store_shard_affinity_misses_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mmph_store_shard_mutations_total{shard="),
            std::string::npos);
}

TEST(ShardService, PerShardRowGaugesPublishAfterSolves) {
  PlacementService service(sharded_config(4));
  run_workload(service);
  (void)service.placement();
  const std::string text = service.metrics_registry().exposition_text();
  EXPECT_NE(text.find("mmph_store_shard_rows{shard=\"0\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mmph_store_shard_rows{shard=\"3\"}"),
            std::string::npos);
}

/// The core differential corpus (same ~210 seeded paper-box instances as
/// tests/core/differential_test.cpp), pushed through PlacementService at
/// store shards {2, 4}. Per instance: the sharded store holds exactly
/// the input rows, the global epoch equals the mutation count, the
/// region-partitioned solve-and-merge never exceeds the exhaustive
/// optimum over input points, stays above the paper's Theorem 2 floor,
/// and is bitwise deterministic across shard counts run twice.
TEST(ShardService, DifferentialCorpusHoldsAtShards2And4) {
  struct Variant {
    geo::Metric metric;
    rnd::WeightScheme weights;
    const char* label;
  };
  // 2-D only (the service's UserRecord workload); both norms, both
  // paper weight schemes.
  const Variant variants[] = {
      {geo::l2_metric(), rnd::WeightScheme::kSame, "l2-unweighted"},
      {geo::l1_metric(), rnd::WeightScheme::kUniformInt, "l1-weighted"},
  };

  int instances = 0;
  for (std::uint64_t seed = 1; seed <= 70; ++seed) {
    const Variant& variant = variants[seed % 2];
    rnd::WorkloadSpec spec;
    spec.n = 6 + seed % 7;  // 6..12 — exhaustive stays feasible
    spec.dim = 2;
    spec.weights = variant.weights;
    rnd::Rng rng(seed);
    const rnd::Workload workload = rnd::generate_workload(spec, rng);

    std::vector<UserRecord> users;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      users.push_back(user(static_cast<std::uint64_t>(i + 1),
                           workload.weights[i], workload.points[i][0],
                           workload.points[i][1]));
    }
    const core::Problem problem = core::Problem::from_workload(
        workload, 1.0, variant.metric);

    for (const std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      ++instances;
      const std::string context = "seed=" + std::to_string(seed) + " " +
                                  variant.label + " n=" +
                                  std::to_string(spec.n) + " k=" +
                                  std::to_string(k);
      // The upper bound must be the *multiset* optimum: the paper's
      // reward min(sum_j u_ij, y_i) pays for duplicate centers until a
      // point saturates, and re-picking a chosen point is explicitly
      // legal (see lazy_greedy.cpp) — so the sharded merge may beat
      // ExhaustiveSolver::over_points, which enumerates distinct
      // subsets only. n <= 12, k <= 3 keeps C(n+k-1, k) tiny.
      double optimum = core::ExhaustiveSolver::over_points(problem)
                           .solve(problem, k)
                           .total_reward;
      {
        std::vector<std::size_t> pick(k, 0);
        const std::size_t n = problem.size();
        const auto sweep = [&](auto&& self, std::size_t slot,
                               std::size_t from) -> void {
          if (slot == k) {
            optimum = std::max(
                optimum, core::objective_value(problem, problem.points(),
                                               pick));
            return;
          }
          for (std::size_t i = from; i < n; ++i) {
            pick[slot] = i;
            self(self, slot + 1, i);  // non-decreasing: allows repeats
          }
        };
        sweep(sweep, 0, 0);
      }
      const double floor =
          (1.0 - std::pow(1.0 - 1.0 / static_cast<double>(spec.n),
                          static_cast<double>(k))) *
          optimum;
      const double slack = 1e-9 * std::max(1.0, optimum);

      std::optional<PlacementView> prev;
      for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
        ServiceConfig config;
        config.dim = 2;
        config.k = k;
        config.radius = 1.0;  // paper box: cell 1.0 spans several regions
        config.metric = variant.metric;
        config.full_solve_churn_fraction = 0.0;
        config.store_shards = shards;
        PlacementService service(config);
        service.apply_add(users);
        EXPECT_EQ(service.epoch(), users.size()) << context;
        EXPECT_EQ(service.population(), users.size()) << context;

        const PlacementView view = service.placement();
        // The reported objective is the value of the reported centers —
        // re-derive it from scratch on the reference problem.
        EXPECT_NEAR(core::objective_value(problem, view.solution.centers),
                    view.objective, slack)
            << context << " shards=" << shards
            << " centers=" << view.solution.centers.size();
        EXPECT_LE(view.objective, optimum + slack)
            << context << " shards=" << shards;
        EXPECT_GE(view.objective, floor - slack)
            << context << " shards=" << shards;

        // Bitwise deterministic: a second identical service agrees.
        PlacementService again(config);
        again.apply_add(users);
        const PlacementView view2 = again.placement();
        EXPECT_EQ(view.objective, view2.objective)
            << context << " shards=" << shards;

        // Store content is shard-layout independent.
        if (prev.has_value()) {
          EXPECT_EQ(sorted_rows(service.wal_snapshot()),
                    sorted_rows(again.wal_snapshot()))
              << context;
        }
        prev = view;
      }
    }
  }
  EXPECT_GE(instances, 200) << "sweep shrank — differential coverage lost";
}

}  // namespace
}  // namespace mmph::serve
