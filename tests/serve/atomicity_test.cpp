// Regression tests pinning the mutation atomicity contract: a mutation
// batch is applied fully or not at all. Historically a batch could
// partially apply when validation failed mid-loop (rows before the bad
// one were already upserted); validation now runs over the whole batch
// before the first store write, and the WAL append-before-apply path
// preserves the same contract when the log fails.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/serve/instance_store.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/support/error.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::serve {
namespace {

UserRecord user(std::uint64_t id, double weight, double x, double y) {
  UserRecord record;
  record.id = id;
  record.interest = {x, y};
  record.weight = weight;
  return record;
}

ServiceConfig config_with(wal::WalWriter* writer) {
  ServiceConfig config;
  config.dim = 2;
  config.k = 2;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;
  config.wal = writer;
  return config;
}

TEST(AtomicityTest, InvalidRowMidBatchLeavesStoreUntouched) {
  PlacementService service(config_with(nullptr));
  service.apply_add({user(1, 1.0, 0.1, 0.2)});
  const std::uint64_t epoch = service.epoch();

  // Row 2 of 3 is invalid (non-positive weight): the WHOLE batch must be
  // rejected — including row 1, which is itself valid.
  const std::vector<UserRecord> batch = {
      user(2, 1.0, 0.3, 0.4), user(3, 0.0, 0.5, 0.6), user(4, 1.0, 0.7, 0.8)};
  EXPECT_THROW(service.apply_add(batch), InvalidArgument);
  EXPECT_EQ(service.population(), 1u);
  EXPECT_EQ(service.epoch(), epoch);

  // Same for a dimension mismatch anywhere in the batch.
  std::vector<UserRecord> bad_dim = {user(2, 1.0, 0.3, 0.4)};
  bad_dim.push_back(user(3, 1.0, 0.5, 0.6));
  bad_dim.back().interest = {0.5};
  EXPECT_THROW(service.apply_add(bad_dim), InvalidArgument);
  EXPECT_EQ(service.population(), 1u);
  EXPECT_EQ(service.epoch(), epoch);
}

TEST(AtomicityTest, FailedWalAppendLeavesStoreUntouched) {
  wal::MemFileOps mem;
  wal::WalConfig wal_config;
  wal_config.dir = "wal";
  wal_config.file_ops = &mem;
  wal::WalWriter writer(wal_config);
  PlacementService service(config_with(&writer));
  service.apply_add({user(1, 1.0, 0.1, 0.2)});
  const std::uint64_t epoch = service.epoch();

  // A dead log must reject the mutation BEFORE the store mutates: a kOk
  // ack promises "logged", so an unloggable op may not apply.
  writer.poison("simulated log failure");
  EXPECT_THROW(service.apply_add({user(2, 1.0, 0.3, 0.4)}), wal::WalError);
  EXPECT_EQ(service.population(), 1u);
  EXPECT_EQ(service.epoch(), epoch);
  EXPECT_THROW(service.apply_remove({1}), wal::WalError);
  EXPECT_EQ(service.population(), 1u);
  EXPECT_EQ(service.epoch(), epoch);
}

TEST(AtomicityTest, ReadOnlyServiceRejectsBothMutationPaths) {
  PlacementService service(config_with(nullptr));
  service.apply_add({user(1, 1.0, 0.1, 0.2)});
  service.set_read_only(true);

  EXPECT_THROW(service.apply_add({user(2, 1.0, 0.3, 0.4)}), StateError);
  EXPECT_THROW(service.apply_remove({1}), StateError);
  EXPECT_EQ(service.population(), 1u);

  service.set_read_only(false);
  service.apply_add({user(2, 1.0, 0.3, 0.4)});
  EXPECT_EQ(service.population(), 2u);
}

TEST(AtomicityTest, StoreUpsertDuplicateIdInBatchKeepsLastWrite) {
  // Duplicate ids inside one batch are two upserts in order: the second
  // overwrites the first, and each advances the epoch by one — exactly
  // how replaying the same record during recovery counts them.
  InstanceStore store(2);
  store.upsert(user(7, 1.0, 0.1, 0.2));
  store.upsert(user(7, 2.0, 0.5, 0.6));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.epoch(), 2u);
  const auto found = store.find(7);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->weight, 2.0);
  EXPECT_EQ(found->interest[0], 0.5);
}

TEST(AtomicityTest, RestoreRejectsInconsistentImages) {
  InstanceStore store(2);
  store.upsert(user(1, 1.0, 0.1, 0.2));

  // weights/ids size mismatch
  EXPECT_THROW(store.restore(3, {1, 2}, {1.0}, {0.1, 0.2, 0.3, 0.4}),
               InvalidArgument);
  // coords not ids.size() * dim
  EXPECT_THROW(store.restore(3, {1, 2}, {1.0, 2.0}, {0.1, 0.2, 0.3}),
               InvalidArgument);
  // epoch below the row count (each row took at least one epoch tick)
  EXPECT_THROW(store.restore(1, {1, 2}, {1.0, 2.0}, {0.1, 0.2, 0.3, 0.4}),
               InvalidArgument);
  // duplicate ids
  EXPECT_THROW(store.restore(4, {1, 1}, {1.0, 2.0}, {0.1, 0.2, 0.3, 0.4}),
               InvalidArgument);
  // non-positive weight
  EXPECT_THROW(store.restore(4, {1, 2}, {1.0, 0.0}, {0.1, 0.2, 0.3, 0.4}),
               InvalidArgument);

  // A failed restore must not have touched the store.
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_TRUE(store.contains(1));
}

}  // namespace
}  // namespace mmph::serve
