// Serve-path spatial index: a PlacementService carrying its coverage grid
// across churn epochs (incremental add/update/swap-remove mirror, warm
// index) must answer with placements bit-identical to a twin service
// running unindexed — and to a cold service fed the same final state.
// Also pins the mmph_spatial_* counters: present in the registry at zero
// when the index is off, advancing when it is on.

#include "mmph/serve/placement_service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mmph/core/kernels.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::serve {
namespace {

std::vector<UserRecord> make_users(std::size_t n, std::uint64_t seed) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  const rnd::Workload workload = rnd::generate_workload(spec, rng);
  std::vector<UserRecord> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    UserRecord rec;
    rec.id = i;
    rec.weight = workload.weights[i];
    rec.interest.assign(workload.points[i].begin(), workload.points[i].end());
    users.push_back(std::move(rec));
  }
  return users;
}

UserRecord fresh_user(std::uint64_t id, rnd::Rng& rng) {
  UserRecord rec;
  rec.id = id;
  rec.weight = 1.0 + static_cast<double>(rng.uniform_int(0, 4));
  rec.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
  return rec;
}

void expect_same_placement(const PlacementView& got, const PlacementView& want,
                           const std::string& context) {
  ASSERT_EQ(got.population, want.population) << context;
  EXPECT_EQ(got.objective, want.objective) << context;  // bitwise
  ASSERT_EQ(got.solution.centers.size(), want.solution.centers.size())
      << context;
  for (std::size_t c = 0; c < got.solution.centers.size(); ++c) {
    for (std::size_t d = 0; d < got.solution.centers.dim(); ++d) {
      EXPECT_EQ(got.solution.centers[c][d], want.solution.centers[c][d])
          << context << " center " << c << " coord " << d;
    }
  }
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.k = 3;
  // Re-solve from scratch on every epoch so each tick exercises the
  // carried index rather than the warm 1-swap refine.
  config.full_solve_churn_fraction = 0.0;
  return config;
}

/// Twin services fed the same churn stream, one indexed (kGrid: the grid
/// is kept and incrementally mirrored through every mutation) and one
/// unindexed, solving every epoch: placements must stay bit-identical.
/// A third, cold service is rebuilt from the live state each epoch to pin
/// warm-vs-cold equality of the carried index.
TEST(SpatialServe, WarmIndexMatchesUnindexedAndColdEveryEpoch) {
  PlacementService indexed(small_config());
  PlacementService plain(small_config());

  const std::vector<UserRecord> initial = make_users(160, 2026);
  {
    const core::kernels::ScopedIndexMode on(core::kernels::IndexMode::kGrid);
    indexed.apply_add(initial);
  }
  plain.apply_add(initial);

  std::vector<UserRecord> live = initial;
  rnd::Rng rng(99);
  std::uint64_t next_id = initial.size();

  for (int epoch = 0; epoch < 25; ++epoch) {
    // A small mixed mutation batch: adds, moves (upserts), removes. The
    // `live` shadow replays the exact store semantics in the same order —
    // upserts append or update in place, removes swap-pop — so the cold
    // control sees the identical row order (row order is FP association
    // order, so it matters bit-for-bit).
    std::vector<UserRecord> adds;
    adds.push_back(fresh_user(next_id++, rng));
    live.push_back(adds.back());
    {  // move an existing user
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      UserRecord moved = live[at];
      moved.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
      live[at] = moved;
      adds.push_back(std::move(moved));
    }
    std::vector<std::uint64_t> removes;
    if (live.size() > 8 && epoch % 3 == 0) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      removes.push_back(live[at].id);
      live[at] = live.back();
      live.pop_back();
    }

    PlacementView warm, cold, unindexed;
    {
      const core::kernels::ScopedIndexMode on(core::kernels::IndexMode::kGrid);
      indexed.apply_add(adds);
      if (!removes.empty()) indexed.apply_remove(removes);
      warm = indexed.placement();

      // Cold control: a fresh service (fresh grid) over the same state.
      PlacementService scratch(small_config());
      scratch.apply_add(live);
      cold = scratch.placement();
    }
    {
      const core::kernels::ScopedIndexMode off(core::kernels::IndexMode::kNone);
      plain.apply_add(adds);
      if (!removes.empty()) plain.apply_remove(removes);
      unindexed = plain.placement();
    }

    const std::string context = "epoch " + std::to_string(epoch);
    expect_same_placement(warm, unindexed, context + " warm-vs-unindexed");
    expect_same_placement(warm, cold, context + " warm-vs-cold");
  }

  // The carried index actually worked incrementally: mutations were
  // mirrored rather than answered with rebuilds, and queries flowed.
  const MetricsSnapshot snap = indexed.metrics();
  EXPECT_GT(snap.spatial_queries, 0u);
  EXPECT_GT(snap.spatial_points_touched, 0u);
  EXPECT_GT(snap.spatial_incremental_updates, 0u);
  EXPECT_GT(snap.spatial_rebuilds, 0u);  // the initial build at least
  EXPECT_LT(snap.spatial_rebuilds, 5u)
      << "churn should mirror into the carried grid, not rebuild it";

  // Unindexed twin never touched a spatial index.
  const MetricsSnapshot off = plain.metrics();
  EXPECT_EQ(off.spatial_queries, 0u);
  EXPECT_EQ(off.spatial_rebuilds, 0u);
}

/// Shrink to zero, then regrow. Every removal swap-pops a store row and
/// mirrors into the carried grid as swap_remove; as the population drains,
/// each cell eventually loses its final row, and a stale cell-map slot
/// left behind by that eviction would poison radius queries on the next
/// epoch. Solving after every single removal walks the grid through all of
/// those final-row evictions with the unindexed twin as the oracle; the
/// empty-out itself must drop the index (epoch 0 has nothing to query),
/// and the regrown population must match the twin bitwise again.
TEST(SpatialServe, ChurnToZeroAndRegrowKeepsTheGridExact) {
  PlacementService indexed(small_config());
  PlacementService plain(small_config());

  const std::vector<UserRecord> initial = make_users(96, 424242);
  {
    const core::kernels::ScopedIndexMode on(core::kernels::IndexMode::kGrid);
    indexed.apply_add(initial);
    (void)indexed.placement();
  }
  plain.apply_add(initial);
  (void)plain.placement();

  // Drain one user at a time in a shuffled order (so cells empty at
  // scattered moments, not back to front), solving both twins each step.
  std::vector<std::uint64_t> order;
  order.reserve(initial.size());
  for (const UserRecord& rec : initial) order.push_back(rec.id);
  rnd::Rng rng(7);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    PlacementView warm, unindexed;
    {
      const core::kernels::ScopedIndexMode on(core::kernels::IndexMode::kGrid);
      indexed.apply_remove({order[i]});
      warm = indexed.placement();
    }
    plain.apply_remove({order[i]});
    unindexed = plain.placement();
    expect_same_placement(warm, unindexed,
                          "after removal " + std::to_string(i));
  }
  EXPECT_EQ(indexed.population(), 0u);
  EXPECT_EQ(indexed.placement().solution.centers.size(), 0u);

  // Regrow from empty with fresh ids at fresh coordinates: the first solve
  // builds a new grid over the new rows, and warm churn on top of it keeps
  // matching the twin.
  const std::vector<UserRecord> regrown = [&] {
    std::vector<UserRecord> users = make_users(48, 515151);
    for (UserRecord& rec : users) rec.id += 1000;
    return users;
  }();
  for (const UserRecord& rec : regrown) {
    PlacementView warm, unindexed;
    {
      const core::kernels::ScopedIndexMode on(core::kernels::IndexMode::kGrid);
      indexed.apply_add({rec});
      warm = indexed.placement();
    }
    plain.apply_add({rec});
    unindexed = plain.placement();
    expect_same_placement(warm, unindexed, "regrow id " + std::to_string(rec.id));
  }

  // The whole drain and regrow was mirrored incrementally: one build per
  // index lifetime (initial + post-regrow), not a rebuild per eviction.
  const MetricsSnapshot snap = indexed.metrics();
  EXPECT_GT(snap.spatial_incremental_updates, 0u);
  EXPECT_LE(snap.spatial_rebuilds, 3u)
      << "final-row evictions must mirror into the grid, not force rebuilds";
}

/// The counters are registered (scrapable) even before any index exists,
/// and the registry exposition carries them under their mmph_spatial_*
/// names once the indexed path has run.
TEST(SpatialServe, SpatialCountersAreRegisteredAndAdvance) {
  PlacementService service(small_config());
  const MetricsSnapshot before = service.metrics();
  EXPECT_EQ(before.spatial_queries, 0u);
  EXPECT_EQ(before.spatial_rebuilds, 0u);

  {
    const core::kernels::ScopedIndexMode on(core::kernels::IndexMode::kGrid);
    service.apply_add(make_users(64, 7));
    (void)service.placement();
  }
  const MetricsSnapshot after = service.metrics();
  EXPECT_GT(after.spatial_queries, 0u);
  EXPECT_EQ(after.spatial_rebuilds, 1u);

  const std::string exposition = service.metrics_registry().exposition_text();
  EXPECT_NE(exposition.find("mmph_spatial_queries_total"), std::string::npos);
  EXPECT_NE(exposition.find("mmph_spatial_rebuilds_total"), std::string::npos);
  EXPECT_NE(exposition.find("mmph_spatial_points_touched_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("mmph_spatial_incremental_updates_total"),
            std::string::npos);
}

}  // namespace
}  // namespace mmph::serve
