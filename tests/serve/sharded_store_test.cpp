// ShardedInstanceStore contract tests: region routing is a pure function
// of the interest point, cross-region moves are remove+insert (two epoch
// ticks), the global epoch is the sum of shard epochs, shards == 1 is
// bit-identical to a plain InstanceStore fed the same call sequence, and
// per-shard snapshots are cached by epoch.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mmph/serve/instance_store.hpp"
#include "mmph/serve/sharded_store.hpp"
#include "mmph/spatial/region_map.hpp"
#include "mmph/support/error.hpp"

namespace mmph::serve {
namespace {

UserRecord user(std::uint64_t id, double weight, double x, double y) {
  UserRecord record;
  record.id = id;
  record.interest = {x, y};
  record.weight = weight;
  return record;
}

TEST(RegionMap, OneShardIsAlwaysZero) {
  const spatial::RegionMap map(2, 0.3, 1);
  const std::vector<double> p = {123.4, -567.8};
  EXPECT_EQ(map.shard_of(geo::ConstVec(p.data(), p.size())), 0u);
}

TEST(RegionMap, PureFunctionOfCellAcrossInstances) {
  const spatial::RegionMap a(2, 0.25, 4);
  const spatial::RegionMap b(2, 0.25, 4);
  // Same cell (points within one cell) -> same shard, on any instance.
  const std::vector<double> p1 = {0.26, 0.26};
  const std::vector<double> p2 = {0.49, 0.49};
  const geo::ConstVec v1(p1.data(), 2);
  const geo::ConstVec v2(p2.data(), 2);
  EXPECT_EQ(a.shard_of(v1), b.shard_of(v1));
  EXPECT_EQ(a.shard_of(v1), a.shard_of(v2));
  // Every result is in range.
  for (double x = -2.0; x < 2.0; x += 0.17) {
    const std::vector<double> p = {x, -x};
    EXPECT_LT(a.shard_of(geo::ConstVec(p.data(), 2)), 4u);
  }
}

TEST(RegionMap, SpreadsCellsAcrossShards) {
  // FNV over a grid of cells must actually use more than one shard.
  const spatial::RegionMap map(2, 0.1, 4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const std::vector<double> p = {0.05 + 0.1 * i, 0.05 + 0.1 * j};
      seen.insert(map.shard_of(geo::ConstVec(p.data(), 2)));
    }
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(RegionMap, RejectsBadParameters) {
  EXPECT_THROW(spatial::RegionMap(0, 0.3, 2), InvalidArgument);
  EXPECT_THROW(spatial::RegionMap(2, 0.0, 2), InvalidArgument);
  EXPECT_THROW(spatial::RegionMap(2, 0.3, 0), InvalidArgument);
}

TEST(ShardedStore, OneShardMatchesPlainStoreBitwise) {
  InstanceStore plain(2);
  ShardedInstanceStore sharded(2, 1, 0.3);

  const std::vector<UserRecord> ops = {
      user(1, 1.0, 0.1, 0.2),  user(2, 2.0, 0.9, 0.8),
      user(3, 0.5, 0.5, 0.5),  user(1, 1.5, 0.7, 0.1),  // overwrite
      user(4, 1.0, -0.4, 0.3),
  };
  for (const UserRecord& u : ops) {
    const bool inserted_plain = plain.upsert(u);
    const auto route = sharded.upsert(u);
    EXPECT_EQ(route.to, 0u);
    EXPECT_FALSE(route.is_move());
    EXPECT_EQ(route.inserted, inserted_plain);
  }
  EXPECT_TRUE(plain.remove(2));
  EXPECT_EQ(sharded.remove(2), std::optional<std::size_t>(0));

  EXPECT_EQ(sharded.size(), plain.size());
  EXPECT_EQ(sharded.epoch(), plain.epoch());

  const StoreSnapshot expect = plain.snapshot();
  const StoreSnapshot got = sharded.global_snapshot();
  ASSERT_EQ(got.size(), expect.size());
  EXPECT_EQ(got.epoch, expect.epoch);
  EXPECT_EQ(got.ids, expect.ids);
  EXPECT_EQ(got.weights, expect.weights);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(got.points[i][d], expect.points[i][d]) << i << "," << d;
    }
  }
}

TEST(ShardedStore, RoutesByRegionAndTracksOwnership) {
  ShardedInstanceStore store(2, 4, 0.3);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    const double x = 0.07 * static_cast<double>(id);
    const auto route = store.upsert(user(id, 1.0, x, 1.0 - x));
    const std::vector<double> p = {x, 1.0 - x};
    EXPECT_EQ(route.to, store.shard_of_point(geo::ConstVec(p.data(), 2)));
    EXPECT_EQ(store.shard_of_id(id), std::optional<std::size_t>(route.to));
  }
  EXPECT_EQ(store.size(), 40u);
  EXPECT_EQ(store.epoch(), 40u);

  // Shard sizes partition the population.
  std::size_t total = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    total += store.shard(s).size();
  }
  EXPECT_EQ(total, 40u);

  // Removes come back with the owning shard; unknown ids with nullopt.
  const std::size_t owner = *store.shard_of_id(7);
  EXPECT_EQ(store.remove(7), std::optional<std::size_t>(owner));
  EXPECT_EQ(store.remove(7), std::nullopt);
  EXPECT_EQ(store.shard_of_id(7), std::nullopt);
}

TEST(ShardedStore, CrossRegionMoveIsRemovePlusInsert) {
  ShardedInstanceStore store(2, 4, 0.3);
  // Find two points the map routes to different shards.
  double x2 = 0.0;
  const std::vector<double> p1 = {0.05, 0.05};
  const std::size_t s1 = store.shard_of_point(geo::ConstVec(p1.data(), 2));
  std::size_t s2 = s1;
  for (double x = 0.35; s2 == s1; x += 0.3) {
    const std::vector<double> probe = {x, 0.05};
    s2 = store.shard_of_point(geo::ConstVec(probe.data(), 2));
    x2 = x;
  }

  store.upsert(user(1, 1.0, p1[0], p1[1]));
  EXPECT_EQ(store.epoch(), 1u);

  const auto route = store.upsert(user(1, 2.0, x2, 0.05));
  EXPECT_TRUE(route.is_move());
  EXPECT_EQ(*route.from, s1);
  EXPECT_EQ(route.to, s2);
  EXPECT_TRUE(route.inserted);
  // Two elements applied (remove + insert), matching two log records.
  EXPECT_EQ(store.epoch(), 3u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.shard(s1).size(), 0u);
  EXPECT_EQ(store.shard(s2).size(), 1u);
  EXPECT_EQ(store.shard_of_id(1), std::optional<std::size_t>(s2));
  const auto found = store.find(1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->weight, 2.0);

  // An in-place update (same region) is one tick, not a move.
  const auto update = store.upsert(user(1, 3.0, x2 + 0.01, 0.05 + 0.01));
  EXPECT_FALSE(update.is_move());
  EXPECT_FALSE(update.inserted);
  EXPECT_EQ(store.epoch(), 4u);
}

TEST(ShardedStore, MoveWithBadWeightLeavesBothShardsUntouched) {
  ShardedInstanceStore store(2, 4, 0.05);
  store.upsert(user(1, 1.0, 0.01, 0.01));
  const std::uint64_t epoch = store.epoch();
  // A far-away point is (almost surely) another region; even when it is
  // not, the weight check fires before any mutation either way.
  EXPECT_THROW(store.upsert(user(1, 0.0, 7.77, 3.33)), InvalidArgument);
  EXPECT_EQ(store.epoch(), epoch);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(1)->weight, 1.0);
}

TEST(ShardedStore, GlobalSnapshotConcatenatesShardRanges) {
  ShardedInstanceStore store(2, 3, 0.2);
  for (std::uint64_t id = 1; id <= 30; ++id) {
    const double x = 0.11 * static_cast<double>(id);
    store.upsert(user(id, 1.0 + 0.1 * static_cast<double>(id), x, -x));
  }
  const StoreSnapshot snap = store.global_snapshot();
  EXPECT_EQ(snap.epoch, store.epoch());
  ASSERT_EQ(snap.size(), 30u);

  const auto ranges = store.shard_row_ranges();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, 30u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ranges[s].second - ranges[s].first, store.shard(s).size());
    if (s > 0) EXPECT_EQ(ranges[s].first, ranges[s - 1].second);
    // Rows in shard s's range are exactly shard s's snapshot rows.
    const StoreSnapshot& part = store.shard_snapshot(s);
    for (std::size_t i = 0; i < part.size(); ++i) {
      EXPECT_EQ(snap.ids[ranges[s].first + i], part.ids[i]);
      EXPECT_EQ(snap.weights[ranges[s].first + i], part.weights[i]);
    }
  }
}

TEST(ShardedStore, ShardSnapshotIsCachedByEpoch) {
  ShardedInstanceStore store(2, 2, 0.2);
  // Find ids for both shards.
  std::uint64_t id = 1;
  while (store.shard(0).size() == 0 || store.shard(1).size() == 0) {
    const double x = 0.13 * static_cast<double>(id);
    store.upsert(user(id, 1.0, x, x * 0.7));
    ++id;
  }

  const StoreSnapshot& snap0 = store.shard_snapshot(0);
  const std::uint64_t epoch0 = snap0.epoch;
  // Mutating shard 1 must not re-copy shard 0's snapshot: same object,
  // same contents (the cache is epoch-keyed per shard).
  std::uint64_t other = id;
  for (int i = 0; i < 8; ++i, ++other) {
    const double x = 0.13 * static_cast<double>(other);
    const std::vector<double> p = {x, x * 0.7};
    if (store.shard_of_point(geo::ConstVec(p.data(), 2)) == 1) {
      store.upsert(user(other, 1.0, x, x * 0.7));
    }
  }
  const StoreSnapshot& again = store.shard_snapshot(0);
  EXPECT_EQ(&again, &snap0);
  EXPECT_EQ(again.epoch, epoch0);

  // Mutating shard 0 itself invalidates its cache: overwrite an id that
  // lives there (id 1 may have routed to shard 1).
  const StoreSnapshot& before = store.shard_snapshot(0);
  ASSERT_FALSE(before.ids.empty());
  const std::uint64_t resident = before.ids.front();
  const UserRecord kept = *store.find(resident);
  store.upsert(user(resident, kept.weight + 1.0, kept.interest[0],
                    kept.interest[1]));
  EXPECT_GT(store.shard_snapshot(0).epoch, epoch0);
}

TEST(ShardedStore, RestoreShardRebuildsOwnershipAndRejectsForeignIds) {
  ShardedInstanceStore store(2, 2, 0.2);
  std::uint64_t id = 1;
  while (store.shard(0).size() < 2 || store.shard(1).size() < 2) {
    const double x = 0.13 * static_cast<double>(id);
    store.upsert(user(id, 1.0, x, x * 0.7));
    ++id;
  }

  // An id resident in shard 1 cannot be restored into shard 0.
  std::uint64_t foreign = 0;
  for (std::uint64_t i = 1; i < id; ++i) {
    if (store.shard_of_id(i) == std::optional<std::size_t>(1)) {
      foreign = i;
      break;
    }
  }
  ASSERT_NE(foreign, 0u);
  EXPECT_THROW(
      store.restore_shard(0, 1, {foreign}, {1.0}, {0.1, 0.1}),
      InvalidArgument);

  // A valid restore replaces shard 0's population and ownership entries.
  store.restore_shard(0, 2, {101, 102}, {1.0, 2.0}, {0.1, 0.1, 0.2, 0.2});
  EXPECT_EQ(store.shard(0).size(), 2u);
  EXPECT_EQ(store.shard_of_id(101), std::optional<std::size_t>(0));
  EXPECT_EQ(store.shard_of_id(102), std::optional<std::size_t>(0));
  // Old shard-0 residents are gone from the owner map; shard 1 is intact.
  EXPECT_EQ(store.size(), 2u + store.shard(1).size());
  EXPECT_EQ(store.shard_of_id(foreign), std::optional<std::size_t>(1));
}

TEST(ShardedStore, ChurnSumsAcrossShards) {
  ShardedInstanceStore store(2, 4, 0.2);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    const double x = 0.13 * static_cast<double>(id);
    store.upsert(user(id, 1.0, x, -x));
  }
  EXPECT_EQ(store.churn_since_snapshot(), 10u);
  (void)store.global_snapshot();  // snapshots every shard -> resets churn
  EXPECT_EQ(store.churn_since_snapshot(), 0u);
}

}  // namespace
}  // namespace mmph::serve
