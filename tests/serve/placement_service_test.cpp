// PlacementService: static-population parity with the direct lazy greedy,
// churn-driven incremental re-solves (never worse than their warm start,
// epoch-monotone), and the batched request path end to end.

#include "mmph/serve/placement_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::serve {
namespace {

using std::chrono::milliseconds;

/// Workload + aligned UserRecords with ids 0..n-1.
struct Population {
  std::vector<UserRecord> users;
  core::Problem problem;
};

Population make_population(std::size_t n, std::uint64_t seed,
                           double radius = 1.0) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  rnd::Workload workload = rnd::generate_workload(spec, rng);
  std::vector<UserRecord> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    UserRecord rec;
    rec.id = i;
    rec.weight = workload.weights[i];
    rec.interest.assign(workload.points[i].begin(), workload.points[i].end());
    users.push_back(std::move(rec));
  }
  core::Problem problem(workload.points, workload.weights, radius,
                        geo::l2_metric());
  return Population{std::move(users), std::move(problem)};
}

UserRecord fresh_user(std::uint64_t id, rnd::Rng& rng) {
  UserRecord rec;
  rec.id = id;
  rec.weight = 1.0 + static_cast<double>(rng.uniform_int(0, 4));
  rec.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
  return rec;
}

TEST(PlacementService, StaticParityWithLazyGreedyExactSingleShard) {
  Population pop = make_population(150, 2011);
  ServiceConfig config;
  config.k = 4;
  config.shard.max_shards = 1;
  PlacementService service(config);
  service.apply_add(pop.users);

  const PlacementView view = service.placement();
  const core::Solution direct =
      core::LazyGreedySolver().solve(pop.problem, config.k);
  EXPECT_EQ(view.population, pop.users.size());
  EXPECT_NEAR(view.objective, direct.total_reward, 1e-9);
  EXPECT_EQ(service.metrics().full_solves, 1u);
  EXPECT_EQ(service.metrics().incremental_solves, 0u);
}

TEST(PlacementService, StaticParityWithLazyGreedyMultiShard) {
  Population pop = make_population(600, 4);
  ServiceConfig config;
  config.k = 5;
  config.shard.max_shards = 6;
  config.shard.min_shard_size = 32;
  PlacementService service(config);
  service.apply_add(pop.users);

  const PlacementView view = service.placement();
  const core::Solution direct =
      core::LazyGreedySolver().solve(pop.problem, config.k);
  EXPECT_GE(view.objective, 0.95 * direct.total_reward);
  EXPECT_LE(view.objective, pop.problem.total_weight() + 1e-9);
}

TEST(PlacementService, PlacementIsCachedUntilChurn) {
  Population pop = make_population(100, 8);
  PlacementService service(ServiceConfig{});
  service.apply_add(pop.users);
  (void)service.placement();
  (void)service.placement();
  (void)service.placement();
  EXPECT_EQ(service.metrics().full_solves + service.metrics().incremental_solves,
            1u);
}

TEST(PlacementService, SmallChurnRefinesIncrementallyAndNeverRegresses) {
  Population pop = make_population(400, 77);
  ServiceConfig config;
  config.k = 4;
  config.full_solve_churn_fraction = 0.05;
  PlacementService service(config);
  service.apply_add(pop.users);
  PlacementView previous = service.placement();
  EXPECT_EQ(service.metrics().full_solves, 1u);

  rnd::Rng rng(99);
  std::uint64_t next_id = pop.users.size();
  std::uint64_t last_epoch = previous.epoch;
  for (int slot = 0; slot < 5; ++slot) {
    // 1% churn: well under the 5% full-solve threshold.
    service.apply_remove({static_cast<std::uint64_t>(slot * 3)});
    service.apply_add({fresh_user(next_id++, rng), fresh_user(next_id++, rng),
                       fresh_user(next_id++, rng)});

    // The warm start's value on the *new* population: the previous centers
    // re-evaluated. Incremental refinement must never end below it.
    const double warm_start_value = service.evaluate(previous.solution.centers);
    const PlacementView view = service.placement();
    EXPECT_GE(view.objective, warm_start_value - 1e-9)
        << "incremental re-solve regressed below its warm start";
    EXPECT_GT(view.epoch, last_epoch) << "snapshot epochs must be monotone";
    last_epoch = view.epoch;
    previous = view;
  }
  EXPECT_EQ(service.metrics().full_solves, 1u);
  EXPECT_EQ(service.metrics().incremental_solves, 5u);
  EXPECT_GT(service.metrics().incremental_ratio(), 0.8);
}

TEST(PlacementService, LargeChurnForcesFullSolve) {
  Population pop = make_population(200, 13);
  ServiceConfig config;
  config.full_solve_churn_fraction = 0.05;
  PlacementService service(config);
  service.apply_add(pop.users);
  (void)service.placement();
  EXPECT_EQ(service.metrics().full_solves, 1u);

  // Replace a third of the population: far over the threshold.
  rnd::Rng rng(5);
  std::vector<std::uint64_t> to_remove;
  std::vector<UserRecord> to_add;
  for (std::uint64_t i = 0; i < 66; ++i) {
    to_remove.push_back(i);
    to_add.push_back(fresh_user(1000 + i, rng));
  }
  service.apply_remove(to_remove);
  service.apply_add(to_add);
  (void)service.placement();
  EXPECT_EQ(service.metrics().full_solves, 2u);
  EXPECT_EQ(service.metrics().incremental_solves, 0u);
}

TEST(PlacementService, EmptyAndRepopulatedStore) {
  PlacementService service(ServiceConfig{});
  const PlacementView empty = service.placement();
  EXPECT_EQ(empty.population, 0u);
  EXPECT_DOUBLE_EQ(empty.objective, 0.0);
  EXPECT_TRUE(empty.solution.centers.empty());
  EXPECT_DOUBLE_EQ(service.evaluate(geo::PointSet(2)), 0.0);

  Population pop = make_population(50, 3);
  service.apply_add(pop.users);
  const PlacementView refilled = service.placement();
  EXPECT_EQ(refilled.population, 50u);
  EXPECT_GT(refilled.objective, 0.0);
}

TEST(PlacementService, BatchedRequestsRoundTrip) {
  Population pop = make_population(80, 21);
  ServiceConfig config;
  config.k = 3;
  PlacementService service(config);

  std::future<Response> add_reply =
      service.submit(Request::add_users(pop.users));
  std::future<Response> query_reply =
      service.submit(Request::query_placement());
  EXPECT_EQ(service.queue_depth(), 2u);

  // One pump handles both: the mutation applies before the query answers.
  EXPECT_EQ(service.pump(), 2u);
  const Response add_response = add_reply.get();
  EXPECT_EQ(add_response.status, ResponseStatus::kOk);
  EXPECT_GT(add_response.epoch, 0u);

  const Response query_response = query_reply.get();
  EXPECT_EQ(query_response.status, ResponseStatus::kOk);
  ASSERT_TRUE(query_response.solution.has_value());
  EXPECT_EQ(query_response.solution->centers.size(), config.k);
  EXPECT_GT(query_response.objective, 0.0);

  // Evaluate the returned centers through the batch path: must match the
  // query's objective on the unchanged population.
  std::future<Response> eval_reply =
      service.submit(Request::evaluate(query_response.solution->centers));
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_NEAR(eval_reply.get().objective, query_response.objective, 1e-9);

  const MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.mutations, pop.users.size());
  EXPECT_EQ(snap.queries, 2u);
}

TEST(PlacementService, ExpiredDeadlineIsNotApplied) {
  Population pop = make_population(30, 6);
  PlacementService service(ServiceConfig{});
  service.apply_add(pop.users);

  Request late = Request::add_users({UserRecord{9999, {1.0, 1.0}, 1.0}});
  late.deadline = std::chrono::steady_clock::now() - milliseconds(5);
  std::future<Response> late_reply = service.submit(std::move(late));
  (void)service.pump();
  const ResponseStatus status = late_reply.get().status;
  EXPECT_EQ(status, ResponseStatus::kTimeout) << "got " << to_string(status);
  EXPECT_EQ(service.population(), 30u) << "expired mutation must not apply";
  EXPECT_EQ(service.metrics().timeouts, 1u);
}

TEST(PlacementService, WorkerThreadDrainsQueue) {
  Population pop = make_population(60, 9);
  PlacementService service(ServiceConfig{});
  service.start();
  std::future<Response> add_reply =
      service.submit(Request::add_users(pop.users));
  std::future<Response> query_reply =
      service.submit(Request::query_placement());
  EXPECT_EQ(add_reply.get().status, ResponseStatus::kOk);
  const Response query_response = query_reply.get();
  EXPECT_EQ(query_response.status, ResponseStatus::kOk);
  EXPECT_GT(query_response.objective, 0.0);
  service.stop();

  // stop() is terminal: new submissions are answered immediately, and as
  // a shutdown — not as queue-full backpressure.
  std::future<Response> after = service.submit(Request::query_placement());
  EXPECT_EQ(after.get().status, ResponseStatus::kShutdown);
}

TEST(PlacementService, EvaluateBadCentersAnswersBadRequest) {
  Population pop = make_population(40, 17);
  PlacementService service(ServiceConfig{});
  service.apply_add(pop.users);

  // Dimension mismatch (service dim is 2).
  geo::PointSet wrong_dim(3);
  const std::vector<double> p3 = {0.5, 0.5, 0.5};
  wrong_dim.push_back(geo::ConstVec(p3.data(), p3.size()));
  std::future<Response> mismatch_reply =
      service.submit(Request::evaluate(std::move(wrong_dim)));

  // Empty center set, correct dimension.
  std::future<Response> empty_reply =
      service.submit(Request::evaluate(geo::PointSet(2)));

  // A valid evaluate in the same batch must be unaffected.
  geo::PointSet good(2);
  const std::vector<double> p2 = {1.0, 1.0};
  good.push_back(geo::ConstVec(p2.data(), p2.size()));
  std::future<Response> good_reply =
      service.submit(Request::evaluate(std::move(good)));

  EXPECT_EQ(service.pump(), 3u);
  const Response mismatch = mismatch_reply.get();
  EXPECT_EQ(mismatch.status, ResponseStatus::kBadRequest)
      << "got " << to_string(mismatch.status);
  const Response empty = empty_reply.get();
  EXPECT_EQ(empty.status, ResponseStatus::kBadRequest)
      << "got " << to_string(empty.status);
  const Response valid = good_reply.get();
  EXPECT_EQ(valid.status, ResponseStatus::kOk);
  EXPECT_GT(valid.objective, 0.0);
  EXPECT_EQ(service.metrics().bad_requests, 2u);
}

TEST(PlacementService, MidBatchThrowStillFulfillsEveryPromise) {
  Population pop = make_population(40, 23);
  PlacementService service(ServiceConfig{});
  service.apply_add(pop.users);

  // A wrong-dimension user makes InstanceStore::upsert throw inside
  // process_batch's mutation phase. Before the reply-loop hardening this
  // escaped the worker, broke every later promise in the batch, and left
  // blocking clients hung on std::future_error.
  Request poison = Request::add_users({UserRecord{777, {1.0, 2.0, 3.0}, 1.0}});
  std::future<Response> poison_reply = service.submit(std::move(poison));
  std::future<Response> query_reply =
      service.submit(Request::query_placement());

  EXPECT_EQ(service.pump(), 2u);
  const Response poisoned = poison_reply.get();
  EXPECT_EQ(poisoned.status, ResponseStatus::kBadRequest)
      << "got " << to_string(poisoned.status);
  const Response query = query_reply.get();
  EXPECT_EQ(query.status, ResponseStatus::kOk)
      << "a bad request must not poison the rest of its batch";
  EXPECT_GT(query.objective, 0.0);
  EXPECT_EQ(service.population(), 40u)
      << "failed mutation must not partially apply a later epoch";
  EXPECT_GE(service.metrics().bad_requests, 1u);
}

}  // namespace
}  // namespace mmph::serve
