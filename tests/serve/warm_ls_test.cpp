// Warm re-solve seeding of the ls polish tier. Two layers:
//
//   1. the polish contract under churn — polishing a solution carried
//      over from the previous epoch (re-accounted against the mutated
//      instance) is never worse than that carried seed, for 25 epochs;
//   2. the service wiring — a PlacementService on SolverTier::kLs rides
//      the incremental warm path across 25 churn epochs, its placements
//      always at least as good as a config-identical kLazy service fed
//      the same mutations, with the mmph_ls_* counters advancing.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"

namespace mmph::serve {
namespace {

UserRecord make_user(std::uint64_t id, rnd::Pcg64& rng) {
  UserRecord user;
  user.id = id;
  user.interest = {4.0 * rng.next_double(), 4.0 * rng.next_double()};
  user.weight = 1.0 + rng.next_double();
  return user;
}

/// Exact per-round accounting of \p centers against \p problem (the
/// previous epoch's placement re-valued on the mutated instance).
core::Solution account(const core::Problem& problem,
                       const geo::PointSet& centers) {
  core::Solution out;
  out.solver_name = "carried";
  out.centers = centers;
  std::vector<double> residual = core::fresh_residual(problem);
  for (std::size_t j = 0; j < centers.size(); ++j) {
    const double g = core::apply_center(problem, centers[j], residual);
    out.round_rewards.push_back(g);
    out.total_reward += g;
  }
  return out;
}

TEST(WarmLs, PolishOfCarriedPlacementNeverLosesToItsSeed) {
  rnd::Pcg64 rng(7);
  geo::PointSet points(2);
  std::vector<double> weights;
  for (std::size_t i = 0; i < 300; ++i) {
    const double row[2] = {4.0 * rng.next_double(), 4.0 * rng.next_double()};
    points.push_back(geo::ConstVec(row, 2));
    weights.push_back(1.0 + rng.next_double());
  }

  geo::PointSet carried(2);  // previous epoch's centers (seeded arbitrary)
  for (std::size_t j = 0; j < 5; ++j) carried.push_back(points[j]);

  int improved_epochs = 0;
  for (int epoch = 0; epoch < 25; ++epoch) {
    // Churn ~5% of the population, then re-solve warm from `carried`.
    for (int c = 0; c < 15; ++c) {
      const std::size_t at = rng.next_below(points.size());
      const double row[2] = {4.0 * rng.next_double(),
                             4.0 * rng.next_double()};
      geo::assign(points.mutable_point(at), geo::ConstVec(row, 2));
      weights[at] = 1.0 + rng.next_double();
    }
    const core::Problem problem(points, weights, 1.0, geo::l2_metric());
    const core::Solution seed = account(problem, carried);
    ls::LsStats stats;
    const core::Solution polished =
        ls::polish(problem, seed, problem.points(), {}, &stats);
    EXPECT_GE(polished.total_reward, seed.total_reward)
        << "epoch " << epoch;
    EXPECT_FALSE(stats.aborted) << "epoch " << epoch;
    if (stats.improved) ++improved_epochs;
    carried = polished.centers;
  }
  // Churn keeps invalidating the carried placement; the polish must be
  // doing real work across the run, not no-op'ing 25 times.
  EXPECT_GE(improved_epochs, 5);
}

TEST(WarmLs, ServiceOnLsTierTracksOrBeatsLazyAcrossChurnEpochs) {
  ServiceConfig ls_config;
  ls_config.dim = 2;
  ls_config.k = 4;
  ls_config.radius = 1.0;
  ls_config.solver = SolverTier::kLs;
  // Generous threshold: the ~5% churn below stays on the incremental warm
  // path, which is exactly the "LS seeded from the previous placement"
  // wiring under test.
  ls_config.full_solve_churn_fraction = 0.5;
  PlacementService ls_service(ls_config);

  ServiceConfig lazy_config = ls_config;
  lazy_config.solver = SolverTier::kLazy;
  PlacementService lazy_service(lazy_config);

  rnd::Pcg64 rng(11);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;

  std::vector<UserRecord> initial;
  for (std::size_t i = 0; i < 250; ++i) {
    live.push_back(next_id);
    initial.push_back(make_user(next_id++, rng));
  }
  ls_service.apply_add(initial);
  lazy_service.apply_add(initial);

  for (int epoch = 0; epoch < 25; ++epoch) {
    std::vector<std::uint64_t> removed;
    for (int c = 0; c < 6; ++c) {
      const std::size_t at = rng.next_below(live.size());
      removed.push_back(live[at]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    }
    std::vector<UserRecord> added;
    for (int c = 0; c < 6; ++c) {
      live.push_back(next_id);
      added.push_back(make_user(next_id++, rng));
    }
    ls_service.apply_remove(removed);
    lazy_service.apply_remove(removed);
    ls_service.apply_add(added);
    lazy_service.apply_add(added);

    const PlacementView ls_view = ls_service.placement();
    const PlacementView lazy_view = lazy_service.placement();
    EXPECT_GE(ls_view.objective, lazy_view.objective) << "epoch " << epoch;
    EXPECT_EQ(ls_view.epoch, lazy_view.epoch) << "epoch " << epoch;
  }

  const MetricsSnapshot m = ls_service.metrics();
  EXPECT_GT(m.ls_evals, 0u);
  EXPECT_GT(m.incremental_solves, 0u)
      << "churn was meant to ride the warm path";
  const MetricsSnapshot lazy_m = lazy_service.metrics();
  EXPECT_EQ(lazy_m.ls_evals, 0u) << "kLazy must not touch the polish tier";
}

}  // namespace
}  // namespace mmph::serve
