// ShardedSolver: sharding geometry, single-shard exactness against
// core::LazyGreedySolver, and multi-shard quality on realistic workloads.

#include "mmph/serve/sharded_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::serve {
namespace {

core::Problem uniform_problem(std::size_t n, std::uint64_t seed,
                              double radius = 1.0) {
  rnd::WorkloadSpec spec;
  spec.n = n;
  rnd::Rng rng(seed);
  return core::Problem::from_workload(rnd::generate_workload(spec, rng),
                                      radius, geo::l2_metric());
}

TEST(ShardIndices, CoversEveryPointExactlyOnce) {
  const core::Problem problem = uniform_problem(500, 11);
  for (const ShardPolicy policy :
       {ShardPolicy::kMedianSplit, ShardPolicy::kGridCells}) {
    ShardedSolverConfig config;
    config.policy = policy;
    config.max_shards = 7;
    config.min_shard_size = 16;
    const auto shards =
        shard_indices(problem.points(), config, 4, problem.radius());
    EXPECT_GE(shards.size(), 1u);
    std::vector<std::size_t> seen;
    for (const auto& shard : shards) {
      EXPECT_FALSE(shard.empty());
      seen.insert(seen.end(), shard.begin(), shard.end());
    }
    std::sort(seen.begin(), seen.end());
    std::vector<std::size_t> expected(problem.size());
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(seen, expected) << "policy " << static_cast<int>(policy);
  }
}

TEST(ShardIndices, MedianSplitBalancesShardSizes) {
  const core::Problem problem = uniform_problem(1024, 5);
  ShardedSolverConfig config;
  config.max_shards = 8;
  config.min_shard_size = 1;
  const auto shards =
      shard_indices(problem.points(), config, 8, problem.radius());
  ASSERT_EQ(shards.size(), 8u);
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.size(), 128u);  // power-of-two median splits are exact
  }
}

TEST(ShardIndices, RespectsMinShardSize) {
  const core::Problem problem = uniform_problem(100, 3);
  ShardedSolverConfig config;
  config.max_shards = 64;
  config.min_shard_size = 50;
  const auto shards =
      shard_indices(problem.points(), config, 64, problem.radius());
  EXPECT_LE(shards.size(), 2u);
}

TEST(LazyGreedyOverPool, PoolOfOwnPointsMatchesLazyGreedy) {
  const core::Problem problem = uniform_problem(60, 17);
  const core::Solution direct = core::LazyGreedySolver().solve(problem, 4);
  const core::Solution pooled =
      lazy_greedy_over_pool(problem, problem.points(), 4);
  ASSERT_EQ(pooled.centers.size(), direct.centers.size());
  EXPECT_NEAR(pooled.total_reward, direct.total_reward, 1e-9);
  for (std::size_t j = 0; j < direct.centers.size(); ++j) {
    for (std::size_t d = 0; d < problem.dim(); ++d) {
      EXPECT_DOUBLE_EQ(pooled.centers[j][d], direct.centers[j][d]);
    }
  }
}

TEST(ShardedSolver, SingleShardIsExactlyLazyGreedy) {
  const core::Problem problem = uniform_problem(120, 23);
  ShardedSolverConfig config;
  config.max_shards = 1;
  ShardedSolver solver(par::ThreadPool::global(), config);
  const core::Solution sharded = solver.solve(problem, 4);
  const core::Solution direct = core::LazyGreedySolver().solve(problem, 4);
  ASSERT_EQ(sharded.centers.size(), direct.centers.size());
  EXPECT_NEAR(sharded.total_reward, direct.total_reward, 1e-9);
  for (std::size_t j = 0; j < direct.centers.size(); ++j) {
    for (std::size_t d = 0; d < problem.dim(); ++d) {
      EXPECT_DOUBLE_EQ(sharded.centers[j][d], direct.centers[j][d]);
    }
  }
  EXPECT_EQ(solver.last_stats().shards, 1u);
}

TEST(ShardedSolver, MultiShardTracksLazyGreedyQuality) {
  const core::Problem problem = uniform_problem(800, 31);
  ShardedSolverConfig config;
  config.max_shards = 8;
  config.min_shard_size = 16;
  ShardedSolver solver(par::ThreadPool::global(), config);
  const std::size_t k = 6;
  const core::Solution sharded = solver.solve(problem, k);
  const core::Solution direct = core::LazyGreedySolver().solve(problem, k);

  EXPECT_EQ(sharded.centers.size(), k);
  // The merge pass restores the global view; quality stays within a few
  // percent of the monolithic greedy.
  EXPECT_GE(sharded.total_reward, 0.95 * direct.total_reward);
  EXPECT_LE(sharded.total_reward, problem.total_weight() + 1e-9);

  // Solution invariant: stored total equals re-evaluated f(C).
  EXPECT_NEAR(core::objective_value(problem, sharded.centers),
              sharded.total_reward, 1e-6);

  const ShardStats& stats = solver.last_stats();
  EXPECT_GT(stats.shards, 1u);
  EXPECT_EQ(stats.candidate_pool, solver.last_candidates().size());
  EXPECT_GE(stats.candidate_pool, k);
}

TEST(ShardedSolver, GridPolicySolvesToo) {
  const core::Problem problem = uniform_problem(400, 41);
  ShardedSolverConfig config;
  config.policy = ShardPolicy::kGridCells;
  config.max_shards = 6;
  config.min_shard_size = 16;
  ShardedSolver solver(par::ThreadPool::global(), config);
  const core::Solution sharded = solver.solve(problem, 4);
  const core::Solution direct = core::LazyGreedySolver().solve(problem, 4);
  EXPECT_GE(sharded.total_reward, 0.9 * direct.total_reward);
}

TEST(ShardedSolver, TinyPopulationAndLargeK) {
  const core::Problem problem = uniform_problem(3, 7);
  ShardedSolver solver(par::ThreadPool::global());
  const core::Solution sol = solver.solve(problem, 5);
  EXPECT_EQ(sol.centers.size(), 5u);  // re-picking exhausted centers is legal
  EXPECT_LE(sol.total_reward, problem.total_weight() + 1e-9);
}

}  // namespace
}  // namespace mmph::serve
