// InstanceStore: churn semantics, swap-remove integrity, and the epoch
// contract the serving layer relies on (snapshot epochs strictly increase
// across mutations, stay put without them).

#include "mmph/serve/instance_store.hpp"

#include <gtest/gtest.h>

#include "mmph/support/error.hpp"

namespace mmph::serve {
namespace {

UserRecord user(std::uint64_t id, double x, double y, double w = 1.0) {
  return UserRecord{id, {x, y}, w};
}

TEST(InstanceStore, InsertFindRemove) {
  InstanceStore store(2);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.upsert(user(7, 1.0, 2.0, 3.0)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains(7));

  const auto found = store.find(7);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id, 7u);
  EXPECT_EQ(found->interest, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(found->weight, 3.0);

  EXPECT_TRUE(store.remove(7));
  EXPECT_FALSE(store.contains(7));
  EXPECT_FALSE(store.remove(7));  // second remove is a no-op
  EXPECT_FALSE(store.find(7).has_value());
}

TEST(InstanceStore, UpsertOverwritesInPlace) {
  InstanceStore store(2);
  EXPECT_TRUE(store.upsert(user(1, 0.0, 0.0)));
  EXPECT_FALSE(store.upsert(user(1, 5.0, 6.0, 2.5)));  // update, not insert
  EXPECT_EQ(store.size(), 1u);
  const auto found = store.find(1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->interest, (std::vector<double>{5.0, 6.0}));
  EXPECT_DOUBLE_EQ(found->weight, 2.5);
}

TEST(InstanceStore, SwapRemoveKeepsOtherRowsIntact) {
  InstanceStore store(2);
  for (std::uint64_t id = 0; id < 10; ++id) {
    store.upsert(user(id, static_cast<double>(id), 0.5));
  }
  // Remove from the middle; the last row is swapped into its slot.
  EXPECT_TRUE(store.remove(4));
  EXPECT_EQ(store.size(), 9u);
  for (std::uint64_t id = 0; id < 10; ++id) {
    if (id == 4) continue;
    const auto found = store.find(id);
    ASSERT_TRUE(found.has_value()) << "lost user " << id;
    EXPECT_DOUBLE_EQ(found->interest[0], static_cast<double>(id));
  }
}

TEST(InstanceStore, SnapshotMatchesContents) {
  InstanceStore store(2);
  store.upsert(user(1, 0.0, 1.0, 2.0));
  store.upsert(user(2, 3.0, 4.0, 5.0));
  StoreSnapshot snap = store.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.points.dim(), 2u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const auto rec = store.find(snap.ids[i]);
    ASSERT_TRUE(rec.has_value());
    EXPECT_DOUBLE_EQ(snap.weights[i], rec->weight);
    EXPECT_DOUBLE_EQ(snap.points[i][0], rec->interest[0]);
    EXPECT_DOUBLE_EQ(snap.points[i][1], rec->interest[1]);
  }
}

TEST(InstanceStore, EpochsAreMonotoneAcrossSnapshots) {
  InstanceStore store(2);
  std::uint64_t last = store.snapshot().epoch;
  for (int round = 0; round < 5; ++round) {
    store.upsert(user(static_cast<std::uint64_t>(round), 0.1, 0.2));
    const std::uint64_t e = store.snapshot().epoch;
    EXPECT_GT(e, last) << "epoch must advance after a mutation";
    last = e;
  }
  // No mutation: epoch stays put (and never goes backwards).
  EXPECT_EQ(store.snapshot().epoch, last);
  store.remove(0);
  EXPECT_GT(store.snapshot().epoch, last);
}

TEST(InstanceStore, ChurnCounterResetsOnSnapshot) {
  InstanceStore store(2);
  store.upsert(user(1, 0.0, 0.0));
  store.upsert(user(1, 1.0, 1.0));  // update counts as churn
  store.remove(1);
  EXPECT_EQ(store.churn_since_snapshot(), 3u);
  (void)store.snapshot();
  EXPECT_EQ(store.churn_since_snapshot(), 0u);
  store.remove(99);  // failed remove is not churn
  EXPECT_EQ(store.churn_since_snapshot(), 0u);
}

TEST(InstanceStore, RejectsBadInput) {
  InstanceStore store(2);
  EXPECT_THROW(store.upsert(UserRecord{1, {1.0}, 1.0}), Error);
  EXPECT_THROW(store.upsert(UserRecord{1, {1.0, 2.0}, 0.0}), Error);
  EXPECT_THROW(InstanceStore(0), Error);
}

}  // namespace
}  // namespace mmph::serve
