// ShardedSolver determinism across worker counts: with the shard budget
// pinned (auto mode scales shards with the worker count, changing the
// partition itself), the same seeded instance solved on pools of 1, 2,
// and 8 threads must produce the same centers and objective bit-for-bit.
// The sharded pipeline was designed for this (deterministic median
// splits, per-slot result slots, ordered merges); this golden test pins
// it so a future "optimization" that introduces scheduling-order
// dependence is caught immediately.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/geometry/norms.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/sharded_solver.hpp"

namespace mmph::serve {
namespace {

void expect_identical(const core::Solution& got, const core::Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.centers.size(), want.centers.size()) << context;
  EXPECT_EQ(got.total_reward, want.total_reward) << context;  // bitwise
  for (std::size_t c = 0; c < got.centers.size(); ++c) {
    for (std::size_t d = 0; d < got.centers.dim(); ++d) {
      EXPECT_EQ(got.centers[c][d], want.centers[c][d])
          << context << " center " << c << " coord " << d;
    }
  }
}

TEST(ShardedDeterminism, IdenticalAcrossThreadCounts) {
  // Large enough that the solver actually shards (several multiples of
  // min_shard_size), across both paper metrics and weight schemes.
  const struct {
    std::uint64_t seed;
    std::size_t n;
    std::size_t k;
    geo::Metric metric;
    rnd::WeightScheme weights;
  } cases[] = {
      {11, 300, 6, geo::l2_metric(), rnd::WeightScheme::kUniformInt},
      {12, 512, 8, geo::l1_metric(), rnd::WeightScheme::kSame},
      {13, 700, 5, geo::l2_metric(), rnd::WeightScheme::kZipf},
  };

  for (const auto& c : cases) {
    rnd::WorkloadSpec spec;
    spec.n = c.n;
    spec.weights = c.weights;
    rnd::Rng rng(c.seed);
    const core::Problem problem = core::Problem::from_workload(
        rnd::generate_workload(spec, rng), 1.0, c.metric);

    ShardedSolverConfig shard_config;
    shard_config.max_shards = 5;  // fixed partition across pool sizes

    par::ThreadPool pool1(1);
    const core::Solution baseline =
        ShardedSolver(pool1, shard_config).solve(problem, c.k);
    ASSERT_EQ(baseline.centers.size(), c.k);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      par::ThreadPool pool(threads);
      const core::Solution got =
          ShardedSolver(pool, shard_config).solve(problem, c.k);
      expect_identical(got, baseline,
                       "seed=" + std::to_string(c.seed) + " threads=" +
                           std::to_string(threads));
    }

    // Same pool, repeated solve: no hidden state between runs.
    const core::Solution again =
        ShardedSolver(pool1, shard_config).solve(problem, c.k);
    expect_identical(again, baseline,
                     "seed=" + std::to_string(c.seed) + " repeat");
  }
}

}  // namespace
}  // namespace mmph::serve
