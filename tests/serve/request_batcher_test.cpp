// RequestBatcher: bounded-queue backpressure, FIFO batching, deadline
// expiry at dequeue, and shutdown draining.

#include "mmph/serve/request_batcher.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "mmph/serve/metrics.hpp"

namespace mmph::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(RequestBatcher, BatchesInFifoOrder) {
  RequestBatcher batcher(8);
  for (std::uint64_t id = 0; id < 3; ++id) {
    EXPECT_TRUE(batcher.push(Request::remove_users({id})));
  }
  EXPECT_EQ(batcher.depth(), 3u);
  const std::vector<Request> batch = batcher.pop_batch(8);
  ASSERT_EQ(batch.size(), 3u);
  for (std::uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(batch[id].ids, std::vector<std::uint64_t>{id});
  }
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(RequestBatcher, MaxBatchLimitsDrain) {
  RequestBatcher batcher(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(batcher.push(Request::query_placement()));
  }
  EXPECT_EQ(batcher.pop_batch(2).size(), 2u);
  EXPECT_EQ(batcher.depth(), 3u);
  EXPECT_EQ(batcher.pop_batch(8).size(), 3u);
}

TEST(RequestBatcher, FullQueueRejectsWithReadyFuture) {
  ServeMetrics metrics;
  RequestBatcher batcher(2, &metrics);
  EXPECT_TRUE(batcher.push(Request::query_placement()));
  EXPECT_TRUE(batcher.push(Request::query_placement()));

  Request overflow = Request::query_placement();
  std::future<Response> future = overflow.reply.get_future();
  EXPECT_FALSE(batcher.push(std::move(overflow)));
  ASSERT_EQ(future.wait_for(milliseconds(0)), std::future_status::ready);
  EXPECT_EQ(future.get().status, ResponseStatus::kRejected);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.rejected_full, 1u);
  EXPECT_EQ(snap.queue_depth, 2u);
}

TEST(RequestBatcher, ExpiredRequestsAreAnsweredNotBatched) {
  ServeMetrics metrics;
  RequestBatcher batcher(8, &metrics);

  Request expired = Request::query_placement();
  expired.deadline = steady_clock::now() - milliseconds(10);
  std::future<Response> expired_future = expired.reply.get_future();
  EXPECT_TRUE(batcher.push(std::move(expired)));
  EXPECT_TRUE(batcher.push(Request::query_placement()));

  const std::vector<Request> batch = batcher.pop_batch(8);
  ASSERT_EQ(batch.size(), 1u);  // only the live request survives
  ASSERT_EQ(expired_future.wait_for(milliseconds(0)),
            std::future_status::ready);
  const ResponseStatus status = expired_future.get().status;
  EXPECT_EQ(status, ResponseStatus::kTimeout) << "got " << to_string(status);
  EXPECT_EQ(metrics.snapshot().timeouts, 1u);
}

// Pins the contract the net layer relies on: a *mutation* whose deadline
// passes while it sits in the queue must be answered kTimeout and must
// NOT appear in any drained batch (it would otherwise be silently applied
// to the store after its deadline).
TEST(RequestBatcher, DeadlinePassingWhileQueuedTimesOutMutation) {
  ServeMetrics metrics;
  RequestBatcher batcher(8, &metrics);

  Request add = Request::add_users({UserRecord{7, {0.5, 0.5}, 1.0}});
  add.deadline = steady_clock::now() + milliseconds(10);
  std::future<Response> add_future = add.reply.get_future();
  EXPECT_TRUE(batcher.push(std::move(add)));  // live at submit time

  std::this_thread::sleep_for(milliseconds(30));  // deadline passes queued
  const std::vector<Request> batch = batcher.pop_batch(8);
  EXPECT_TRUE(batch.empty()) << "expired mutation must not be drained";
  ASSERT_EQ(add_future.wait_for(milliseconds(0)), std::future_status::ready);
  const Response response = add_future.get();
  EXPECT_EQ(response.status, ResponseStatus::kTimeout)
      << "got " << to_string(response.status);
  EXPECT_EQ(metrics.snapshot().timeouts, 1u);
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(RequestBatcher, CloseAnswersQueuedAndShutsDownNewPushes) {
  ServeMetrics metrics;
  RequestBatcher batcher(8, &metrics);
  Request queued = Request::query_placement();
  std::future<Response> queued_future = queued.reply.get_future();
  EXPECT_TRUE(batcher.push(std::move(queued)));

  batcher.close();
  EXPECT_TRUE(batcher.closed());
  ASSERT_EQ(queued_future.wait_for(milliseconds(0)),
            std::future_status::ready);
  EXPECT_EQ(queued_future.get().status, ResponseStatus::kShutdown);

  // A push racing close() is a shutdown, not backpressure: it must not
  // read as kRejected (queue-full) nor count as submitted.
  Request late = Request::query_placement();
  std::future<Response> late_future = late.reply.get_future();
  EXPECT_FALSE(batcher.push(std::move(late)));
  EXPECT_EQ(late_future.get().status, ResponseStatus::kShutdown);
  EXPECT_TRUE(batcher.pop_batch(8).empty());

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.submitted, 1u) << "late push must not count as submitted";
  EXPECT_EQ(snap.rejected_full, 0u);
  EXPECT_EQ(snap.shutdown, 2u) << "one drained + one late push";
}

TEST(RequestBatcher, PushCloseRaceAlwaysFulfillsEveryPromise) {
  // Hammer push against close from another thread: every push must get
  // exactly one answer (kOk-queued-then-drained-kShutdown, or immediate
  // kShutdown), never a broken promise and never kRejected while the
  // queue has room.
  for (int round = 0; round < 20; ++round) {
    RequestBatcher batcher(1024);
    std::vector<std::future<Response>> futures;
    futures.reserve(64);
    std::thread closer([&batcher] { batcher.close(); });
    for (int i = 0; i < 64; ++i) {
      Request request = Request::query_placement();
      futures.push_back(request.reply.get_future());
      batcher.push(std::move(request));
    }
    closer.join();
    batcher.close();  // answer anything that slipped in after the race
    for (auto& future : futures) {
      ASSERT_EQ(future.wait_for(milliseconds(1000)),
                std::future_status::ready)
          << "push/close race left a promise unfulfilled";
      const ResponseStatus status = future.get().status;
      EXPECT_TRUE(status == ResponseStatus::kOk ||
                  status == ResponseStatus::kShutdown)
          << "got " << to_string(status);
    }
  }
}

TEST(RequestBatcher, PopWithWaitReturnsEmptyOnTimeout) {
  RequestBatcher batcher(8);
  const auto start = steady_clock::now();
  EXPECT_TRUE(batcher.pop_batch(8, milliseconds(30)).empty());
  EXPECT_GE(steady_clock::now() - start, milliseconds(20));
}

}  // namespace
}  // namespace mmph::serve
