// mmph::chaos unit + sweep coverage. The unit half pins the determinism
// contract of the Injector and the errno shapes of FaultySocketOps at
// probability 1/0 (no randomness in the assertion); the sweep half runs
// seeded schedules through run_serve_chaos / run_net_chaos and requires
// every one to hold the harness invariants. Failures print the seed, and
// `chaos_runner --mode serve --seed N` (or --mode net) reproduces one
// schedule exactly.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

#include "mmph/chaos/fault_plan.hpp"
#include "mmph/chaos/faulty_socket_ops.hpp"
#include "mmph/chaos/harness.hpp"
#include "mmph/chaos/injector.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"

namespace mmph::chaos {
namespace {

bool same_placement_centers(const serve::PlacementView& got,
                            const serve::PlacementView& want) {
  const geo::PointSet& a = got.solution.centers;
  const geo::PointSet& b = want.solution.centers;
  if (a.size() != b.size() || a.dim() != b.dim()) return false;
  for (std::size_t c = 0; c < a.size(); ++c) {
    for (std::size_t d = 0; d < a.dim(); ++d) {
      if (a[c][d] != b[c][d]) return false;
    }
  }
  return true;
}

TEST(FaultPlan, WithOverwritesAndProbabilityOf) {
  FaultPlan plan;
  plan.with("a", 0.5).with("b", 0.25).with("a", 0.75);
  EXPECT_DOUBLE_EQ(plan.probability_of("a"), 0.75);
  EXPECT_DOUBLE_EQ(plan.probability_of("b"), 0.25);
  EXPECT_DOUBLE_EQ(plan.probability_of("absent"), 0.0);
  EXPECT_EQ(plan.sites.size(), 2u);
}

TEST(Injector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.with("x", 0.5).with("y", 0.5);
  Injector a(plan);
  Injector b(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.fire("x"), b.fire("x")) << "consult " << i;
    EXPECT_EQ(a.fire("y"), b.fire("y")) << "consult " << i;
  }
}

TEST(Injector, SiteStreamsAreIndependent) {
  // The decision sequence at "x" must not depend on how often other
  // sites are consulted — that is what makes schedules reproducible
  // even when timing varies the interleaving.
  FaultPlan plan;
  plan.seed = 7;
  plan.with("x", 0.5).with("noise", 0.5);
  Injector quiet(plan);
  Injector noisy(plan);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 3; ++j) (void)noisy.fire("noise");
    EXPECT_EQ(quiet.fire("x"), noisy.fire("x")) << "consult " << i;
  }
}

TEST(Injector, ProbabilityEndpointsAndDisarm) {
  FaultPlan plan;
  plan.seed = 3;
  plan.with("always", 1.0).with("never", 0.0);
  Injector injector(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.fire("always"));
    EXPECT_FALSE(injector.fire("never"));
    EXPECT_FALSE(injector.fire("unplanned"));
  }
  injector.set_armed(false);
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(injector.fire("always"));
  injector.set_armed(true);
  EXPECT_TRUE(injector.fire("always"));

  const std::vector<SiteReport> report = injector.report();
  ASSERT_EQ(report.size(), 3u);  // sorted: always, never, unplanned
  EXPECT_EQ(report[0].site, "always");
  EXPECT_EQ(report[0].consulted, 101u);
  EXPECT_EQ(report[0].fired, 51u);
  EXPECT_EQ(report[1].fired, 0u);
}

TEST(Injector, HookAdaptsToServeFaultHook) {
  FaultPlan plan;
  plan.with(serve::kFaultQueueFull, 1.0);
  Injector injector(plan);
  const serve::FaultHook hook = injector.hook();
  EXPECT_TRUE(hook(serve::kFaultQueueFull));
  EXPECT_FALSE(hook(serve::kFaultSolverThrow));
}

class FaultySocketOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FaultySocketOpsTest, InjectedErrnosAndShortIo) {
  FaultPlan plan;
  plan.seed = 5;
  plan.with("t.read_eintr", 1.0);
  Injector injector(plan);
  FaultySocketOps ops(injector, "t.");

  std::uint8_t buf[16] = {};
  errno = 0;
  EXPECT_EQ(ops.read(fds_[0], buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EINTR);

  // Only the planned site fires: writes pass straight through...
  const std::uint8_t payload[4] = {1, 2, 3, 4};
  EXPECT_EQ(ops.write(fds_[1], payload, sizeof(payload)), 4);

  // ...and with a short-read plan the next read is capped to one byte.
  FaultPlan short_plan;
  short_plan.with("t.read_short", 1.0);
  Injector short_injector(short_plan);
  FaultySocketOps short_ops(short_injector, "t.");
  EXPECT_EQ(short_ops.read(fds_[0], buf, sizeof(buf)), 1);
  EXPECT_EQ(buf[0], 1);
}

TEST_F(FaultySocketOpsTest, WriteFaults) {
  FaultPlan plan;
  plan.with("t.write_reset", 1.0);
  Injector injector(plan);
  FaultySocketOps ops(injector, "t.");
  const std::uint8_t payload[2] = {9, 9};
  errno = 0;
  EXPECT_EQ(ops.write(fds_[1], payload, sizeof(payload)), -1);
  EXPECT_EQ(errno, EPIPE);

  FaultPlan short_plan;
  short_plan.with("t.write_short", 1.0);
  Injector short_injector(short_plan);
  FaultySocketOps short_ops(short_injector, "t.");
  EXPECT_EQ(short_ops.write(fds_[1], payload, sizeof(payload)), 1);
}

// --- forced serve fault sites (probability 1, no sweep randomness) ---------

TEST(ServeFaultSites, AllocFailAnswersInternalErrorWithoutMutating) {
  FaultPlan plan;
  plan.with(serve::kFaultAllocFail, 1.0);
  Injector injector(plan);
  serve::ServiceConfig config;
  config.dim = 2;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  auto future = service.submit(
      serve::Request::add_users({serve::UserRecord{1, {0.5, 0.5}, 1.0}}));
  while (service.pump(std::chrono::milliseconds(0)) > 0) {
  }
  EXPECT_EQ(future.get().status, serve::ResponseStatus::kInternalError);
  EXPECT_EQ(service.population(), 0u) << "store must stay untouched";
}

TEST(ServeFaultSites, SolverThrowFailsQueryButNotBatchmates) {
  FaultPlan plan;
  plan.with(serve::kFaultSolverThrow, 1.0);
  Injector injector(plan);
  serve::ServiceConfig config;
  config.dim = 2;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  auto add = service.submit(
      serve::Request::add_users({serve::UserRecord{1, {0.5, 0.5}, 1.0}}));
  auto query = service.submit(serve::Request::query_placement());
  while (service.pump(std::chrono::milliseconds(0)) > 0) {
  }
  EXPECT_EQ(add.get().status, serve::ResponseStatus::kOk);
  EXPECT_EQ(query.get().status, serve::ResponseStatus::kInternalError);
  EXPECT_EQ(service.population(), 1u);
}

TEST(ServeFaultSites, QueueFullRejectsAtSubmit) {
  FaultPlan plan;
  plan.with(serve::kFaultQueueFull, 1.0);
  Injector injector(plan);
  serve::ServiceConfig config;
  config.dim = 2;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  auto future = service.submit(serve::Request::query_placement());
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "a forced-full queue must answer immediately";
  EXPECT_EQ(future.get().status, serve::ResponseStatus::kRejected);
}

TEST(ServeFaultSites, DeadlineSkewAnswersTimeoutAndDropsMutation) {
  FaultPlan plan;
  plan.with(serve::kFaultDeadlineSkew, 1.0);
  Injector injector(plan);
  serve::ServiceConfig config;
  config.dim = 2;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  auto future = service.submit(
      serve::Request::add_users({serve::UserRecord{1, {0.5, 0.5}, 1.0}}));
  while (service.pump(std::chrono::milliseconds(0)) > 0) {
  }
  EXPECT_EQ(future.get().status, serve::ResponseStatus::kTimeout);
  EXPECT_EQ(service.population(), 0u) << "skewed mutation must not apply";
  EXPECT_GE(service.metrics().timeouts, 1u);
}

// --- forced spatial-index fault sites --------------------------------------
//
// The coverage grid is an accelerator, never truth: a mirror failure or a
// corruption detection drops/rebuilds the index, but every response stays
// kOk and the placement must match a fault-free service bit for bit.

TEST(SpatialFaultSites, AllocFailDuringMirrorIsOutputInvisible) {
  const core::kernels::ScopedIndexMode mode(core::kernels::IndexMode::kGrid);
  FaultPlan plan;
  plan.with(serve::kFaultSpatialAllocFail, 1.0);
  Injector injector(plan);
  serve::ServiceConfig config;
  config.dim = 2;
  config.full_solve_churn_fraction = 0.0;
  config.fault_hook = injector.hook();
  serve::PlacementService faulty(config);
  serve::ServiceConfig clean = config;
  clean.fault_hook = {};
  serve::PlacementService reference(clean);

  rnd::Pcg64 rng(11);
  std::vector<serve::UserRecord> users;
  for (std::uint64_t id = 1; id <= 48; ++id) {
    users.push_back(serve::UserRecord{
        id,
        {static_cast<double>(rng.next_below(400)) / 100.0,
         static_cast<double>(rng.next_below(400)) / 100.0},
        1.0});
  }
  faulty.apply_add(users);
  reference.apply_add(users);
  (void)faulty.placement();  // builds the index; the mirror is now live
  (void)reference.placement();

  // Churn with the mirror failing on every mutation: the index goes
  // dirty, the next solve rebuilds it, and nothing observable moves.
  for (int epoch = 0; epoch < 4; ++epoch) {
    const std::vector<serve::UserRecord> add = {serve::UserRecord{
        100u + static_cast<std::uint64_t>(epoch), {1.0 + 0.1 * epoch, 2.0},
        1.0}};
    const std::vector<std::uint64_t> remove = {
        static_cast<std::uint64_t>(2 * epoch + 1)};
    faulty.apply_add(add);
    faulty.apply_remove(remove);
    reference.apply_add(add);
    reference.apply_remove(remove);

    const serve::PlacementView got = faulty.placement();
    const serve::PlacementView want = reference.placement();
    ASSERT_EQ(faulty.population(), reference.population());
    EXPECT_EQ(got.objective, want.objective) << "epoch " << epoch;  // bitwise
    ASSERT_TRUE(same_placement_centers(got, want)) << "epoch " << epoch;
  }
  // The injected mirror failures forced rebuilds beyond the initial one.
  EXPECT_GT(faulty.metrics().spatial_rebuilds, 1u);
  EXPECT_EQ(reference.metrics().spatial_rebuilds, 1u);
}

TEST(SpatialFaultSites, CorruptDetectionRebuildsWithSamePlacement) {
  const core::kernels::ScopedIndexMode mode(core::kernels::IndexMode::kGrid);
  FaultPlan plan;
  plan.with(serve::kFaultSpatialCorrupt, 1.0);
  Injector injector(plan);
  serve::ServiceConfig config;
  config.dim = 2;
  config.full_solve_churn_fraction = 0.0;
  config.fault_hook = injector.hook();
  serve::PlacementService faulty(config);
  serve::ServiceConfig clean = config;
  clean.fault_hook = {};
  serve::PlacementService reference(clean);

  std::vector<serve::UserRecord> users;
  for (std::uint64_t id = 1; id <= 32; ++id) {
    users.push_back(serve::UserRecord{
        id, {0.13 * static_cast<double>(id), 0.29 * static_cast<double>(id)},
        1.0});
  }
  faulty.apply_add(users);
  reference.apply_add(users);

  for (int round = 0; round < 3; ++round) {
    const std::vector<serve::UserRecord> add = {serve::UserRecord{
        200u + static_cast<std::uint64_t>(round), {2.0, 0.5 * round}, 1.0}};
    faulty.apply_add(add);
    reference.apply_add(add);
    const serve::PlacementView got = faulty.placement();
    const serve::PlacementView want = reference.placement();
    EXPECT_EQ(got.objective, want.objective) << "round " << round;  // bitwise
    ASSERT_TRUE(same_placement_centers(got, want)) << "round " << round;
  }
  // Every solve after the first found its carried index "corrupt" and
  // rebuilt; the reference reused its grid throughout.
  EXPECT_GE(faulty.metrics().spatial_rebuilds, 3u);
  EXPECT_EQ(reference.metrics().spatial_rebuilds, 1u);
}

// --- seeded schedule sweeps ------------------------------------------------

TEST(ChaosSweep, ServeSchedulesHoldInvariants) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ServeChaosOptions options;
    options.seed = seed;
    const ChaosResult result = run_serve_chaos(options);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_EQ(result.requests, options.operations);
  }
}

TEST(ChaosSweep, NetSchedulesHoldInvariants) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    NetChaosOptions options;
    options.seed = seed;
    const ChaosResult result = run_net_chaos(options);
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_EQ(result.requests, options.operations);
  }
}

TEST(ChaosSweep, StoreShardSchedulesHoldInvariants) {
  // A pinned slice of the chaos_runner --mode shards sweep: both the
  // legacy single-shard layout and the per-shard-dir layout must keep the
  // bitwise crash-recovery invariant under fire.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      StoreShardChaosOptions options;
      options.seed = seed;
      options.shards = shards;
      const ChaosResult result = run_store_shard_chaos(options);
      ASSERT_TRUE(result.ok) << result.message << " (shards=" << shards
                             << ")";
    }
  }
}

TEST(ChaosSweep, ScheduleActuallyInjects) {
  // Guard against a silently disconnected seam: across a handful of
  // seeds, faults must actually fire.
  std::uint64_t fired = 0;
  for (std::uint64_t seed = 101; seed <= 105; ++seed) {
    ServeChaosOptions options;
    options.seed = seed;
    const ChaosResult result = run_serve_chaos(options);
    ASSERT_TRUE(result.ok) << result.message;
    fired += result.faults_fired;
  }
  EXPECT_GT(fired, 0u) << "no fault ever fired — seam disconnected?";
}

}  // namespace
}  // namespace mmph::chaos
