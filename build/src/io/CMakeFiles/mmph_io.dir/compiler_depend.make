# Empty compiler generated dependencies file for mmph_io.
# This may be replaced when dependencies are built.
