file(REMOVE_RECURSE
  "CMakeFiles/mmph_io.dir/args.cpp.o"
  "CMakeFiles/mmph_io.dir/args.cpp.o.d"
  "CMakeFiles/mmph_io.dir/stats.cpp.o"
  "CMakeFiles/mmph_io.dir/stats.cpp.o.d"
  "CMakeFiles/mmph_io.dir/table.cpp.o"
  "CMakeFiles/mmph_io.dir/table.cpp.o.d"
  "libmmph_io.a"
  "libmmph_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
