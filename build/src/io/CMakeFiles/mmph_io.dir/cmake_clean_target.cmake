file(REMOVE_RECURSE
  "libmmph_io.a"
)
