# Empty compiler generated dependencies file for mmph_random.
# This may be replaced when dependencies are built.
