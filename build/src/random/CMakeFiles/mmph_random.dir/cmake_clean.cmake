file(REMOVE_RECURSE
  "CMakeFiles/mmph_random.dir/halton.cpp.o"
  "CMakeFiles/mmph_random.dir/halton.cpp.o.d"
  "CMakeFiles/mmph_random.dir/rng.cpp.o"
  "CMakeFiles/mmph_random.dir/rng.cpp.o.d"
  "CMakeFiles/mmph_random.dir/workload.cpp.o"
  "CMakeFiles/mmph_random.dir/workload.cpp.o.d"
  "libmmph_random.a"
  "libmmph_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
