file(REMOVE_RECURSE
  "libmmph_random.a"
)
