
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/random/halton.cpp" "src/random/CMakeFiles/mmph_random.dir/halton.cpp.o" "gcc" "src/random/CMakeFiles/mmph_random.dir/halton.cpp.o.d"
  "/root/repo/src/random/rng.cpp" "src/random/CMakeFiles/mmph_random.dir/rng.cpp.o" "gcc" "src/random/CMakeFiles/mmph_random.dir/rng.cpp.o.d"
  "/root/repo/src/random/workload.cpp" "src/random/CMakeFiles/mmph_random.dir/workload.cpp.o" "gcc" "src/random/CMakeFiles/mmph_random.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mmph_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mmph_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
