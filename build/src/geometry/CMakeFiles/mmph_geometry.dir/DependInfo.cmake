
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/cell_grid.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/cell_grid.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/cell_grid.cpp.o.d"
  "/root/repo/src/geometry/enclosing.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/enclosing.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/enclosing.cpp.o.d"
  "/root/repo/src/geometry/enclosing_ball.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/enclosing_ball.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/enclosing_ball.cpp.o.d"
  "/root/repo/src/geometry/enclosing_l1.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/enclosing_l1.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/enclosing_l1.cpp.o.d"
  "/root/repo/src/geometry/kd_tree.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/kd_tree.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/kd_tree.cpp.o.d"
  "/root/repo/src/geometry/norms.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/norms.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/norms.cpp.o.d"
  "/root/repo/src/geometry/point_set.cpp" "src/geometry/CMakeFiles/mmph_geometry.dir/point_set.cpp.o" "gcc" "src/geometry/CMakeFiles/mmph_geometry.dir/point_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mmph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
