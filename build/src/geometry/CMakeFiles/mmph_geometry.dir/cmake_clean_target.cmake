file(REMOVE_RECURSE
  "libmmph_geometry.a"
)
