file(REMOVE_RECURSE
  "CMakeFiles/mmph_geometry.dir/cell_grid.cpp.o"
  "CMakeFiles/mmph_geometry.dir/cell_grid.cpp.o.d"
  "CMakeFiles/mmph_geometry.dir/enclosing.cpp.o"
  "CMakeFiles/mmph_geometry.dir/enclosing.cpp.o.d"
  "CMakeFiles/mmph_geometry.dir/enclosing_ball.cpp.o"
  "CMakeFiles/mmph_geometry.dir/enclosing_ball.cpp.o.d"
  "CMakeFiles/mmph_geometry.dir/enclosing_l1.cpp.o"
  "CMakeFiles/mmph_geometry.dir/enclosing_l1.cpp.o.d"
  "CMakeFiles/mmph_geometry.dir/kd_tree.cpp.o"
  "CMakeFiles/mmph_geometry.dir/kd_tree.cpp.o.d"
  "CMakeFiles/mmph_geometry.dir/norms.cpp.o"
  "CMakeFiles/mmph_geometry.dir/norms.cpp.o.d"
  "CMakeFiles/mmph_geometry.dir/point_set.cpp.o"
  "CMakeFiles/mmph_geometry.dir/point_set.cpp.o.d"
  "libmmph_geometry.a"
  "libmmph_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
