# Empty compiler generated dependencies file for mmph_geometry.
# This may be replaced when dependencies are built.
