file(REMOVE_RECURSE
  "libmmph_core.a"
)
