# Empty compiler generated dependencies file for mmph_core.
# This may be replaced when dependencies are built.
