
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/mmph_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/mmph_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/mmph_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/budgeted.cpp" "src/core/CMakeFiles/mmph_core.dir/budgeted.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/budgeted.cpp.o.d"
  "/root/repo/src/core/candidate_set.cpp" "src/core/CMakeFiles/mmph_core.dir/candidate_set.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/candidate_set.cpp.o.d"
  "/root/repo/src/core/certificate.cpp" "src/core/CMakeFiles/mmph_core.dir/certificate.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/certificate.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/core/CMakeFiles/mmph_core.dir/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/exhaustive.cpp.o.d"
  "/root/repo/src/core/greedy_complex.cpp" "src/core/CMakeFiles/mmph_core.dir/greedy_complex.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/greedy_complex.cpp.o.d"
  "/root/repo/src/core/greedy_local.cpp" "src/core/CMakeFiles/mmph_core.dir/greedy_local.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/greedy_local.cpp.o.d"
  "/root/repo/src/core/greedy_simple.cpp" "src/core/CMakeFiles/mmph_core.dir/greedy_simple.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/greedy_simple.cpp.o.d"
  "/root/repo/src/core/indexed_reward.cpp" "src/core/CMakeFiles/mmph_core.dir/indexed_reward.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/indexed_reward.cpp.o.d"
  "/root/repo/src/core/lazy_greedy.cpp" "src/core/CMakeFiles/mmph_core.dir/lazy_greedy.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/lazy_greedy.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/mmph_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/mmph_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/mmph_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/mmph_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/reward.cpp" "src/core/CMakeFiles/mmph_core.dir/reward.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/reward.cpp.o.d"
  "/root/repo/src/core/round_based.cpp" "src/core/CMakeFiles/mmph_core.dir/round_based.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/round_based.cpp.o.d"
  "/root/repo/src/core/round_polish.cpp" "src/core/CMakeFiles/mmph_core.dir/round_polish.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/round_polish.cpp.o.d"
  "/root/repo/src/core/sieve_streaming.cpp" "src/core/CMakeFiles/mmph_core.dir/sieve_streaming.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/sieve_streaming.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/mmph_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/stochastic_greedy.cpp" "src/core/CMakeFiles/mmph_core.dir/stochastic_greedy.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/stochastic_greedy.cpp.o.d"
  "/root/repo/src/core/submodular.cpp" "src/core/CMakeFiles/mmph_core.dir/submodular.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/submodular.cpp.o.d"
  "/root/repo/src/core/swap_evaluator.cpp" "src/core/CMakeFiles/mmph_core.dir/swap_evaluator.cpp.o" "gcc" "src/core/CMakeFiles/mmph_core.dir/swap_evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mmph_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mmph_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/mmph_random.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mmph_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
