# Empty dependencies file for mmph_exp.
# This may be replaced when dependencies are built.
