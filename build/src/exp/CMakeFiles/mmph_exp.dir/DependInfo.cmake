
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/experiment.cpp" "src/exp/CMakeFiles/mmph_exp.dir/experiment.cpp.o" "gcc" "src/exp/CMakeFiles/mmph_exp.dir/experiment.cpp.o.d"
  "/root/repo/src/exp/paired.cpp" "src/exp/CMakeFiles/mmph_exp.dir/paired.cpp.o" "gcc" "src/exp/CMakeFiles/mmph_exp.dir/paired.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/mmph_exp.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/mmph_exp.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mmph_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mmph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mmph_io.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mmph_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/mmph_random.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mmph_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
