file(REMOVE_RECURSE
  "CMakeFiles/mmph_exp.dir/experiment.cpp.o"
  "CMakeFiles/mmph_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/mmph_exp.dir/paired.cpp.o"
  "CMakeFiles/mmph_exp.dir/paired.cpp.o.d"
  "CMakeFiles/mmph_exp.dir/report.cpp.o"
  "CMakeFiles/mmph_exp.dir/report.cpp.o.d"
  "libmmph_exp.a"
  "libmmph_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
