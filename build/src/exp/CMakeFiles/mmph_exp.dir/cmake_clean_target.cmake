file(REMOVE_RECURSE
  "libmmph_exp.a"
)
