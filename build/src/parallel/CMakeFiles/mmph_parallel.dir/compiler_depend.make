# Empty compiler generated dependencies file for mmph_parallel.
# This may be replaced when dependencies are built.
