file(REMOVE_RECURSE
  "libmmph_parallel.a"
)
