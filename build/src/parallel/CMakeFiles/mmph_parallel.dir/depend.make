# Empty dependencies file for mmph_parallel.
# This may be replaced when dependencies are built.
