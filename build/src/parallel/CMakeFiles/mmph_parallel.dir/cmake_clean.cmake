file(REMOVE_RECURSE
  "CMakeFiles/mmph_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/mmph_parallel.dir/thread_pool.cpp.o.d"
  "libmmph_parallel.a"
  "libmmph_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
