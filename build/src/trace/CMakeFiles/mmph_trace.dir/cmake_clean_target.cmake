file(REMOVE_RECURSE
  "libmmph_trace.a"
)
