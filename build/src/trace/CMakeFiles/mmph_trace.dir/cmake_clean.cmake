file(REMOVE_RECURSE
  "CMakeFiles/mmph_trace.dir/trace.cpp.o"
  "CMakeFiles/mmph_trace.dir/trace.cpp.o.d"
  "libmmph_trace.a"
  "libmmph_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
