# Empty dependencies file for mmph_trace.
# This may be replaced when dependencies are built.
