file(REMOVE_RECURSE
  "CMakeFiles/mmph_sim.dir/adaptive.cpp.o"
  "CMakeFiles/mmph_sim.dir/adaptive.cpp.o.d"
  "CMakeFiles/mmph_sim.dir/fairness.cpp.o"
  "CMakeFiles/mmph_sim.dir/fairness.cpp.o.d"
  "CMakeFiles/mmph_sim.dir/metrics.cpp.o"
  "CMakeFiles/mmph_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mmph_sim.dir/network.cpp.o"
  "CMakeFiles/mmph_sim.dir/network.cpp.o.d"
  "CMakeFiles/mmph_sim.dir/recorder.cpp.o"
  "CMakeFiles/mmph_sim.dir/recorder.cpp.o.d"
  "CMakeFiles/mmph_sim.dir/simulator.cpp.o"
  "CMakeFiles/mmph_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mmph_sim.dir/warm_start.cpp.o"
  "CMakeFiles/mmph_sim.dir/warm_start.cpp.o.d"
  "libmmph_sim.a"
  "libmmph_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
