file(REMOVE_RECURSE
  "libmmph_sim.a"
)
