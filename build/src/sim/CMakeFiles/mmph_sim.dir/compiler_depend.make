# Empty compiler generated dependencies file for mmph_sim.
# This may be replaced when dependencies are built.
