# Empty dependencies file for mmph_support.
# This may be replaced when dependencies are built.
