file(REMOVE_RECURSE
  "CMakeFiles/mmph_support.dir/error.cpp.o"
  "CMakeFiles/mmph_support.dir/error.cpp.o.d"
  "libmmph_support.a"
  "libmmph_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
