file(REMOVE_RECURSE
  "libmmph_support.a"
)
