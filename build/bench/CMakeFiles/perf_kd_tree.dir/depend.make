# Empty dependencies file for perf_kd_tree.
# This may be replaced when dependencies are built.
