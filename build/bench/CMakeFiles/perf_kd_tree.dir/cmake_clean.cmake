file(REMOVE_RECURSE
  "CMakeFiles/perf_kd_tree.dir/perf_kd_tree.cpp.o"
  "CMakeFiles/perf_kd_tree.dir/perf_kd_tree.cpp.o.d"
  "perf_kd_tree"
  "perf_kd_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_kd_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
