# Empty compiler generated dependencies file for fig4_2d_l2_weighted.
# This may be replaced when dependencies are built.
