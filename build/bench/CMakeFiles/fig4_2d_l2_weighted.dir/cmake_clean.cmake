file(REMOVE_RECURSE
  "CMakeFiles/fig4_2d_l2_weighted.dir/fig4_2d_l2_weighted.cpp.o"
  "CMakeFiles/fig4_2d_l2_weighted.dir/fig4_2d_l2_weighted.cpp.o.d"
  "fig4_2d_l2_weighted"
  "fig4_2d_l2_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_2d_l2_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
