file(REMOVE_RECURSE
  "CMakeFiles/perf_spatial_index.dir/perf_spatial_index.cpp.o"
  "CMakeFiles/perf_spatial_index.dir/perf_spatial_index.cpp.o.d"
  "perf_spatial_index"
  "perf_spatial_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_spatial_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
