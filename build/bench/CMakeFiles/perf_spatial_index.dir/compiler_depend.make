# Empty compiler generated dependencies file for perf_spatial_index.
# This may be replaced when dependencies are built.
