file(REMOVE_RECURSE
  "CMakeFiles/ablation_l1_center.dir/ablation_l1_center.cpp.o"
  "CMakeFiles/ablation_l1_center.dir/ablation_l1_center.cpp.o.d"
  "ablation_l1_center"
  "ablation_l1_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l1_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
