file(REMOVE_RECURSE
  "CMakeFiles/summary_aggregate.dir/summary_aggregate.cpp.o"
  "CMakeFiles/summary_aggregate.dir/summary_aggregate.cpp.o.d"
  "summary_aggregate"
  "summary_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
