# Empty dependencies file for summary_aggregate.
# This may be replaced when dependencies are built.
