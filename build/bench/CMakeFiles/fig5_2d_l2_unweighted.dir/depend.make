# Empty dependencies file for fig5_2d_l2_unweighted.
# This may be replaced when dependencies are built.
