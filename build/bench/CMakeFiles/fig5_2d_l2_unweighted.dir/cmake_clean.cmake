file(REMOVE_RECURSE
  "CMakeFiles/fig5_2d_l2_unweighted.dir/fig5_2d_l2_unweighted.cpp.o"
  "CMakeFiles/fig5_2d_l2_unweighted.dir/fig5_2d_l2_unweighted.cpp.o.d"
  "fig5_2d_l2_unweighted"
  "fig5_2d_l2_unweighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2d_l2_unweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
