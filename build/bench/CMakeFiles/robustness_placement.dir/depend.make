# Empty dependencies file for robustness_placement.
# This may be replaced when dependencies are built.
