file(REMOVE_RECURSE
  "CMakeFiles/robustness_placement.dir/robustness_placement.cpp.o"
  "CMakeFiles/robustness_placement.dir/robustness_placement.cpp.o.d"
  "robustness_placement"
  "robustness_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
