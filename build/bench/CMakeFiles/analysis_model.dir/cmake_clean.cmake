file(REMOVE_RECURSE
  "CMakeFiles/analysis_model.dir/analysis_model.cpp.o"
  "CMakeFiles/analysis_model.dir/analysis_model.cpp.o.d"
  "analysis_model"
  "analysis_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
