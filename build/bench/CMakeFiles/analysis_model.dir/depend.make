# Empty dependencies file for analysis_model.
# This may be replaced when dependencies are built.
