file(REMOVE_RECURSE
  "CMakeFiles/fig2_bounds.dir/fig2_bounds.cpp.o"
  "CMakeFiles/fig2_bounds.dir/fig2_bounds.cpp.o.d"
  "fig2_bounds"
  "fig2_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
