# Empty dependencies file for fig2_bounds.
# This may be replaced when dependencies are built.
