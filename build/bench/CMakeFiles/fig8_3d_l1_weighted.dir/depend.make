# Empty dependencies file for fig8_3d_l1_weighted.
# This may be replaced when dependencies are built.
