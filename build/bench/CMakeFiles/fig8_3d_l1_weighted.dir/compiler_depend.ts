# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_3d_l1_weighted.
