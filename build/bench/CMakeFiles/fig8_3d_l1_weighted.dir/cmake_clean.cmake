file(REMOVE_RECURSE
  "CMakeFiles/fig8_3d_l1_weighted.dir/fig8_3d_l1_weighted.cpp.o"
  "CMakeFiles/fig8_3d_l1_weighted.dir/fig8_3d_l1_weighted.cpp.o.d"
  "fig8_3d_l1_weighted"
  "fig8_3d_l1_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_3d_l1_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
