file(REMOVE_RECURSE
  "CMakeFiles/table1_example.dir/table1_example.cpp.o"
  "CMakeFiles/table1_example.dir/table1_example.cpp.o.d"
  "table1_example"
  "table1_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
