# Empty compiler generated dependencies file for perf_lazy_greedy.
# This may be replaced when dependencies are built.
