file(REMOVE_RECURSE
  "CMakeFiles/perf_lazy_greedy.dir/perf_lazy_greedy.cpp.o"
  "CMakeFiles/perf_lazy_greedy.dir/perf_lazy_greedy.cpp.o.d"
  "perf_lazy_greedy"
  "perf_lazy_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_lazy_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
