# Empty compiler generated dependencies file for perf_exhaustive.
# This may be replaced when dependencies are built.
