file(REMOVE_RECURSE
  "CMakeFiles/perf_exhaustive.dir/perf_exhaustive.cpp.o"
  "CMakeFiles/perf_exhaustive.dir/perf_exhaustive.cpp.o.d"
  "perf_exhaustive"
  "perf_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
