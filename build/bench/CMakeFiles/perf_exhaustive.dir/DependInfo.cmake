
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_exhaustive.cpp" "bench/CMakeFiles/perf_exhaustive.dir/perf_exhaustive.cpp.o" "gcc" "bench/CMakeFiles/perf_exhaustive.dir/perf_exhaustive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/mmph_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mmph_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mmph_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/mmph_random.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mmph_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mmph_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
