# Empty compiler generated dependencies file for perf_geometry.
# This may be replaced when dependencies are built.
