file(REMOVE_RECURSE
  "CMakeFiles/fig7_2d_l1_unweighted.dir/fig7_2d_l1_unweighted.cpp.o"
  "CMakeFiles/fig7_2d_l1_unweighted.dir/fig7_2d_l1_unweighted.cpp.o.d"
  "fig7_2d_l1_unweighted"
  "fig7_2d_l1_unweighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_2d_l1_unweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
