# Empty compiler generated dependencies file for fig7_2d_l1_unweighted.
# This may be replaced when dependencies are built.
