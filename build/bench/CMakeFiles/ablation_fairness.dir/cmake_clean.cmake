file(REMOVE_RECURSE
  "CMakeFiles/ablation_fairness.dir/ablation_fairness.cpp.o"
  "CMakeFiles/ablation_fairness.dir/ablation_fairness.cpp.o.d"
  "ablation_fairness"
  "ablation_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
