# Empty dependencies file for ablation_fairness.
# This may be replaced when dependencies are built.
