# Empty compiler generated dependencies file for certificate_tightness.
# This may be replaced when dependencies are built.
