file(REMOVE_RECURSE
  "CMakeFiles/certificate_tightness.dir/certificate_tightness.cpp.o"
  "CMakeFiles/certificate_tightness.dir/certificate_tightness.cpp.o.d"
  "certificate_tightness"
  "certificate_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certificate_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
