# Empty compiler generated dependencies file for deviation_d1_significance.
# This may be replaced when dependencies are built.
