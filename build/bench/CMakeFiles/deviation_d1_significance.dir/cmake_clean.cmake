file(REMOVE_RECURSE
  "CMakeFiles/deviation_d1_significance.dir/deviation_d1_significance.cpp.o"
  "CMakeFiles/deviation_d1_significance.dir/deviation_d1_significance.cpp.o.d"
  "deviation_d1_significance"
  "deviation_d1_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deviation_d1_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
