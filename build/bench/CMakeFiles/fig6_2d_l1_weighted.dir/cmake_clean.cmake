file(REMOVE_RECURSE
  "CMakeFiles/fig6_2d_l1_weighted.dir/fig6_2d_l1_weighted.cpp.o"
  "CMakeFiles/fig6_2d_l1_weighted.dir/fig6_2d_l1_weighted.cpp.o.d"
  "fig6_2d_l1_weighted"
  "fig6_2d_l1_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2d_l1_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
