# Empty compiler generated dependencies file for fig6_2d_l1_weighted.
# This may be replaced when dependencies are built.
