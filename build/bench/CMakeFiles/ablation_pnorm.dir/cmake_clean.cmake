file(REMOVE_RECURSE
  "CMakeFiles/ablation_pnorm.dir/ablation_pnorm.cpp.o"
  "CMakeFiles/ablation_pnorm.dir/ablation_pnorm.cpp.o.d"
  "ablation_pnorm"
  "ablation_pnorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pnorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
