# Empty dependencies file for ablation_pnorm.
# This may be replaced when dependencies are built.
