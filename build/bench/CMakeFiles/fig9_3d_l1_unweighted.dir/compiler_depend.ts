# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig9_3d_l1_unweighted.
