# Empty dependencies file for fig9_3d_l1_unweighted.
# This may be replaced when dependencies are built.
