file(REMOVE_RECURSE
  "CMakeFiles/fig9_3d_l1_unweighted.dir/fig9_3d_l1_unweighted.cpp.o"
  "CMakeFiles/fig9_3d_l1_unweighted.dir/fig9_3d_l1_unweighted.cpp.o.d"
  "fig9_3d_l1_unweighted"
  "fig9_3d_l1_unweighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_3d_l1_unweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
