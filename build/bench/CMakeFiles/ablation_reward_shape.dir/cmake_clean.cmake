file(REMOVE_RECURSE
  "CMakeFiles/ablation_reward_shape.dir/ablation_reward_shape.cpp.o"
  "CMakeFiles/ablation_reward_shape.dir/ablation_reward_shape.cpp.o.d"
  "ablation_reward_shape"
  "ablation_reward_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reward_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
