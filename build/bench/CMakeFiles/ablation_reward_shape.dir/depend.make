# Empty dependencies file for ablation_reward_shape.
# This may be replaced when dependencies are built.
