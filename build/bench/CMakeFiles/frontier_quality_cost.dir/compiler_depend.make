# Empty compiler generated dependencies file for frontier_quality_cost.
# This may be replaced when dependencies are built.
