file(REMOVE_RECURSE
  "CMakeFiles/frontier_quality_cost.dir/frontier_quality_cost.cpp.o"
  "CMakeFiles/frontier_quality_cost.dir/frontier_quality_cost.cpp.o.d"
  "frontier_quality_cost"
  "frontier_quality_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontier_quality_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
