file(REMOVE_RECURSE
  "CMakeFiles/mmph_cli.dir/mmph_cli.cpp.o"
  "CMakeFiles/mmph_cli.dir/mmph_cli.cpp.o.d"
  "mmph_cli"
  "mmph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
