# Empty compiler generated dependencies file for mmph_cli.
# This may be replaced when dependencies are built.
