# Empty compiler generated dependencies file for print_golden.
# This may be replaced when dependencies are built.
