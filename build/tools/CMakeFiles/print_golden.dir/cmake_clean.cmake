file(REMOVE_RECURSE
  "CMakeFiles/print_golden.dir/print_golden.cpp.o"
  "CMakeFiles/print_golden.dir/print_golden.cpp.o.d"
  "print_golden"
  "print_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/print_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
