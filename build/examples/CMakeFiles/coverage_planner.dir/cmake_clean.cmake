file(REMOVE_RECURSE
  "CMakeFiles/coverage_planner.dir/coverage_planner.cpp.o"
  "CMakeFiles/coverage_planner.dir/coverage_planner.cpp.o.d"
  "coverage_planner"
  "coverage_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
