file(REMOVE_RECURSE
  "CMakeFiles/broadcast_scheduler.dir/broadcast_scheduler.cpp.o"
  "CMakeFiles/broadcast_scheduler.dir/broadcast_scheduler.cpp.o.d"
  "broadcast_scheduler"
  "broadcast_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
