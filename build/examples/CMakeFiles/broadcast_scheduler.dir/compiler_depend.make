# Empty compiler generated dependencies file for broadcast_scheduler.
# This may be replaced when dependencies are built.
