# Empty compiler generated dependencies file for multi_cell_network.
# This may be replaced when dependencies are built.
