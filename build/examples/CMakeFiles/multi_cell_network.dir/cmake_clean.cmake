file(REMOVE_RECURSE
  "CMakeFiles/multi_cell_network.dir/multi_cell_network.cpp.o"
  "CMakeFiles/multi_cell_network.dir/multi_cell_network.cpp.o.d"
  "multi_cell_network"
  "multi_cell_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cell_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
