file(REMOVE_RECURSE
  "CMakeFiles/airtime_budget.dir/airtime_budget.cpp.o"
  "CMakeFiles/airtime_budget.dir/airtime_budget.cpp.o.d"
  "airtime_budget"
  "airtime_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airtime_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
