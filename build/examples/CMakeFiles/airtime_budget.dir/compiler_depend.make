# Empty compiler generated dependencies file for airtime_budget.
# This may be replaced when dependencies are built.
