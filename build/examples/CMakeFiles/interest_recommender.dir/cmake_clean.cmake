file(REMOVE_RECURSE
  "CMakeFiles/interest_recommender.dir/interest_recommender.cpp.o"
  "CMakeFiles/interest_recommender.dir/interest_recommender.cpp.o.d"
  "interest_recommender"
  "interest_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
