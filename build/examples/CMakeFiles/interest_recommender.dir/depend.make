# Empty dependencies file for interest_recommender.
# This may be replaced when dependencies are built.
