# Empty dependencies file for network_mobility.
# This may be replaced when dependencies are built.
