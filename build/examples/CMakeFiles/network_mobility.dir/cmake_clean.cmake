file(REMOVE_RECURSE
  "CMakeFiles/network_mobility.dir/network_mobility.cpp.o"
  "CMakeFiles/network_mobility.dir/network_mobility.cpp.o.d"
  "network_mobility"
  "network_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
