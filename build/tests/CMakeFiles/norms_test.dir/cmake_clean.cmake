file(REMOVE_RECURSE
  "CMakeFiles/norms_test.dir/geometry/norms_test.cpp.o"
  "CMakeFiles/norms_test.dir/geometry/norms_test.cpp.o.d"
  "norms_test"
  "norms_test.pdb"
  "norms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
