# Empty compiler generated dependencies file for norms_test.
# This may be replaced when dependencies are built.
