file(REMOVE_RECURSE
  "CMakeFiles/round_polish_test.dir/core/round_polish_test.cpp.o"
  "CMakeFiles/round_polish_test.dir/core/round_polish_test.cpp.o.d"
  "round_polish_test"
  "round_polish_test.pdb"
  "round_polish_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_polish_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
