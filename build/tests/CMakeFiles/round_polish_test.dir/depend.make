# Empty dependencies file for round_polish_test.
# This may be replaced when dependencies are built.
