# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sieve_streaming_test.
