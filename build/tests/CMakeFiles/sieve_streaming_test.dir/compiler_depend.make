# Empty compiler generated dependencies file for sieve_streaming_test.
# This may be replaced when dependencies are built.
