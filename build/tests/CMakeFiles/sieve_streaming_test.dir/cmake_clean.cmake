file(REMOVE_RECURSE
  "CMakeFiles/sieve_streaming_test.dir/core/sieve_streaming_test.cpp.o"
  "CMakeFiles/sieve_streaming_test.dir/core/sieve_streaming_test.cpp.o.d"
  "sieve_streaming_test"
  "sieve_streaming_test.pdb"
  "sieve_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sieve_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
