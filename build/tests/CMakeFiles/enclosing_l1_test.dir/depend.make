# Empty dependencies file for enclosing_l1_test.
# This may be replaced when dependencies are built.
