file(REMOVE_RECURSE
  "CMakeFiles/enclosing_l1_test.dir/geometry/enclosing_l1_test.cpp.o"
  "CMakeFiles/enclosing_l1_test.dir/geometry/enclosing_l1_test.cpp.o.d"
  "enclosing_l1_test"
  "enclosing_l1_test.pdb"
  "enclosing_l1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclosing_l1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
