# Empty compiler generated dependencies file for greedy_simple_test.
# This may be replaced when dependencies are built.
