file(REMOVE_RECURSE
  "CMakeFiles/greedy_simple_test.dir/core/greedy_simple_test.cpp.o"
  "CMakeFiles/greedy_simple_test.dir/core/greedy_simple_test.cpp.o.d"
  "greedy_simple_test"
  "greedy_simple_test.pdb"
  "greedy_simple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
