# Empty dependencies file for round_based_test.
# This may be replaced when dependencies are built.
