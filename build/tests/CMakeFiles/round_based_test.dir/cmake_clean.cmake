file(REMOVE_RECURSE
  "CMakeFiles/round_based_test.dir/core/round_based_test.cpp.o"
  "CMakeFiles/round_based_test.dir/core/round_based_test.cpp.o.d"
  "round_based_test"
  "round_based_test.pdb"
  "round_based_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
