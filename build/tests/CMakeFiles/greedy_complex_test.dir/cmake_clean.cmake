file(REMOVE_RECURSE
  "CMakeFiles/greedy_complex_test.dir/core/greedy_complex_test.cpp.o"
  "CMakeFiles/greedy_complex_test.dir/core/greedy_complex_test.cpp.o.d"
  "greedy_complex_test"
  "greedy_complex_test.pdb"
  "greedy_complex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
