# Empty compiler generated dependencies file for high_dim_test.
# This may be replaced when dependencies are built.
