file(REMOVE_RECURSE
  "CMakeFiles/high_dim_test.dir/core/high_dim_test.cpp.o"
  "CMakeFiles/high_dim_test.dir/core/high_dim_test.cpp.o.d"
  "high_dim_test"
  "high_dim_test.pdb"
  "high_dim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/high_dim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
