# Empty compiler generated dependencies file for pcg64_test.
# This may be replaced when dependencies are built.
