file(REMOVE_RECURSE
  "CMakeFiles/pcg64_test.dir/random/pcg64_test.cpp.o"
  "CMakeFiles/pcg64_test.dir/random/pcg64_test.cpp.o.d"
  "pcg64_test"
  "pcg64_test.pdb"
  "pcg64_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcg64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
