file(REMOVE_RECURSE
  "CMakeFiles/candidate_set_test.dir/core/candidate_set_test.cpp.o"
  "CMakeFiles/candidate_set_test.dir/core/candidate_set_test.cpp.o.d"
  "candidate_set_test"
  "candidate_set_test.pdb"
  "candidate_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
