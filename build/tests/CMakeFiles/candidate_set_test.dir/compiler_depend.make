# Empty compiler generated dependencies file for candidate_set_test.
# This may be replaced when dependencies are built.
