file(REMOVE_RECURSE
  "CMakeFiles/kd_tree_test.dir/geometry/kd_tree_test.cpp.o"
  "CMakeFiles/kd_tree_test.dir/geometry/kd_tree_test.cpp.o.d"
  "kd_tree_test"
  "kd_tree_test.pdb"
  "kd_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
