file(REMOVE_RECURSE
  "CMakeFiles/submodular_property_test.dir/core/submodular_property_test.cpp.o"
  "CMakeFiles/submodular_property_test.dir/core/submodular_property_test.cpp.o.d"
  "submodular_property_test"
  "submodular_property_test.pdb"
  "submodular_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/submodular_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
