# Empty dependencies file for submodular_property_test.
# This may be replaced when dependencies are built.
