# Empty compiler generated dependencies file for distribution_quality_test.
# This may be replaced when dependencies are built.
