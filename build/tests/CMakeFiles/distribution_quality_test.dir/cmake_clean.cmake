file(REMOVE_RECURSE
  "CMakeFiles/distribution_quality_test.dir/random/distribution_quality_test.cpp.o"
  "CMakeFiles/distribution_quality_test.dir/random/distribution_quality_test.cpp.o.d"
  "distribution_quality_test"
  "distribution_quality_test.pdb"
  "distribution_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
