file(REMOVE_RECURSE
  "CMakeFiles/ratio_bound_property_test.dir/core/ratio_bound_property_test.cpp.o"
  "CMakeFiles/ratio_bound_property_test.dir/core/ratio_bound_property_test.cpp.o.d"
  "ratio_bound_property_test"
  "ratio_bound_property_test.pdb"
  "ratio_bound_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratio_bound_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
