# Empty compiler generated dependencies file for ratio_bound_property_test.
# This may be replaced when dependencies are built.
