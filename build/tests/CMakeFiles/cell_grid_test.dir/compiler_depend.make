# Empty compiler generated dependencies file for cell_grid_test.
# This may be replaced when dependencies are built.
