file(REMOVE_RECURSE
  "CMakeFiles/cell_grid_test.dir/geometry/cell_grid_test.cpp.o"
  "CMakeFiles/cell_grid_test.dir/geometry/cell_grid_test.cpp.o.d"
  "cell_grid_test"
  "cell_grid_test.pdb"
  "cell_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
