file(REMOVE_RECURSE
  "CMakeFiles/parallel_for_test.dir/parallel/parallel_for_test.cpp.o"
  "CMakeFiles/parallel_for_test.dir/parallel/parallel_for_test.cpp.o.d"
  "parallel_for_test"
  "parallel_for_test.pdb"
  "parallel_for_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_for_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
