file(REMOVE_RECURSE
  "CMakeFiles/paired_test.dir/exp/paired_test.cpp.o"
  "CMakeFiles/paired_test.dir/exp/paired_test.cpp.o.d"
  "paired_test"
  "paired_test.pdb"
  "paired_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paired_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
