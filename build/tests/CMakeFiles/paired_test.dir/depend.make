# Empty dependencies file for paired_test.
# This may be replaced when dependencies are built.
