file(REMOVE_RECURSE
  "CMakeFiles/enclosing_ball_test.dir/geometry/enclosing_ball_test.cpp.o"
  "CMakeFiles/enclosing_ball_test.dir/geometry/enclosing_ball_test.cpp.o.d"
  "enclosing_ball_test"
  "enclosing_ball_test.pdb"
  "enclosing_ball_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclosing_ball_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
