# Empty compiler generated dependencies file for enclosing_ball_test.
# This may be replaced when dependencies are built.
