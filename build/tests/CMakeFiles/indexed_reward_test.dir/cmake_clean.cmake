file(REMOVE_RECURSE
  "CMakeFiles/indexed_reward_test.dir/core/indexed_reward_test.cpp.o"
  "CMakeFiles/indexed_reward_test.dir/core/indexed_reward_test.cpp.o.d"
  "indexed_reward_test"
  "indexed_reward_test.pdb"
  "indexed_reward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
