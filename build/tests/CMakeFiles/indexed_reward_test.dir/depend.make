# Empty dependencies file for indexed_reward_test.
# This may be replaced when dependencies are built.
