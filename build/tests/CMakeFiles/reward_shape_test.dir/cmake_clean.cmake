file(REMOVE_RECURSE
  "CMakeFiles/reward_shape_test.dir/core/reward_shape_test.cpp.o"
  "CMakeFiles/reward_shape_test.dir/core/reward_shape_test.cpp.o.d"
  "reward_shape_test"
  "reward_shape_test.pdb"
  "reward_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reward_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
