# Empty compiler generated dependencies file for reward_shape_test.
# This may be replaced when dependencies are built.
