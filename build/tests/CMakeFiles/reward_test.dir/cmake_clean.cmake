file(REMOVE_RECURSE
  "CMakeFiles/reward_test.dir/core/reward_test.cpp.o"
  "CMakeFiles/reward_test.dir/core/reward_test.cpp.o.d"
  "reward_test"
  "reward_test.pdb"
  "reward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
