# Empty compiler generated dependencies file for budgeted_test.
# This may be replaced when dependencies are built.
