file(REMOVE_RECURSE
  "CMakeFiles/classical_bound_test.dir/core/classical_bound_test.cpp.o"
  "CMakeFiles/classical_bound_test.dir/core/classical_bound_test.cpp.o.d"
  "classical_bound_test"
  "classical_bound_test.pdb"
  "classical_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classical_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
