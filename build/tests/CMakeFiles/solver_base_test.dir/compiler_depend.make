# Empty compiler generated dependencies file for solver_base_test.
# This may be replaced when dependencies are built.
