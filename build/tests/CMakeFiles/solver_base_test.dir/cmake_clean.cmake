file(REMOVE_RECURSE
  "CMakeFiles/solver_base_test.dir/core/solver_base_test.cpp.o"
  "CMakeFiles/solver_base_test.dir/core/solver_base_test.cpp.o.d"
  "solver_base_test"
  "solver_base_test.pdb"
  "solver_base_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
