file(REMOVE_RECURSE
  "CMakeFiles/lazy_greedy_test.dir/core/lazy_greedy_test.cpp.o"
  "CMakeFiles/lazy_greedy_test.dir/core/lazy_greedy_test.cpp.o.d"
  "lazy_greedy_test"
  "lazy_greedy_test.pdb"
  "lazy_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
