file(REMOVE_RECURSE
  "CMakeFiles/greedy_local_test.dir/core/greedy_local_test.cpp.o"
  "CMakeFiles/greedy_local_test.dir/core/greedy_local_test.cpp.o.d"
  "greedy_local_test"
  "greedy_local_test.pdb"
  "greedy_local_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_local_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
