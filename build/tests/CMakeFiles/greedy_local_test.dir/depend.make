# Empty dependencies file for greedy_local_test.
# This may be replaced when dependencies are built.
