file(REMOVE_RECURSE
  "CMakeFiles/swap_evaluator_test.dir/core/swap_evaluator_test.cpp.o"
  "CMakeFiles/swap_evaluator_test.dir/core/swap_evaluator_test.cpp.o.d"
  "swap_evaluator_test"
  "swap_evaluator_test.pdb"
  "swap_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
