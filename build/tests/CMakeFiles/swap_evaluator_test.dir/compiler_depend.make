# Empty compiler generated dependencies file for swap_evaluator_test.
# This may be replaced when dependencies are built.
