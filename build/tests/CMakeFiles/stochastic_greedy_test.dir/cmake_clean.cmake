file(REMOVE_RECURSE
  "CMakeFiles/stochastic_greedy_test.dir/core/stochastic_greedy_test.cpp.o"
  "CMakeFiles/stochastic_greedy_test.dir/core/stochastic_greedy_test.cpp.o.d"
  "stochastic_greedy_test"
  "stochastic_greedy_test.pdb"
  "stochastic_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stochastic_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
