# Empty dependencies file for stochastic_greedy_test.
# This may be replaced when dependencies are built.
