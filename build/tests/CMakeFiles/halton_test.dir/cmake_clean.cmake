file(REMOVE_RECURSE
  "CMakeFiles/halton_test.dir/random/halton_test.cpp.o"
  "CMakeFiles/halton_test.dir/random/halton_test.cpp.o.d"
  "halton_test"
  "halton_test.pdb"
  "halton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
