#!/bin/sh
# Tier-1 gate: configure, build, and run the full test suite — the exact
# line CI and reviewers run. Usage:
#
#   tools/check.sh              # plain build + ctest
#   MMPH_SANITIZE=ON tools/check.sh   # same, under ASan/UBSan
#   tools/check.sh perf-smoke   # build + perf_kernels at n=1000 (fast
#                               # kernel-speedup sanity; self-checks
#                               # blocked-vs-scalar agreement)
#   tools/check.sh net-smoke    # build + two-process socket smoke test
#                               # (serve-net --listen / --connect over an
#                               # ephemeral loopback port)
#   tools/check.sh net-fuzz     # build + run the wire-decoder fuzz corpus
#                               # (honors MMPH_SANITIZE=ON for ASan/UBSan)
#   tools/check.sh stats-smoke  # build + two-process metrics smoke test
#                               # (serve-net --listen scraped by `stats`
#                               # over an ephemeral loopback port)
#   tools/check.sh chaos        # build + chaos_runner seed sweep: 750
#                               # deterministic fault schedules (400 serve
#                               # + 100 net + 250 wal) through the full
#                               # stack; any failure prints its
#                               # reproducing seed.
#                               # MMPH_SANITIZE=ON tools/check.sh chaos
#                               # is the pre-merge gate for serve/net/wal
#                               # changes (same sweep under ASan/UBSan).
#   tools/check.sh wal          # build + every wal-labeled test (codec,
#                               # crash-point matrix, replication,
#                               # atomicity) — the fast WAL gate; the
#                               # chaos sweep above is the thorough one.
#   tools/check.sh index        # build + every spatial-labeled test (the
#                               # mmph::spatial query/churn contracts, the
#                               # indexed-vs-unindexed solver differential
#                               # corpus, the serve-path warm-index test).
#                               # MMPH_SANITIZE=ON tools/check.sh index
#                               # runs the same gate under ASan/UBSan —
#                               # the pre-merge gate for index changes.
#   tools/check.sh shards       # region-sharded store gate: the shard
#                               # unit/wal suites, the golden replay
#                               # digests (--store-shards 1 bit-identity
#                               # and the 4-shard stability pins), a
#                               # chaos_runner --mode shards sweep at
#                               # shards {1,4}, and a TSan build+run of
#                               # the shard-labeled suites. Pre-merge
#                               # gate for sharded-store / sharded-WAL /
#                               # commit-barrier changes.
#   tools/check.sh quality      # solver-quality gate: the quality-labeled
#                               # ctest tier (210-instance differential
#                               # corpus pinning exhaustive >= ls >= lazy
#                               # >= Thm-2 floor and ls <= certified
#                               # bound, plus a 100-seed LS determinism
#                               # sweep) and a chaos_runner --mode ls
#                               # sweep (ls.eval_throw fault schedules).
#                               # MMPH_SANITIZE=ON tools/check.sh quality
#                               # is the pre-merge gate for mmph::ls /
#                               # bounds / solver changes (same run under
#                               # ASan/UBSan).
#   tools/check.sh tsan         # ThreadSanitizer build (MMPH_TSAN=ON, own
#                               # build-tsan dir) + the net/chaos suites +
#                               # a multi-loop chaos_runner net sweep at
#                               # --loops 4. Pre-merge gate for any change
#                               # to the multi-loop NetServer or anything
#                               # its event loops touch (metrics, serve
#                               # funnel, WAL streaming).
#
# Extra args are forwarded to ctest: tools/check.sh -R serve filters by
# name, tools/check.sh -L unit filters by label (labels: unit, net,
# slow, chaos, wal, spatial, quality, unit_shards, wal_shards,
# net_chaos — see
# tests/CMakeLists.txt; -L matches by regex, so -L shards selects the
# shard suites).
set -e
cd "$(dirname "$0")/.."

SANITIZE="${MMPH_SANITIZE:-OFF}"
BUILD_DIR="${BUILD_DIR:-build}"

# tsan mode uses its own build tree (TSan objects cannot mix with plain
# or ASan ones) and forces MMPH_TSAN=ON / MMPH_SANITIZE=OFF.
if [ "$1" = "tsan" ]; then
  BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DMMPH_TSAN=ON -DMMPH_SANITIZE=OFF
  cmake --build "$BUILD_DIR" -j
  ( cd "$BUILD_DIR" &&     ctest --output-on-failure -L 'net|chaos' -j "$(nproc 2>/dev/null || echo 4)" )
  exec "$BUILD_DIR/tests/chaos_runner" --mode net --net-seeds 25 --loops 4
fi

cmake -B "$BUILD_DIR" -S . -DMMPH_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j

if [ "$1" = "perf-smoke" ]; then
  exec "$BUILD_DIR/bench/perf_kernels" --n 1000 --out "$BUILD_DIR/BENCH_kernels.json"
fi

if [ "$1" = "net-smoke" ]; then
  exec sh tests/net_smoke.sh "$BUILD_DIR/tools/mmph_cli"
fi

if [ "$1" = "stats-smoke" ]; then
  exec sh tests/stats_smoke.sh "$BUILD_DIR/tools/mmph_cli"
fi

if [ "$1" = "net-fuzz" ]; then
  "$BUILD_DIR/tests/wire_fuzz_test"
  exec "$BUILD_DIR/tests/wire_test"
fi

if [ "$1" = "chaos" ]; then
  shift
  exec "$BUILD_DIR/tests/chaos_runner" "$@"
fi

if [ "$1" = "shards" ]; then
  ( cd "$BUILD_DIR" && \
    ctest --output-on-failure -L shards -j "$(nproc 2>/dev/null || echo 4)" && \
    ctest --output-on-failure -R 'multi_loop_test|store_shard_service_test' \
      -j "$(nproc 2>/dev/null || echo 4)" )
  "$BUILD_DIR/tests/chaos_runner" --mode shards --shard-seeds 100
  TSAN_DIR="${TSAN_BUILD_DIR:-build-tsan}"
  cmake -B "$TSAN_DIR" -S . -DMMPH_TSAN=ON -DMMPH_SANITIZE=OFF
  cmake --build "$TSAN_DIR" -j
  ( cd "$TSAN_DIR" && \
    exec ctest --output-on-failure -L shards -j "$(nproc 2>/dev/null || echo 4)" )
  exit $?
fi

if [ "$1" = "quality" ]; then
  ( cd "$BUILD_DIR" && \
    ctest --output-on-failure -L quality -j "$(nproc 2>/dev/null || echo 4)" )
  exec "$BUILD_DIR/tests/chaos_runner" --mode ls --ls-seeds 100
fi

if [ "$1" = "wal" ]; then
  cd "$BUILD_DIR"
  exec ctest --output-on-failure -L wal -j "$(nproc 2>/dev/null || echo 4)"
fi

if [ "$1" = "index" ]; then
  cd "$BUILD_DIR"
  exec ctest --output-on-failure -L spatial -j "$(nproc 2>/dev/null || echo 4)"
fi

cd "$BUILD_DIR"
exec ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" "$@"
