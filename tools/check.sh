#!/bin/sh
# Tier-1 gate: configure, build, and run the full test suite — the exact
# line CI and reviewers run. Usage:
#
#   tools/check.sh              # plain build + ctest
#   MMPH_SANITIZE=ON tools/check.sh   # same, under ASan/UBSan
#
# Extra args are forwarded to ctest (e.g. tools/check.sh -R serve).
set -e
cd "$(dirname "$0")/.."

SANITIZE="${MMPH_SANITIZE:-OFF}"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DMMPH_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
exec ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" "$@"
