// Prints the golden-regression constants for tests/golden_regression_test.
// Run after an intentional behavior change and paste the output between
// the GOLDEN_VALUES markers.

#include <cstdio>

#include "mmph/core/registry.hpp"
#include "mmph/random/workload.hpp"

int main() {
  using namespace mmph;
  rnd::WorkloadSpec spec;
  rnd::Rng rng(2011);
  const core::Problem p = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), 1.0, geo::l2_metric());
  std::printf("point0 = (%.17g, %.17g), weight0 = %.17g\n", p.point(0)[0],
              p.point(0)[1], p.weight(0));
  for (const char* name :
       {"greedy1", "greedy1+polish", "greedy2", "greedy2-lazy",
        "greedy2-indexed", "greedy2+ls", "greedy2-stoch", "greedy3",
        "greedy4", "greedy4-indexed", "exhaustive", "sieve", "kmeans",
        "random"}) {
    const double total =
        core::make_solver(name, p)->solve(p, 4).total_reward;
    std::printf("GoldenCase{\"%s\", %.17g},\n", name, total);
  }
  return 0;
}
