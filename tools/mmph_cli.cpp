// mmph command-line tool: generate, solve, evaluate and describe problem
// traces without writing any C++.
//
//   mmph_cli generate --n 40 --dim 2 --seed 7 --out problem.txt
//   mmph_cli solve    --problem problem.txt --solver greedy4 --k 4
//                     --out solution.txt
//   mmph_cli evaluate --problem problem.txt --solution solution.txt
//   mmph_cli describe --problem problem.txt
//   mmph_cli simulate --users 60 --slots 50 --solver greedy2 --k 4
//
// Traces use the versioned text format of mmph/trace/trace.hpp, so files
// produced here replay bit-exactly in library code and vice versa.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mmph/core/certificate.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/args.hpp"
#include "mmph/io/table.hpp"
#include "mmph/ls/bounds.hpp"
#include "mmph/ls/registry.hpp"
#include "mmph/net/client.hpp"
#include "mmph/net/replica.hpp"
#include "mmph/net/server.hpp"
#include "mmph/random/workload.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/sim/simulator.hpp"
#include "mmph/trace/span.hpp"
#include "mmph/trace/trace.hpp"
#include "mmph/wal/recovery.hpp"
#include "mmph/wal/writer.hpp"

namespace {

using namespace mmph;

int usage() {
  std::cerr <<
      "usage: mmph_cli <command> [--flags]\n"
      "commands:\n"
      "  generate  --n N --dim D --box SIDE --placement uniform|halton|clustered\n"
      "            --weights same|uniform-int|zipf --seed S --radius R\n"
      "            --norm l1|l2|linf --out FILE\n"
      "  solve     --problem FILE --solver NAME --k K [--pitch P]\n"
      "            [--index none|grid|auto] [--out FILE]\n"
      "            (NAME: any core solver, plus ls / ls-tabu — lazy greedy\n"
      "             polished by shift/swap local search)\n"
      "  evaluate  --problem FILE --solution FILE\n"
      "  describe  --problem FILE\n"
      "  compare   --problem FILE --k K [--solvers a,b,c] [--pitch P]\n"
      "  certify   --problem FILE --solution FILE [--pitch P]\n"
      "  simulate  --users N --slots T --solver NAME --k K [--radius R]\n"
      "            [--drift SIGMA] [--churn P] [--seed S]\n"
      "  serve-replay --users N --slots T --k K [--radius R] [--churn P]\n"
      "            [--batch B] [--shards S] [--store-shards C]\n"
      "            [--solver greedy|lazy|ls] [--threshold F] [--seed S]\n"
      "            [--index none|grid|auto]\n"
      "  serve-net [--listen [--port P] [--port-file FILE] [--run-seconds S]\n"
      "             [--loops N]] [--store-shards C] [--solver greedy|lazy|ls]\n"
      "            [--wal-dir DIR [--fsync always|group|never]\n"
      "             [--snapshot-every N]] [--primary HOST --primary-port P]\n"
      "            [--connect HOST --port P] [--users N] [--slots T] [--k K]\n"
      "            [--radius R] [--churn P] [--seed S] [--stats]\n"
      "            [--index none|grid|auto]\n"
      "            (neither --listen nor --connect: in-process self-test;\n"
      "             --stats scrapes and prints the metrics exposition;\n"
      "             --wal-dir makes a --listen server durable: it recovers\n"
      "             the store from DIR, then logs every mutation;\n"
      "             --store-shards C > 1 region-shards the store and the\n"
      "             log (per-shard dirs under --wal-dir; 1 = bit-identical\n"
      "             to the unsharded layout);\n"
      "             --primary makes a --listen server a read-only replica\n"
      "             streaming from another serve-net --listen --wal-dir)\n"
      "  stats     --port P [--host H]\n"
      "            (print Prometheus-style metrics from a serve-net --listen)\n"
      "  wal-dump  --dir DIR\n"
      "            (list checkpoints and log records, then the recovered\n"
      "             store digest — compare two directories with grep)\n"
      "  wal-recover --dir DIR [--dim D] [--shards C]\n"
      "            (dry-run crash recovery; --shards C > 1 replays each\n"
      "             shard dir independently and prints the per-shard table;\n"
      "             exit 1 when the log is not cleanly recoverable)\n";
  return 2;
}

/// Consumes an integer flag that must be strictly positive. "--k 0",
/// "--loops 0", "--store-shards -1" and friends used to wrap through the
/// size_t cast into absurd requests (or die on an internal assertion deep
/// in the stack); now they fail up front with a typed ParseError.
std::size_t get_positive(io::Args& args, const std::string& name,
                         std::int64_t fallback, const char* command) {
  const std::int64_t value = args.get_int(name, fallback);
  if (value < 1) {
    throw ParseError(std::string(command) + ": --" + name +
                     " must be >= 1 (got " + std::to_string(value) + ")");
  }
  return static_cast<std::size_t>(value);
}

/// Consumes --solver {greedy,lazy,ls} as a serve tier.
serve::SolverTier get_solver_tier(io::Args& args, const char* command) {
  const std::string text = args.get_string("solver", "lazy");
  const auto tier = serve::parse_solver_tier(text);
  if (!tier.has_value()) {
    throw ParseError(std::string(command) + ": unknown --solver '" + text +
                     "' (greedy|lazy|ls)");
  }
  return *tier;
}

/// Consumes --index {none,grid,auto} and installs it as the process-wide
/// coverage-index mode (kernels::set_index_mode). The index only changes
/// solve cost, never output bits, so the default stays kAuto.
void apply_index_flag(io::Args& args) {
  const std::string text = args.get_string("index", "auto");
  const auto mode = core::kernels::parse_index_mode(text);
  if (!mode.has_value()) {
    throw ParseError("unknown --index '" + text + "' (none|grid|auto)");
  }
  core::kernels::set_index_mode(*mode);
}

rnd::Placement parse_placement(const std::string& text) {
  if (text == "uniform") return rnd::Placement::kUniform;
  if (text == "halton") return rnd::Placement::kHalton;
  if (text == "clustered") return rnd::Placement::kClustered;
  throw ParseError("unknown placement '" + text + "'");
}

rnd::WeightScheme parse_weights(const std::string& text) {
  if (text == "same") return rnd::WeightScheme::kSame;
  if (text == "uniform-int") return rnd::WeightScheme::kUniformInt;
  if (text == "zipf") return rnd::WeightScheme::kZipf;
  throw ParseError("unknown weight scheme '" + text + "'");
}

int cmd_generate(io::Args& args) {
  rnd::WorkloadSpec spec;
  spec.n = static_cast<std::size_t>(args.get_int("n", 40));
  spec.dim = static_cast<std::size_t>(args.get_int("dim", 2));
  spec.box_side = args.get_double("box", 4.0);
  spec.placement = parse_placement(args.get_string("placement", "uniform"));
  spec.weights = parse_weights(args.get_string("weights", "uniform-int"));
  const double radius = args.get_double("radius", 1.0);
  const geo::Metric metric(geo::parse_norm(args.get_string("norm", "l2")));
  rnd::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2011)));
  const std::string out = args.get_string("out", "");
  args.finish();

  const core::Problem problem = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), radius, metric);
  if (out.empty()) {
    trace::write_problem(std::cout, problem);
  } else {
    trace::save_problem(out, problem);
    std::cout << "wrote " << out << " (" << spec.describe() << ")\n";
  }
  return 0;
}

int cmd_solve(io::Args& args) {
  const std::string problem_path = args.get_string("problem", "");
  const std::string solver_name = args.get_string("solver", "greedy2");
  const std::size_t k = get_positive(args, "k", 4, "solve");
  core::SolverConfig config;
  config.grid_pitch = args.get_double("pitch", 0.5);
  const std::string out = args.get_string("out", "");
  apply_index_flag(args);
  args.finish();
  if (problem_path.empty()) {
    throw ParseError("solve: --problem FILE is required");
  }

  const core::Problem problem = trace::load_problem(problem_path);
  if (k > problem.size()) {
    throw ParseError("solve: --k " + std::to_string(k) +
                     " exceeds the instance size n=" +
                     std::to_string(problem.size()));
  }
  const auto solve_start = std::chrono::steady_clock::now();
  const core::Solution solution =
      ls::make_solver(solver_name, problem, config)->solve(problem, k);
  const double solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    solve_start)
          .count();
  if (out.empty()) {
    trace::write_solution(std::cout, solution);
  } else {
    trace::save_solution(out, solution);
  }
  std::cerr << solver_name << ": total reward "
            << io::fixed(solution.total_reward, 4) << " ("
            << io::percent(solution.total_reward / problem.total_weight())
            << " of demand) in " << io::fixed(solve_seconds, 3) << "s ["
            << core::kernels::index_mode_name(core::kernels::index_mode())
            << "]\n";
  return 0;
}

int cmd_evaluate(io::Args& args) {
  const std::string problem_path = args.get_string("problem", "");
  const std::string solution_path = args.get_string("solution", "");
  args.finish();
  if (problem_path.empty() || solution_path.empty()) {
    throw ParseError("evaluate: --problem and --solution are required");
  }
  const core::Problem problem = trace::load_problem(problem_path);
  const core::Solution solution = trace::load_solution(solution_path);
  const double f = core::objective_value(problem, solution.centers);
  io::Table table({"field", "value"});
  table.add_row({"solver", solution.solver_name});
  table.add_row({"k", std::to_string(solution.centers.size())});
  table.add_row({"stored total", io::fixed(solution.total_reward, 6)});
  table.add_row({"re-evaluated f(C)", io::fixed(f, 6)});
  table.add_row({"demand satisfied",
                 io::percent(f / problem.total_weight())});
  table.print(std::cout);
  const bool consistent = std::abs(f - solution.total_reward) < 1e-6;
  std::cout << (consistent ? "consistent\n"
                           : "MISMATCH between stored total and f(C)\n");
  return consistent ? 0 : 1;
}

int cmd_describe(io::Args& args) {
  const std::string problem_path = args.get_string("problem", "");
  args.finish();
  if (problem_path.empty()) {
    throw ParseError("describe: --problem FILE is required");
  }
  const core::Problem p = trace::load_problem(problem_path);
  const geo::Box box = p.points().bounding_box();
  io::Table table({"field", "value"});
  table.add_row({"points", std::to_string(p.size())});
  table.add_row({"dim", std::to_string(p.dim())});
  table.add_row({"metric", p.metric().name()});
  table.add_row({"radius", io::fixed(p.radius(), 4)});
  table.add_row({"reward shape",
                 core::reward_shape_name(p.reward_shape())});
  table.add_row({"total weight", io::fixed(p.total_weight(), 4)});
  std::string lo = "(", hi = "(";
  for (std::size_t d = 0; d < p.dim(); ++d) {
    lo += (d ? ", " : "") + io::fixed(box.lo[d], 2);
    hi += (d ? ", " : "") + io::fixed(box.hi[d], 2);
  }
  table.add_row({"bbox lo", lo + ")"});
  table.add_row({"bbox hi", hi + ")"});
  table.print(std::cout);
  return 0;
}

int cmd_compare(io::Args& args) {
  const std::string problem_path = args.get_string("problem", "");
  const std::size_t k = get_positive(args, "k", 4, "compare");
  core::SolverConfig config;
  config.grid_pitch = args.get_double("pitch", 0.5);
  const std::string solver_list =
      args.get_string("solvers", "greedy1,greedy2,greedy3,greedy4");
  args.finish();
  if (problem_path.empty()) {
    throw ParseError("compare: --problem FILE is required");
  }
  const core::Problem problem = trace::load_problem(problem_path);
  if (k > problem.size()) {
    throw ParseError("compare: --k " + std::to_string(k) +
                     " exceeds the instance size n=" +
                     std::to_string(problem.size()));
  }

  std::vector<std::string> names;
  for (std::size_t pos = 0; pos <= solver_list.size();) {
    const std::size_t comma = solver_list.find(',', pos);
    const std::size_t end =
        comma == std::string::npos ? solver_list.size() : comma;
    if (end > pos) names.push_back(solver_list.substr(pos, end - pos));
    pos = end + 1;
  }
  if (names.empty()) throw ParseError("compare: empty solver list");

  io::Table table({"solver", "total reward", "share of demand"});
  for (const std::string& name : names) {
    const core::Solution s =
        ls::make_solver(name, problem, config)->solve(problem, k);
    table.add_row({name, io::fixed(s.total_reward, 4),
                   io::percent(s.total_reward / problem.total_weight())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_certify(io::Args& args) {
  const std::string problem_path = args.get_string("problem", "");
  const std::string solution_path = args.get_string("solution", "");
  const double pitch = args.get_double("pitch", 0.1);
  args.finish();
  if (problem_path.empty() || solution_path.empty()) {
    throw ParseError("certify: --problem and --solution are required");
  }
  const core::Problem problem = trace::load_problem(problem_path);
  const core::Solution solution = trace::load_solution(solution_path);
  const core::RatioCertificate cert =
      core::certify_ratio(problem, solution, pitch);
  io::Table table({"field", "value"});
  table.add_row({"solution value f(C)", io::fixed(cert.value, 6)});
  table.add_row({"certified continuous-optimum bound",
                 io::fixed(cert.upper_bound, 6)});
  table.add_row({"certified ratio (>= of true OPT)",
                 io::percent(cert.certified_ratio)});
  table.add_row({"certificate grid pitch", io::fixed(pitch, 3)});
  table.print(std::cout);
  return 0;
}

int cmd_simulate(io::Args& args) {
  sim::SimConfig cfg;
  cfg.users = static_cast<std::size_t>(args.get_int("users", 40));
  cfg.slots = static_cast<std::size_t>(args.get_int("slots", 50));
  cfg.k = static_cast<std::size_t>(args.get_int("k", 4));
  cfg.radius = args.get_double("radius", 1.0);
  cfg.drift.sigma = args.get_double("drift", 0.1);
  cfg.drift.churn_prob = args.get_double("churn", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2011));
  const std::string solver_name = args.get_string("solver", "greedy2");
  args.finish();

  sim::BroadcastSimulator simulator(cfg, [&](const core::Problem& p) {
    return ls::make_solver(solver_name, p);
  });
  const sim::SimReport report = simulator.run();
  io::Table table({"metric", "value"});
  table.add_row({"slots", std::to_string(report.slots.size())});
  table.add_row({"mean satisfaction", io::percent(report.mean_satisfaction)});
  table.add_row({"mean fairness", io::fixed(report.mean_fairness, 4)});
  table.add_row({"total reward", io::fixed(report.total_reward, 2)});
  table.add_row({"solve time (s)", io::fixed(report.total_solve_seconds, 3)});
  table.print(std::cout);
  return 0;
}

// Replays a churn workload against the serving layer: every slot removes
// and re-adds a fraction of the population, then queries the placement —
// all through the batched request path, so the run exercises the bounded
// queue, the sharded solver, and the incremental warm re-solve together.
int cmd_serve_replay(io::Args& args) {
  const std::size_t users = static_cast<std::size_t>(args.get_int("users", 2000));
  const std::size_t slots = static_cast<std::size_t>(args.get_int("slots", 20));
  serve::ServiceConfig config;
  config.k = get_positive(args, "k", 4, "serve-replay");
  config.radius = args.get_double("radius", 1.0);
  config.shard.max_shards = static_cast<std::size_t>(args.get_int("shards", 0));
  // --store-shards splits the InstanceStore itself by region (1 = the
  // golden-digest bit-identity mode; the solver --shards above is
  // independent of this).
  config.store_shards = get_positive(args, "store-shards", 1, "serve-replay");
  config.solver = get_solver_tier(args, "serve-replay");
  config.full_solve_churn_fraction = args.get_double("threshold", 0.05);
  config.max_batch = get_positive(args, "batch", 256, "serve-replay");
  const double churn = args.get_double("churn", 0.01);
  rnd::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2011)));
  apply_index_flag(args);
  args.finish();
  if (users == 0 || churn < 0.0 || churn > 1.0) {
    throw ParseError("serve-replay: need --users > 0 and --churn in [0, 1]");
  }

  trace::SpanCollector::global().set_enabled(true);
  trace::SpanCollector::global().reset();

  const auto fresh_user = [&rng](std::uint64_t id) {
    serve::UserRecord rec;
    rec.id = id;
    rec.weight = static_cast<double>(rng.uniform_int(1, 5));
    rec.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    return rec;
  };

  serve::PlacementService service(config);
  std::vector<serve::UserRecord> population;
  population.reserve(users);
  for (std::uint64_t id = 0; id < users; ++id) {
    population.push_back(fresh_user(id));
  }
  std::uint64_t next_id = users;

  std::vector<std::future<serve::Response>> queries;
  queries.reserve(slots + 1);
  std::vector<std::future<serve::Response>> replies;
  replies.push_back(service.submit(serve::Request::add_users(population)));
  queries.push_back(service.submit(serve::Request::query_placement()));
  // No population means no one to churn: --users 0 must not pick victims.
  const std::size_t per_slot =
      population.empty()
          ? 0
          : std::max<std::size_t>(churn > 0.0 ? 1 : 0,
                                  static_cast<std::size_t>(churn * users));
  for (std::size_t slot = 0; slot < slots; ++slot) {
    std::vector<std::uint64_t> removed;
    std::vector<serve::UserRecord> added;
    std::unordered_set<std::size_t> victims;
    for (std::size_t c = 0; c < per_slot; ++c) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(population.size()) - 1));
      // Re-picking a slot already churned this round would remove an id
      // whose add is still queued behind it, silently growing the
      // population. Keep each victim unique within the slot.
      if (!victims.insert(victim).second) continue;
      removed.push_back(population[victim].id);
      population[victim] = fresh_user(next_id++);
      added.push_back(population[victim]);
    }
    if (!removed.empty()) {
      replies.push_back(
          service.submit(serve::Request::remove_users(std::move(removed))));
      replies.push_back(
          service.submit(serve::Request::add_users(std::move(added))));
    }
    queries.push_back(service.submit(serve::Request::query_placement()));
    // Drain eagerly so the bounded queue never rejects the replay itself.
    while (service.queue_depth() > 0) (void)service.pump();
  }
  while (service.queue_depth() > 0) (void)service.pump();

  double last_objective = 0.0;
  std::size_t answered = 0;
  for (auto& q : queries) {
    const serve::Response r = q.get();
    if (r.status == serve::ResponseStatus::kOk) {
      last_objective = r.objective;
      ++answered;
    }
  }
  for (auto& r : replies) (void)r.get();

  const serve::MetricsSnapshot m = service.metrics();
  io::Table table({"metric", "value"});
  table.add_row({"population", std::to_string(service.population())});
  table.add_row({"store epoch", std::to_string(service.epoch())});
  table.add_row({"store shards", std::to_string(service.store_shards())});
  table.add_row({"placements answered", std::to_string(answered)});
  table.add_row({"last objective", io::fixed(last_objective, 4)});
  table.add_row({"batches", std::to_string(m.batches)});
  table.add_row({"mean batch size", io::fixed(m.mean_batch_size, 2)});
  table.add_row({"mutations applied", std::to_string(m.mutations)});
  table.add_row({"full solves", std::to_string(m.full_solves)});
  table.add_row({"incremental solves", std::to_string(m.incremental_solves)});
  table.add_row({"incremental ratio", io::percent(m.incremental_ratio())});
  table.add_row({"solve p50 (s)", io::fixed(m.solve_p50_seconds, 5)});
  table.add_row({"solve p99 (s)", io::fixed(m.solve_p99_seconds, 5)});
  table.add_row({"solve total (s)", io::fixed(m.total_solve_seconds, 3)});
  table.add_row({"index mode",
                 core::kernels::index_mode_name(core::kernels::index_mode())});
  table.add_row({"spatial queries", std::to_string(m.spatial_queries)});
  table.add_row({"spatial points touched",
                 std::to_string(m.spatial_points_touched)});
  table.add_row({"spatial incremental updates",
                 std::to_string(m.spatial_incremental_updates)});
  table.add_row({"spatial rebuilds", std::to_string(m.spatial_rebuilds)});
  if (config.solver == serve::SolverTier::kLs) {
    table.add_row({"ls moves", std::to_string(m.ls_moves)});
    table.add_row({"ls improvements", std::to_string(m.ls_improvements)});
    table.add_row({"ls evals", std::to_string(m.ls_evals)});
  }
  table.print(std::cout);

  io::Table spans({"span", "count", "total (s)", "mean (s)", "max (s)"});
  for (const trace::SpanStats& s : trace::SpanCollector::global().stats()) {
    spans.add_row({s.name, std::to_string(s.count), io::fixed(s.total_seconds, 4),
                   io::fixed(s.mean_seconds(), 5), io::fixed(s.max_seconds, 5)});
  }
  spans.print(std::cout);
  trace::SpanCollector::global().set_enabled(false);
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void request_stop(int) { g_stop_requested = 1; }

/// Per-loop traffic breakdown printed after the aggregate table when the
/// server ran more than one event loop.
void print_loop_metrics(const net::NetServer& server) {
  // Keyed off the config, not loop_count(): the per-loop counters
  // outlive the loops themselves (this prints after stop()).
  const std::size_t loops = server.config().loops;
  if (loops <= 1) return;
  io::Table table({"loop", "accepted", "frames in", "frames out", "requests",
                   "ownership checks"});
  for (std::size_t i = 0; i < loops; ++i) {
    const net::NetLoopSnapshot s = server.loop_metrics(i);
    table.add_row({std::to_string(i), std::to_string(s.accepted),
                   std::to_string(s.frames_in), std::to_string(s.frames_out),
                   std::to_string(s.requests),
                   std::to_string(s.ownership_checks)});
  }
  table.print(std::cout);
}

void print_net_metrics(const net::NetMetricsSnapshot& m) {
  io::Table table({"net metric", "value"});
  table.add_row({"connections accepted", std::to_string(m.accepted)});
  table.add_row({"connections shed", std::to_string(m.rejected_overloaded)});
  table.add_row({"closed idle", std::to_string(m.closed_idle)});
  table.add_row({"closed on error", std::to_string(m.closed_error)});
  table.add_row({"bytes in", std::to_string(m.bytes_in)});
  table.add_row({"bytes out", std::to_string(m.bytes_out)});
  table.add_row({"frames in", std::to_string(m.frames_in)});
  table.add_row({"frames out", std::to_string(m.frames_out)});
  table.add_row({"frame errors", std::to_string(m.frame_errors)});
  table.add_row({"requests", std::to_string(m.requests)});
  table.add_row({"timeouts", std::to_string(m.timeouts)});
  table.add_row({"latency p50 (s)", io::fixed(m.latency_p50_seconds, 6)});
  table.add_row({"latency p99 (s)", io::fixed(m.latency_p99_seconds, 6)});
  table.print(std::cout);
}

/// Replays the serve-replay churn workload through a NetClient, so the
/// same request stream crosses the wire instead of the in-process queue.
int run_net_replay(net::NetClient& client, std::size_t users,
                   std::size_t slots, double churn, std::uint64_t seed) {
  rnd::Rng rng(seed);
  const auto fresh_user = [&rng](std::uint64_t id) {
    serve::UserRecord rec;
    rec.id = id;
    rec.weight = static_cast<double>(rng.uniform_int(1, 5));
    rec.interest = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    return rec;
  };

  std::uint64_t ok = 0, timeout = 0, rejected = 0, bad = 0;
  const auto note = [&](const net::ResponseFrame& reply) {
    switch (reply.status) {
      case net::WireStatus::kOk: ++ok; break;
      case net::WireStatus::kTimeout: ++timeout; break;
      case net::WireStatus::kRejected: ++rejected; break;
      default: ++bad; break;
    }
    return reply;
  };

  std::vector<serve::UserRecord> population;
  population.reserve(users);
  for (std::uint64_t id = 0; id < users; ++id) {
    population.push_back(fresh_user(id));
  }
  std::uint64_t next_id = users;

  // Initial load in wire-sized chunks (one frame may carry at most
  // kMaxBatchCount users; stay far below it to keep frames small).
  constexpr std::size_t kChunk = 512;
  for (std::size_t at = 0; at < population.size(); at += kChunk) {
    const std::size_t end = std::min(population.size(), at + kChunk);
    (void)note(client.add_users({population.begin() +
                                     static_cast<std::ptrdiff_t>(at),
                                 population.begin() +
                                     static_cast<std::ptrdiff_t>(end)}));
  }

  net::ResponseFrame last_query = note(client.query_placement());
  // No population means no one to churn: --users 0 must not pick victims.
  const std::size_t per_slot =
      population.empty()
          ? 0
          : std::max<std::size_t>(churn > 0.0 ? 1 : 0,
                                  static_cast<std::size_t>(churn * users));
  for (std::size_t slot = 0; slot < slots; ++slot) {
    std::vector<std::uint64_t> removed;
    std::vector<serve::UserRecord> added;
    std::unordered_set<std::size_t> victims;
    for (std::size_t c = 0; c < per_slot; ++c) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(population.size()) - 1));
      if (!victims.insert(victim).second) continue;
      removed.push_back(population[victim].id);
      population[victim] = fresh_user(next_id++);
      added.push_back(population[victim]);
    }
    if (!removed.empty()) {
      (void)note(client.remove_users(std::move(removed)));
      (void)note(client.add_users(std::move(added)));
    }
    last_query = note(client.query_placement());
  }

  io::Table table({"metric", "value"});
  table.add_row({"requests ok", std::to_string(ok)});
  table.add_row({"requests timed out", std::to_string(timeout)});
  table.add_row({"requests rejected", std::to_string(rejected)});
  table.add_row({"requests failed", std::to_string(bad)});
  table.add_row({"client reconnects", std::to_string(client.reconnects())});
  table.add_row({"last epoch", std::to_string(last_query.epoch)});
  table.add_row({"last objective", io::fixed(last_query.objective, 4)});
  table.add_row({"last centers",
                 std::to_string(last_query.centers ? last_query.centers->size()
                                                   : 0)});
  table.print(std::cout);
  return bad == 0 ? 0 : 1;
}

/// Issues a kStats request and prints the exposition verbatim; shared by
/// `stats` and the `serve-net --stats` paths. Returns a process exit code.
int scrape_and_print_stats(net::NetClient& client) {
  const net::ResponseFrame reply = client.stats();
  if (reply.status != net::WireStatus::kOk || !reply.stats.has_value()) {
    std::cerr << "stats scrape failed: " << net::to_string(reply.status)
              << "\n";
    return 1;
  }
  std::cout << *reply.stats;
  return 0;
}

// Remote metrics scrape: one kStats round-trip against a running
// `serve-net --listen`, exposition printed to stdout for grep/Prometheus.
int cmd_stats(io::Args& args) {
  const std::string host = args.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  args.finish();
  if (port == 0) throw ParseError("stats: --port is required");
  net::NetClientConfig config;
  config.host = host;
  config.port = port;
  net::NetClient client(config);
  return scrape_and_print_stats(client);
}

std::string hex_digest(std::uint64_t digest) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

/// Whole-file read through the WAL syscall seam, so wal-dump examines the
/// exact bytes recovery would. nullopt when the file cannot be opened.
std::optional<std::vector<std::uint8_t>> read_wal_file(
    wal::FileOps& ops, const std::string& path) {
  const int fd = ops.open(path, wal::OpenMode::kRead);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1u << 16];
  for (;;) {
    const ssize_t got = ops.read(fd, chunk, sizeof chunk);
    if (got < 0) {
      (void)ops.close(fd);
      return std::nullopt;
    }
    if (got == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  (void)ops.close(fd);
  return bytes;
}

void print_recovery_result(const wal::RecoveryResult& rr) {
  io::Table table({"recovery", "value"});
  table.add_row({"snapshot epoch", std::to_string(rr.snapshot_epoch)});
  table.add_row({"snapshots discarded", std::to_string(rr.snapshots_discarded)});
  table.add_row({"segments scanned", std::to_string(rr.segments_scanned)});
  table.add_row({"records applied", std::to_string(rr.records_applied)});
  table.add_row({"records skipped", std::to_string(rr.records_skipped)});
  table.add_row({"torn bytes dropped", std::to_string(rr.torn_bytes_dropped)});
  table.add_row({"clean", rr.clean ? "yes" : "no"});
  if (!rr.detail.empty()) table.add_row({"detail", rr.detail});
  table.add_row({"store epoch", std::to_string(rr.store.epoch)});
  table.add_row({"store rows", std::to_string(rr.store.size())});
  table.add_row({"store digest", hex_digest(wal::snapshot_digest(rr.store))});
  table.print(std::cout);
}

// Offline inspection of a WAL directory: every checkpoint, every log
// record, then the digest recovery would reconstruct. Two directories
// holding the same store state print the same final digest line, which
// is how the tutorial compares a primary against a promoted replica.
int cmd_wal_dump(io::Args& args) {
  const std::string dir = args.get_string("dir", "");
  args.finish();
  if (dir.empty()) throw ParseError("wal-dump: --dir is required");

  wal::FileOps& ops = wal::FileOps::system();
  const auto names = ops.list(dir);
  if (!names.has_value()) {
    throw ParseError("wal-dump: cannot read directory " + dir);
  }

  // parse_file_epoch ignores foreign files; sorted names + zero-padded
  // epochs mean this walk is already in ascending epoch order.
  bool corrupt = false;
  std::uint64_t total_records = 0, total_bytes = 0;
  for (const std::string& name : *names) {
    const std::string path = dir + "/" + name;
    if (wal::parse_file_epoch(name, "snap-", ".mmps").has_value()) {
      const auto bytes = read_wal_file(ops, path);
      wal::WalSnapshot snap;
      const auto status =
          bytes.has_value()
              ? wal::decode_snapshot(bytes->data(), bytes->size(), snap)
              : wal::RecordDecodeStatus::kNeedMoreData;
      if (status == wal::RecordDecodeStatus::kOk) {
        std::cout << name << "  checkpoint epoch " << snap.epoch << "  rows "
                  << snap.size() << "  digest "
                  << hex_digest(wal::snapshot_digest(snap)) << "\n";
      } else {
        std::cout << name << "  checkpoint CORRUPT (" << to_string(status)
                  << ")\n";
        corrupt = true;
      }
      continue;
    }
    if (!wal::parse_file_epoch(name, "wal-", ".mmpl").has_value()) continue;
    const auto bytes = read_wal_file(ops, path);
    if (!bytes.has_value()) {
      std::cout << name << "  segment UNREADABLE\n";
      corrupt = true;
      continue;
    }
    std::cout << name << "  segment, " << bytes->size() << " bytes\n";
    total_bytes += bytes->size();
    std::size_t at = 0;
    while (at < bytes->size()) {
      const auto decoded =
          wal::decode_record(bytes->data() + at, bytes->size() - at);
      if (decoded.status != wal::RecordDecodeStatus::kOk) {
        // A short read at end-of-file is the torn tail recovery drops;
        // anything else is real corruption.
        const bool torn =
            decoded.status == wal::RecordDecodeStatus::kNeedMoreData;
        std::cout << "  +" << at << "  " << (torn ? "torn tail" : "CORRUPT")
                  << " (" << to_string(decoded.status) << ", "
                  << (bytes->size() - at) << " bytes)\n";
        corrupt = corrupt || !torn;
        break;
      }
      const wal::WalRecord& rec = decoded.record;
      std::cout << "  lsn " << rec.lsn << "  "
                << (rec.type == wal::RecordType::kUpsert ? "upsert" : "remove")
                << " x" << rec.count() << "  -> epoch " << rec.epoch << "\n";
      ++total_records;
      at += decoded.consumed;
    }
  }
  std::cout << "total: " << total_records << " records, " << total_bytes
            << " segment bytes\n";

  const wal::RecoveryResult rr = wal::recover(dir, 0, ops);
  std::cout << "recovered: epoch " << rr.store.epoch << "  rows "
            << rr.store.size() << "  digest "
            << hex_digest(wal::snapshot_digest(rr.store))
            << (rr.clean ? "" : "  (NOT CLEAN: " + rr.detail + ")") << "\n";
  return corrupt || !rr.clean ? 1 : 0;
}

// Dry-run recovery: what a restarting server would reconstruct from
// --dir, without writing anything. Exit 1 when replay stopped at
// corruption (the store is then a consistent but possibly stale state).
// --shards N replays each shard directory independently, exactly like a
// serve-net --listen --store-shards N startup, and prints the per-shard
// table plus the re-derived global view; it also reports whether the
// directory existed at all (an empty-but-existing --wal-dir is a clean
// empty log; a missing one is a fresh deployment).
int cmd_wal_recover(io::Args& args) {
  const std::string dir = args.get_string("dir", "");
  const auto dim = static_cast<std::uint16_t>(args.get_int("dim", 0));
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));
  args.finish();
  if (dir.empty()) throw ParseError("wal-recover: --dir is required");
  if (shards < 1) throw ParseError("wal-recover: --shards must be >= 1");
  if (shards == 1) {
    const wal::RecoveryResult rr = wal::recover(dir, dim);
    print_recovery_result(rr);
    std::cout << "dir: " << (rr.dir_found ? "found" : "missing") << "\n";
    return rr.clean ? 0 : 1;
  }
  const wal::ShardedRecovery rr = wal::recover_sharded(dir, shards, dim);
  io::Table table({"shard", "epoch", "rows", "clean", "dir", "digest"});
  for (std::size_t s = 0; s < rr.shards.size(); ++s) {
    const wal::RecoveryResult& part = rr.shards[s];
    table.add_row({std::to_string(s), std::to_string(part.store.epoch),
                   std::to_string(part.store.size()),
                   part.clean ? "yes" : "no",
                   part.dir_found ? "found" : "missing",
                   hex_digest(wal::snapshot_digest(part.store))});
  }
  table.print(std::cout);
  std::cout << "global: epoch " << rr.global_epoch << "  rows " << rr.rows
            << "  dir " << (rr.dir_found ? "found" : "missing")
            << (rr.clean ? "" : "  (NOT CLEAN)") << "\n";
  for (std::size_t s = 0; s < rr.shards.size(); ++s) {
    if (!rr.shards[s].clean) {
      std::cout << "shard " << s << " detail: " << rr.shards[s].detail
                << "\n";
    }
  }
  return rr.clean ? 0 : 1;
}

// Socket-serving mode of the placement service. Three sub-modes:
//   --listen         run a NetServer until SIGINT/SIGTERM or --run-seconds;
//   --connect HOST   replay the churn workload against a remote server;
//   (neither)        self-test: in-process server + client over loopback.
// --listen composes with --wal-dir (durable primary) and/or --primary
// (streaming replica of another listener). --loops N shards the front
// end across N epoll event loops (1 = the deterministic single-loop
// schedule); a multi-loop run prints a per-loop traffic table on exit.
int cmd_serve_net(io::Args& args) {
  const bool listen = args.get_flag("listen");
  const std::string connect_host = args.get_string("connect", "");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const std::string port_file = args.get_string("port-file", "");
  const double run_seconds = args.get_double("run-seconds", 0.0);
  const std::size_t loops = get_positive(args, "loops", 1, "serve-net");
  const std::size_t users = static_cast<std::size_t>(args.get_int("users", 500));
  const std::size_t slots = static_cast<std::size_t>(args.get_int("slots", 10));
  const double churn = args.get_double("churn", 0.01);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2011));
  const bool want_stats = args.get_flag("stats");
  const std::string wal_dir = args.get_string("wal-dir", "");
  const std::string fsync_text = args.get_string("fsync", "group");
  const auto snapshot_every =
      static_cast<std::uint64_t>(args.get_int("snapshot-every", 4096));
  const std::string primary_host = args.get_string("primary", "");
  const auto primary_port =
      static_cast<std::uint16_t>(args.get_int("primary-port", 0));
  serve::ServiceConfig service_config;
  service_config.k = get_positive(args, "k", 4, "serve-net");
  service_config.radius = args.get_double("radius", 1.0);
  service_config.store_shards =
      get_positive(args, "store-shards", 1, "serve-net");
  service_config.solver = get_solver_tier(args, "serve-net");
  apply_index_flag(args);
  args.finish();
  if (listen && !connect_host.empty()) {
    throw ParseError("serve-net: --listen and --connect are exclusive");
  }
  if (listen && want_stats) {
    throw ParseError("serve-net: --stats applies to --connect or self-test");
  }
  if (churn < 0.0 || churn > 1.0) {
    throw ParseError("serve-net: --churn must be in [0, 1]");
  }
  if (!listen && (!wal_dir.empty() || !primary_host.empty())) {
    throw ParseError("serve-net: --wal-dir and --primary require --listen");
  }
  if (!primary_host.empty() && primary_port == 0) {
    throw ParseError("serve-net: --primary needs --primary-port");
  }
  if (!listen && loops != 1) {
    throw ParseError("serve-net: --loops requires --listen");
  }
  if (service_config.store_shards > 1 && !primary_host.empty()) {
    // Replication installs one global snapshot/epoch, which cannot be
    // split back into per-shard chains.
    throw ParseError("serve-net: --primary requires --store-shards 1");
  }

  if (listen) {
    // Durability bootstrap: recover whatever a previous process left in
    // --wal-dir, continue the log from the recovered epoch/lsn, and seed
    // the service with the recovered store before the socket opens.
    // --store-shards 1 keeps the historical single-log path verbatim;
    // > 1 recovers each shard directory independently and re-derives the
    // global epoch as the sum of shard epochs.
    std::optional<wal::WalWriter> writer;
    std::optional<wal::ShardedWal> shard_wal;
    wal::RecoveryResult recovered;
    wal::ShardedRecovery sharded_recovered;
    if (!wal_dir.empty()) {
      const auto policy = wal::fsync_policy_from_string(fsync_text);
      if (!policy.has_value()) {
        throw ParseError("serve-net: --fsync must be always|group|never");
      }
      if (service_config.store_shards == 1) {
        recovered = wal::recover(
            wal_dir, static_cast<std::uint16_t>(service_config.dim));
        if (!recovered.clean) {
          std::cerr << "warning: recovery stopped early: " << recovered.detail
                    << "\n";
        }
        wal::WalConfig wal_config;
        wal_config.dir = wal_dir;
        wal_config.fsync = *policy;
        wal_config.snapshot_every_ops = snapshot_every;
        writer.emplace(wal_config, recovered.store.epoch, recovered.last_lsn);
        service_config.wal = &*writer;
      } else {
        sharded_recovered = wal::recover_sharded(
            wal_dir, service_config.store_shards,
            static_cast<std::uint16_t>(service_config.dim));
        if (!sharded_recovered.clean) {
          for (std::size_t s = 0; s < sharded_recovered.shards.size(); ++s) {
            const wal::RecoveryResult& part = sharded_recovered.shards[s];
            if (!part.clean) {
              std::cerr << "warning: shard " << s
                        << " recovery stopped early: " << part.detail << "\n";
            }
          }
        }
        wal::WalConfig wal_config;
        wal_config.dir = wal_dir;
        wal_config.fsync = *policy;
        wal_config.snapshot_every_ops = snapshot_every;
        shard_wal.emplace(wal_config, service_config.store_shards,
                          sharded_recovered);
        service_config.shard_wal = &*shard_wal;
      }
    }
    net::NetServerConfig net_config;
    net_config.port = port;
    net_config.loops = loops;
    net::NetServer server(service_config, net_config);
    if (writer.has_value()) {
      if (recovered.store.epoch > 0) {
        server.service().restore_from(recovered.store);
      }
      std::cout << "wal: recovered epoch " << recovered.store.epoch << " ("
                << recovered.store.size() << " rows, "
                << recovered.records_applied << " records replayed, digest "
                << hex_digest(wal::snapshot_digest(recovered.store))
                << "), fsync=" << to_string(writer->config().fsync)
                << std::endl;
    }
    if (shard_wal.has_value()) {
      if (sharded_recovered.global_epoch > 0) {
        server.service().restore_sharded(sharded_recovered);
      }
      std::cout << "wal: recovered " << sharded_recovered.shards.size()
                << " shards, global epoch " << sharded_recovered.global_epoch
                << " (" << sharded_recovered.rows << " rows, dir "
                << (sharded_recovered.dir_found ? "found" : "missing")
                << "), fsync=" << fsync_text << std::endl;
    }
    server.start();
    // A replica subscribes after the server is up so a promoted-to-primary
    // operator can point clients at this port the whole time.
    std::optional<net::ReplicaAgent> replica;
    if (!primary_host.empty()) {
      net::ReplicaAgentConfig replica_config;
      replica_config.host = primary_host;
      replica_config.port = primary_port;
      replica.emplace(server.service(), replica_config);
      replica->start();
      std::cout << "replicating from " << primary_host << ":" << primary_port
                << " (read-only until promoted)" << std::endl;
    }
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
      if (!out) throw ParseError("serve-net: cannot write " + port_file);
    }
    std::cout << "listening on 127.0.0.1:" << server.port() << " ("
              << server.loop_count() << " loop"
              << (server.loop_count() == 1 ? "" : "s") << ", accept="
              << (server.accept_mode() == net::AcceptMode::kReusePort
                      ? "reuseport"
                      : "handoff")
              << ")" << std::endl;
    std::signal(SIGINT, request_stop);
    std::signal(SIGTERM, request_stop);
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        run_seconds > 0.0
            ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(run_seconds))
            : Clock::time_point::max();
    while (g_stop_requested == 0 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (replica.has_value()) {
      replica->stop();
      io::Table table({"replication", "value"});
      table.add_row({"primary epoch", std::to_string(replica->primary_epoch())});
      table.add_row({"local epoch",
                     std::to_string(server.service().epoch())});
      table.add_row({"lag (ops)", std::to_string(replica->lag_ops())});
      table.add_row({"records applied",
                     std::to_string(replica->records_applied())});
      table.add_row({"snapshots installed",
                     std::to_string(replica->snapshots_installed())});
      table.add_row({"resyncs", std::to_string(replica->resyncs())});
      table.print(std::cout);
    }
    server.stop();
    print_net_metrics(server.metrics());
    print_loop_metrics(server);
    return 0;
  }

  std::optional<net::NetServer> local;
  net::NetClientConfig client_config;
  if (connect_host.empty()) {
    local.emplace(service_config, net::NetServerConfig{});
    local->start();
    client_config.port = local->port();
  } else {
    if (port == 0) throw ParseError("serve-net: --connect needs --port");
    client_config.host = connect_host;
    client_config.port = port;
  }
  net::NetClient client(client_config);
  int rc = run_net_replay(client, users, slots, churn, seed);
  if (want_stats && rc == 0) {
    // Scrape over the same connection, before any local server stops, so
    // the exposition reflects the replay that just finished.
    rc = scrape_and_print_stats(client);
  }
  if (local.has_value()) {
    local->stop();
    print_net_metrics(local->metrics());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    io::Args args(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "describe") return cmd_describe(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "certify") return cmd_certify(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "serve-replay") return cmd_serve_replay(args);
    if (command == "serve-net") return cmd_serve_net(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "wal-dump") return cmd_wal_dump(args);
    if (command == "wal-recover") return cmd_wal_recover(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "mmph_cli " << command << ": " << e.what() << "\n";
    return 1;
  }
}
