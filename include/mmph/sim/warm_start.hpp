#pragma once

/// \file warm_start.hpp
/// \brief Warm-started replanning across simulation slots.
///
/// Under slow interest drift, consecutive slots' optimal center sets are
/// close, so re-running a full greedy every slot wastes work. The warm-
/// start planner keeps the previous slot's centers and applies 1-swap
/// local search around them (over the current input points); when there is
/// no history — or the population changed size — it falls back to the cold
/// solver. The broadcast_scheduler example and simulator tests show it
/// tracks cold greedy quality at a fraction of the cost under mild drift.
///
/// A WarmStartPlanner is *stateful* across slots; create one per
/// simulation run and wrap it with factory() for BroadcastSimulator.

#include <functional>
#include <memory>
#include <optional>

#include "mmph/core/solver.hpp"
#include "mmph/sim/simulator.hpp"

namespace mmph::sim {

/// Produces the swap-candidate centers for a warm refinement pass.
/// The default is every input point, which is thorough but O(n) trials
/// per center; a serving deployment substitutes a small curated pool
/// (e.g. cached per-shard winners plus recently churned users).
using CandidateProvider =
    std::function<geo::PointSet(const core::Problem&)>;

class WarmStartPlanner {
 public:
  /// \p cold builds the from-scratch solver for a slot's Problem (used on
  /// the first slot and whenever history is unusable).
  /// \p max_sweeps bounds the refinement passes per slot.
  /// \p candidates overrides the swap-candidate pool; the default (or an
  /// empty pool returned at plan time) falls back to the input points.
  explicit WarmStartPlanner(SolverFactory cold, std::size_t max_sweeps = 2,
                            CandidateProvider candidates = nullptr);

  /// Plans one slot: refine the previous centers, or cold-solve.
  [[nodiscard]] core::Solution plan(const core::Problem& problem,
                                    std::size_t k);

  /// Adapts the planner to the BroadcastSimulator's SolverFactory shape.
  /// The returned factory shares this planner; the planner must outlive
  /// every solver the factory produces.
  [[nodiscard]] SolverFactory factory();

  /// Forgets history (e.g. after a handover); next plan() cold-solves.
  void reset() noexcept { previous_.reset(); }

  /// True when the next plan() can warm-start a k-center solve.
  [[nodiscard]] bool has_history(std::size_t k) const noexcept {
    return previous_.has_value() && previous_->size() == k;
  }

  [[nodiscard]] std::uint64_t cold_solves() const noexcept {
    return cold_solves_;
  }
  [[nodiscard]] std::uint64_t warm_solves() const noexcept {
    return warm_solves_;
  }

 private:
  SolverFactory cold_;
  std::size_t max_sweeps_;
  CandidateProvider candidates_;
  std::optional<geo::PointSet> previous_;
  std::uint64_t cold_solves_ = 0;
  std::uint64_t warm_solves_ = 0;
};

}  // namespace mmph::sim
