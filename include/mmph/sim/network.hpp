#pragma once

/// \file network.hpp
/// \brief Multi-cell network simulator: physical cells + interest space.
///
/// Extends the single-BS simulator to the full setting the paper's
/// introduction sketches: several base stations deployed over a physical
/// area, users attached to the nearest station (physical 2-D distance),
/// each station independently solving the paper's k-content selection over
/// its *current* users' interests. Two distinct spaces are modeled:
///
///   - physical space: user/station positions, mobility, handovers;
///   - interest space: the m-D vectors the reward function acts on.
///
/// Users move (Gaussian mobility), triggering handovers between cells, and
/// their interests drift independently. Reported per slot: network-wide
/// reward/satisfaction, handover count, and cell-load balance.

#include <functional>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/sim/simulator.hpp"

namespace mmph::sim {

/// One subscriber of the network.
struct NetworkUser {
  std::uint64_t id = 0;
  std::vector<double> position;   ///< physical 2-D location
  std::vector<double> interest;   ///< m-D interest vector
  double weight = 1.0;
  std::size_t station = 0;        ///< current cell attachment
  double accumulated_reward = 0.0;
};

struct NetworkConfig {
  std::size_t stations = 4;
  double area_side = 10.0;        ///< physical deployment area [0, side]^2
  std::size_t users = 100;
  std::size_t slots = 50;
  std::size_t k_per_station = 2;  ///< broadcasts per station per slot
  double radius = 1.0;            ///< interest-space coverage radius r
  std::size_t interest_dim = 2;
  double interest_box = 4.0;
  geo::Metric metric{};
  rnd::WeightScheme weights = rnd::WeightScheme::kUniformInt;
  double mobility_sigma = 0.0;    ///< physical movement per slot
  double interest_sigma = 0.0;    ///< interest drift per slot
  /// Handover hysteresis: switch cells only when the best station is
  /// closer than (1 - hysteresis) times the current one. 0 = always
  /// attach to the nearest (ping-pong-prone); 0.2 is a typical damping.
  double handover_hysteresis = 0.0;
  std::uint64_t seed = 42;
};

struct NetworkSlotMetrics {
  std::uint64_t slot = 0;
  double reward = 0.0;
  double total_weight = 0.0;
  double satisfaction = 0.0;
  std::size_t handovers = 0;      ///< users that switched cells this slot
  std::size_t max_cell_load = 0;
  std::size_t min_cell_load = 0;
};

struct NetworkReport {
  std::vector<NetworkSlotMetrics> slots;
  double mean_satisfaction = 0.0;
  double total_reward = 0.0;
  std::uint64_t total_handovers = 0;

  void finalize();
};

class NetworkSimulator {
 public:
  /// \p factory builds the per-cell scheduler for each cell's Problem.
  NetworkSimulator(NetworkConfig config, SolverFactory factory);

  [[nodiscard]] NetworkReport run();
  [[nodiscard]] NetworkSlotMetrics step();

  [[nodiscard]] const std::vector<NetworkUser>& users() const noexcept {
    return users_;
  }
  /// Station positions (rows, physical 2-D).
  [[nodiscard]] const geo::PointSet& stations() const noexcept {
    return stations_;
  }
  [[nodiscard]] std::uint64_t current_slot() const noexcept { return slot_; }

 private:
  [[nodiscard]] std::size_t nearest_station(
      const std::vector<double>& position) const;
  /// Re-attaches every user; returns the number of handovers.
  std::size_t associate();
  void advance();

  NetworkConfig config_;
  SolverFactory factory_;
  rnd::Rng rng_;
  geo::PointSet stations_{2};
  std::vector<NetworkUser> users_;
  std::uint64_t slot_ = 0;
};

}  // namespace mmph::sim
