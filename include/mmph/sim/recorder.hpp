#pragma once

/// \file recorder.hpp
/// \brief Records each simulated slot's problem and solution to disk.
///
/// Wraps any SolverFactory: every slot's instance and the chosen centers
/// are saved in the versioned trace format (mmph/trace/trace.hpp) under a
/// directory as slot_00000.problem / slot_00000.solution, so a live run
/// can be replayed, diffed or post-analyzed offline (e.g. with
/// `mmph_cli evaluate`). Recording failures throw — silently dropping
/// trace data would defeat the purpose.

#include <cstdint>
#include <string>

#include "mmph/sim/simulator.hpp"

namespace mmph::sim {

class TraceRecorder {
 public:
  /// Slots are written to `<directory>/slot_<index>.problem|.solution`.
  /// The directory must already exist and be writable.
  TraceRecorder(std::string directory, SolverFactory inner);

  /// Factory that records every solve through this recorder. The recorder
  /// must outlive the factory's solvers.
  [[nodiscard]] SolverFactory factory();

  [[nodiscard]] std::uint64_t recorded_slots() const noexcept {
    return recorded_;
  }

  /// Paths for a given slot index (as the recorder writes them).
  [[nodiscard]] std::string problem_path(std::uint64_t slot) const;
  [[nodiscard]] std::string solution_path(std::uint64_t slot) const;

 private:
  friend class RecordingSolver;

  std::string directory_;
  SolverFactory inner_;
  std::uint64_t recorded_ = 0;
};

}  // namespace mmph::sim
