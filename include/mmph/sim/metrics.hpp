#pragma once

/// \file metrics.hpp
/// \brief Per-slot and aggregate metrics of a simulation run.

#include <cstdint>
#include <vector>

namespace mmph::sim {

/// Outcome of one broadcast slot.
struct SlotMetrics {
  std::uint64_t slot = 0;
  double reward = 0.0;            ///< f(C) achieved this slot
  double total_weight = 0.0;      ///< sum w_i of the users present
  double satisfaction = 0.0;      ///< reward / total_weight, in [0, 1]
  double fairness = 1.0;          ///< Jain index over per-user slot rewards
  std::uint64_t users_happy = 0;  ///< users with any positive reward
  double solve_seconds = 0.0;     ///< wall time spent choosing centers
};

/// Whole-run summary.
struct SimReport {
  std::vector<SlotMetrics> slots;
  double mean_satisfaction = 0.0;
  double mean_fairness = 0.0;
  double total_reward = 0.0;
  double total_solve_seconds = 0.0;

  /// Computes the aggregate fields from `slots`.
  void finalize();
};

}  // namespace mmph::sim
