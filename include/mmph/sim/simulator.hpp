#pragma once

/// \file simulator.hpp
/// \brief Time-slotted broadcast content-distribution simulator.
///
/// Realizes the system of paper Fig. 1 over time: in every slot the base
/// station observes the current users, solves the k-center content
/// selection with a pluggable algorithm, broadcasts, and users collect
/// rewards according to the interest-distance reward function; then
/// interests drift and users churn. Used by the examples and by the
/// integration tests; the per-slot optimization is exactly the library's
/// Problem/Solver pair, so any solver (greedy 1-4, exhaustive) can be the
/// scheduler.

#include <functional>
#include <memory>
#include <string>

#include "mmph/core/problem.hpp"
#include "mmph/core/solver.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/sim/metrics.hpp"
#include "mmph/sim/user.hpp"

namespace mmph::sim {

/// Builds a solver for the slot's Problem (solvers like the round-based
/// oracle depend on the instance, hence a factory, not a fixed object).
using SolverFactory =
    std::function<std::unique_ptr<core::Solver>(const core::Problem&)>;

/// Full description of a simulation run.
struct SimConfig {
  std::size_t users = 40;
  std::size_t dim = 2;
  double box_side = 4.0;
  std::size_t slots = 100;
  std::size_t k = 4;          ///< broadcasts per slot
  double radius = 1.0;        ///< content scope r
  geo::Metric metric{};       ///< interest distance (default L2)
  DriftModel drift{};         ///< interest dynamics
  rnd::WeightScheme weights = rnd::WeightScheme::kUniformInt;
  std::int64_t weight_lo = 1;
  std::int64_t weight_hi = 5;
  std::uint64_t seed = 42;
};

/// The base station plus its user population.
class BroadcastSimulator {
 public:
  BroadcastSimulator(SimConfig config, SolverFactory factory);

  /// Runs `config.slots` slots and returns the report.
  [[nodiscard]] SimReport run();

  /// Runs a single slot (exposed for tests and interactive examples).
  [[nodiscard]] SlotMetrics step();

  [[nodiscard]] const std::vector<User>& users() const noexcept {
    return users_;
  }
  [[nodiscard]] std::uint64_t current_slot() const noexcept { return slot_; }

 private:
  [[nodiscard]] core::Problem snapshot_problem() const;
  [[nodiscard]] User spawn_user();
  void advance_population();

  SimConfig config_;
  SolverFactory factory_;
  rnd::Rng rng_;
  std::vector<User> users_;
  std::uint64_t slot_ = 0;
  std::uint64_t next_id_ = 0;
};

}  // namespace mmph::sim
