#pragma once

/// \file user.hpp
/// \brief Users of the broadcast system: an interest point plus dynamics.
///
/// The paper's model is a single static snapshot (Fig. 1): users attached
/// to one base station, each with an m-dimensional interest vector and a
/// maximum reward. The simulator animates that snapshot over time slots:
/// interests drift (tastes change slowly), occasionally jump (the user
/// switches context entirely), and users churn (leave and are replaced).

#include <cstdint>
#include <vector>

namespace mmph::sim {

/// One subscriber of the base station.
struct User {
  std::uint64_t id = 0;             ///< stable identity across slots
  std::vector<double> interest;     ///< point in the interest space
  double weight = 1.0;              ///< maximum reward w_i
  double accumulated_reward = 0.0;  ///< lifetime satisfaction collected
  std::uint64_t joined_slot = 0;    ///< slot the user appeared in
};

/// Per-slot interest dynamics.
struct DriftModel {
  double sigma = 0.0;        ///< per-slot Gaussian drift per dimension
  double jump_prob = 0.0;    ///< chance of resampling the interest uniformly
  double churn_prob = 0.0;   ///< chance of the user leaving (replaced fresh)
};

}  // namespace mmph::sim
