#pragma once

/// \file adaptive.hpp
/// \brief Cost-model-driven scheduler selection for the simulator.
///
/// A base station has a per-slot compute budget; the right algorithm
/// depends on the instance. AdaptivePlanner picks, per slot, the
/// highest-quality solver from a ladder whose *predicted* cost fits the
/// budget, using the paper's complexity results as the cost model:
///
///   greedy3 ~ k*n,  greedy2 ~ k*n^2,  greedy4 ~ k*n^3   (Thms 3-4, §V-A)
///
/// The budget is expressed in those abstract "operations" so selection is
/// deterministic and machine-independent (no wall-clock feedback loops in
/// tests). Ladder entries are ordered from cheapest to best; the planner
/// takes the best affordable one, falling back to the cheapest when even
/// it exceeds the budget.

#include <cstdint>
#include <string>
#include <vector>

#include "mmph/core/registry.hpp"
#include "mmph/sim/simulator.hpp"

namespace mmph::sim {

/// One rung: a solver name plus its cost exponent (cost = k * n^exponent).
struct AdaptiveRung {
  std::string solver;
  double n_exponent = 1.0;
};

class AdaptivePlanner {
 public:
  /// Default ladder: greedy3 (n^1) -> greedy2 (n^2) -> greedy4 (n^3).
  explicit AdaptivePlanner(double ops_budget,
                           std::vector<AdaptiveRung> ladder = default_ladder(),
                           core::SolverConfig config = {});

  [[nodiscard]] static std::vector<AdaptiveRung> default_ladder();

  /// The rung chosen for an instance of size n with k broadcasts.
  [[nodiscard]] const AdaptiveRung& choose(std::size_t n,
                                           std::size_t k) const;

  /// Predicted cost of a rung on an (n, k) instance.
  [[nodiscard]] static double predicted_cost(const AdaptiveRung& rung,
                                             std::size_t n, std::size_t k);

  /// Adapts to BroadcastSimulator's factory shape. The planner must
  /// outlive the factory's solvers. `k_hint` is the simulator's per-slot
  /// k (the factory sees only the Problem, so k is configured here).
  [[nodiscard]] SolverFactory factory(std::size_t k_hint);

  /// Times each rung was chosen (diagnostics; index-aligned with ladder).
  [[nodiscard]] const std::vector<std::uint64_t>& choice_counts()
      const noexcept {
    return counts_;
  }
  [[nodiscard]] const std::vector<AdaptiveRung>& ladder() const noexcept {
    return ladder_;
  }

 private:
  double ops_budget_;
  std::vector<AdaptiveRung> ladder_;
  core::SolverConfig config_;
  mutable std::vector<std::uint64_t> counts_;
};

}  // namespace mmph::sim
