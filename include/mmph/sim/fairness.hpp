#pragma once

/// \file fairness.hpp
/// \brief Proportional-fairness weighting across simulation slots.
///
/// Maximizing per-slot reward can starve fringe users forever: the same
/// dense cluster wins every broadcast. The fairness-aware planner rescales
/// each user's weight by an urgency factor that grows with accumulated
/// service deficit before handing the slot to the inner scheduler:
///
///   urgency_i = 1 + alpha * deficit_i / (slot + 1)
///   deficit_i += (fair_share_i - received_i)        per slot, floored at 0
///
/// where fair_share_i is the user's weight-proportional share of the slot's
/// total reward. alpha = 0 recovers the plain scheduler; larger alpha
/// trades total reward for Jain fairness (see fairness_test and the
/// broadcast_scheduler example).
///
/// Stateful across slots: create one per simulation run, wrap it with
/// factory() for BroadcastSimulator.

#include <vector>

#include "mmph/sim/simulator.hpp"

namespace mmph::sim {

class FairnessAwarePlanner {
 public:
  /// \p inner builds the actual scheduler for the (reweighted) Problem.
  /// \p alpha >= 0 controls the fairness pressure.
  FairnessAwarePlanner(SolverFactory inner, double alpha);

  /// Plans one slot on a deficit-reweighted copy of \p problem. The
  /// returned Solution's residual is against the *original* weights, so
  /// the simulator's reward accounting stays truthful.
  [[nodiscard]] core::Solution plan(const core::Problem& problem,
                                    std::size_t k);

  /// Adapter for BroadcastSimulator; the planner must outlive the solvers.
  [[nodiscard]] SolverFactory factory();

  [[nodiscard]] const std::vector<double>& deficits() const noexcept {
    return deficits_;
  }
  void reset() noexcept {
    deficits_.clear();
    slot_ = 0;
  }

 private:
  SolverFactory inner_;
  double alpha_;
  std::vector<double> deficits_;
  std::size_t slot_ = 0;
};

}  // namespace mmph::sim
