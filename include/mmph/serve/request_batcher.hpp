#pragma once

/// \file request_batcher.hpp
/// \brief Bounded MPSC queue that hands the service worker request batches.
///
/// Producers (client threads) push requests; the single consumer (the
/// service worker, or a test calling pump()) drains up to max_batch at a
/// time. The queue is bounded: a full queue rejects at submit time (the
/// request's promise is fulfilled with kRejected immediately), which gives
/// backpressure instead of unbounded memory growth. Deadlines are enforced
/// at dequeue: expired requests are answered kTimeout and excluded from
/// the batch. close() wakes blocked consumers and answers everything still
/// queued with kShutdown.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "mmph/serve/fault.hpp"
#include "mmph/serve/request.hpp"

namespace mmph::serve {

class ServeMetrics;

class RequestBatcher {
 public:
  /// \p capacity bounds the queued requests (>= 1). \p metrics may be
  /// null; when set, queue events are counted there. \p fault_hook (may
  /// be empty) is consulted at kFaultQueueFull / kFaultDeadlineSkew.
  explicit RequestBatcher(std::size_t capacity, ServeMetrics* metrics = nullptr,
                          FaultHook fault_hook = {});

  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues; returns false (after answering the promise kRejected) when
  /// the queue is full or closed.
  bool push(Request&& request);

  /// Enqueues a whole batch under one lock — the event loops' submit path
  /// (N pushes would pay N lock round-trips on the hottest edge of the
  /// funnel). Semantically identical to calling push() per element in
  /// order: each request is individually admitted or answered
  /// kRejected/kShutdown.
  void push_batch(std::vector<Request>&& requests);

  /// Dequeues up to \p max_batch non-expired requests, waiting up to
  /// \p wait for the first one. Expired requests are answered kTimeout
  /// and skipped. Returns an empty batch on timeout or when closed-and-
  /// drained.
  [[nodiscard]] std::vector<Request> pop_batch(
      std::size_t max_batch,
      std::chrono::milliseconds wait = std::chrono::milliseconds(0));

  [[nodiscard]] std::size_t depth() const;

  /// Rejects future pushes, wakes waiting consumers, and answers every
  /// queued request kShutdown.
  void close();

  [[nodiscard]] bool closed() const;

 private:
  const std::size_t capacity_;
  ServeMetrics* metrics_;
  FaultHook fault_hook_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool closed_ = false;
};

}  // namespace mmph::serve
