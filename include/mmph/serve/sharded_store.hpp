#pragma once

/// \file sharded_store.hpp
/// \brief InstanceStore partitioned by interest-space region.
///
/// The serve path's scaling ceiling (ROADMAP) is the single InstanceStore
/// every loop funnels into. ShardedInstanceStore splits the population
/// into `shards` disjoint InstanceStores, routing each user by the
/// spatial::RegionMap of its interest point — the same grid cells the
/// solver's UniformGridIndex buckets by — so a shard is a spatially
/// coherent sub-population that can be solved on its own and merged
/// globally (ShardedSolver's existing merge).
///
/// Contracts:
///   - A user's shard is a pure function of its interest point. An upsert
///     that moves a user across a region boundary is a remove from the
///     old shard plus an insert into the new one (two shard-epoch ticks —
///     the WAL logs it exactly that way, one record per shard).
///   - The global epoch is the SUM of the shard epochs: every shard
///     mutation advances exactly one shard's epoch by one, so the sum is
///     strictly monotone per applied element, exactly like the unsharded
///     epoch (cross-region moves count two elements, matching their two
///     log records).
///   - shards == 1 is the bit-identity mode: one InstanceStore receives
///     the same calls in the same order as the unsharded service, and
///     global_snapshot() is that store's snapshot verbatim.
///   - Per-shard snapshots are cached by epoch: a solve after localized
///     churn re-copies only the shards that actually moved.
///
/// Not thread-safe; the owner (PlacementService) serializes access, the
/// same discipline as InstanceStore.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mmph/serve/instance_store.hpp"
#include "mmph/spatial/region_map.hpp"

namespace mmph::serve {

class ShardedInstanceStore {
 public:
  /// \p region_cell is the RegionMap cell edge (serve passes the coverage
  /// radius). \p shards >= 1.
  ShardedInstanceStore(std::size_t dim, std::size_t shards,
                       double region_cell);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  /// Sum of shard epochs (see file comment): monotone, +1 per element.
  [[nodiscard]] std::uint64_t epoch() const noexcept;

  [[nodiscard]] InstanceStore& shard(std::size_t s) { return shards_[s]; }
  [[nodiscard]] const InstanceStore& shard(std::size_t s) const {
    return shards_[s];
  }
  [[nodiscard]] const spatial::RegionMap& region_map() const noexcept {
    return regions_;
  }

  /// Shard the point's region belongs to (routing for inserts).
  [[nodiscard]] std::size_t shard_of_point(geo::ConstVec p) const {
    return regions_.shard_of(p);
  }
  /// Shard currently holding the id, or nullopt for unknown ids.
  [[nodiscard]] std::optional<std::size_t> shard_of_id(
      std::uint64_t id) const;

  /// What upsert(\p user) would do, without doing it. Routing for the WAL:
  /// the service logs the remove/upsert records this implies *before*
  /// applying. `from == to` (or no `from`) is a plain one-shard op.
  struct UpsertRoute {
    std::size_t to = 0;                     ///< shard the point hashes to
    std::optional<std::size_t> from{};      ///< shard the id lives in now
    /// Filled by upsert(): true when the target shard gained a row (fresh
    /// id, or the insert half of a region move); false for an in-place
    /// update. route_upsert() leaves it false.
    bool inserted = false;
    [[nodiscard]] bool is_move() const noexcept {
      return from.has_value() && *from != to;
    }
  };
  [[nodiscard]] UpsertRoute route_upsert(const UserRecord& user) const;

  /// Inserts or overwrites, routing by region; cross-region moves
  /// remove-then-insert. Returns the route taken. Strong guarantee for
  /// one-shard ops; a cross-region move that throws on the insert leaves
  /// the old shard's remove applied (callers poison the WAL on that
  /// divergence, the established discipline).
  UpsertRoute upsert(const UserRecord& user);

  /// Removes the user from whichever shard holds it. Returns that shard,
  /// or nullopt for unknown ids (no epoch change).
  std::optional<std::size_t> remove(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return owner_.find(id) != owner_.end();
  }
  [[nodiscard]] std::optional<UserRecord> find(std::uint64_t id) const;

  /// Replaces one shard's population (WAL recovery; shards recover
  /// independently). Rebuilds the id->shard map entries for that shard.
  /// \throws InvalidArgument when an id is already resident elsewhere.
  void restore_shard(std::size_t s, std::uint64_t epoch,
                     std::vector<std::uint64_t> ids,
                     std::vector<double> weights,
                     std::vector<double> coords);

  /// Sum of shard churn counters (mutations since each last snapshot).
  [[nodiscard]] std::uint64_t churn_since_snapshot() const noexcept;

  /// Epoch-cached copy of one shard (re-copied only when the shard's
  /// epoch moved since the last call).
  [[nodiscard]] const StoreSnapshot& shard_snapshot(std::size_t s);

  /// Concatenation of the shard snapshots in shard order, stamped with
  /// the global epoch. Rows of shard s occupy one contiguous range (see
  /// shard_row_ranges). For shard_count() == 1 this is shard 0's
  /// snapshot verbatim (bit-identity mode).
  [[nodiscard]] StoreSnapshot global_snapshot();

  /// [begin, end) row range of each shard inside global_snapshot(), in
  /// shard order (empty shards yield empty ranges). These are the
  /// per-shard solve groups handed to ShardedSolver.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  shard_row_ranges() const;

 private:
  std::size_t dim_;
  spatial::RegionMap regions_;
  std::vector<InstanceStore> shards_;
  /// id -> owning shard; mirrors every mutation.
  std::unordered_map<std::uint64_t, std::size_t> owner_;
  /// Per-shard snapshot cache (epoch-checked; epoch 0 + empty = unset).
  std::vector<StoreSnapshot> cache_;
  std::vector<bool> cache_valid_;
};

}  // namespace mmph::serve
