#pragma once

/// \file metrics.hpp
/// \brief Operational counters of the placement service.
///
/// Everything an operator needs to see on a dashboard: queue pressure
/// (submitted / rejected / expired), batching efficiency (batches, mean
/// batch size), and solve behavior (full vs incremental counts, p50/p99
/// solve latency). Counters are mutex-guarded — solve rates are a few Hz,
/// so contention is irrelevant — and latency percentiles come from a
/// retained sample capped at a fixed size (reservoir-free: the cap is far
/// above any realistic diagnostic window).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mmph::serve {

/// Point-in-time copy of every counter (plain data, safe to print/ship).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t timeouts = 0;  ///< deadline passed while queued
  std::uint64_t shutdown = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t mutations = 0;
  std::uint64_t queries = 0;
  std::uint64_t full_solves = 0;
  std::uint64_t incremental_solves = 0;
  std::size_t queue_depth = 0;

  double mean_batch_size = 0.0;
  double solve_p50_seconds = 0.0;
  double solve_p99_seconds = 0.0;
  double total_solve_seconds = 0.0;

  /// incremental / (full + incremental); 0 when no solve happened yet.
  [[nodiscard]] double incremental_ratio() const noexcept {
    const std::uint64_t total = full_solves + incremental_solves;
    return total == 0
               ? 0.0
               : static_cast<double>(incremental_solves) /
                     static_cast<double>(total);
  }
};

class ServeMetrics {
 public:
  void count_submitted();
  void count_rejected();
  void count_timeout();
  void count_shutdown();
  void count_mutations(std::uint64_t n);
  void count_queries(std::uint64_t n);
  void record_batch(std::size_t size);
  void record_solve(double seconds, bool incremental);
  void set_queue_depth(std::size_t depth);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  void reset();

 private:
  /// Retained latency samples are capped; beyond the cap the oldest half
  /// is dropped so percentiles track recent behavior.
  static constexpr std::size_t kMaxSolveSamples = 1 << 16;

  mutable std::mutex mutex_;
  MetricsSnapshot counters_;
  std::vector<double> solve_seconds_;
};

}  // namespace mmph::serve
