#pragma once

/// \file metrics.hpp
/// \brief Operational counters of the placement service, built on mmph::obs.
///
/// Everything an operator needs to see on a dashboard: queue pressure
/// (submitted / rejected / expired), batching efficiency (batches, mean
/// batch size), error accounting (bad requests, internal errors), and
/// solve behavior (full vs incremental counts, p50/p99 solve latency from
/// a fixed-bucket atomic histogram — no sample retention, no mutex on the
/// record path). The registry() can be scraped as Prometheus text, and
/// snapshot() keeps the flat struct shape older callers print.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mmph/obs/registry.hpp"
#include "mmph/spatial/spatial_index.hpp"

namespace mmph::serve {

/// Point-in-time copy of every counter (plain data, safe to print/ship).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t timeouts = 0;  ///< deadline passed while queued
  std::uint64_t shutdown = 0;
  std::uint64_t bad_requests = 0;     ///< malformed request payloads
  std::uint64_t internal_errors = 0;  ///< solver threw mid-batch
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t mutations = 0;
  std::uint64_t queries = 0;
  std::uint64_t full_solves = 0;
  std::uint64_t incremental_solves = 0;
  std::size_t queue_depth = 0;
  double repl_lag_ops = 0.0;  ///< replica: ops behind the primary

  // Spatial coverage-index activity (all 0 while no index is carried).
  std::uint64_t spatial_queries = 0;
  std::uint64_t spatial_points_touched = 0;
  std::uint64_t spatial_incremental_updates = 0;
  std::uint64_t spatial_rebuilds = 0;

  // Local-search polish activity (all 0 unless the ls solver tier runs).
  std::uint64_t ls_moves = 0;         ///< committed shift/swap moves
  std::uint64_t ls_improvements = 0;  ///< solves where ls beat its seed
  std::uint64_t ls_evals = 0;         ///< delta evaluations

  double mean_batch_size = 0.0;
  double solve_p50_seconds = 0.0;
  double solve_p99_seconds = 0.0;
  double total_solve_seconds = 0.0;

  /// incremental / (full + incremental); 0 when no solve happened yet.
  [[nodiscard]] double incremental_ratio() const noexcept {
    const std::uint64_t total = full_solves + incremental_solves;
    return total == 0
               ? 0.0
               : static_cast<double>(incremental_solves) /
                     static_cast<double>(total);
  }
};

class ServeMetrics {
 public:
  ServeMetrics();

  void count_submitted() { submitted_->add(); }
  void count_rejected() { rejected_full_->add(); }
  void count_timeout() { timeouts_->add(); }
  void count_shutdown() { shutdown_->add(); }
  void count_bad_request() { bad_requests_->add(); }
  void count_internal_error() { internal_errors_->add(); }
  void count_mutations(std::uint64_t n) { mutations_->add(n); }
  void count_queries(std::uint64_t n) { queries_->add(n); }
  void record_batch(std::size_t size);
  void record_solve(double seconds, bool incremental);
  void set_queue_depth(std::size_t depth) {
    queue_depth_->set(static_cast<double>(depth));
  }
  /// Replica-side replication lag (primary epoch minus local epoch);
  /// stays 0 on a primary so the family is always present in scrapes.
  void set_repl_lag(double ops) { repl_lag_ops_->set(ops); }

  /// Folds a spatial-index stats delta (stats() now minus stats() at the
  /// last publication) into the mmph_spatial_* counters. The families are
  /// registered up front, so they scrape as 0 when no index is in use.
  void add_spatial(const spatial::IndexStats& delta);

  /// Folds one polish run's counters into the mmph_ls_* families
  /// (registered up front: they scrape as 0 on the greedy/lazy tiers).
  void add_ls(std::uint64_t moves, std::uint64_t evals, bool improved) {
    ls_moves_->add(moves);
    ls_evals_->add(evals);
    if (improved) ls_improvements_->add();
  }

  /// Registers the per-store-shard instrument families (one labeled
  /// series per shard, the net-loop idiom). Called once by the service
  /// when it runs with store_shards > 1; never called -> none of the
  /// mmph_store_shard_* families appear in scrapes, keeping the
  /// single-store exposition byte-identical to before.
  void configure_store_shards(std::size_t shards);
  /// Mutations routed to store shard \p shard (no-op until configured).
  void count_shard_mutations(std::size_t shard, std::uint64_t n);
  /// Live row count of store shard \p shard (no-op until configured).
  void set_shard_rows(std::size_t shard, std::size_t rows);
  /// Loop->shard affinity of a routed mutation (no-op until configured).
  void count_affinity(bool hit);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Underlying registry, for Prometheus-style exposition (kStats scrape).
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  void reset() { registry_.reset(); }

 private:
  obs::Registry registry_;
  obs::Counter* submitted_;
  obs::Counter* rejected_full_;
  obs::Counter* timeouts_;
  obs::Counter* shutdown_;
  obs::Counter* bad_requests_;
  obs::Counter* internal_errors_;
  obs::Counter* batches_;
  obs::Counter* batched_requests_;
  obs::Counter* mutations_;
  obs::Counter* queries_;
  obs::Counter* full_solves_;
  obs::Counter* incremental_solves_;
  obs::Gauge* queue_depth_;
  obs::Gauge* repl_lag_ops_;
  obs::Counter* spatial_queries_;
  obs::Counter* spatial_points_touched_;
  obs::Counter* spatial_updates_;
  obs::Counter* spatial_rebuilds_;
  obs::Counter* ls_moves_;
  obs::Counter* ls_improvements_;
  obs::Counter* ls_evals_;
  obs::Histogram* solve_seconds_;
  /// Per-store-shard series; empty until configure_store_shards().
  std::vector<obs::Counter*> shard_mutations_;
  std::vector<obs::Gauge*> shard_rows_;
  obs::Counter* affinity_hits_ = nullptr;
  obs::Counter* affinity_misses_ = nullptr;
};

}  // namespace mmph::serve
