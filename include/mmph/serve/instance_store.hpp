#pragma once

/// \file instance_store.hpp
/// \brief Mutable, versioned user population backing the placement service.
///
/// The paper's Problem is immutable: one snapshot of the attached users.
/// A serving deployment sees *churn* — users join, leave, and move in
/// interest space — so the service keeps the population in a store that
/// supports O(1) amortized insert/remove/update and hands out epoch-stamped
/// immutable snapshots for the solver. Every successful mutation advances
/// the epoch, so snapshot epochs are strictly monotone across state changes
/// and a consumer can tell "nothing changed" from "re-solve needed" by
/// comparing epochs.
///
/// Storage is structure-of-arrays (ids / weights / row-major coordinates)
/// with swap-remove, matching geo::PointSet's layout so a snapshot is one
/// contiguous copy.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mmph/geometry/point_set.hpp"

namespace mmph::serve {

/// One user row as the serving layer sees it (sim::User minus the
/// simulator-only bookkeeping).
struct UserRecord {
  std::uint64_t id = 0;
  std::vector<double> interest;
  double weight = 1.0;
};

/// Epoch-stamped immutable copy of the population. ids[i] owns row i of
/// points/weights.
struct StoreSnapshot {
  std::uint64_t epoch = 0;
  geo::PointSet points{1};
  std::vector<double> weights;
  std::vector<std::uint64_t> ids;

  [[nodiscard]] std::size_t size() const noexcept { return weights.size(); }
};

class InstanceStore {
 public:
  /// Empty store of users with \p dim-dimensional interests (dim >= 1).
  explicit InstanceStore(std::size_t dim);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Version counter: advances on every successful mutation.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Inserts or overwrites the user. Returns true on insert, false on
  /// update. \throws InvalidArgument on interest-dimension mismatch or
  /// non-positive weight. Strong guarantee: on any throw (including
  /// allocation failure) the store — rows, index, and epoch — is exactly
  /// what it was before the call.
  bool upsert(const UserRecord& user);

  /// Pre-grows all row storage so the next \p rows upsert-inserts cannot
  /// allocate (and therefore cannot throw past validation).
  void reserve_rows(std::size_t rows);

  /// Replaces the whole population in one step (WAL recovery / replica
  /// snapshot install). \p coords is row-major, ids.size() * dim(). The
  /// epoch must be >= ids.size() (each resident row cost at least one
  /// mutation) and must not move backwards. Strong guarantee. Resets the
  /// churn counter — callers that need a re-solve should force one.
  /// \throws InvalidArgument on size mismatch, duplicate or invalid rows,
  /// or an inconsistent epoch.
  void restore(std::uint64_t epoch, std::vector<std::uint64_t> ids,
               std::vector<double> weights, std::vector<double> coords);

  /// Removes the user (swap-remove, O(1)). Returns false for unknown ids
  /// (no epoch change).
  bool remove(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const;
  [[nodiscard]] std::optional<UserRecord> find(std::uint64_t id) const;

  /// Live row number of the user, or nullopt for unknown ids. Row numbers
  /// are the point indices a snapshot's PointSet (and therefore a spatial
  /// index mirroring the store) uses; they change when a later swap-remove
  /// relocates the last row.
  [[nodiscard]] std::optional<std::size_t> row_of(std::uint64_t id) const;

  /// Mutations (inserts + updates + removes) since the last snapshot().
  [[nodiscard]] std::uint64_t churn_since_snapshot() const noexcept {
    return churn_since_snapshot_;
  }

  /// O(n) immutable copy stamped with the current epoch; resets the churn
  /// counter. Epochs of successive snapshots are non-decreasing, and
  /// strictly increasing whenever a mutation happened in between.
  [[nodiscard]] StoreSnapshot snapshot();

  /// Raw row arrays in live row order (ids / weights / row-major coords),
  /// for WAL checkpointing. Unlike snapshot() this is a pure read: no
  /// churn-counter reset, no PointSet construction. Row order is the
  /// store's history-dependent order — the recovery invariant is bitwise
  /// equality, so the order must round-trip exactly.
  void export_rows(std::vector<std::uint64_t>& ids,
                   std::vector<double>& weights,
                   std::vector<double>& coords) const;

 private:
  std::size_t dim_;
  std::vector<std::uint64_t> ids_;
  std::vector<double> weights_;
  std::vector<double> coords_;  ///< row-major, ids_.size() * dim_
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::uint64_t epoch_ = 0;
  std::uint64_t churn_since_snapshot_ = 0;
};

}  // namespace mmph::serve
