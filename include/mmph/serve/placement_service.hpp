#pragma once

/// \file placement_service.hpp
/// \brief Long-running placement service: store -> shards -> merge -> reply.
///
/// Turns the one-shot library into the server the ROADMAP asks for. The
/// service owns a versioned InstanceStore of users, accepts batched
/// requests (add / remove / query / evaluate) through a bounded
/// RequestBatcher, and keeps a current k-center placement:
///
///   clients -> RequestBatcher -> [apply mutations] -> solve -> replies
///                                     |                 |
///                                InstanceStore      ShardedSolver (full)
///                                (epoch snapshots)  or 1-swap warm refine
///                                                   (incremental)
///
/// Re-solves are *incremental by default*: after a small churn delta the
/// service warm-starts from the previous centers (sim::WarmStartPlanner)
/// and 1-swap-refines them against a curated candidate pool — cached
/// per-shard winners plus recently churned users — instead of re-running
/// the sharded greedy. When churn since the last solve exceeds
/// `full_solve_churn_fraction` of the population (or there is no usable
/// history: first solve, k change, emptied store), it falls back to the
/// full sharded solve. Every stage reports trace:: spans and ServeMetrics.
///
/// Threading: the synchronous API (apply_* / placement / evaluate) and
/// pump() serialize on an internal mutex, so any thread may call them;
/// submit() is safe from any thread. Batches are drained either by an
/// owned worker thread (start()/stop()) or by explicit pump() calls —
/// use one or the other, not both.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/serve/fault.hpp"
#include "mmph/serve/instance_store.hpp"
#include "mmph/serve/metrics.hpp"
#include "mmph/serve/request.hpp"
#include "mmph/serve/request_batcher.hpp"
#include "mmph/serve/sharded_solver.hpp"
#include "mmph/serve/sharded_store.hpp"
#include "mmph/sim/warm_start.hpp"
#include "mmph/spatial/uniform_grid.hpp"
#include "mmph/wal/record.hpp"
#include "mmph/wal/sharded_wal.hpp"
#include "mmph/wal/snapshot.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::serve {

/// Which solver tier produces placements (the --solver CLI flag).
enum class SolverTier {
  /// Plain greedy. Lazy greedy's selections are bitwise-identical to
  /// greedy's (the lazy queue only skips evaluations whose stale bound
  /// already loses), so this runs the same sharded path as kLazy and is
  /// kept as an explicit name for operators and A/B configs.
  kGreedy,
  /// Sharded lazy greedy with global merge — the default since PR 1.
  kLazy,
  /// kLazy, then every solve's output is polished by shift/swap local
  /// search (ls::polish) over the instance points, riding the carried
  /// coverage index for delta evaluation. Warm re-solves seed the polish
  /// from the previous epoch's placement (the planner's refined centers),
  /// and the polish never returns a worse placement than its seed.
  kLs,
};

[[nodiscard]] const char* solver_tier_name(SolverTier tier) noexcept;
/// Parses "greedy" / "lazy" / "ls"; std::nullopt for anything else.
[[nodiscard]] std::optional<SolverTier> parse_solver_tier(
    std::string_view name) noexcept;

struct ServiceConfig {
  std::size_t dim = 2;
  std::size_t k = 8;
  double radius = 1.0;
  geo::Metric metric{};
  core::RewardShape shape = core::RewardShape::kLinear;

  ShardedSolverConfig shard{};

  /// Solver tier for placements (see SolverTier).
  SolverTier solver = SolverTier::kLazy;
  /// Polish tunables for the kLs tier. The fault_hook field here is
  /// ignored: the service forwards its own fault_hook so the ls.eval_throw
  /// site shares the one chaos seam.
  ls::LsConfig ls{};

  /// Churn (mutations since last solve) above this fraction of the
  /// population forces a full sharded re-solve instead of a warm refine.
  double full_solve_churn_fraction = 0.05;
  /// Swap-candidate pool size for incremental re-solves.
  std::size_t max_incremental_candidates = 32;
  /// Refinement sweeps per incremental re-solve.
  std::size_t warm_sweeps = 1;

  std::size_t queue_capacity = 1024;
  std::size_t max_batch = 256;

  /// Test-only fault seam (see fault.hpp); empty in production. Fired at
  /// serve.queue_full / serve.deadline_skew (batcher) and
  /// serve.solver_throw / serve.alloc_fail (batch processing).
  FaultHook fault_hook{};

  /// Optional write-ahead log. When set, every mutation is appended to
  /// the log *before* it touches the store and committed before the
  /// batch's replies go out, so a kOk ack implies the op is logged as
  /// durably as the writer's fsync policy promises. Must outlive the
  /// service. Null: no durability (the pre-WAL behavior). Only valid
  /// with store_shards == 1; sharded stores attach shard_wal instead.
  wal::WalWriter* wal = nullptr;

  /// Region shards the InstanceStore is split into (>= 1). 1 is the
  /// bit-identity mode: one store shard receiving exactly the unsharded
  /// call sequence (the --store-shards 1 golden-digest discipline, like
  /// --loops 1). > 1 partitions users by interest-space region
  /// (spatial::RegionMap over grid cells of edge region_cell): mutations
  /// route to their region's shard, full solves run per shard and merge
  /// globally, and durability goes through the per-shard shard_wal.
  /// Replication endpoints are rejected while sharded (follow-on).
  std::size_t store_shards = 1;
  /// Region cell edge for the store's RegionMap; 0 selects `radius`.
  double region_cell = 0.0;

  /// Per-shard WAL coordinator for sharded stores (mutually exclusive
  /// with `wal`; shard_count must equal store_shards; must outlive the
  /// service). Appends stay append-before-apply per shard; the batch
  /// ack barrier is ShardedWal::commit_all. Null: no durability.
  wal::ShardedWal* shard_wal = nullptr;
};

/// The answer to "where are the centers right now".
struct PlacementView {
  std::uint64_t epoch = 0;       ///< store epoch the placement reflects
  double objective = 0.0;        ///< f(C) on that population
  std::size_t population = 0;
  core::Solution solution;       ///< empty centers for an empty population
};

class PlacementService {
 public:
  /// \p pool runs shard solves; nullptr selects ThreadPool::global().
  explicit PlacementService(ServiceConfig config,
                            par::ThreadPool* pool = nullptr);
  ~PlacementService();

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  // --- synchronous API (tests, benches, embedded use) ---

  /// Upserts users; marks the placement stale.
  void apply_add(const std::vector<UserRecord>& users);
  /// Removes users (unknown ids are ignored); marks the placement stale.
  void apply_remove(const std::vector<std::uint64_t>& ids);
  /// Current placement, re-solving first when the store changed.
  [[nodiscard]] PlacementView placement();
  /// f(\p centers) on the live population (0 when empty).
  [[nodiscard]] double evaluate(const geo::PointSet& centers);

  [[nodiscard]] std::size_t population() const;
  [[nodiscard]] std::uint64_t epoch() const;

  // --- WAL / replication API ---

  /// Replaces the whole population from a recovered or replicated
  /// snapshot (placement history is dropped; the next query re-solves).
  /// With a WAL attached the snapshot is also checkpointed, aligning the
  /// log with the new state. \throws InvalidArgument on a dimension or
  /// epoch mismatch, wal::WalError when the checkpoint cannot be written,
  /// StateError with store_shards > 1 (use restore_sharded: one global
  /// epoch cannot reconstruct per-shard chains).
  void restore_from(const wal::WalSnapshot& snapshot);

  /// Boot-time install of a sharded recovery result: shard s's rows and
  /// epoch land in store shard s, and (with shard_wal attached) each
  /// non-empty shard is re-checkpointed so its log chains from the
  /// installed state. \throws InvalidArgument on a shard-count or
  /// dimension mismatch.
  void restore_sharded(const wal::ShardedRecovery& recovered);

  /// Applies one replicated log record (replica ingest path; works even
  /// in read-only mode). The record's epoch must continue the store's
  /// chain exactly. \throws StateError on a chain break — the caller
  /// should resubscribe from a snapshot.
  void apply_replicated(const wal::WalRecord& record);

  /// The live population as a WAL snapshot (what write_snapshot persists
  /// and what kReplSnapshot streams).
  [[nodiscard]] wal::WalSnapshot wal_snapshot();

  /// One store shard's rows and epoch as a WAL snapshot — the unit the
  /// per-shard logs checkpoint and recovery restores. \throws
  /// InvalidArgument when \p s >= store_shards().
  [[nodiscard]] wal::WalSnapshot shard_wal_snapshot(std::size_t s);

  /// Attached single log writer; null when running without durability
  /// *and* when the store is sharded (replication streams off this
  /// writer, and sharded replication is a follow-on — the server rejects
  /// kReplSubscribe whenever this is null).
  [[nodiscard]] wal::WalWriter* wal() const noexcept { return config_.wal; }

  /// Attached per-shard WAL coordinator; null unless store_shards > 1
  /// ran with durability.
  [[nodiscard]] wal::ShardedWal* shard_wal() const noexcept {
    return config_.shard_wal;
  }

  /// Region shards the store runs with (config().store_shards).
  [[nodiscard]] std::size_t store_shards() const noexcept {
    return store_.shard_count();
  }

  /// Publishes the replica's current lag (mmph_repl_lag_ops gauge).
  /// Called by net::ReplicaAgent; thread-safe (atomic gauge).
  void set_repl_lag(double ops) { metrics_.set_repl_lag(ops); }

  /// Read-only mode: mutations are answered kBadRequest (direct API:
  /// StateError). Replicas run read-only until promoted; promotion is
  /// simply set_read_only(false).
  void set_read_only(bool read_only) noexcept {
    read_only_.store(read_only, std::memory_order_relaxed);
  }
  [[nodiscard]] bool read_only() const noexcept {
    return read_only_.load(std::memory_order_relaxed);
  }

  // --- batched asynchronous API ---

  /// Enqueues; the future resolves when the worker processes the batch
  /// (immediately with kRejected when the queue is full).
  [[nodiscard]] std::future<Response> submit(Request request);
  /// Enqueues many requests under one queue lock, preserving order;
  /// futures are returned in the same order. Equivalent to submit() per
  /// element, minus the per-request lock round-trips — the NetServer
  /// event loops submit everything they decoded in one pass this way.
  [[nodiscard]] std::vector<std::future<Response>> submit_batch(
      std::vector<Request> requests);
  /// Drains and processes at most one batch; waits up to \p wait for the
  /// first request. Returns the number of requests handled.
  std::size_t pump(std::chrono::milliseconds wait = std::chrono::milliseconds(0));
  /// Starts the owned worker thread draining batches.
  void start();
  /// Stops the worker and closes the queue (terminal: later submits are
  /// rejected). Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] std::size_t queue_depth() const { return batcher_.depth(); }
  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  /// Underlying instrument registry, for Prometheus-style exposition.
  [[nodiscard]] const obs::Registry& metrics_registry() const noexcept {
    return metrics_.registry();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
  /// Stage diagnostics of the last full (sharded) solve.
  [[nodiscard]] ShardStats last_shard_stats() const;

 private:
  void apply_add_locked(const std::vector<UserRecord>& users);
  void apply_remove_locked(const std::vector<std::uint64_t>& ids);
  void ensure_index_locked(const core::Problem& problem);
  void publish_spatial_locked();
  void commit_wal_locked();
  void maybe_snapshot_locked();
  void poison_wal_locked(const std::string& reason);
  /// Single writer serving shard 0 in unsharded mode (config_.wal, or
  /// the coordinator's writer 0 when shard_wal drives one shard); null
  /// without durability.
  [[nodiscard]] wal::WalWriter* single_writer_locked() const;
  [[nodiscard]] wal::WalSnapshot wal_snapshot_locked() const;
  [[nodiscard]] wal::WalSnapshot shard_wal_snapshot_locked(
      std::size_t s) const;
  void count_affinity_locked(const Request& request);
  [[nodiscard]] const PlacementView& solve_locked();
  [[nodiscard]] geo::PointSet incremental_pool_locked() const;
  void process_batch(std::vector<Request> batch);
  [[nodiscard]] core::Problem problem_locked();

  ServiceConfig config_;
  par::ThreadPool& pool_;
  ServeMetrics metrics_;
  RequestBatcher batcher_;

  /// Serializes whole pump() passes (pop + process). pop_batch and
  /// process_batch take different locks, so two loops pumping
  /// concurrently could otherwise apply batch N+1 before batch N — a
  /// store/WAL order no client submitted (the multi-loop group-commit
  /// ordering bug).
  std::mutex pump_mutex_;

  mutable std::mutex mutex_;
  ShardedInstanceStore store_;
  std::unique_ptr<ShardedSolver> sharded_;
  std::unique_ptr<sim::WarmStartPlanner> planner_;
  std::optional<PlacementView> view_;
  std::uint64_t churn_since_solve_ = 0;
  /// Interest rows of recently churned-in users (swap candidates).
  std::deque<std::vector<double>> recent_points_;

  /// Coverage index carried across churn epochs (kernels::index_mode()
  /// decides whether one is kept). Rows mirror the store's live rows:
  /// every mutation applies the same add/update/swap-remove to both, so a
  /// re-solve skips the O(n) build. The index is an accelerator, never
  /// truth — a failed mirror marks it dirty and the next solve rebuilds
  /// it from the snapshot (placements are bit-identical either way).
  std::unique_ptr<spatial::UniformGridIndex> index_;
  bool index_dirty_ = false;
  /// stats() at the last metrics publication (counters are deltas).
  spatial::IndexStats index_published_{};

  std::atomic<bool> running_{false};
  std::atomic<bool> read_only_{false};
  std::thread worker_;
};

}  // namespace mmph::serve
