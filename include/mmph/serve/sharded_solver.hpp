#pragma once

/// \file sharded_solver.hpp
/// \brief Spatially sharded greedy placement for large populations.
///
/// The point-restricted greedies are O(k n^2): every candidate evaluation
/// scans the whole population. At serving scale (10^5+ users) a monolithic
/// solve is seconds-to-minutes, so this solver follows the low-complexity
/// geographic-partitioning idea (Avrachenkov et al.): split the population
/// into S spatially coherent shards, run the lazy greedy *inside* each
/// shard concurrently on a ThreadPool — O(n^2 / S) total work instead of
/// O(n^2) — then merge the per-shard winners into one candidate pool and
/// run a final lazy-greedy pass over that pool against the *full*
/// population. The merge pass restores the global view the shards lack, so
/// with one shard the result is bit-identical to core::LazyGreedySolver
/// (tests pin this), and with many shards it tracks it closely.
///
/// Shard boundaries come from the existing spatial substrate: either
/// kd-style recursive median splits (balanced regardless of clustering) or
/// mmph::spatial uniform-grid cells packed in row-major cell order — the
/// same grid structure the indexed evaluation path uses, so split and eval
/// share one build (set_shared_index) instead of each deriving their own.

#include <cstddef>
#include <utility>
#include <vector>

#include "mmph/core/solution.hpp"
#include "mmph/core/solver.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/parallel/thread_pool.hpp"

namespace mmph::spatial {
class SpatialIndex;
class UniformGridIndex;
}  // namespace mmph::spatial

namespace mmph::serve {

/// How the population is split into shards.
enum class ShardPolicy {
  kMedianSplit,  ///< kd-tree-style recursive median splits (default).
  kGridCells,    ///< uniform-grid cells packed into contiguous shards.
};

struct ShardedSolverConfig {
  /// Upper bound on shards; 0 selects max(worker count, n / 2048) so
  /// large populations shard even on few workers (per-shard cost is
  /// quadratic, so S shards cut total work ~S-fold regardless of cores).
  std::size_t max_shards = 0;
  /// Shards are never split below this many users.
  std::size_t min_shard_size = 64;
  /// Centers each shard contributes to the merge pool; 0 = same as the
  /// final k.
  std::size_t per_shard_k = 0;
  ShardPolicy policy = ShardPolicy::kMedianSplit;
  /// Cell size for ShardPolicy::kGridCells; 0 = the problem radius.
  double grid_cell_size = 0.0;
};

/// Diagnostics of the last solve() (wall times and sizes per stage).
struct ShardStats {
  std::size_t shards = 0;
  std::size_t candidate_pool = 0;
  double shard_seconds = 0.0;
  double merge_seconds = 0.0;
};

/// Splits [0, points.size()) into spatially coherent, roughly balanced
/// index groups (exposed for tests and the service's shard diagnostics).
/// For ShardPolicy::kGridCells, \p grid (when given and matching the point
/// set and cell size) supplies the cell assignment so the split reuses an
/// index that already exists; otherwise a throwaway grid is built.
/// Populations too high-dimensional for the grid fall back to median
/// splits.
[[nodiscard]] std::vector<std::vector<std::size_t>> shard_indices(
    const geo::PointSet& points, const ShardedSolverConfig& config,
    std::size_t workers, double radius,
    const spatial::UniformGridIndex* grid = nullptr);

/// Lazy greedy restricted to an explicit candidate-center pool, evaluated
/// against the full problem. Mirrors core::LazyGreedySolver (same
/// tie-breaking toward lower pool index; re-picking exhausted candidates
/// is allowed) but the center domain is \p pool instead of the input
/// points. Used for the merge pass and reusable on its own.
///
/// Evaluations run on the blocked kernels with a residual-aware active
/// set when core::kernels::blocked_enabled(); with \p thread_pool the
/// first-round scan of all pool candidates is sharded across its workers
/// (deterministic; see kernels::ParallelEvaluator). Only pass a pool when
/// the caller is not itself running on one of its workers.
/// \p index optionally lends a caller-maintained spatial index over the
/// problem's points (kernels::IndexedActiveSet::try_make validates it and
/// falls back to building or scanning per kernels::index_mode()).
[[nodiscard]] core::Solution lazy_greedy_over_pool(
    const core::Problem& problem, const geo::PointSet& pool, std::size_t k,
    const std::string& solver_name = "pool-lazy",
    par::ThreadPool* thread_pool = nullptr,
    spatial::SpatialIndex* index = nullptr);

class ShardedSolver final : public core::Solver {
 public:
  /// Solves shards on \p pool (which must outlive the solver).
  explicit ShardedSolver(par::ThreadPool& pool,
                         ShardedSolverConfig config = {});

  [[nodiscard]] std::string name() const override { return "sharded-lazy"; }

  [[nodiscard]] core::Solution solve(const core::Problem& problem,
                                     std::size_t k) const override;

  /// Merged candidate pool of the last solve() — the per-shard winners.
  /// The service caches these as swap candidates for incremental re-solve.
  /// Not thread-safe across concurrent solves on the same instance.
  [[nodiscard]] const geo::PointSet& last_candidates() const noexcept {
    return last_candidates_;
  }
  [[nodiscard]] const ShardStats& last_stats() const noexcept {
    return last_stats_;
  }

  /// Lends a caller-maintained spatial index whose rows correspond to the
  /// problem's points (e.g. PlacementService's carried grid). The merge
  /// pass evaluates through it, and when it is a UniformGridIndex matching
  /// the shard cell size, the grid split reuses its cell assignment too.
  /// Pass nullptr to revert to per-solve builds. The index must outlive
  /// solves; whether it is consulted follows kernels::index_mode().
  void set_shared_index(spatial::SpatialIndex* index) noexcept {
    shared_index_ = index;
  }

  /// Dictates the shard partition as explicit contiguous [begin, end) row
  /// ranges over the next solve's problem rows (the region-sharded store
  /// passes its per-shard ranges so each store shard solves as one unit).
  /// The ranges must be ascending and cover [0, n) exactly; empty ranges
  /// (empty store shards) are skipped. An empty vector reverts to the
  /// computed split. Not thread-safe vs concurrent solves.
  void set_row_groups(
      std::vector<std::pair<std::size_t, std::size_t>> groups) noexcept {
    row_groups_ = std::move(groups);
  }

 private:
  par::ThreadPool& pool_;
  ShardedSolverConfig config_;
  spatial::SpatialIndex* shared_index_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> row_groups_;
  mutable geo::PointSet last_candidates_{1};
  mutable ShardStats last_stats_;
};

}  // namespace mmph::serve
