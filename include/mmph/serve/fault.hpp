#pragma once

/// \file fault.hpp
/// \brief Test-only fault-injection seam of the serve stack.
///
/// The serve pipeline has failure paths (queue full, deadline passed,
/// solver throw, allocation failure) that real traffic exercises rarely
/// and non-deterministically. A FaultHook lets a test make them fire on
/// demand: the service and batcher consult the hook at *named fault
/// sites*, and a hook that returns true makes that site fail exactly as
/// the organic failure would — same status, same counters, same promise
/// discipline. Production leaves the hook empty (null std::function), so
/// every site collapses to one cheap bool check.
///
/// The deterministic, seed-driven implementation of the hook lives in
/// mmph::chaos (serve must not depend on it — the dependency points the
/// other way).

#include <functional>
#include <string_view>

namespace mmph::serve {

/// Called at a named fault site; returning true forces that site to fail
/// this invocation. Implementations must be thread-safe: sites fire from
/// producer threads (push) and the consumer thread (pump) concurrently.
using FaultHook = std::function<bool(std::string_view site)>;

// --- fault-site catalog (serve layer) --------------------------------------
// Every name is <layer>.<failure>; the chaos harness keys its schedule and
// its report on these exact strings.

/// RequestBatcher::push treats the queue as full -> kRejected.
inline constexpr std::string_view kFaultQueueFull = "serve.queue_full";
/// RequestBatcher::pop_batch treats the request's deadline as passed ->
/// kTimeout, request dropped from the batch (mutation NOT applied).
inline constexpr std::string_view kFaultDeadlineSkew = "serve.deadline_skew";
/// PlacementService query/evaluate processing throws mid-batch ->
/// kInternalError for that request, rest of the batch unaffected.
inline constexpr std::string_view kFaultSolverThrow = "serve.solver_throw";
/// PlacementService add-users processing throws std::bad_alloc *before*
/// any store mutation -> kInternalError, store untouched.
inline constexpr std::string_view kFaultAllocFail = "serve.alloc_fail";

// --- fault-site catalog (spatial index maintenance) -------------------------
// The carried coverage index is an accelerator, never a source of truth:
// both sites must leave responses and placements bit-identical to a
// fault-free run (the index is dropped/rebuilt; the store and WAL are
// untouched). Chaos tests pin that invariant.

/// The incremental index update mirroring a store mutation throws
/// std::bad_alloc -> the mutation still succeeds; the index is marked
/// dirty and rebuilt at the next solve.
inline constexpr std::string_view kFaultSpatialAllocFail = "spatial.alloc_fail";
/// The carried index is treated as corrupt at solve time (verify() failure
/// stand-in) -> rebuilt from the store snapshot before solving.
inline constexpr std::string_view kFaultSpatialCorrupt = "spatial.corrupt";

// --- fault-site catalog (wal / replication layers) -------------------------
// Consulted by chaos::FaultyFileOps (wal.*) and net::ReplicaAgent
// (replica.*); listed here because fault.hpp is the one site registry.

/// FileOps::write caps the write at one byte (short write; the WAL's
/// write_all loop must finish the record regardless).
inline constexpr std::string_view kFaultWalShortWrite = "wal.short_write";
/// FileOps::write persists roughly half the buffer, then fails -> a torn
/// record at the segment tail; recovery must drop exactly that record.
inline constexpr std::string_view kFaultWalTornRecord = "wal.torn_record";
/// FileOps::fsync fails with EIO -> the writer poisons itself; already
/// written bytes stay valid for replay.
inline constexpr std::string_view kFaultWalFsyncFail = "wal.fsync_fail";
/// ReplicaAgent delays applying a received stream frame, inflating the
/// observable mmph_repl_lag_ops gauge.
inline constexpr std::string_view kFaultReplicaLag = "replica.lag";

// --- fault-site catalog (ls polish tier) ------------------------------------
// "ls.eval_throw" — a local-search delta evaluation throws mid-polish. The
// constant lives in mmph/ls/local_search.hpp (ls::kFaultLsEvalThrow): ls
// sits below serve and consults the hook itself; PlacementService forwards
// its fault_hook into ls::polish. Effect: the solve keeps the unpolished
// seed placement (responses stay valid; LsStats::aborted is set).

// --- fault-site catalog (region-sharded store) ------------------------------
// Fired by PlacementService when the store runs with --store-shards > 1.

/// Routing a batch of mutations to store shards throws std::bad_alloc
/// *before* any WAL append or store mutation -> kInternalError for the
/// batch's mutations, store and log untouched.
inline constexpr std::string_view kFaultStoreShardAllocFail =
    "store.shard.alloc_fail";
/// The cross-shard group-commit barrier (ShardedWal::commit_all) fails at
/// one shard's fsync -> every shard's writer is poisoned (poison-all
/// discipline: a half-committed barrier must not ack), mutations answer
/// kInternalError.
inline constexpr std::string_view kFaultWalBarrierFsyncFail =
    "wal.barrier.fsync_fail";

}  // namespace mmph::serve
