#pragma once

/// \file request.hpp
/// \brief Request/response types of the placement service's batched API.
///
/// Clients talk to the service in batches of four request kinds: add (or
/// update) users, remove users, query the current placement, and evaluate
/// an arbitrary center set against the live population. Every request
/// carries a deadline; a request still queued when its deadline passes is
/// answered kTimeout instead of being processed (mutations included —
/// "too late" data must not silently mutate the store). Replies travel
/// over per-request futures so a caller can fan out many requests and
/// collect answers as the worker drains the queue.

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "mmph/core/solution.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/serve/instance_store.hpp"

namespace mmph::serve {

enum class RequestType {
  kAddUsers,        ///< upsert `users` into the store
  kRemoveUsers,     ///< remove `ids` from the store
  kQueryPlacement,  ///< reply with the post-batch placement
  kEvaluate,        ///< reply with f(`centers`) on the live population
};

enum class ResponseStatus {
  kOk,
  kTimeout,        ///< deadline passed while queued
  kRejected,       ///< bounded queue was full at submit time
  kShutdown,       ///< service stopped before the request was processed
  kBadRequest,     ///< malformed payload (missing/empty/mismatched centers)
  kInternalError,  ///< solver threw while processing the batch
};

/// Human-readable enum names for logs and test failure messages.
[[nodiscard]] const char* to_string(RequestType type) noexcept;
[[nodiscard]] const char* to_string(ResponseStatus status) noexcept;

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  /// Store epoch after the request's batch was applied.
  std::uint64_t epoch = 0;
  /// Placement objective (kQueryPlacement) or evaluated f(C) (kEvaluate).
  double objective = 0.0;
  /// Placement for kQueryPlacement: solver name, centers, and reward
  /// summary. The per-point residual vector is deliberately left empty —
  /// it is O(population) and the batched callers never read it; use the
  /// synchronous placement() API when the residual is needed.
  std::optional<core::Solution> solution;
};

/// Move-only (owns the reply promise).
struct Request {
  RequestType type = RequestType::kQueryPlacement;
  std::vector<UserRecord> users;                 ///< kAddUsers payload
  std::vector<std::uint64_t> ids;                ///< kRemoveUsers payload
  std::optional<geo::PointSet> centers;          ///< kEvaluate payload
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Event-loop affinity hint stamped by the network front end (the epoll
  /// loop index that decoded the request). With a region-sharded store
  /// the service compares hint % store_shards against the shard the
  /// mutation actually routes to and publishes hit/miss counters — the
  /// observability groundwork for full loop->shard ownership. kNoShardHint
  /// (direct API, tests) opts out of the accounting.
  static constexpr std::uint32_t kNoShardHint = 0xffffffffu;
  std::uint32_t shard_hint = kNoShardHint;
  std::promise<Response> reply;

  [[nodiscard]] static Request add_users(std::vector<UserRecord> users);
  [[nodiscard]] static Request remove_users(std::vector<std::uint64_t> ids);
  [[nodiscard]] static Request query_placement();
  [[nodiscard]] static Request evaluate(geo::PointSet centers);
};

}  // namespace mmph::serve
