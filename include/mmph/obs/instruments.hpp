#pragma once

/// \file instruments.hpp
/// \brief Lock-free observability primitives: Counter, Gauge, Histogram.
///
/// The record path of every instrument is mutex- and allocation-free —
/// plain relaxed atomics — so instrumentation can sit on the hottest
/// serving paths (the socket event loop, the batch worker) without adding
/// contention or jitter. Histograms use a fixed log-spaced bucket layout
/// (no sample retention: observing is one atomic increment plus one
/// atomic add), and quantiles are computed exactly from the cumulative
/// bucket counts — deterministic, never biased by dropping samples, at
/// the cost of bucket-width resolution (consecutive bounds differ by
/// sqrt(2), so any quantile is exact to within ~41% relative error and
/// in practice far less after in-bucket interpolation).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mmph::obs {

/// Adds \p delta to an atomic double with a CAS loop (lock-free on every
/// mainstream platform; std::atomic<double>::fetch_add is not guaranteed
/// to exist everywhere C++20 claims it does).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, open connections).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { atomic_add(value_, delta); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed bucket layout shared by every histogram: kBucketCount - 1 finite
/// upper bounds growing by a factor of sqrt(2) from kFirstBound, plus one
/// overflow bucket. With kFirstBound = 1 microsecond the finite range
/// tops out around 2147 seconds — wide enough for any latency this
/// service can produce while keeping relative resolution under 2x.
inline constexpr std::size_t kBucketCount = 64;
inline constexpr double kFirstBound = 1e-6;
inline constexpr double kBucketGrowth = 1.4142135623730951;  // sqrt(2)

/// Upper bound of bucket \p i (i < kBucketCount - 1); the last bucket is
/// unbounded (+Inf in the exposition).
[[nodiscard]] constexpr std::array<double, kBucketCount - 1>
bucket_bounds() noexcept {
  std::array<double, kBucketCount - 1> bounds{};
  double bound = kFirstBound;
  for (double& b : bounds) {
    b = bound;
    bound *= kBucketGrowth;
  }
  return bounds;
}

inline constexpr std::array<double, kBucketCount - 1> kBucketBounds =
    bucket_bounds();

/// Bucket index of \p value: the first bucket whose upper bound is
/// >= value, or the overflow bucket. Non-finite values land in overflow.
[[nodiscard]] std::size_t bucket_index(double value) noexcept;

/// Consistent point-in-time copy of a histogram, with the quantile math.
/// Also constructible from parsed exposition text, so a remote scrape can
/// recompute exactly the quantiles the server reports.
struct HistogramSnapshot {
  std::array<std::uint64_t, kBucketCount> buckets{};  ///< per-bucket counts
  double sum = 0.0;
  std::uint64_t count = 0;

  /// Exact quantile from cumulative counts: finds the bucket containing
  /// rank q * count and interpolates linearly inside it. Returns 0 when
  /// empty; the overflow bucket answers with the largest finite bound.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-bucket atomic histogram. observe() is wait-free on x86 (two
/// relaxed atomic RMWs), and never allocates or locks.
class Histogram {
 public:
  void observe(double value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    // Non-finite observations are counted (the spike is visible) but kept
    // out of the sum so one NaN cannot poison the mean forever.
    if (value == value && value <= 1e308 && value >= -1e308) {
      atomic_add(sum_, value);
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Convenience: snapshot().quantile(q).
  [[nodiscard]] double quantile(double q) const noexcept {
    return snapshot().quantile(q);
  }

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<double> sum_{0.0};
};

}  // namespace mmph::obs
