#pragma once

/// \file registry.hpp
/// \brief Named instrument registry with Prometheus-style text exposition.
///
/// The registry mutex guards only registration and exposition — instrument
/// record paths stay pure atomics. Instruments live in deques so the
/// pointers handed out by counter()/gauge()/histogram() stay valid for the
/// registry's lifetime regardless of later registrations.

#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mmph/obs/instruments.hpp"

namespace mmph::obs {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument registered under \p name, creating it on first
  /// use. Metric names should match [a-zA-Z_][a-zA-Z0-9_]* (Prometheus
  /// convention); registering the same name as two different instrument
  /// kinds throws mmph::InvalidArgument.
  ///
  /// Counters and gauges may carry an inline label set in the name, e.g.
  /// `mmph_net_loop_requests_total{loop="0"}`: the sample line is emitted
  /// verbatim while the HELP/TYPE header uses the base name (before `{`)
  /// and is written once per run of same-base registrations, so N labeled
  /// series exposit as one metric family. Histograms synthesize their own
  /// `_bucket{le=...}` series and therefore reject labeled names.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help = {});

  /// Writes all instruments in registration order as Prometheus text
  /// exposition format: "# TYPE" lines, `_bucket{le="..."}` cumulative
  /// series plus `_sum` / `_count` for histograms.
  void write_exposition(std::ostream& out) const;

  /// Same as write_exposition, into a string.
  [[nodiscard]] std::string exposition_text() const;

  /// Zeroes every registered instrument (tests and bench warmup).
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;  // registration order, for exposition
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace mmph::obs
