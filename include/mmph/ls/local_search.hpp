#pragma once

/// \file local_search.hpp
/// \brief Shift/swap local search with spatial-index delta evaluation.
///
/// The polish tier of the solver stack: take any seed solution (greedy,
/// lazy greedy, sharded merge, the previous epoch's placement) and improve
/// it by 1-swap moves until a local optimum. Two move kinds per sweep:
///
///   shift  — replace center c_j by a candidate inside c_j's coverage ball
///            (a radius query on a candidate index: the cheap, usually
///            sufficient repair move);
///   swap   — replace c_j by any candidate (the full neighborhood,
///            scanned when no shift improves).
///
/// Acceptance is strict improvement (delta > min_gain) in a deterministic
/// first-improvement order (centers ascending, candidates ascending), so
/// the same seed solution always polishes to the same centers. An optional
/// tabu list switches move selection to best-improvement among non-tabu
/// candidates, with exact ties broken by a seeded PCG64 stream — still
/// monotone (worsening moves are never taken), still deterministic for a
/// fixed seed.
///
/// The cost model is the point: a swap's objective delta only involves
/// points inside ball(old center) ∪ ball(new candidate) — everywhere else
/// u_i is exactly 0 for both — so DeltaEvaluator answers it with two
/// spatial radius queries and an O(|ball|) merge instead of the O(n) scan
/// core::SwapEvaluator pays (let alone the O(n·k) rescan of a from-scratch
/// objective_value). Deltas accumulate term by term in ascending point-id
/// order, so two runs of the same polish are bit-identical.
///
/// Guarantee the test oracles lean on: polish() re-derives the final
/// per-round accounting exactly (core::apply_center) and returns the seed
/// verbatim whenever the polished total is not >= the seed's total, so
/// `f(ls) >= f(seed)` holds machine-checkably, never just up to drift.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/core/solver.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/spatial/spatial_index.hpp"

namespace mmph::ls {

/// Test-only fault seam, structurally identical to serve::FaultHook (ls
/// sits below serve, so the alias is re-declared rather than included).
using FaultHook = std::function<bool(std::string_view site)>;

/// A delta evaluation throws mid-polish -> polish() returns the seed
/// solution verbatim and marks LsStats::aborted. Registered here (not in
/// serve/fault.hpp) because the ls layer itself consults the hook; the
/// serve catalog cross-references this name.
inline constexpr std::string_view kFaultLsEvalThrow = "ls.eval_throw";

/// Tunables of one polish run.
struct LsConfig {
  /// Full improvement passes before giving up on convergence.
  std::size_t max_sweeps = 8;
  /// Strict-improvement threshold; rejects float-noise "improvements".
  double min_gain = 1e-9;
  /// 0 = plain first-improvement. > 0 = best-improvement with a tabu list:
  /// a candidate swapped out of the solution may not re-enter for this
  /// many committed moves (diversifies the improvement path; worsening
  /// moves are still never accepted).
  std::size_t tabu_tenure = 0;
  /// PCG64 stream seed for tabu-mode tie-breaking (exact delta ties).
  std::uint64_t seed = 2011;
  /// Enable the shift pass (radius-local candidates first). Off = pure
  /// swap sweeps, the classic neighborhood.
  bool shift_moves = true;
  /// Test-only fault seam; empty in production (one cheap bool check).
  FaultHook fault_hook{};
};

/// Counters of one polish run (feeds the mmph_ls_* obs counters).
struct LsStats {
  std::uint64_t evals = 0;        ///< delta evaluations performed
  std::uint64_t moves = 0;        ///< committed moves (shift + swap)
  std::uint64_t shift_moves = 0;  ///< committed moves found by the shift pass
  std::uint64_t swap_moves = 0;   ///< committed moves found by the swap pass
  std::size_t sweeps = 0;         ///< improvement passes executed
  bool improved = false;   ///< polished total strictly beat the seed total
  bool converged = false;  ///< local optimum reached before max_sweeps
  bool aborted = false;    ///< an eval threw -> seed returned verbatim
};

/// Incremental objective evaluation for 1-swap neighborhoods, delta-style:
/// like core::SwapEvaluator it caches units_[j][i] = u_i(c_j) and the
/// per-point totals, but it answers "what does replacing c_j by c' change"
/// by radius queries on a spatial index over the population, touching only
/// the points inside the two coverage balls. The cached unit rows are
/// likewise only materialized inside each center's ball (exact zeros
/// elsewhere), so construction is O(k · ball), not O(k · n).
class DeltaEvaluator {
 public:
  /// Caches coverage of \p centers (copied) against \p problem. When
  /// \p borrowed_index is non-null it is used for the radius queries
  /// (unmask_all() is called first — a prior indexed solve may have left
  /// masks set); it must index exactly problem.points() at
  /// problem.radius() and outlive the evaluator. Null builds an owned
  /// index via spatial::make_index.
  DeltaEvaluator(const core::Problem& problem, const geo::PointSet& centers,
                 spatial::SpatialIndex* borrowed_index = nullptr);

  [[nodiscard]] const geo::PointSet& centers() const noexcept {
    return centers_;
  }

  /// f(C) for the current center set, maintained by accumulated deltas.
  [[nodiscard]] double current_value() const noexcept { return value_; }

  /// f(C with centers[j] := candidate) − f(C), without changing state.
  /// O(|ball(centers[j])| + |ball(candidate)|).
  [[nodiscard]] double delta_for_swap(std::size_t j,
                                      geo::ConstVec candidate) const;

  /// Applies the swap and updates the caches. Same cost as a delta.
  void commit_swap(std::size_t j, geo::ConstVec candidate);

  /// Full O(n) recompute of f(C) from the cached totals (test hook for
  /// pinning the accumulated value_ against drift).
  [[nodiscard]] double exact_value() const;

 private:
  /// Ids whose coverage can change under (j, candidate): the merged
  /// ascending union of the two balls, written to touched_.
  void gather_touched(std::size_t j, geo::ConstVec candidate) const;

  const core::Problem& problem_;
  geo::PointSet centers_;
  spatial::SpatialIndex* index_;  ///< borrowed, or owned_.get()
  std::unique_ptr<spatial::SpatialIndex> owned_;
  std::vector<double> units_;   ///< units_[j * n + i] = u_i(c_j)
  std::vector<double> totals_;  ///< sum_j u_i(c_j), uncapped
  double value_ = 0.0;

  /// ball(centers_[j]) is re-used across every candidate tried against
  /// slot j, so it is fetched once per slot and invalidated on commit.
  mutable std::vector<std::size_t> ball_old_;
  mutable std::size_t ball_old_slot_;
  mutable std::vector<std::size_t> ball_new_;
  mutable std::vector<std::size_t> touched_;
};

/// Polishes \p seed by shift/swap local search over \p candidates (the
/// center domain; must be nonempty and match the problem's dimension).
/// Returns a solution with exact per-round accounting whose total_reward
/// is >= seed.total_reward — the seed itself when no improving move
/// survives, or when an evaluation throws (LsStats::aborted). \p stats,
/// when non-null, receives the run's counters. \p population_index is the
/// optional borrowed index of DeltaEvaluator.
[[nodiscard]] core::Solution polish(
    const core::Problem& problem, const core::Solution& seed,
    const geo::PointSet& candidates, const LsConfig& config = {},
    LsStats* stats = nullptr,
    spatial::SpatialIndex* population_index = nullptr);

/// A core::Solver that runs \p base and polishes its output. With an empty
/// \p candidates set the center domain defaults to the instance's own
/// points (the Algorithm 2/3 domain), resolved per solve.
class LocalSearchSolver final : public core::Solver {
 public:
  LocalSearchSolver(std::shared_ptr<const core::Solver> base,
                    geo::PointSet candidates, LsConfig config = {});

  /// Convenience: candidates default to the instance points.
  explicit LocalSearchSolver(std::shared_ptr<const core::Solver> base,
                             LsConfig config = {});

  /// "ls(<base>)" — distinct from core's legacy "greedy2+ls".
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] core::Solution solve(const core::Problem& problem,
                                     std::size_t k) const override;

  /// Counters of the last solve()'s polish phase.
  [[nodiscard]] const LsStats& last_stats() const noexcept { return stats_; }

 private:
  std::shared_ptr<const core::Solver> base_;
  geo::PointSet candidates_;
  LsConfig config_;
  mutable LsStats stats_;
};

}  // namespace mmph::ls
