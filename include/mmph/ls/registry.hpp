#pragma once

/// \file registry.hpp
/// \brief Name-based solver construction including the ls polish tier.
///
/// core::make_solver cannot name the ls solvers (core sits below ls in the
/// module layering), so CLIs resolve names through this wrapper: it owns
/// the "ls"-family names and delegates everything else to core.

#include <memory>
#include <string>
#include <vector>

#include "mmph/core/registry.hpp"
#include "mmph/ls/local_search.hpp"

namespace mmph::ls {

/// core::solver_names() plus the ls tier:
///   "ls"       lazy greedy seed polished over the instance points
///   "ls-tabu"  same seed, tabu best-improvement move selection
[[nodiscard]] std::vector<std::string> solver_names();

/// Builds the named solver; unknown ls names fall through to
/// core::make_solver (which throws InvalidArgument for truly unknown
/// names). \p ls_config tunes the polish phase of the ls-family names.
[[nodiscard]] std::unique_ptr<core::Solver> make_solver(
    const std::string& name, const core::Problem& problem,
    const core::SolverConfig& config = {}, const LsConfig& ls_config = {});

}  // namespace mmph::ls
