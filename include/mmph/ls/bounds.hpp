#pragma once

/// \file bounds.hpp
/// \brief Certified per-instance upper bounds on the discrete optimum.
///
/// The paper's Theorems 1/2 bound solution quality *relatively*; the test
/// suite wants an *absolute* ceiling it can pin every solver under at
/// sizes where ExhaustiveSolver cannot run. Both bounds here certify
///
///     OPT_k(candidates) <= bound
///
/// where OPT_k(candidates) is the best value achievable by k centers drawn
/// from the given candidate set (the domain the discrete solvers — greedy2,
/// lazy, sharded, ls, exhaustive-points — optimize over).
///
///   ratio bound       greedy_value / (1 - (1 - 1/k)^k)
///     Valid because the reference solution is standard greedy over the
///     candidate ground set, and greedy on a monotone submodular objective
///     achieves at least 1 - (1 - 1/k)^k of that ground set's optimum
///     (paper Theorem 1; the k -> inf limit is the familiar 1 - 1/e,
///     reported separately as submodular_bound).
///
///   marginal-sum bound  f(S) + sum of the k largest marginal gains
///     Valid for ANY solution S by submodularity:
///       f(OPT) <= f(S) + sum_{c in OPT} [f(S + c) - f(S)]
///     and each of OPT's k marginals is at most one of the k largest over
///     the whole candidate set. The marginals are exact: with y_S the
///     residual after applying S, coverage_reward(c, y_S) equals
///     f(S + c) - f(S) term for term (the residual identity
///     y_i = 1 - min(total_i, 1) the round solvers maintain).
///
/// The two bounds complement each other: the ratio bound is tight when
/// greedy is near its worst case; the marginal bound collapses to ~f(S)
/// when S is already near-saturating (all remaining marginals small).
/// best() also folds in the trivial ceiling sum_i w_i.

#include <cstddef>

#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/parallel/thread_pool.hpp"

namespace mmph::ls {

/// The certified ceilings for one instance (all bound OPT_k(candidates)).
struct UpperBounds {
  double reference_value = 0.0;   ///< f(S) of the greedy reference
  double ratio_bound = 0.0;       ///< reference / (1 - (1 - 1/k)^k)
  double submodular_bound = 0.0;  ///< reference / (1 - 1/e), the weaker limit
  double marginal_bound = 0.0;    ///< reference + sum of top-k marginals
  double weight_bound = 0.0;      ///< sum_i w_i, the trivial ceiling

  /// The tightest certified ceiling.
  [[nodiscard]] double best() const noexcept;
};

/// Computes both bounds for \p problem at cardinality \p k.
///
/// \p greedy_reference MUST be the solution of standard greedy (greedy2 /
/// lazy greedy / single-shard sharded — all bitwise-identical here) run for
/// k rounds over the ground set \p candidates; the ratio bound's
/// certificate depends on that, the marginal bound holds for any S.
/// \p pool shards the candidate marginal scan (nullptr = serial).
[[nodiscard]] UpperBounds certified_upper_bounds(
    const core::Problem& problem, std::size_t k,
    const core::Solution& greedy_reference, const geo::PointSet& candidates,
    par::ThreadPool* pool = nullptr);

}  // namespace mmph::ls
