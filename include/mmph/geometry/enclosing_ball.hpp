#pragma once

/// \file enclosing_ball.hpp
/// \brief Smallest enclosing Euclidean ball (Welzl's algorithm).
///
/// The complex local greedy algorithm (paper Algorithm 4) recenters a disk
/// on the smallest ball covering the currently-claimed points plus one new
/// point; the paper cites Welzl [19]. This implementation is the classic
/// randomized move-to-front recursion, generalized to any dimension: the
/// support set holds at most dim+1 points whose circumball is found by a
/// small Gaussian solve.
///
/// Expected O(n) time for fixed dimension; exact up to floating-point
/// round-off (tests compare against a brute-force oracle).

#include <cstdint>
#include <span>

#include "mmph/geometry/ball.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::geo {

/// Smallest Euclidean ball enclosing all points of \p ps.
/// Returns an empty ball for an empty set. \p seed randomizes the
/// point order (determinism: same seed, same result).
[[nodiscard]] Ball smallest_enclosing_ball_l2(const PointSet& ps,
                                              std::uint64_t seed = 0x9E3779B9u);

/// Smallest Euclidean ball enclosing the subset \p idx of \p ps.
[[nodiscard]] Ball smallest_enclosing_ball_l2(
    const PointSet& ps, std::span<const std::size_t> idx,
    std::uint64_t seed = 0x9E3779B9u);

/// Exact circumball of at most dim+1 affinely independent points; used by
/// Welzl's recursion and exposed for testing. Points are rows of \p support
/// (m rows, each of length dim). Degenerate (affinely dependent) inputs fall
/// back to the circumball of a maximal independent prefix.
[[nodiscard]] Ball circumball(const PointSet& support);

/// (1+eps)-approximate smallest enclosing ball under an arbitrary metric,
/// via the Badoiu–Clarkson "move toward the farthest point" iteration.
/// Provided for general p-norms where no exact combinatorial solver exists.
[[nodiscard]] Ball approx_enclosing_ball(const PointSet& ps,
                                         const Metric& metric,
                                         std::size_t iterations = 256);

}  // namespace mmph::geo
