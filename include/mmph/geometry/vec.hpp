#pragma once

/// \file vec.hpp
/// \brief Span-based dense vector helpers shared by the geometry kernels.
///
/// mmph stores points in structure-of-arrays form (see PointSet); individual
/// points are viewed as std::span<const double>. These free functions supply
/// the handful of BLAS-1 style operations the solvers need without pulling in
/// a linear-algebra dependency.

#include <cmath>
#include <span>
#include <vector>

#include "mmph/support/assert.hpp"

namespace mmph::geo {

/// Read-only view of one point.
using ConstVec = std::span<const double>;
/// Mutable view of one point.
using MutVec = std::span<double>;

/// Dot product <a, b>. Both spans must have equal length.
[[nodiscard]] inline double dot(ConstVec a, ConstVec b) {
  MMPH_ASSERT(a.size() == b.size(), "dot: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Squared Euclidean norm |a|^2.
[[nodiscard]] inline double norm2_sq(ConstVec a) { return dot(a, a); }

/// Squared Euclidean distance |a - b|^2.
[[nodiscard]] inline double dist2_sq(ConstVec a, ConstVec b) {
  MMPH_ASSERT(a.size() == b.size(), "dist2_sq: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// dst = src (element-wise copy).
inline void assign(MutVec dst, ConstVec src) {
  MMPH_ASSERT(dst.size() == src.size(), "assign: dimension mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
}

/// dst += alpha * x.
inline void add_scaled(MutVec dst, double alpha, ConstVec x) {
  MMPH_ASSERT(dst.size() == x.size(), "add_scaled: dimension mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += alpha * x[i];
}

/// dst = a - b.
inline void sub(MutVec dst, ConstVec a, ConstVec b) {
  MMPH_ASSERT(dst.size() == a.size() && dst.size() == b.size(),
              "sub: dimension mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = a[i] - b[i];
}

/// dst = 0.
inline void zero(MutVec dst) {
  for (double& v : dst) v = 0.0;
}

/// Returns a copy of \p v as an owning std::vector.
[[nodiscard]] inline std::vector<double> to_vector(ConstVec v) {
  return std::vector<double>(v.begin(), v.end());
}

/// True when every component of a and b differs by at most \p tol.
[[nodiscard]] inline bool approx_equal(ConstVec a, ConstVec b,
                                       double tol = 1e-12) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace mmph::geo
