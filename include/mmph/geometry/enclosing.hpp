#pragma once

/// \file enclosing.hpp
/// \brief Metric-dispatched smallest enclosing ball ("new-center" kernel).
///
/// Algorithm 4 (complex local greedy) asks, metric-generically, for the
/// center of the smallest ball covering a point set. This front-end picks
/// the right solver for the metric:
///   - L2: exact Welzl ball (any dimension).
///   - Linf: exact bounding-box midpoint.
///   - L1: the paper's projection heuristic by default; exact rotated-box
///     solver when the dimension is 2 and exact mode is requested.
///   - general Lp: Badoiu-Clarkson approximation.

#include "mmph/geometry/ball.hpp"
#include "mmph/geometry/enclosing_ball.hpp"
#include "mmph/geometry/enclosing_l1.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::geo {

/// How 1-norm enclosing centers are computed.
enum class L1CenterRule {
  kPaperProjection,  ///< per-dimension (min+max)/2, as in the paper.
  kExactIfPossible,  ///< exact rotated-box solver in 2-D, projection else.
};

/// Smallest (or paper-faithful heuristic) enclosing ball of \p ps under
/// \p metric. Returns an empty ball for an empty set.
[[nodiscard]] Ball smallest_enclosing(
    const PointSet& ps, const Metric& metric,
    L1CenterRule l1_rule = L1CenterRule::kPaperProjection);

}  // namespace mmph::geo
