#pragma once

/// \file norms.hpp
/// \brief p-norm distance metrics ("interest distance" in the paper).
///
/// The paper measures interest distance in a general p-norm (Section III-B)
/// and evaluates the 1-norm and 2-norm. Metric wraps the norm choice as a
/// small value type so solvers stay norm-agnostic; the common cases (1, 2,
/// infinity) are dispatched without calling pow().

#include <cmath>
#include <limits>
#include <string>

#include "mmph/geometry/vec.hpp"

namespace mmph::geo {

/// Which p-norm a Metric computes.
enum class Norm {
  kL1,    ///< Manhattan / taxicab distance.
  kL2,    ///< Euclidean distance.
  kLinf,  ///< Chebyshev distance.
  kLp,    ///< General p-norm, p from Metric::p().
};

/// Parses "l1" / "l2" / "linf" (case-insensitive); throws ParseError.
[[nodiscard]] Norm parse_norm(const std::string& text);

/// Human-readable name ("L1", "L2", "Linf", "Lp").
[[nodiscard]] const char* norm_name(Norm n);

/// A p-norm distance metric over R^m.
///
/// Value type: cheap to copy, no allocation. The distance kernels are the
/// innermost loops of every solver, so the common norms avoid pow().
class Metric {
 public:
  /// Euclidean metric by default.
  constexpr Metric() noexcept : norm_(Norm::kL2), p_(2.0) {}

  /// Named-norm constructor. \p n must not be Norm::kLp (use the
  /// double overload for general p).
  explicit Metric(Norm n);

  /// General p-norm with p >= 1. p == 1, 2 or infinity is canonicalized
  /// to the corresponding named norm.
  explicit Metric(double p);

  [[nodiscard]] constexpr Norm norm() const noexcept { return norm_; }
  [[nodiscard]] constexpr double p() const noexcept { return p_; }

  /// d(a, b) under this norm.
  [[nodiscard]] double distance(ConstVec a, ConstVec b) const;

  /// ||v|| under this norm.
  [[nodiscard]] double length(ConstVec v) const;

  /// "L1" / "L2" / "Linf" / "Lp(p=...)".
  [[nodiscard]] std::string name() const;

  friend bool operator==(const Metric& a, const Metric& b) noexcept {
    return a.norm_ == b.norm_ && a.p_ == b.p_;
  }

 private:
  Norm norm_;
  double p_;
};

/// Convenience factories mirroring the paper's notation.
[[nodiscard]] inline Metric l1_metric() { return Metric(Norm::kL1); }
[[nodiscard]] inline Metric l2_metric() { return Metric(Norm::kL2); }
[[nodiscard]] inline Metric linf_metric() { return Metric(Norm::kLinf); }

/// Relative margin for L2 squared-distance early-outs: a point may be
/// rejected without a sqrt only when d^2 > r^2 * kSquaredSkipMargin, which
/// guarantees d > r by more than the rounding error of either comparison.
/// Points inside the margin must fall through to the exact sqrt test, so
/// guarded fast paths keep exactly the same points as the plain kernels.
inline constexpr double kSquaredSkipMargin = 1.0 + 1e-9;

/// Stand-alone distance kernels (used directly in hot loops).
[[nodiscard]] double l1_distance(ConstVec a, ConstVec b);
[[nodiscard]] double l2_distance(ConstVec a, ConstVec b);
[[nodiscard]] double linf_distance(ConstVec a, ConstVec b);
[[nodiscard]] double lp_distance(ConstVec a, ConstVec b, double p);

}  // namespace mmph::geo
