#pragma once

/// \file ball.hpp
/// \brief Metric ball value type used by the enclosing-shape solvers.

#include <vector>

#include "mmph/geometry/norms.hpp"

namespace mmph::geo {

/// A closed ball { x : d(center, x) <= radius } under some metric.
///
/// The metric is *not* stored; the solver that produced the ball defines it.
/// An empty ball is represented by radius < 0 (center may be empty too).
struct Ball {
  std::vector<double> center;
  double radius = -1.0;

  [[nodiscard]] bool is_empty() const noexcept { return radius < 0.0; }

  /// True when \p p is inside the ball under \p metric, with slack \p tol
  /// to absorb floating-point noise from the circumball solves.
  [[nodiscard]] bool contains(ConstVec p, const Metric& metric,
                              double tol = 1e-9) const {
    if (is_empty()) return false;
    return metric.distance(center, p) <= radius + tol;
  }
};

}  // namespace mmph::geo
