#pragma once

/// \file cell_grid.hpp
/// \brief Uniform cell-list spatial index over a PointSet.
///
/// The reward kernels scan all n points per candidate center; for the
/// paper's n <= 160 that is fine, but the library also serves larger
/// deployments (see perf_spatial_index). A CellGrid buckets points into
/// cubes of side `cell_size`; a ball query visits only the cells that
/// intersect the ball's axis-aligned bounding box. Because the L-infinity
/// ball contains every p-norm ball of the same radius, one box traversal
/// serves every metric — callers do the exact metric test per point.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "mmph/geometry/norms.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::geo {

class CellGrid {
 public:
  /// Builds the index. \p cell_size must be positive; a good default is
  /// the query radius you expect (one ball then touches at most 3^dim
  /// cells). The referenced PointSet must outlive the index.
  CellGrid(const PointSet& points, double cell_size);

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cell_of_point_.empty() ? 0 : occupied_cells_;
  }
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }

  /// Calls fn(i) for every point i whose cell intersects the axis-aligned
  /// box of half-width \p radius around \p center. Superset of any p-norm
  /// ball of that radius: callers must apply the exact distance test.
  void for_each_in_box(ConstVec center, double radius,
                       const std::function<void(std::size_t)>& fn) const;

  /// Calls fn(span<const size_t>) once per intersecting cell with that
  /// cell's contiguous CSR slice of point indices — the zero-overhead form
  /// of for_each_in_box that feeds whole cell ranges to the block reward
  /// kernels. Cells are visited in the same row-major odometer order, and
  /// indices within a cell keep their bucketed order, so per-point visit
  /// order is identical to for_each_in_box.
  template <typename Fn>
  void for_each_cell_span(ConstVec center, double radius, Fn&& fn) const {
    MMPH_REQUIRE(center.size() == points_.dim(),
                 "CellGrid: query dimension mismatch");
    MMPH_REQUIRE(radius >= 0.0, "CellGrid: negative query radius");
    const std::size_t dim = points_.dim();
    std::vector<std::size_t> lo(dim), hi(dim), cur(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = cell_coord(center[d] - radius, d);
      hi[d] = cell_coord(center[d] + radius, d);
      cur[d] = lo[d];
    }
    // Odometer over the cell box.
    for (;;) {
      const std::size_t cell = flatten(cur);
      const std::size_t begin = cell_start_[cell];
      const std::size_t count = cell_start_[cell + 1] - begin;
      if (count > 0) {
        fn(std::span<const std::size_t>(cell_items_.data() + begin, count));
      }
      bool advanced = false;
      for (std::size_t d = dim; d-- > 0;) {
        if (++cur[d] <= hi[d]) {
          advanced = true;
          break;
        }
        cur[d] = lo[d];
      }
      if (!advanced) return;
    }
  }

  /// Indices of points within \p radius of \p center under \p metric
  /// (exact; uses for_each_in_box then filters).
  [[nodiscard]] std::vector<std::size_t> query_ball(ConstVec center,
                                                    double radius,
                                                    const Metric& metric) const;

  /// Flattened id of the cell containing point \p i. Ids are stable for
  /// the index's lifetime and ordered row-major over the cell box, so
  /// sorting points by cell id groups spatial neighbors (the serving
  /// layer's grid sharding relies on this).
  [[nodiscard]] std::size_t cell_of_point(std::size_t i) const {
    MMPH_ASSERT(i < cell_of_point_.size(), "CellGrid: index out of range");
    return cell_of_point_[i];
  }

 private:
  [[nodiscard]] std::size_t cell_coord(double v, std::size_t d) const;
  [[nodiscard]] std::size_t flatten(std::span<const std::size_t> coords) const;

  const PointSet& points_;
  double cell_size_;
  Box box_;
  std::vector<std::size_t> dims_;        // cells per dimension
  std::vector<std::size_t> cell_start_;  // CSR offsets, size = #cells + 1
  std::vector<std::size_t> cell_items_;  // point indices, bucketed
  std::vector<std::size_t> cell_of_point_;
  std::size_t occupied_cells_ = 0;
};

}  // namespace mmph::geo
