#pragma once

/// \file point_set.hpp
/// \brief Structure-of-arrays container for n points in R^m.
///
/// Points are stored contiguously (row-major, one row per point) so the
/// reward kernels stream over them cache-friendlily; a point is viewed as a
/// std::span rather than copied.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::geo {

/// Axis-aligned bounding box (lo/hi per dimension).
struct Box {
  std::vector<double> lo;
  std::vector<double> hi;

  [[nodiscard]] std::size_t dim() const noexcept { return lo.size(); }

  /// Per-dimension midpoint.
  [[nodiscard]] std::vector<double> center() const;

  /// True when \p p lies inside the closed box.
  [[nodiscard]] bool contains(ConstVec p, double tol = 0.0) const;
};

/// A dense, fixed-dimension set of points.
class PointSet {
 public:
  /// Empty set of points in R^dim; dim must be >= 1.
  explicit PointSet(std::size_t dim);

  /// Builds from row data: coords.size() must be a multiple of dim.
  PointSet(std::size_t dim, std::vector<double> coords);

  /// Convenience: builds a 2-D/3-D/... set from an initializer list of rows.
  /// All rows must have the same nonzero length.
  static PointSet from_rows(
      std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return coords_.size() / dim_;
  }
  [[nodiscard]] bool empty() const noexcept { return coords_.empty(); }

  void reserve(std::size_t n) { coords_.reserve(n * dim_); }

  /// Appends a point; p.size() must equal dim().
  void push_back(ConstVec p);

  /// Read-only view of point i.
  [[nodiscard]] ConstVec operator[](std::size_t i) const {
    MMPH_ASSERT(i < size(), "PointSet: index out of range");
    return ConstVec(coords_.data() + i * dim_, dim_);
  }

  /// Mutable view of point i.
  [[nodiscard]] MutVec mutable_point(std::size_t i) {
    MMPH_ASSERT(i < size(), "PointSet: index out of range");
    return MutVec(coords_.data() + i * dim_, dim_);
  }

  /// Raw row-major coordinate block (size() * dim() doubles).
  [[nodiscard]] std::span<const double> raw() const noexcept {
    return coords_;
  }

  /// Tight axis-aligned bounding box; requires a nonempty set.
  [[nodiscard]] Box bounding_box() const;

  /// Arithmetic mean of the points; requires a nonempty set.
  [[nodiscard]] std::vector<double> centroid() const;

 private:
  std::size_t dim_;
  std::vector<double> coords_;
};

}  // namespace mmph::geo
