#pragma once

/// \file enclosing_l1.hpp
/// \brief Smallest enclosing shapes under the 1-norm and infinity-norm.
///
/// The paper's Algorithm 4 needs a "smallest disk" step in each metric it
/// supports. Under the infinity-norm the ball is an axis-aligned cube and
/// the per-dimension midpoint rule is exact. Under the 1-norm the paper
/// prescribes the same projection rule ("the center position along this
/// dimension is (min+max)/2", Theorem 4 proof) — exact in special cases but
/// a heuristic in general. In 2-D the 1-norm ball is a 45-degree-rotated
/// square, so rotating coordinates (u,v) = (x+y, x-y) turns the problem into
/// the exact infinity-norm one; we expose that exact variant as well and
/// compare the two in an ablation benchmark.

#include "mmph/geometry/ball.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::geo {

/// Exact smallest enclosing cube center under the infinity-norm:
/// center_d = (min_d + max_d)/2, radius = max_d (max_d - min_d)/2.
[[nodiscard]] Ball enclosing_box_linf(const PointSet& ps);

/// The paper's projection rule applied under the 1-norm: center is the
/// per-dimension midpoint, radius the max 1-norm distance from it.
/// Encloses all points by construction but is not minimal in general.
[[nodiscard]] Ball enclosing_ball_l1_projection(const PointSet& ps);

/// Exact smallest enclosing 1-norm ball in 2-D via the rotation
/// (u,v) = (x+y, x-y). Requires ps.dim() == 2.
[[nodiscard]] Ball enclosing_ball_l1_2d(const PointSet& ps);

}  // namespace mmph::geo
