#pragma once

/// \file kd_tree.hpp
/// \brief Kd-tree over a PointSet for ball and nearest-neighbor queries.
///
/// Complements CellGrid: a uniform grid is ideal when points spread evenly
/// (the paper's workloads), but clustered populations concentrate in a few
/// cells and queries degrade toward linear scans. The kd-tree adapts to
/// density: median splits give a balanced tree regardless of clustering.
///
/// Queries work under any p-norm: subtrees are pruned by the metric
/// distance from the query to the node's axis-aligned bounding box, which
/// lower-bounds the distance to every point inside for every norm.
///
/// The tree stores indices into the referenced PointSet (which must
/// outlive it) in a flat array; nodes are index ranges, so construction
/// does O(n log n) work with no per-node allocation.

#include <cstddef>
#include <functional>
#include <vector>

#include "mmph/geometry/norms.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::geo {

class KdTree {
 public:
  /// Builds the tree. \p leaf_size bounds the points per leaf (>= 1).
  explicit KdTree(const PointSet& points, std::size_t leaf_size = 8);

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// Calls fn(i) for every point with metric.distance(center, x_i) <=
  /// radius. Visit order is deterministic (tree order).
  void for_each_in_ball(ConstVec center, double radius, const Metric& metric,
                        const std::function<void(std::size_t)>& fn) const;

  /// Sorted indices of the points within the ball.
  [[nodiscard]] std::vector<std::size_t> query_ball(
      ConstVec center, double radius, const Metric& metric) const;

  /// Index of a nearest point to \p center under \p metric (ties resolve
  /// to the first found in tree order, which is deterministic).
  [[nodiscard]] std::size_t nearest(ConstVec center,
                                    const Metric& metric) const;

  /// Indices of the k nearest points, ordered by increasing distance
  /// (ties by index). k is clamped to size().
  [[nodiscard]] std::vector<std::size_t> k_nearest(
      ConstVec center, std::size_t k, const Metric& metric) const;

 private:
  struct Node {
    std::size_t begin = 0;   ///< range into order_
    std::size_t end = 0;
    std::size_t left = 0;    ///< child node ids; 0 == leaf (node 0 is root)
    std::size_t right = 0;
    std::vector<double> lo;  ///< bounding box of the range
    std::vector<double> hi;
  };

  std::size_t build(std::size_t begin, std::size_t end, std::size_t leaf_size);
  [[nodiscard]] double box_distance(const Node& node, ConstVec q,
                                    const Metric& metric) const;
  void search(std::size_t node_id, ConstVec center, double radius,
              const Metric& metric,
              const std::function<void(std::size_t)>& fn) const;
  void nearest_impl(std::size_t node_id, ConstVec center,
                    const Metric& metric, double& best_d,
                    std::size_t& best_i) const;

  const PointSet& points_;
  std::vector<std::size_t> order_;
  std::vector<Node> nodes_;
};

}  // namespace mmph::geo
