#pragma once

/// \file spatial_index.hpp
/// \brief Radius-query coverage index: solve cost scales with density, not n.
///
/// Every coverage evaluation g(c) = sum_i w_i min(u_i(c), y_i) only draws
/// nonzero terms from points within the coverage radius r of the candidate
/// c. The blocked kernels still scan all n points per evaluation; a
/// SpatialIndex answers "which points can be within r of c" in
/// O(points-in-ball), so an indexed evaluation touches only the candidates
/// that can contribute (see core::kernels::IndexedActiveSet for the bridge
/// into the reward kernels).
///
/// Contract that makes indexed solves *bit-identical* to full scans:
///   - query() appends a **superset of the closed metric ball** around the
///     center (grid: every point in the L-infinity box of half-width r,
///     which contains every p-norm ball of radius r; kd-tree: the exact
///     closed ball). Points outside the ball contribute exact +0.0 in the
///     kernels, so extras never change a sum.
///   - The ids come back in **ascending order**, the same relative order as
///     the full scan, so term-by-term accumulation associates identically.
///   - mask() removes a point from future queries. Callers mask only points
///     whose residual hit exactly 0.0 — those contribute exact +0.0 forever
///     (residuals never increase) — so masking preserves sums bit for bit.
///     This is the index-side analog of kernels::ActiveSet compaction.
///
/// Incremental maintenance mirrors serve::InstanceStore's mutation model
/// (append / overwrite-in-place / swap-remove) in O(1) amortized per op, so
/// a serving layer can carry one index across churn epochs instead of
/// rebuilding per solve. Ids are dense row numbers [0, size()); after
/// swap_remove(id) the last row takes over id, exactly like the store.
///
/// Thread-safety: query() and stats() are safe to call concurrently (the
/// counters are atomics); mutations, mask(), unmask_all() and rebuild()
/// require external serialization and must not race queries.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mmph/geometry/norms.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::spatial {

/// Uniform grids enumerate 3^dim neighbor cells per query, so the grid is
/// only built for low dimensions; above this the kd-tree takes over.
inline constexpr std::size_t kGridMaxDim = 4;

/// Point-in-time copy of an index's observability counters.
struct IndexStats {
  std::uint64_t queries = 0;              ///< query() calls
  std::uint64_t points_touched = 0;       ///< ids returned across queries
  std::uint64_t incremental_updates = 0;  ///< add + update + swap_remove
  std::uint64_t rebuilds = 0;             ///< bulk (re)builds, ctor included
};

enum class IndexKind {
  kGrid,    ///< UniformGridIndex: cells of side ~ r, hash-map sparse.
  kKdTree,  ///< KdTreeIndex: geometry::KdTree, the high-dimension fallback.
};

[[nodiscard]] const char* index_kind_name(IndexKind kind) noexcept;

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  [[nodiscard]] virtual IndexKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::size_t dim() const noexcept = 0;
  [[nodiscard]] virtual double radius() const noexcept = 0;

  /// Clears \p out, then appends the ids of every unmasked point whose
  /// distance to \p center can be <= radius() — a superset of the closed
  /// metric ball — in strictly ascending id order.
  virtual void query(geo::ConstVec center,
                     std::vector<std::size_t>& out) const = 0;

  /// Drops \p id from future queries (residual-exhausted point). Safe to
  /// call on an already-masked id (no-op).
  virtual void mask(std::size_t id) = 0;
  /// Restores every masked point (start of a fresh solve).
  virtual void unmask_all() = 0;
  [[nodiscard]] virtual bool masked(std::size_t id) const = 0;

  /// Appends a point; its id is the previous size(). O(1) amortized.
  virtual void add(geo::ConstVec p) = 0;
  /// Moves point \p id to \p p (overwrite-in-place). O(1) amortized.
  virtual void update(std::size_t id, geo::ConstVec p) = 0;
  /// Removes \p id; the last row takes over id (InstanceStore semantics).
  virtual void swap_remove(std::size_t id) = 0;

  /// Rebuilds the search structure from the current rows (recovery path
  /// after a failed incremental update). Masks are preserved.
  virtual void rebuild() = 0;
  /// Structural self-check: every unmasked row findable exactly once.
  [[nodiscard]] virtual bool verify() const = 0;

  /// Coordinates of row \p id (owned by the index, valid until mutation).
  [[nodiscard]] virtual geo::ConstVec point(std::size_t id) const = 0;

  [[nodiscard]] IndexStats stats() const noexcept {
    IndexStats s;
    s.queries = queries_.load(std::memory_order_relaxed);
    s.points_touched = points_touched_.load(std::memory_order_relaxed);
    s.incremental_updates = updates_.load(std::memory_order_relaxed);
    s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  void count_query(std::size_t touched) const noexcept {
    queries_.fetch_add(1, std::memory_order_relaxed);
    points_touched_.fetch_add(touched, std::memory_order_relaxed);
  }
  void count_update() noexcept {
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_rebuild() noexcept {
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> points_touched_{0};
  std::atomic<std::uint64_t> updates_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
};

/// Builds the index best suited to the workload's shape: a uniform grid for
/// dim <= kGridMaxDim, the kd-tree fallback above (neighbor-cell
/// enumeration is 3^dim, so grids stop paying off quickly). \p radius must
/// be positive; \p metric matters only to the kd-tree (the grid's box query
/// is a superset of every p-norm ball).
[[nodiscard]] std::unique_ptr<SpatialIndex> make_index(
    const geo::PointSet& points, double radius, const geo::Metric& metric);

/// Explicit-kind factory (tests, benchmarks).
[[nodiscard]] std::unique_ptr<SpatialIndex> make_index(
    IndexKind kind, const geo::PointSet& points, double radius,
    const geo::Metric& metric);

}  // namespace mmph::spatial
